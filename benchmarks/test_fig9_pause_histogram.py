"""Figure 9 — Number of application pauses per duration interval.

Paper targets: the fewer pauses in the rightmost (longest) intervals
the better; ROLP and NG2C keep essentially all pauses in the shortest
intervals while G1 and CMS populate the long ones.
"""

from conftest import save_artifact
from repro.bench.figures import render_figure9


def _long_pause_count(histogram, threshold_label_index: int = 2) -> int:
    """Pauses in buckets at or beyond the given bucket index."""
    return sum(count for _, count in histogram[threshold_label_index:])


def test_figure9(once, pause_studies):
    studies = once(lambda: pause_studies)
    text = render_figure9(studies)
    print()
    print(text)
    save_artifact("figure9", text)

    for study in studies:
        histograms = study.histograms()
        g1_long = _long_pause_count(histograms["g1"])
        cms_long = _long_pause_count(histograms["cms"])
        ng2c_long = _long_pause_count(histograms["ng2c"])
        rolp_long = _long_pause_count(histograms["rolp"])

        # Pretenuring moves pauses out of the long buckets.
        assert ng2c_long <= g1_long, study.workload
        assert rolp_long <= max(g1_long, cms_long), study.workload

        # NG2C/ROLP keep nearly everything in the shortest bucket.
        total_ng2c = sum(count for _, count in histograms["ng2c"])
        if total_ng2c:
            short = histograms["ng2c"][0][1] + histograms["ng2c"][1][1]
            assert short / total_ng2c >= 0.95, study.workload

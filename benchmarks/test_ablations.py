"""Ablation benches for the design choices DESIGN.md calls out
(survivor-tracking shutdown, package filters, 16-vs-2 generations,
unsynchronized OLD-table updates, allocation sampling, and the
offline-profiling baseline)."""

from conftest import save_artifact
from repro.bench.ablations import (
    ablation_allocation_sampling,
    ablation_generations,
    ablation_increment_loss,
    ablation_offline_profile,
    ablation_package_filters,
    ablation_survivor_tracking,
    render_ablation,
)


def test_ablation_survivor_tracking(once):
    results = once(ablation_survivor_tracking)
    print()
    text = render_ablation(results, "[Ablation] survivor-tracking shutdown (7.4)")
    print(text)
    save_artifact("ablation_survivor_tracking", text)
    dynamic, always_on = results
    # The controller actually shut tracking down at least once.
    assert dynamic.extra["shutdowns"] >= 1
    # Dynamic shutdown cannot be slower at the median than always-on by
    # more than noise (it removes per-survivor pause cost).
    assert dynamic.p50_ms <= always_on.p50_ms * 1.10


def test_ablation_package_filters(once):
    results = once(ablation_package_filters)
    print()
    text = render_ablation(results, "[Ablation] package filters (7.3)")
    print(text)
    save_artifact("ablation_package_filters", text)
    filtered, everything = results
    # Filters bound the instrumentation surface...
    assert filtered.extra["profiled_sites"] <= everything.extra["profiled_sites"]
    # ...and with it the mutator-side profiling tax.
    assert filtered.extra["profiling_tax_ms"] <= everything.extra["profiling_tax_ms"]


def test_ablation_generations(once):
    results = once(ablation_generations)
    print()
    text = render_ablation(results, "[Ablation] 16 generations vs binary (9)")
    print(text)
    save_artifact("ablation_generations", text)
    sixteen, binary = results
    # Multiple generations beat the binary young/old decision at the
    # tail: the binary variant co-locates different lifetimes in the
    # old space and pays compaction for it.
    assert sixteen.p999_ms <= binary.p999_ms * 1.05


def test_ablation_allocation_sampling(once):
    results = once(ablation_allocation_sampling)
    print()
    text = render_ablation(results, "[Ablation] allocation sampling (8.5)")
    print(text)
    save_artifact("ablation_allocation_sampling", text)
    full, quarter, sixteenth = results
    # The profiling tax falls monotonically with the sampling rate...
    assert full.extra["profiling_tax_ms"] >= quarter.extra["profiling_tax_ms"]
    assert quarter.extra["profiling_tax_ms"] >= sixteenth.extra["profiling_tax_ms"]
    # ...while unsampled allocations are actually skipped...
    assert sixteenth.extra["skipped"] > quarter.extra["skipped"] > 0
    # ...and decisions still get made at moderate rates.
    assert quarter.extra["advice"] >= 1


def test_ablation_offline_profile(once):
    results = once(ablation_offline_profile)
    print()
    text = render_ablation(results, "[Ablation] offline (POLM2) vs online (ROLP)")
    print(text)
    save_artifact("ablation_offline_profile", text)
    online, offline = results
    # The static profile carries real decisions and costs nothing.
    assert offline.extra["profile_sites"] >= 1
    assert offline.extra["profiling_tax_ms"] == 0.0
    assert online.extra["profiling_tax_ms"] > 0
    # With the workload unchanged, offline replay is at least as good at
    # the median (no warmup) — the advantage ROLP trades for coping with
    # unknown workloads.
    assert offline.p50_ms <= online.p50_ms * 1.1


def test_ablation_increment_loss(once):
    results = once(ablation_increment_loss)
    print()
    text = render_ablation(results, "[Ablation] OLD increment loss (7.6)")
    print(text)
    save_artifact("ablation_increment_loss", text)
    clean = results[0]
    # The paper's claim: losing a small fraction of unsynchronized
    # increments does not change profiling decisions.
    for lossy in results[1:3]:
        assert lossy.extra["advice"] == clean.extra["advice"], lossy
    # The model does actually lose increments when told to.
    assert results[-1].extra["lost"] > 0

"""Figure 8 — Pause-time percentiles per collector, all six workloads.

Paper targets: ROLP and NG2C significantly below G1 and CMS at the
tail; ROLP approaches NG2C without annotations; ROLP/NG2C curves are
near-horizontal (stable pauses); headline tail reductions vs G1 of
51% (Lucene), 85% (GraphChi), 69% (Cassandra).
"""

from repro.metrics.pauses import percentile, tail_reduction
from conftest import save_artifact
from repro.bench.figures import render_figure8


def test_figure8(once, pause_studies):
    studies = once(lambda: pause_studies)
    text = render_figure8(studies)
    print()
    print(text)
    save_artifact("figure8", text)

    for study in studies:
        g1 = study.pauses_ms["g1"]
        cms = study.pauses_ms["cms"]
        ng2c = study.pauses_ms["ng2c"]
        rolp = study.pauses_ms["rolp"]

        # Tail (p99.9): pretenuring beats both baselines.  ROLP gets a
        # small tolerance: on the slowest-learning mix its tail can sit
        # at G1's level rather than below it at simulator run lengths.
        g1_tail = percentile(g1, 99.9)
        assert percentile(ng2c, 99.9) < g1_tail, study.workload
        assert percentile(rolp, 99.9) <= g1_tail * 1.05, study.workload
        assert percentile(ng2c, 99.9) < percentile(cms, 99.9), study.workload
        assert percentile(rolp, 99.9) < percentile(cms, 99.9), study.workload

        # Median: ROLP (post-warmup mass) at or below G1.
        assert percentile(rolp, 50.0) <= percentile(g1, 50.0) * 1.1, study.workload

        # NG2C is near-flat across percentiles (paper: 'close to
        # horizontal plotted line').
        assert percentile(ng2c, 99.9) <= percentile(ng2c, 50.0) * 3.0, study.workload

    # Headline: substantial long-tail reductions vs G1 on every
    # platform family (paper: 51% Lucene, 85% GraphChi, 69% Cassandra).
    by_name = {s.workload: s for s in studies}
    for name in ("cassandra-wi", "lucene", "graphchi-pr"):
        if name in by_name:
            study = by_name[name]
            reduction = tail_reduction(
                study.pauses_ms["g1"], study.pauses_ms["rolp"], 99.9
            )
            assert reduction >= 0.35, (name, reduction)

"""Table 2 — DaCapo profiling counts, conflicts, and the expected
throughput overhead of tracking 20% of method calls.

Paper targets: conflicts only in pmd (6), tomcat (4), tradesoap (3);
conflict-resolution overhead never above ~1.8%.
"""

from conftest import save_artifact
from repro.bench.tables import render_table2, table2
from repro.workloads.dacapo import DACAPO_SPECS

#: the paper's Table 2 conflict counts
EXPECTED_CONFLICTS = {"pmd": 6, "tomcat": 4, "tradesoap": 3}


def test_table2(once):
    rows = once(table2)
    text = "[Table 2] DaCapo profiling and conflicts\n" + render_table2(rows)
    print()
    print(text)
    save_artifact("table2", text)

    by_name = {r.benchmark: r for r in rows}
    assert set(by_name) == {s.name for s in DACAPO_SPECS}

    for name, expected in EXPECTED_CONFLICTS.items():
        row = by_name[name]
        # Allow one conflict of slack: discovery depends on how many
        # inference passes the scaled run reaches.
        assert abs(row.conflicts - expected) <= 1, row

    for row in by_name.values():
        if row.benchmark not in EXPECTED_CONFLICTS:
            assert row.conflicts == 0, row
        # Paper: conflict-resolution overhead never above ~1.8%; allow
        # 2x headroom for the simulator's coarser cost constants.
        assert row.conflict_overhead_percent <= 3.6, row
        assert row.pmc > 0 and row.pas > 0, row

"""Figure 6 — DaCapo execution time normalized to G1 at the four
profiling levels (no-call / fast-call / real / slow-call).

Paper targets: overheads are benchmark-dependent (alloc-heavy vs
call-heavy); real-profiling tracks fast-call-profiling closely (few
call sites actually enabled); slow-call-profiling is the worst case;
no benchmark blows past ~25%.
"""

from conftest import save_artifact
from repro.bench.figures import FIG6_MODES, figure6, render_figure6


def test_figure6(once):
    series = once(figure6)
    text = "[Figure 6] DaCapo execution time normalized to G1\n" + render_figure6(series)
    print()
    print(text)
    save_artifact("figure6", text)

    for name, row in series.items():
        # Ordering: none <= fast <= slow; real between fast and slow.
        assert row["none"] <= row["fast"] + 0.01, (name, row)
        assert row["fast"] <= row["slow"] + 0.01, (name, row)
        assert row["real"] <= row["slow"] + 0.01, (name, row)
        # Real-profiling hugs the fast branch (paper's key observation).
        assert row["real"] - row["fast"] <= 0.02, (name, row)
        # Bounded overhead (paper: worst benchmarks ~10-25%).
        assert row["slow"] <= 1.30, (name, row)
        # Profiling always costs something.
        assert row["none"] >= 0.99, (name, row)

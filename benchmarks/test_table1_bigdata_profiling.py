"""Table 1 — Big Data benchmark profiling summary.

Paper targets: profiling effort bounded by hot-code-only instrumentation
and package filters; conflicts rare (Cassandra 2, GraphChi 3, Lucene 0);
OLD table at most 16 MB; far fewer ROLP-side actions than NG2C's hand
annotations require.
"""

from conftest import save_artifact
from repro.bench.tables import render_table1, table1


def test_table1(once):
    rows = once(table1)
    text = "[Table 1] Big Data benchmark profiling summary\n" + render_table1(rows)
    print()
    print(text)
    save_artifact("table1", text)

    by_name = {r.workload: r for r in rows}

    # Conflicts are rare (paper: <= 3 per workload).
    for row in rows:
        assert row.conflicts <= 4, row

    # Cassandra's factory conflicts (Table 1 reports 2 per mix).  At
    # simulator scale the per-mix count varies by 1: a flickering
    # conflict can be advised via its merged context before the
    # debounce confirms it, and the read-intensive mix may surface one
    # extra genuinely-bimodal site (compaction cadence).
    for name in ("cassandra-wi", "cassandra-rw", "cassandra-ri"):
        assert 1 <= by_name[name].conflicts <= 3, by_name[name]
    assert any(
        by_name[name].conflicts >= 2
        for name in ("cassandra-wi", "cassandra-rw", "cassandra-ri")
    )

    # Lucene has no cross-lifetime factory sharing (Table 1 reports 0).
    assert by_name["lucene"].conflicts == 0, by_name["lucene"]

    # OLD table memory stays small (paper: <= 16 MB).
    for row in rows:
        assert row.old_table_mb <= 16.0, row

    # ROLP needs no annotations; NG2C needs several per workload.
    for row in rows:
        assert row.ng2c_annotations >= 3, row

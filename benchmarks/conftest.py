"""Shared benchmark configuration.

Every benchmark honours ``ROLP_BENCH_SCALE`` (see
:mod:`repro.bench.config`): the default regenerates the paper's shapes
in minutes; ``ROLP_BENCH_SCALE=0.2`` gives a quick smoke pass.  The
shared pause-study runs additionally honour ``ROLP_BENCH_JOBS`` (worker
processes) and ``ROLP_BENCH_CACHE_DIR`` (per-cell result cache) — see
docs/benchmarking.md.

The simulated runs are deterministic, so one round per benchmark is the
meaningful measurement — ``benchmark.pedantic(..., rounds=1)`` records
the wall-clock cost of regenerating each artifact without re-running
multi-second simulations dozens of times.
"""

import os

import pytest

from repro.bench.figures import pause_study
from repro.bench.runner import ResultCache, Runner

#: rendered tables/figures are also written here so they survive
#: pytest's output capture (EXPERIMENTS.md references these files)
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")

_PAUSE_STUDIES = []


def save_artifact(name, text):
    """Persist a rendered table/figure under bench_results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


@pytest.fixture(scope="session")
def pause_studies():
    """Figures 8 and 9 share one (expensive) set of runs: every large
    workload under every compared collector."""
    if not _PAUSE_STUDIES:
        cache_dir = os.environ.get("ROLP_BENCH_CACHE_DIR")
        runner = Runner(
            jobs=int(os.environ.get("ROLP_BENCH_JOBS", "1")),
            cache=ResultCache(cache_dir) if cache_dir else None,
        )
        _PAUSE_STUDIES.extend(pause_study(runner=runner))
    return _PAUSE_STUDIES


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner

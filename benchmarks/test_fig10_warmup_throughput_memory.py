"""Figure 10 — Cassandra WI warmup pause timeline (left), throughput
(middle) and max memory (right) normalized to G1.

Paper targets: ROLP's pauses step down once the profiler stabilizes
(~350 s of a 30-minute run; proportionally earlier here); ROLP/NG2C
throughput within a few percent of G1 while ZGC pays its barrier tax;
ROLP/NG2C memory ~= G1 while ZGC needs noticeably more.
"""

import statistics

from conftest import save_artifact
from repro.bench.figures import figure10, render_figure10


def test_figure10(once):
    study = once(figure10)
    text = render_figure10(study)
    print()
    print(text)
    save_artifact("figure10", text)

    # -- warmup shape: late pauses much shorter than early pauses -------
    timeline = study.rolp_timeline
    assert timeline, "ROLP run recorded no pauses"
    end = timeline[-1][0]
    early = [d for t, d in timeline if t < end * 0.3]
    late = [d for t, d in timeline if t > end * 0.7]
    assert early and late
    assert statistics.median(late) < statistics.median(early) * 0.8

    # The profiler eventually stops changing decisions (stabilizes).
    changes = study.decision_changes
    assert changes, "no inference passes ran"
    assert sum(changes[-2:]) <= sum(changes[:2]), changes

    # -- throughput normalized to G1 ------------------------------------
    thr = study.throughput_norm
    # ROLP within the paper's <6% envelope of the best pretenurer, and
    # never below ZGC's barrier-taxed throughput.
    assert thr["rolp"] >= 0.90, thr
    assert thr["zgc"] <= thr["rolp"], thr
    assert thr["ng2c"] >= 0.95, thr

    # -- max memory normalized to G1 -------------------------------------
    # ROLP/NG2C track each other closely; at this simulator scale each
    # dynamic generation's partially-filled region is a visible (~1 MB)
    # overhead that would be negligible at the paper's 6 GB heaps, so
    # the bound is looser than the paper's ~1.0 (see EXPERIMENTS.md).
    mem = study.memory_norm
    assert mem["rolp"] <= 1.5, mem
    assert abs(mem["rolp"] - mem["ng2c"]) <= 0.25, mem
    assert mem["zgc"] >= mem["rolp"], mem   # concurrent GC needs headroom
    assert mem["zgc"] >= 1.4, mem           # paper: ZGC's memory cost is large

"""pytest-benchmark smoke suite for the hot-path perf kernels.

Opt-in (``ROLP_PERF=1``): wall-clock assertions are meaningless on a
loaded CI box or an unknown machine, so by default the whole module
skips.  When enabled, each kernel runs once (the simulated runs are
deterministic — see conftest) under each optimised backend (``fast``
and ``compiled``) and its ns/op is compared against the per-backend
entry in ``perf_baseline.json`` with a ±50% guard: slower means a
regression crept into a hot path, dramatically faster usually means the
kernel stopped exercising what it used to.

Re-bless the baseline on the machine of record after an intentional
change::

    ROLP_PERF=1 ROLP_UPDATE_PERF_BASELINE=1 \
        python -m pytest benchmarks/test_perf_kernels.py

The differential correctness of the kernels (reference vs fast vs
compiled) is pinned by tests/test_perf_equivalence.py, which always
runs.
"""

import json
import os

import pytest

from repro.bench import perf
from repro.bench.config import bench_scale

pytestmark = pytest.mark.skipif(
    os.environ.get("ROLP_PERF") != "1",
    reason="wall-clock perf guard; opt in with ROLP_PERF=1",
)

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")
TOLERANCE = 0.50
#: absolute slack: kernels that vectorise down to a handful of numpy
#: calls measure in single-digit ns/op, where the ratio is all timer
#: noise — anything within this absolute band always passes
ABS_SLACK_NS = 50.0
SEED = 1234
#: median-of-N inside run_kernel smooths single-sample scheduler noise
REPEAT = 5

#: the optimised backends the guard watches (reference is the
#: measurement baseline inside BENCH_6, not a regression target)
GUARDED_BACKENDS = ("fast", "compiled")


def load_baseline():
    with open(BASELINE_PATH) as handle:
        return json.load(handle)


def bless(kernel, backend, result):
    try:
        doc = load_baseline()
    except (OSError, ValueError):
        doc = {"schema": "rolp-perf-baseline/v2", "kernels": {}}
    doc.setdefault("kernels", {}).setdefault(kernel, {})[backend] = {
        "ns_per_op": round(result["ns_per_op"], 1),
        "ops": result["ops"],
        "scale": bench_scale(),
    }
    with open(BASELINE_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.parametrize("backend", GUARDED_BACKENDS)
@pytest.mark.parametrize("kernel", perf.PERF_KERNELS)
def test_kernel_within_baseline(benchmark, kernel, backend):
    ops = perf.kernel_ops(kernel)
    result = benchmark.pedantic(
        perf.run_kernel, args=(kernel, SEED, ops, backend, REPEAT), rounds=1
    )
    if os.environ.get("ROLP_UPDATE_PERF_BASELINE") == "1":
        bless(kernel, backend, result)
        pytest.skip("baseline re-blessed for %s/%s" % (kernel, backend))
    baseline = load_baseline()["kernels"][kernel][backend]["ns_per_op"]
    measured = result["ns_per_op"]
    if abs(measured - baseline) <= ABS_SLACK_NS:
        return
    ratio = measured / baseline
    assert ratio <= 1 + TOLERANCE, (
        "%s/%s regressed: %.0f ns/op vs baseline %.0f (%.0f%% slower); if "
        "intentional, re-bless with ROLP_UPDATE_PERF_BASELINE=1"
        % (kernel, backend, measured, baseline, (ratio - 1) * 100)
    )
    assert ratio >= 1 - TOLERANCE, (
        "%s/%s is suspiciously fast: %.0f ns/op vs baseline %.0f — check "
        "the kernel still exercises the path, then re-bless with "
        "ROLP_UPDATE_PERF_BASELINE=1"
        % (kernel, backend, measured, baseline)
    )

"""Figure 7 — Worst-case conflict resolution time vs P.

Paper targets: resolution time is inversely proportional to P; with
P=20% most benchmarks resolve within ~2 minutes and never beyond ~520 s
(the simulator's absolute times scale with its shorter GC intervals,
so the assertions check proportionality and ordering, not seconds).
"""

from conftest import save_artifact
from repro.bench.figures import figure7, render_figure7


def test_figure7(once):
    series = once(figure7)
    text = "[Figure 7] Worst-case conflict resolution time (ms)\n" + render_figure7(series)
    print()
    print(text)
    save_artifact("figure7", text)

    for name, row in series.items():
        fractions = sorted(row)
        # Monotone: higher P resolves (worst-case) no slower.
        for lower, higher in zip(fractions, fractions[1:]):
            assert row[lower] >= row[higher] - 1e-9, (name, row)
        # Inverse proportionality: P=5% within ~(4 +- 1.5)x of P=20%.
        if row[0.20] > 0:
            ratio = row[0.05] / row[0.20]
            assert 2.5 <= ratio <= 5.5, (name, ratio)

"""Tests for the NullProfiler default hook contract — baseline VMs must
behave exactly as if no profiler existed."""

from repro.heap.object_model import SimObject
from repro.runtime.hooks import NullProfiler
from repro.runtime.method import Method
from repro.runtime.thread import SimThread


class TestNullProfiler:
    def setup_method(self):
        self.profiler = NullProfiler()
        self.method = Method("m", "a.B", lambda ctx: None)

    def test_never_instruments(self):
        assert not self.profiler.should_instrument(self.method)

    def test_zero_cost_constants(self):
        assert self.profiler.alloc_profile_ns == 0.0
        assert self.profiler.call_fast_ns == 0.0
        assert self.profiler.call_slow_ns == 0.0

    def test_context_always_zero(self):
        thread = SimThread(1)
        site = self.method.alloc_site(1)
        assert self.profiler.allocation_context(thread, site) == 0

    def test_everything_sampled_nothing_recorded(self):
        site = self.method.alloc_site(1)
        assert self.profiler.sample_allocation(site)
        # pure no-ops: must not raise
        self.profiler.on_allocation(0, SimObject(8, 0))
        self.profiler.on_gc_survivor(0, SimObject(8, 0))
        self.profiler.on_gc_end(1, 100, 1e6)
        self.profiler.on_fragmentation_report({})
        self.profiler.on_method_compiled(self.method)

    def test_no_call_tracking(self):
        site = self.method.call_site(1)
        assert not self.profiler.call_site_enabled(site)

    def test_no_survivor_tracking(self):
        assert not self.profiler.survivor_tracking_enabled()

    def test_never_pretenures(self):
        assert self.profiler.allocation_advice(0x0042_0007) == 0

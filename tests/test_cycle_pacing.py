"""Tests for allocation-paced cycle triggering (the G1/NG2C mechanism
that keeps the GC — and with ROLP, the inference clock — running when
pretenured allocation bypasses eden entirely)."""

from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.heap import BandwidthModel, RegionHeap, Space


def make(cls, heap_mb=16, **kwargs):
    return cls(RegionHeap(heap_mb << 20), BandwidthModel(), young_regions=2, **kwargs)


class TestPacedTrigger:
    def test_pretenured_allocation_still_drives_cycles(self):
        """All allocation flows to a dynamic generation; eden never
        fills — cycles must still happen once occupancy crosses IHOP."""
        ng2c = make(NG2CCollector, use_profiler_advice=False)
        for _ in range(20_000):
            obj = ng2c.allocate(1024, gen_hint=5)
            obj.kill_at(ng2c.clock.now_ns + 50_000)
            ng2c.clock.advance_mutator(200)
        assert ng2c.gc_cycles >= 2

    def test_below_ihop_no_forced_cycles(self):
        g1 = make(G1Collector, heap_mb=64)
        # a trickle of young garbage: occupancy stays near zero
        for _ in range(512):
            g1.allocate(256, death_time_ns=g1.clock.now_ns)
            g1.clock.advance_mutator(100)
        assert g1.gc_cycles == 0

    def test_pacing_bounds_cycle_rate(self):
        """Above the IHOP, cycles fire at most once per eden-budget of
        allocation — never per-allocation."""
        ng2c = make(NG2CCollector, use_profiler_advice=False)
        # pin occupancy above the IHOP with live dynamic data
        keep = [ng2c.allocate(1 << 20 // 2, gen_hint=9) for _ in range(18)]
        cycles_before = ng2c.gc_cycles
        bytes_allocated = 0
        for _ in range(4096):
            obj = ng2c.allocate(1024, gen_hint=5)
            obj.kill_at(ng2c.clock.now_ns + 10_000)
            ng2c.clock.advance_mutator(100)
            bytes_allocated += 1024
        pace = ng2c.young_regions * ng2c.heap.region_bytes
        max_expected = bytes_allocated // pace + 2
        assert ng2c.gc_cycles - cycles_before <= max_expected
        assert all(o.region is not None for o in keep)

"""Tests for the advice table (estimate lifecycle, site defaults,
split-site semantics, fragmentation decrements, hysteresis)."""

import pytest

from repro.heap.header import MAX_AGE
from repro.core.advice import AdviceTable
from repro.core.context import encode


def table(**kwargs):
    return AdviceTable(**kwargs)


class TestEstimates:
    def test_unknown_context_is_young(self):
        assert table().generation_for(encode(1, 0)) == 0

    def test_estimate_below_min_age_stays_young(self):
        t = table(pretenure_min_age=2)
        assert not t.update_estimate(encode(1, 0), 1)
        assert t.generation_for(encode(1, 0)) == 0

    def test_estimate_maps_age_to_generation(self):
        t = table()
        ctx = encode(1, 0)
        assert t.update_estimate(ctx, 5)
        assert t.generation_for(ctx) == 5

    def test_saturated_age_routed_to_deepest_dynamic_gen(self):
        t = table()
        ctx = encode(1, 0)
        t.update_estimate(ctx, MAX_AGE)
        assert t.generation_for(ctx) == MAX_AGE - 1

    def test_lifetime_increase_applied(self):
        t = table(cooldown_passes=0)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 3)
        assert t.update_estimate(ctx, 7)
        assert t.generation_for(ctx) == 7

    def test_quiet_table_never_downgrades(self):
        t = table(cooldown_passes=0)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 7)
        assert not t.update_estimate(ctx, 0)
        assert t.generation_for(ctx) == 7

    def test_estimate_for_raw_access(self):
        t = table()
        ctx = encode(1, 0)
        assert t.estimate_for(ctx) is None
        t.update_estimate(ctx, 4)
        assert t.estimate_for(ctx) == 4

    def test_invalid_min_age(self):
        with pytest.raises(ValueError):
            AdviceTable(pretenure_min_age=0)
        with pytest.raises(ValueError):
            AdviceTable(pretenure_min_age=99)


class TestSiteDefaults:
    def test_single_context_sets_site_default(self):
        t = table()
        t.update_estimate(encode(3, 100), 6)
        # a sibling context (same site, different stack state) inherits
        assert t.generation_for(encode(3, 555)) == 6

    def test_split_site_serves_no_default(self):
        t = table()
        t.update_estimate(encode(3, 100), 6)
        t.mark_split(3)
        assert t.generation_for(encode(3, 555)) == 0
        # contexts with their own estimate are unaffected
        assert t.generation_for(encode(3, 100)) == 6

    def test_split_is_permanent(self):
        t = table(cooldown_passes=0)
        t.mark_split(3)
        t.update_estimate(encode(3, 100), 6)
        assert t.site_is_split(3)
        assert t.generation_for(encode(3, 555)) == 0

    def test_disagreeing_contexts_drop_default(self):
        t = table(cooldown_passes=0)
        t.update_estimate(encode(3, 100), 6)
        t.update_estimate(encode(3, 200), 9)
        assert t.generation_for(encode(3, 555)) == 0


class TestDecrements:
    def test_decrement_lowers_by_one(self):
        t = table(cooldown_passes=0)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 6)
        assert t.decrement(ctx)
        assert t.generation_for(ctx) == 5
        assert t.decrements == 1

    def test_decrement_unknown_context_noop(self):
        assert not table().decrement(encode(1, 0))

    def test_decrement_to_zero_possible(self):
        t = table(cooldown_passes=0)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 2)
        t.decrement(ctx)
        t.decrement(ctx)
        assert t.generation_for(ctx) == 0
        assert not t.decrement(ctx)  # floor


class TestHysteresis:
    def test_raise_blocked_during_cooldown(self):
        t = table(cooldown_passes=2)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 3)     # change -> frozen for 2 passes
        assert not t.update_estimate(ctx, 8)
        t.begin_pass()
        assert not t.update_estimate(ctx, 8)
        t.begin_pass()
        assert t.update_estimate(ctx, 8)

    def test_decrement_blocked_during_cooldown(self):
        t = table(cooldown_passes=2)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 6)
        assert not t.decrement(ctx)
        t.begin_pass()
        t.begin_pass()
        assert t.decrement(ctx)

    def test_oscillation_damped(self):
        """Alternating raise/decrement signals move the estimate at most
        once per cooldown window instead of every pass."""
        t = table(cooldown_passes=2)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 6)
        changes = 0
        for _ in range(10):
            t.begin_pass()
            if t.update_estimate(ctx, 12):
                changes += 1
            if t.decrement(ctx):
                changes += 1
        # without hysteresis this alternation would change the estimate
        # 20 times; the cooldown caps it to roughly once per window
        assert changes <= 10 // (t.cooldown_passes + 1) + 2

    def test_zero_cooldown_disables_hysteresis(self):
        t = table(cooldown_passes=0)
        ctx = encode(1, 0)
        t.update_estimate(ctx, 3)
        assert t.update_estimate(ctx, 5)

    def test_invalid_cooldown(self):
        with pytest.raises(ValueError):
            AdviceTable(cooldown_passes=-1)

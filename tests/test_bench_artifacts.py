"""Tests for the machine-readable experiment payload converters."""

import json

import pytest

from repro.bench import artifacts
from repro.bench.ablations import AblationResult
from repro.bench.figures import PauseStudy, WarmupStudy
from repro.bench.tables import Table1Row, Table2Row


def roundtrip(payload):
    """Every payload must survive json round-tripping unchanged."""
    return json.loads(json.dumps(payload))


class TestTablePayloads:
    def test_table1(self):
        rows = [
            Table1Row(
                workload="lucene",
                pas_percent=12.5,
                pmc_percent=30.0,
                conflicts=2,
                ng2c_annotations=5,
                old_table_mb=1.5,
            )
        ]
        payload = roundtrip(artifacts.table1_payload(rows))
        assert payload["rows"][0]["workload"] == "lucene"
        assert payload["rows"][0]["conflicts"] == 2

    def test_table2(self):
        rows = [
            Table2Row(
                benchmark="avrora",
                heap_mb=64,
                pmc=10,
                pas=20,
                conflicts=0,
                conflict_overhead_percent=1.25,
            )
        ]
        payload = roundtrip(artifacts.table2_payload(rows))
        assert payload["rows"][0]["benchmark"] == "avrora"


class TestFigurePayloads:
    def test_figure6(self):
        payload = roundtrip(
            artifacts.figure6_payload({"avrora": {"none": 1.0, "slow": 1.4}})
        )
        assert payload["normalized_time"]["avrora"]["slow"] == 1.4

    def test_figure7_stringifies_float_keys(self):
        payload = roundtrip(
            artifacts.figure7_payload({"avrora": {0.05: 100.0, 0.20: 25.0}})
        )
        assert payload["worst_case_ms"]["avrora"] == {"5": 100.0, "20": 25.0}

    def test_pause_study(self):
        study = PauseStudy(workload="lucene")
        study.pauses_ms["g1"] = [1.0, 2.0, 30.0]
        study.pauses_ms["rolp"] = []
        payload = roundtrip(artifacts.pause_study_payload([study]))
        collectors = payload["workloads"]["lucene"]["collectors"]
        g1 = collectors["g1"]
        assert g1["pause_count"] == 3
        assert g1["total_pause_ms"] == pytest.approx(33.0)
        assert sum(b["count"] for b in g1["histogram"]) == 3
        assert all(isinstance(k, str) for k in g1["percentiles"])
        assert collectors["rolp"]["pause_count"] == 0

    def test_pause_study_totals_match_inputs(self):
        study = PauseStudy(workload="w")
        study.pauses_ms["g1"] = [0.5] * 7
        payload = artifacts.pause_study_payload([study])
        g1 = payload["workloads"]["w"]["collectors"]["g1"]
        assert sum(b["count"] for b in g1["histogram"]) == g1["pause_count"]

    def test_figure10(self):
        study = WarmupStudy(
            rolp_timeline=[(0.5, 2.0), (1.5, 1.0)],
            throughput_norm={"g1": 1.0, "rolp": 0.97},
            memory_norm={"g1": 1.0, "rolp": 1.1},
            decision_changes=[4, 2, 0],
        )
        payload = roundtrip(artifacts.figure10_payload(study))
        assert payload["rolp_timeline"][0] == {"start_s": 0.5, "duration_ms": 2.0}
        assert payload["decision_changes"] == [4, 2, 0]

    def test_ablation(self):
        results = [
            AblationResult(
                label="on",
                p50_ms=1.0,
                p999_ms=9.0,
                throughput_ops_s=1000.0,
                gc_cycles=5,
                extra={"tax_ms": 3.0},
            )
        ]
        payload = roundtrip(artifacts.ablation_payload(results))
        assert payload[0]["label"] == "on"
        assert payload[0]["extra"]["tax_ms"] == 3.0

    def test_trace(self):
        payload = roundtrip(
            artifacts.trace_payload([{"workload": "lucene", "collector": "g1"}])
        )
        assert payload["runs"][0]["collector"] == "g1"


class TestWriteJson:
    def test_writes_sorted_parseable_document(self, tmp_path):
        path = tmp_path / "out.json"
        artifacts.write_json(str(path), {"b": 1, "a": {"nested": [1, 2]}})
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"b": 1, "a": {"nested": [1, 2]}}
        assert text.index('"a"') < text.index('"b"')

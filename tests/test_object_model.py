"""Tests for simulated heap objects (liveness oracle + header ops)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap.header import MAX_AGE
from repro.heap.object_model import IMMORTAL, SimObject


class TestConstruction:
    def test_basic(self):
        obj = SimObject(size=128, alloc_time_ns=1000)
        assert obj.size == 128
        assert obj.alloc_time_ns == 1000
        assert obj.death_time_ns == IMMORTAL
        assert obj.age == 0
        assert obj.copies == 0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            SimObject(size=0, alloc_time_ns=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SimObject(size=-8, alloc_time_ns=0)

    def test_context_installed(self):
        obj = SimObject(size=64, alloc_time_ns=0, context=0xABCD_1234)
        assert obj.context == 0xABCD_1234

    def test_unprofiled_context_zero(self):
        assert SimObject(size=64, alloc_time_ns=0).context == 0


class TestLivenessOracle:
    def test_immortal_is_live(self):
        obj = SimObject(size=64, alloc_time_ns=0)
        assert obj.is_live(10**15)

    def test_live_before_death(self):
        obj = SimObject(size=64, alloc_time_ns=0, death_time_ns=5000)
        assert obj.is_live(4999)
        assert not obj.is_live(5000)
        assert not obj.is_live(5001)

    def test_kill_at(self):
        obj = SimObject(size=64, alloc_time_ns=100)
        obj.kill_at(900)
        assert not obj.is_live(900)
        assert obj.lifetime_ns() == 800

    def test_cannot_die_before_birth(self):
        obj = SimObject(size=64, alloc_time_ns=1000)
        with pytest.raises(ValueError):
            obj.kill_at(999)

    @given(
        alloc=st.integers(min_value=0, max_value=10**9),
        extra=st.integers(min_value=0, max_value=10**9),
    )
    def test_lifetime_is_death_minus_alloc(self, alloc, extra):
        obj = SimObject(size=1, alloc_time_ns=alloc, death_time_ns=alloc + extra)
        assert obj.lifetime_ns() == extra


class TestAging:
    def test_grow_older(self):
        obj = SimObject(size=64, alloc_time_ns=0)
        for expected in range(1, MAX_AGE + 1):
            obj.grow_older()
            assert obj.age == expected

    def test_age_saturates(self):
        obj = SimObject(size=64, alloc_time_ns=0)
        for _ in range(MAX_AGE + 10):
            obj.grow_older()
        assert obj.age == MAX_AGE

    def test_aging_preserves_context(self):
        obj = SimObject(size=64, alloc_time_ns=0, context=0x0042_0007)
        obj.grow_older()
        assert obj.context == 0x0042_0007


class TestBiasLocking:
    def test_bias_clobbers_context(self):
        obj = SimObject(size=64, alloc_time_ns=0, context=0x0042_0007)
        obj.bias_lock(0x7F00_1100)
        assert obj.biased_locked
        assert obj.context == 0x7F00_1100

    def test_unbiased_by_default(self):
        assert not SimObject(size=64, alloc_time_ns=0).biased_locked

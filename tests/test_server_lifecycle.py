"""Stateful session-lifecycle properties for the fleet server.

A Hypothesis :class:`RuleBasedStateMachine` drives the
:class:`~repro.server.sessions.SessionManager` through arbitrary
interleavings of create / touch / job / step / close / double-close /
clock-advance / reap against a shadow model, checking after every rule:

* the registry exactly matches the model (no leaked, no lost sessions);
* every counter is monotonic and ``created == active + closed + reaped``;
* session sequence numbers strictly increase and are never reused;
* closing an unknown or already-closed session is a no-op, never an
  error;
* reaping removes exactly the sessions idle past their timeout — time
  comes from an injected fake clock, so nothing here waits on (or can
  be flaked by) real time.

A seeded random-walk soak then drives one manager through well over the
required 200 lifecycle steps and asserts the registry drains to zero.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.server.sessions import SessionManager

WORKLOADS = ("lucene", "graphchi-cc", "feature-gen")
COLLECTORS = ("g1", "rolp")


class FakeClock:
    def __init__(self) -> None:
        self.now = 1_000.0

    def __call__(self) -> float:
        return self.now


class SessionLifecycle(RuleBasedStateMachine):
    """Registry vs. shadow model under arbitrary rule interleavings."""

    @initialize(idle_timeout=st.floats(min_value=1.0, max_value=60.0))
    def setup(self, idle_timeout):
        self.clock = FakeClock()
        self.manager = SessionManager(
            clock=self.clock, idle_timeout_s=idle_timeout
        )
        self.model = {}  # sid -> {"last_used": float, "timeout": float}
        self.closed_ids = set()
        self.last_seq = 0
        self.last_stats = self.manager.snapshot()

    # ------------------------------------------------------------------ rules

    @rule(
        workload=st.sampled_from(WORKLOADS),
        collector=st.sampled_from(COLLECTORS),
        timeout=st.one_of(st.none(), st.floats(min_value=1.0, max_value=30.0)),
    )
    def create(self, workload, collector, timeout):
        session = self.manager.create(
            workload, collector, idle_timeout_s=timeout
        )
        assert session.seq > self.last_seq, "sequence numbers must increase"
        assert session.id not in self.model
        assert session.id not in self.closed_ids, "ids must never be reused"
        assert len(session.trace_id) == 16
        self.last_seq = session.seq
        self.model[session.id] = {
            "last_used": self.clock.now,
            "timeout": session.idle_timeout_s,
        }

    @rule(data=st.data())
    def touch_live(self, data):
        if not self.model:
            return
        sid = data.draw(st.sampled_from(sorted(self.model)))
        assert self.manager.touch(sid) is not None
        self.model[sid]["last_used"] = self.clock.now

    @rule(data=st.data())
    def job_and_step(self, data):
        if not self.model:
            return
        sid = data.draw(st.sampled_from(sorted(self.model)))
        session = self.manager.get(sid)
        before_steps = session.steps
        assert self.manager.next_step(session) == before_steps
        self.manager.note_job(session, cell_key="cell(%s)" % sid, trace_id="0" * 16)
        assert session.steps == before_steps + 1
        self.model[sid]["last_used"] = self.clock.now

    @rule(data=st.data())
    def close_live(self, data):
        if not self.model:
            return
        sid = data.draw(st.sampled_from(sorted(self.model)))
        assert self.manager.close(sid) is not None
        del self.model[sid]
        self.closed_ids.add(sid)

    @rule(data=st.data())
    def close_absent_is_noop(self, data):
        stale = sorted(self.closed_ids)
        sid = data.draw(
            st.one_of(
                st.just("s-999999"),
                st.sampled_from(stale) if stale else st.just("s-000000"),
            )
        )
        before = self.manager.snapshot()
        assert self.manager.close(sid) is None  # idempotent, never raises
        after = self.manager.snapshot()
        assert after == before, "double-close must not move any counter"

    @rule(delta=st.floats(min_value=0.0, max_value=120.0))
    def advance_clock(self, delta):
        self.clock.now += delta

    @rule()
    def reap(self):
        now = self.clock.now
        expected = sorted(
            sid
            for sid, entry in self.model.items()
            if now - entry["last_used"] > entry["timeout"]
        )
        assert self.manager.reap() == expected
        for sid in expected:
            del self.model[sid]
            self.closed_ids.add(sid)

    # ------------------------------------------------------------- invariants

    @invariant()
    def registry_matches_model(self):
        if not hasattr(self, "manager"):
            return
        assert self.manager.ids() == sorted(self.model)
        assert self.manager.active_count == len(self.model)

    @invariant()
    def counters_monotonic_and_balanced(self):
        if not hasattr(self, "manager"):
            return
        stats = self.manager.snapshot()
        for name in ("created", "closed", "reaped", "jobs", "steps"):
            assert stats[name] >= self.last_stats[name], name
        assert (
            stats["created"]
            == stats["active"] + stats["closed"] + stats["reaped"]
        )
        self.last_stats = stats


TestSessionLifecycle = SessionLifecycle.TestCase
TestSessionLifecycle.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class TestRandomWalkSoak:
    def test_400_step_walk_leaks_nothing(self):
        """Seeded long walk (well past the 200-step acceptance floor):
        after closing every survivor, the registry must be empty and the
        books must balance exactly."""
        clock = FakeClock()
        manager = SessionManager(clock=clock, idle_timeout_s=30.0)
        rng = random.Random(424242)
        live = []
        steps = 0
        for _ in range(400):
            steps += 1
            roll = rng.random()
            if roll < 0.35 or not live:
                session = manager.create(
                    rng.choice(WORKLOADS), rng.choice(COLLECTORS)
                )
                live.append(session.id)
            elif roll < 0.55:
                sid = rng.choice(live)
                session = manager.get(sid)
                manager.next_step(session)
            elif roll < 0.70:
                sid = live.pop(rng.randrange(len(live)))
                assert manager.close(sid) is not None
            elif roll < 0.85:
                clock.now += rng.uniform(0.0, 20.0)
            else:
                reaped = manager.reap()
                live = [sid for sid in live if sid not in set(reaped)]
        assert steps >= 200
        for sid in list(live):
            assert manager.close(sid) is not None
        stats = manager.snapshot()
        assert stats["active"] == 0, "leaked sessions after full drain"
        assert manager.ids() == []
        assert stats["created"] == stats["closed"] + stats["reaped"]
        assert stats["created"] >= 100  # the walk really created load

    def test_idle_reaping_is_exact_on_the_boundary(self):
        clock = FakeClock()
        manager = SessionManager(clock=clock, idle_timeout_s=10.0)
        early = manager.create("lucene", "g1")
        clock.now += 5.0
        late = manager.create("lucene", "rolp")
        clock.now += 5.0  # early is exactly at its timeout: NOT expired
        assert manager.reap() == []
        clock.now += 0.5  # now early is past it, late is not
        assert manager.reap() == [early.id]
        assert manager.ids() == [late.id]
        assert manager.snapshot()["reaped"] == 1

    def test_touch_defers_reaping(self):
        clock = FakeClock()
        manager = SessionManager(clock=clock, idle_timeout_s=10.0)
        session = manager.create("lucene", "g1")
        clock.now += 9.0
        manager.touch(session.id)
        clock.now += 9.0
        assert manager.reap() == []  # touched 9s ago, timeout 10s
        clock.now += 2.0
        assert manager.reap() == [session.id]

"""Differential equivalence suite for the hot-path optimisations.

The fast paths (:mod:`repro.fastpath`) are pure reimplementations: with
them enabled or disabled, every figure/table cell and every perf kernel
must produce byte-identical results.  Three layers pin that down:

* each perf kernel's fingerprint (counters, clock totals, OLD-table
  checksums, stack states) matches between modes,
* the rendered ``table1``/``fig6`` artifacts (stdout and ``--json-dir``
  JSON) match between modes,
* both modes survive a level-2 invariant verification
  (``InvariantViolation``-free), and verification does not change the
  kernel fingerprints.
"""

import contextlib
import json

import pytest

from repro.analysis import set_default_verify_level
from repro.bench import perf
from repro.bench.cli import main
from repro.fastpath import set_fast_paths

SEED = 20260805


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.02")
    monkeypatch.setenv("ROLP_BENCH_CACHE_DIR", str(tmp_path / "cell-cache"))


@contextlib.contextmanager
def fast_mode(enabled):
    previous = set_fast_paths(enabled)
    try:
        yield
    finally:
        set_fast_paths(previous)


@contextlib.contextmanager
def verify_level(level):
    set_default_verify_level(level)
    try:
        yield
    finally:
        set_default_verify_level(0)


def fingerprint_bytes(result):
    """The fingerprint serialized the way BENCH_5.json stores it —
    equality must hold at the byte level, not merely ``==``."""
    return json.dumps(result["fingerprint"], sort_keys=True).encode()


def rendered(capsys):
    """Stdout minus the output-path echo lines (the only lines allowed
    to differ between runs: they name run-specific tmp directories)."""
    out = capsys.readouterr().out
    return "".join(
        line
        for line in out.splitlines(keepends=True)
        if " written to " not in line
    )


class TestKernelEquivalence:
    @pytest.mark.parametrize("kernel", perf.PERF_KERNELS)
    def test_fingerprints_byte_identical(self, kernel):
        ops = perf.kernel_ops(kernel)
        reference = perf.run_kernel(kernel, SEED, ops, fast=False)
        fast = perf.run_kernel(kernel, SEED, ops, fast=True)
        assert fingerprint_bytes(reference) == fingerprint_bytes(fast)
        # both modes performed the same number of operations
        assert reference["ops"] == fast["ops"] > 0

    @pytest.mark.parametrize("kernel", perf.PERF_KERNELS)
    def test_fingerprints_stable_under_level2_verification(self, kernel):
        """Level-2 verification raises InvariantViolation on any heap or
        lock-discipline breakage; a clean run proves the optimised paths
        keep every invariant, and the fingerprint proves verification
        itself perturbs nothing."""
        ops = perf.kernel_ops(kernel)
        unverified = perf.run_kernel(kernel, SEED, ops, fast=True)
        with verify_level(2):
            verified_fast = perf.run_kernel(kernel, SEED, ops, fast=True)
            verified_reference = perf.run_kernel(kernel, SEED, ops, fast=False)
        assert fingerprint_bytes(verified_fast) == fingerprint_bytes(unverified)
        assert fingerprint_bytes(verified_reference) == fingerprint_bytes(unverified)


class TestArtifactEquivalence:
    def run_cli(self, tmp_path, capsys, tag, argv, enabled):
        json_dir = tmp_path / tag
        with fast_mode(enabled):
            assert main(argv + ["--no-cache", "--json-dir", str(json_dir)]) == 0
        payloads = sorted(json_dir.glob("*.json"))
        assert payloads, "no JSON artifact written"
        return payloads[0].read_bytes(), rendered(capsys)

    def test_table1_byte_identical_across_modes(self, tmp_path, capsys):
        argv = ["table1", "--workloads", "lucene"]
        slow_json, slow_text = self.run_cli(tmp_path, capsys, "ref", argv, False)
        fast_json, fast_text = self.run_cli(tmp_path, capsys, "fast", argv, True)
        assert fast_json == slow_json
        assert fast_text == slow_text
        assert "Table 1" in fast_text

    def test_fig6_byte_identical_across_modes(self, tmp_path, capsys):
        argv = ["fig6", "--benchmarks", "avrora"]
        slow_json, slow_text = self.run_cli(tmp_path, capsys, "ref", argv, False)
        fast_json, fast_text = self.run_cli(tmp_path, capsys, "fast", argv, True)
        assert fast_json == slow_json
        assert fast_text == slow_text
        assert "Figure 6" in fast_text


class TestVerifiedModes:
    @pytest.mark.parametrize("enabled", [False, True], ids=["reference", "fast"])
    def test_fig6_level2_verify_clean(self, capsys, enabled):
        with fast_mode(enabled):
            assert main(["fig6", "--benchmarks", "avrora", "--verify"]) == 0
        assert "[verify] level 2: all invariant checks passed" in capsys.readouterr().err

    @pytest.mark.parametrize("enabled", [False, True], ids=["reference", "fast"])
    def test_table1_level2_verify_clean(self, capsys, enabled):
        with fast_mode(enabled):
            assert main(["table1", "--workloads", "lucene", "--verify"]) == 0
        assert "[verify] level 2: all invariant checks passed" in capsys.readouterr().err

"""Differential equivalence suite for the execution backends.

The fast and compiled backends (:mod:`repro.fastpath`) are pure
reimplementations: under any of ``reference``/``fast``/``compiled``,
every figure/table cell and every perf kernel must produce byte-identical
results.  Three layers pin that down:

* each perf kernel's fingerprint (counters, clock totals, OLD-table
  checksums, stack states) matches across all backends,
* the rendered ``table1``/``fig6`` artifacts (stdout and ``--json-dir``
  JSON) match across all backends,
* every backend survives a level-2 invariant verification
  (``InvariantViolation``-free), and verification does not change the
  kernel fingerprints,
* the hostile demographies (the adversarial fuzz workload and the
  trace-calibrated replay) fingerprint byte-identically across all
  backends — equivalence must hold under antagonistic allocation
  patterns, not just the paper's friendly workloads.
"""

import contextlib
import json

import pytest

from repro.analysis import set_default_verify_level
from repro.bench import fuzz, perf
from repro.bench.cli import main
from repro.fastpath import BACKENDS, set_backend

SEED = 20260805


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.02")
    monkeypatch.setenv("ROLP_BENCH_CACHE_DIR", str(tmp_path / "cell-cache"))


@contextlib.contextmanager
def backend_mode(name):
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


@contextlib.contextmanager
def verify_level(level):
    set_default_verify_level(level)
    try:
        yield
    finally:
        set_default_verify_level(0)


def fingerprint_bytes(result):
    """The fingerprint serialized the way BENCH_6.json stores it —
    equality must hold at the byte level, not merely ``==``."""
    return json.dumps(result["fingerprint"], sort_keys=True).encode()


def rendered(capsys):
    """Stdout minus the output-path echo lines (the only lines allowed
    to differ between runs: they name run-specific tmp directories)."""
    out = capsys.readouterr().out
    return "".join(
        line
        for line in out.splitlines(keepends=True)
        if " written to " not in line
    )


class TestKernelEquivalence:
    @pytest.mark.parametrize("kernel", perf.PERF_KERNELS)
    def test_fingerprints_byte_identical(self, kernel):
        ops = perf.kernel_ops(kernel)
        results = {
            name: perf.run_kernel(kernel, SEED, ops, name) for name in BACKENDS
        }
        reference = results["reference"]
        for name in BACKENDS:
            assert fingerprint_bytes(results[name]) == fingerprint_bytes(
                reference
            ), name
            # every backend performed the same number of operations
            assert results[name]["ops"] == reference["ops"] > 0

    @pytest.mark.parametrize("kernel", perf.PERF_KERNELS)
    def test_fingerprints_stable_under_level2_verification(self, kernel):
        """Level-2 verification raises InvariantViolation on any heap or
        lock-discipline breakage; a clean run proves the optimised
        backends keep every invariant, and the fingerprint proves
        verification itself perturbs nothing."""
        ops = perf.kernel_ops(kernel)
        unverified = perf.run_kernel(kernel, SEED, ops, "compiled")
        with verify_level(2):
            for name in BACKENDS:
                verified = perf.run_kernel(kernel, SEED, ops, name)
                assert fingerprint_bytes(verified) == fingerprint_bytes(
                    unverified
                ), name

    def test_repeat_reports_median_and_cv(self):
        result = perf.run_kernel("header", SEED, 2_000, "fast", repeat=3)
        assert result["repeat"] == 3
        assert len(result["ns_per_op_runs"]) == 3
        assert result["ns_per_op"] == sorted(result["ns_per_op_runs"])[1]
        assert result["cv"] >= 0.0


class TestHostileDemographyEquivalence:
    """The adversarial and trace-calibrated workloads are built to be
    hostile (context-collision pressure, lifetime oscillation, bursts);
    the backends must still agree byte-for-byte — including under the
    compressed fuzz inference period and live level-2 verification."""

    # op counts chosen as the smallest that still drive GC cycles
    # through each demography (the traced heap is 96 MB, so it needs
    # more allocation to reach its first collection)
    @pytest.mark.parametrize(
        "workload,ops", [("adversarial", 1_500), ("traced-sample", 2_500)]
    )
    def test_fingerprints_byte_identical(self, workload, ops):
        fingerprints = {
            name: json.dumps(
                fuzz.fingerprint_workload(workload, SEED, ops, name),
                sort_keys=True,
            ).encode()
            for name in BACKENDS
        }
        reference = fingerprints["reference"]
        assert json.loads(reference)["gc_cycles"] > 0, "demography produced no GCs"
        for name in BACKENDS:
            assert fingerprints[name] == reference, name


class TestArtifactEquivalence:
    def run_cli(self, tmp_path, capsys, tag, argv, backend):
        json_dir = tmp_path / tag
        with backend_mode(backend):
            assert main(argv + ["--no-cache", "--json-dir", str(json_dir)]) == 0
        payloads = sorted(json_dir.glob("*.json"))
        assert payloads, "no JSON artifact written"
        return payloads[0].read_bytes(), rendered(capsys)

    def test_table1_byte_identical_across_backends(self, tmp_path, capsys):
        argv = ["table1", "--workloads", "lucene"]
        outputs = {
            name: self.run_cli(tmp_path, capsys, name, argv, name)
            for name in BACKENDS
        }
        for name in BACKENDS:
            assert outputs[name] == outputs["reference"], name
        assert "Table 1" in outputs["reference"][1]

    def test_fig6_byte_identical_across_backends(self, tmp_path, capsys):
        argv = ["fig6", "--benchmarks", "avrora"]
        outputs = {
            name: self.run_cli(tmp_path, capsys, name, argv, name)
            for name in BACKENDS
        }
        for name in BACKENDS:
            assert outputs[name] == outputs["reference"], name
        assert "Figure 6" in outputs["reference"][1]


class TestVerifiedModes:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fig6_level2_verify_clean(self, capsys, backend):
        with backend_mode(backend):
            assert main(["fig6", "--benchmarks", "avrora", "--verify"]) == 0
        assert "[verify] level 2: all invariant checks passed" in capsys.readouterr().err

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_table1_level2_verify_clean(self, capsys, backend):
        with backend_mode(backend):
            assert main(["table1", "--workloads", "lucene", "--verify"]) == 0
        assert "[verify] level 2: all invariant checks passed" in capsys.readouterr().err

"""End-to-end test of ROLP's dynamic-workload adaptation (Section 6).

A phase-changing application: objects from one allocation context are
long-lived in phase 1 (cached aggressively) and mostly short-lived in
phase 2 (only a sparse 2% residue stays cached).  ROLP must
(a) pretenure the context during phase 1, and (b) detect the lifetime
decrease after the shift — the signal is the *fragmentation* its
pretenured regions now exhibit (each region ends up mostly dead around
a few live stragglers, so reclaiming it costs copying) — and walk the
estimate back down.
"""

import pytest

from repro import build_vm
from repro.core import RolpConfig
from repro.core.context import context_site
from repro.runtime import Method


class PhasedApp:
    """Allocations through one site; lifetime mix depends on the phase."""

    def __init__(self, vm):
        self.vm = vm
        self.thread = vm.spawn_thread("phased")
        self.cache = []
        self.cache_limit_bytes = 8 << 20
        self.cache_bytes = 0
        #: fraction of allocations that get cached (phase 1: all)
        self.cache_fraction = 1.0
        self.counter = 0

        def body(ctx):
            self.counter += 1
            keep = (self.counter * 0.6180339887) % 1.0 < self.cache_fraction
            if keep:
                obj = ctx.alloc(1, 2048)  # lifetime decided by eviction
                self.cache.append(obj)
                self.cache_bytes += obj.size
                if self.cache_bytes >= self.cache_limit_bytes:
                    now = ctx.now_ns
                    for cached in self.cache:
                        cached.kill_at(now)
                    self.cache.clear()
                    self.cache_bytes = 0
            else:
                ctx.alloc(1, 2048, lives_ns=20_000)  # dies in-request
            ctx.work(2_000)

        self.method = Method("handle", "app.data.Handler", body, bytecode_size=150)

    def run(self, operations):
        for _ in range(operations):
            self.vm.run(self.thread, self.method)

    def site_id(self):
        return self.method.alloc_sites[1].site_id


@pytest.fixture(scope="module")
def shifted_run():
    vm, profiler = build_vm(
        "rolp",
        heap_mb=24,
        young_regions=2,
        rolp_config=RolpConfig(
            fragmentation_blame_bytes=128 << 10,
            stable_passes_required=1,
        ),
    )
    app = PhasedApp(vm)

    # Phase 1: everything cached (middle-lived) until ROLP pretenures
    # the context.
    app.run(110_000)
    site = app.site_id()

    def current_advice():
        return max(
            (gen for ctx, gen in profiler.advice.items() if context_site(ctx) == site),
            default=0,
        )

    phase1_advice = current_advice()
    phase1_shutdowns = profiler.survivor_controller.shutdowns

    # Phase 2: only a 2% residue stays cached — the same context now
    # produces mostly-dead regions dotted with live stragglers.
    app.cache_fraction = 0.02
    app.run(120_000)
    phase2_advice = current_advice()
    return (
        vm,
        profiler,
        site,
        phase1_advice,
        phase1_shutdowns,
        phase2_advice,
    )


class TestWorkloadShift:
    def test_phase1_pretenures_the_context(self, shifted_run):
        _, _, _, phase1_advice, _, _ = shifted_run
        assert phase1_advice >= 2

    def test_phase1_stabilized(self, shifted_run):
        """Decisions settled and survivor tracking was shut down."""
        _, _, _, _, phase1_shutdowns, _ = shifted_run
        assert phase1_shutdowns >= 1

    def test_phase2_walks_the_estimate_down(self, shifted_run):
        """Section 6: lifetime decreases are detected via fragmentation
        and the estimate is decremented."""
        _, profiler, _, phase1_advice, _, phase2_advice = shifted_run
        assert profiler.advice.decrements >= 1
        assert phase2_advice < phase1_advice

    def test_pauses_recover_after_adaptation(self, shifted_run):
        vm = shifted_run[0]
        pauses = vm.collector.pauses
        end = vm.clock.now_ns
        last_fifth = [p.duration_ms for p in pauses if p.start_ns > end * 0.8]
        assert last_fifth
        # no runaway pauses at the end: the system re-stabilized
        assert max(last_fifth) < 8.0

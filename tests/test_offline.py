"""Tests for the POLM2-style offline profiling mode."""

import pytest

from repro.core.context import encode
from repro.core.offline import OfflineAdviceProfiler, OfflineProfile
from repro.gc import NG2CCollector
from repro.heap import BandwidthModel, RegionHeap, Space
from repro.runtime import JavaVM, Method
from repro.workloads.base import run_workload
from repro.workloads.kvstore import CassandraWorkload


class TestProfile:
    def test_roundtrip_serialization(self):
        profile = OfflineProfile({("a.B.m", 1): 5, ("c.D.n", 3): 9})
        restored = OfflineProfile.loads(profile.dumps())
        assert restored.decisions == profile.decisions

    def test_generation_lookup(self):
        profile = OfflineProfile({("a.B.m", 1): 5})
        assert profile.generation_for_site("a.B.m", 1) == 5
        assert profile.generation_for_site("a.B.m", 2) == 0
        assert profile.generation_for_site("x.Y.z", 1) == 0

    def test_capture_from_rolp_run(self):
        workload = CassandraWorkload.write_intensive(
            memtable_flush_bytes=4 << 20, worker_threads=2
        )
        run_workload(workload, "rolp", operations=45_000, heap_mb=48)
        profile = OfflineProfile.capture(workload.vm.profiler, workload.vm)
        assert len(profile) >= 1
        # keys are stable method names, not run-specific site ids
        for (method_name, bci), gen in profile.decisions.items():
            assert "." in method_name
            assert 1 <= gen <= 15

    def test_capture_collapses_conflicts_conservatively(self):
        """Two contexts of one site -> the lower generation wins."""

        class FakeAdvice:
            @staticmethod
            def items():
                return iter([(encode(5, 10), 8), (encode(5, 20), 3)])

        class FakeProfiler:
            advice = FakeAdvice()

        class FakeSite:
            site_id = 5
            bci = 1

            class method:
                qualified_name = "a.B.m"

        class FakeJit:
            instrumented_alloc_sites = [FakeSite()]

        class FakeVM:
            jit = FakeJit()

        profile = OfflineProfile.capture(FakeProfiler(), FakeVM())
        assert profile.generation_for_site("a.B.m", 1) == 3


class TestOfflineAdviceProfiler:
    def _vm_with_profile(self, profile):
        heap = RegionHeap(16 << 20)
        collector = NG2CCollector(
            heap, BandwidthModel(), young_regions=4, use_profiler_advice=True
        )
        return JavaVM(collector, OfflineAdviceProfiler(profile))

    def test_profiled_site_pretenured_with_zero_tax(self):
        profile = OfflineProfile({("app.data.Factory.mk", 1): 6})
        vm = self._vm_with_profile(profile)
        thread = vm.spawn_thread()
        m = Method("mk", "app.data.Factory", lambda ctx: ctx.alloc(1, 512))
        obj = None
        for _ in range(vm.flags.compile_threshold + 2):
            obj = vm.run(thread, m)
        assert obj.region.space is Space.DYNAMIC
        assert obj.region.gen == 6
        assert vm.profiling_tax_ns == pytest.approx(0.0, abs=1e-6)

    def test_unprofiled_site_stays_young(self):
        profile = OfflineProfile({("app.data.Factory.mk", 1): 6})
        vm = self._vm_with_profile(profile)
        thread = vm.spawn_thread()
        other = Method("other", "app.data.Other", lambda ctx: ctx.alloc(1, 512))
        obj = None
        for _ in range(vm.flags.compile_threshold + 2):
            obj = vm.run(thread, other)
        assert obj.region.space is Space.EDEN

    def test_no_table_updates(self):
        profile = OfflineProfile({("app.data.Factory.mk", 1): 6})
        profiler = OfflineAdviceProfiler(profile)
        assert not profiler.sample_allocation(None)
        assert not profiler.survivor_tracking_enabled()

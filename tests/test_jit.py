"""Tests for the JIT compiler model."""

from repro.runtime.hooks import NullProfiler
from repro.runtime.jit import JitCompiler
from repro.runtime.method import Method


class AcceptAllProfiler(NullProfiler):
    """Instruments everything; records compile notifications."""

    def __init__(self):
        self.compiled = []

    def should_instrument(self, method):
        return True

    def on_method_compiled(self, method):
        self.compiled.append(method)


def method(name="m", size=100, body=None):
    return Method(name, "pkg.Cls", body or (lambda ctx: None), bytecode_size=size)


class TestHotDetection:
    def test_compiles_at_threshold(self):
        jit = JitCompiler(compile_threshold=3)
        profiler = AcceptAllProfiler()
        m = method()
        assert not jit.record_invocation(m, profiler)
        assert not jit.record_invocation(m, profiler)
        assert jit.record_invocation(m, profiler)
        assert m.compiled
        assert profiler.compiled == [m]

    def test_compile_is_idempotent(self):
        jit = JitCompiler(compile_threshold=1)
        profiler = AcceptAllProfiler()
        m = method()
        jit.compile(m, profiler)
        jit.compile(m, profiler)
        assert jit.compiled_methods.count(m) == 1

    def test_null_profiler_blocks_instrumentation(self):
        jit = JitCompiler(compile_threshold=1)
        m = method()
        m.alloc_site(1)
        jit.compile(m, NullProfiler())
        assert m.compiled
        assert not m.instrumented
        assert jit.profiled_alloc_site_count == 0


class TestInstrumentation:
    def test_alloc_sites_get_unique_ids(self):
        jit = JitCompiler()
        profiler = AcceptAllProfiler()
        m = method()
        m.alloc_site(1)
        m.alloc_site(2)
        jit.compile(m, profiler)
        ids = [s.site_id for s in m.alloc_sites.values()]
        assert 0 not in ids
        assert len(set(ids)) == 2

    def test_site_ids_never_zero_and_16_bit(self):
        jit = JitCompiler()
        profiler = AcceptAllProfiler()
        for i in range(5):
            m = method("m%d" % i)
            m.alloc_site(1)
            jit.compile(m, profiler)
        for site in jit.instrumented_alloc_sites:
            assert 1 <= site.site_id <= 0xFFFF

    def test_call_site_increments_nonzero_16bit(self):
        jit = JitCompiler()
        profiler = AcceptAllProfiler()
        m = method()
        site = m.call_site(1)
        site.targets.add(method("big", size=100))
        jit.compile(m, profiler)
        assert 1 <= site.increment <= 0xFFFF
        assert site in jit.instrumented_call_sites

    def test_id_space_exhaustion_yields_unprofiled(self):
        jit = JitCompiler()
        jit._next_site_id = 0xFFFF  # one id left
        profiler = AcceptAllProfiler()
        m = method()
        m.alloc_site(1)
        m.alloc_site(2)
        jit.compile(m, profiler)
        ids = sorted(s.site_id for s in m.alloc_sites.values())
        assert ids[0] == 0  # exhausted
        assert ids[1] == 0xFFFF


class TestInlining:
    def test_small_monomorphic_callee_inlined(self):
        jit = JitCompiler(inline_max_size=35)
        profiler = AcceptAllProfiler()
        m = method()
        site = m.call_site(1)
        site.targets.add(method("tiny", size=20))
        jit.compile(m, profiler)
        assert site.inlined
        assert not site.instrumented

    def test_large_callee_not_inlined(self):
        jit = JitCompiler(inline_max_size=35)
        profiler = AcceptAllProfiler()
        m = method()
        site = m.call_site(1)
        site.targets.add(method("big", size=200))
        jit.compile(m, profiler)
        assert not site.inlined

    def test_polymorphic_site_not_inlined(self):
        jit = JitCompiler(inline_max_size=35)
        profiler = AcceptAllProfiler()
        m = method()
        site = m.call_site(1)
        site.targets.add(method("a", size=10))
        site.targets.add(method("b", size=10))
        jit.compile(m, profiler)
        assert not site.inlined

    def test_unseen_target_not_inlined(self):
        jit = JitCompiler()
        assert not jit.should_inline(method().call_site(1))


class TestLateRegistration:
    def test_late_alloc_site(self):
        jit = JitCompiler(compile_threshold=1)
        profiler = AcceptAllProfiler()
        m = method()
        jit.compile(m, profiler)
        late = m.alloc_site(9)
        jit.register_late_alloc_site(late, profiler)
        assert late.profiled

    def test_late_site_in_uninstrumented_method_ignored(self):
        jit = JitCompiler(compile_threshold=1)
        m = method()
        jit.compile(m, NullProfiler())
        late = m.alloc_site(9)
        jit.register_late_alloc_site(late, NullProfiler())
        assert not late.profiled

    def test_late_call_site(self):
        jit = JitCompiler(compile_threshold=1)
        profiler = AcceptAllProfiler()
        m = method()
        jit.compile(m, profiler)
        site = m.call_site(4)
        site.targets.add(method("big", size=100))
        jit.register_late_call_site(site)
        assert site.instrumented


class TestOSR:
    def test_osr_compiles_eligible_method(self):
        jit = JitCompiler()
        profiler = AcceptAllProfiler()
        m = Method("loopy", "pkg.Cls", lambda ctx: None, osr_eligible=True)
        assert jit.maybe_osr(m, profiler)
        assert m.compiled
        assert jit.osr_events == 1

    def test_osr_ignores_ineligible(self):
        jit = JitCompiler()
        assert not jit.maybe_osr(method(), AcceptAllProfiler())

    def test_osr_noop_once_compiled(self):
        jit = JitCompiler()
        profiler = AcceptAllProfiler()
        m = Method("loopy", "pkg.Cls", lambda ctx: None, osr_eligible=True)
        jit.maybe_osr(m, profiler)
        assert not jit.maybe_osr(m, profiler)
        assert jit.osr_events == 1


class TestDeterminism:
    def test_same_seed_same_increments(self):
        def build(seed):
            jit = JitCompiler(seed=seed)
            profiler = AcceptAllProfiler()
            m = method()
            site = m.call_site(1)
            site.targets.add(method("big", size=100))
            jit.compile(m, profiler)
            return site.increment

        assert build(7) == build(7)

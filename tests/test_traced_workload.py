"""Trace-calibrated demographies: GC-log -> calibration -> workload.

Covers the calibration arithmetic against the canned sample log, the
strict-parse rejection contract (a bad log must not silently calibrate
a wrong demography), registry integration, and determinism of the
replayed workload.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import fuzz
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    all_workload_names,
    big_workload_ops,
    make_big_workload,
)
from repro.metrics.gclog import GcLogParseError, parse_log
from repro.workloads.traced import (
    SAMPLE_GC_LOG,
    TracedWorkload,
    calibrate,
    calibrate_log,
    make_traced_sample,
)

SEED = 20260805


class TestCalibration:
    def test_sample_log_calibrates(self):
        calibration = calibrate_log(SAMPLE_GC_LOG)
        records = parse_log(SAMPLE_GC_LOG)
        assert calibration.pause_count == len(records) == 12
        assert calibration.heap_mb == 96
        assert calibration.live_floor_mb == min(r.heap_after_mb for r in records) == 9
        # 3 of the 12 sample pauses are mixed
        assert calibration.mixed_fraction == pytest.approx(0.25)
        # reclaim fraction is the mean per-pause (before-after)/before
        expected = sum(
            (r.heap_before_mb - r.heap_after_mb) / r.heap_before_mb for r in records
        ) / len(records)
        assert calibration.reclaim_fraction == pytest.approx(expected)
        assert 0.0 < calibration.reclaim_fraction < 1.0
        # growth is measured between consecutive pauses
        expected_growth = sum(
            max(0, later.heap_before_mb - earlier.heap_after_mb)
            for earlier, later in zip(records, records[1:])
        ) / (len(records) - 1)
        assert calibration.alloc_mb_per_cycle == pytest.approx(expected_growth)

    def test_needs_at_least_two_records(self):
        records = parse_log(SAMPLE_GC_LOG)
        with pytest.raises(ValueError):
            calibrate(records[:1])

    def test_malformed_line_is_rejected_not_skipped(self):
        text = SAMPLE_GC_LOG + "\nnot a gc line\n"
        # the lenient parser (non-calibration consumers) still skips
        assert len(parse_log(text)) == 12
        with pytest.raises(GcLogParseError) as excinfo:
            calibrate_log(text)
        assert excinfo.value.reason == "malformed"
        assert excinfo.value.line_number == 13

    def test_out_of_order_log_is_rejected(self):
        lines = SAMPLE_GC_LOG.splitlines()
        reversed_log = "\n".join(lines[::-1])
        with pytest.raises(GcLogParseError) as excinfo:
            calibrate_log(reversed_log)
        assert excinfo.value.reason == "out-of-order"


class TestWorkload:
    def test_registry_exposes_traced_and_adversarial(self):
        names = all_workload_names()
        assert "traced-sample" in names
        assert "adversarial" in names
        # the curated grid is untouched: goldens iterate BIG_WORKLOADS
        assert "traced-sample" not in BIG_WORKLOADS
        assert "adversarial" not in BIG_WORKLOADS
        workload = make_big_workload("traced-sample", seed=SEED)
        assert isinstance(workload, TracedWorkload)
        assert workload.name == "traced-sample"
        assert big_workload_ops("traced-sample") > 0

    def test_demography_follows_calibration(self):
        workload = make_traced_sample(seed=SEED)
        calibration = workload.calibration
        assert workload.heap_mb == calibration.heap_mb
        # resident set sized from the live floor
        assert (
            workload._resident_target
            == (calibration.live_floor_mb << 20) // TracedWorkload.RESIDENT_SIZE
        )
        # survivors live ~2 calibrated GC cycles of allocation volume
        assert workload._survivor_lifetime_bytes == int(
            2 * calibration.alloc_mb_per_cycle * (1 << 20)
        )

    def test_runs_deterministically_with_gc_activity(self):
        outcomes = [
            fuzz.evaluate_registered("traced-sample", SEED, 2_500, "reference")
            for _ in range(2)
        ]
        for outcome in outcomes:
            assert outcome["violation"] is None
            assert outcome["metrics"]["gc_cycles"] > 0
        assert json.dumps(outcomes[0]["fingerprint"], sort_keys=True) == json.dumps(
            outcomes[1]["fingerprint"], sort_keys=True
        )

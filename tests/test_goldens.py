"""Golden snapshot tests: canonical small-scale renderings of Table 1,
Figure 6 and Figure 8 under the default seed at ``ROLP_BENCH_SCALE=0.05``.

Any change to workload simulation, collector behaviour, seed derivation
or the text renderers shows up here as a diff against the checked-in
snapshot — deliberate changes are re-blessed with::

    ROLP_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

and the resulting ``tests/goldens/*.txt`` diffs reviewed like code.
"""

import os
import pathlib

import pytest

from repro.bench.cli import main

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: restricted subsets keep each golden run in single-digit seconds while
#: still covering one workload/benchmark of every simulator family used
GOLDEN_RUNS = {
    "table1": ["table1", "--workloads", "lucene", "graphchi-cc"],
    "fig6": ["fig6", "--benchmarks", "avrora", "lusearch"],
    "fig8": ["fig8", "--workloads", "graphchi-cc"],
}


@pytest.fixture(autouse=True)
def golden_scale(monkeypatch):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.05")


def check_golden(name, rendered):
    path = GOLDEN_DIR / (name + ".txt")
    if os.environ.get("ROLP_UPDATE_GOLDENS") == "1":
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
    assert path.exists(), (
        "golden snapshot %s is missing; generate it with "
        "ROLP_UPDATE_GOLDENS=1" % path
    )
    assert rendered == path.read_text(), (
        "rendering of %s drifted from its golden snapshot; if the change "
        "is deliberate, re-bless with ROLP_UPDATE_GOLDENS=1 and review "
        "the diff" % name
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_RUNS))
def test_rendering_matches_golden(name, capsys):
    assert main(GOLDEN_RUNS[name] + ["--no-cache"]) == 0
    check_golden(name, capsys.readouterr().out)

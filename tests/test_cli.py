"""Tests for the rolp-bench CLI (run at a tiny scale)."""

import pytest

from repro.bench.cli import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.02")


class TestCli:
    def test_table1_restricted(self, capsys):
        assert main(["table1", "--workloads", "lucene"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "lucene" in out

    def test_fig6_restricted(self, capsys):
        assert main(["fig6", "--benchmarks", "avrora"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "avrora" in out

    def test_fig7_restricted(self, capsys):
        assert main(["fig7", "--benchmarks", "luindex"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_fig8_restricted(self, capsys):
        assert main(["fig8", "--workloads", "graphchi-cc"]) == 0
        out = capsys.readouterr().out
        assert "graphchi-cc" in out
        assert "p99.9" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

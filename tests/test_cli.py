"""Tests for the rolp-bench CLI (run at a tiny scale)."""

import json

import pytest

from repro.bench.cli import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.02")
    # every test gets a private (cold) result cache, so telemetry
    # assertions always see fresh simulations and nothing touches cwd
    monkeypatch.setenv("ROLP_BENCH_CACHE_DIR", str(tmp_path / "cell-cache"))


class TestCli:
    def test_table1_restricted(self, capsys):
        assert main(["table1", "--workloads", "lucene"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "lucene" in out

    def test_fig6_restricted(self, capsys):
        assert main(["fig6", "--benchmarks", "avrora"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "avrora" in out

    def test_fig7_restricted(self, capsys):
        assert main(["fig7", "--benchmarks", "luindex"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out

    def test_fig8_restricted(self, capsys):
        assert main(["fig8", "--workloads", "graphchi-cc"]) == 0
        out = capsys.readouterr().out
        assert "graphchi-cc" in out
        assert "p99.9" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestUnknownNames:
    def test_unknown_benchmark_exits_2_with_choices(self, capsys):
        assert main(["fig6", "--benchmarks", "nope"]) == 2
        err = capsys.readouterr().err
        assert "rolp-bench: unknown benchmark nope" in err
        assert "avrora" in err  # the valid choices are listed

    def test_unknown_workload_exits_2_with_choices(self, capsys):
        assert main(["fig8", "--workloads", "nope", "lucene"]) == 2
        err = capsys.readouterr().err
        assert "rolp-bench: unknown workload nope" in err
        assert "lucene" in err

    def test_unknown_collector_exits_2_with_choices(self, capsys):
        assert main(["trace", "--collectors", "shenandoah"]) == 2
        err = capsys.readouterr().err
        assert "rolp-bench: unknown collector shenandoah" in err
        assert "rolp" in err

    def test_nothing_runs_before_validation(self, capsys):
        main(["table1", "--workloads", "nope"])
        out = capsys.readouterr().out
        assert "Table 1" not in out

    def test_unwritable_output_path_fails_fast(self, capsys):
        assert main(["table1", "--trace-out", "/nonexistent_dir/t.json"]) == 2
        captured = capsys.readouterr()
        assert "cannot write" in captured.err
        assert "Table 1" not in captured.out  # nothing ran first


class TestTelemetryOutputs:
    def test_trace_experiment_prints_summary(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "--workloads",
                    "graphchi-cc",
                    "--collectors",
                    "g1",
                    "rolp",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[Trace]" in out
        assert "graphchi-cc" in out
        assert "rolp" in out

    def test_fig8_trace_and_metrics_outputs(self, tmp_path):
        """The acceptance-criterion invocation, at test scale."""
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "fig8",
                    "--workloads",
                    "graphchi-cc",
                    "--trace-out",
                    str(trace_path),
                    "--metrics-out",
                    str(metrics_path),
                ]
            )
            == 0
        )

        trace = json.loads(trace_path.read_text())
        events = trace["traceEvents"]
        # one process track per collector run, each with GC spans and
        # JIT-compile instants
        tracks = {
            e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"
        }
        assert set(tracks) == {
            "graphchi-cc/cms",
            "graphchi-cc/g1",
            "graphchi-cc/ng2c",
            "graphchi-cc/rolp",
        }
        for name, pid in tracks.items():
            gc_spans = [
                e
                for e in events
                if e.get("pid") == pid
                and e["ph"] == "X"
                and e["name"].startswith("gc/")
            ]
            assert gc_spans, "no GC spans for %s" % name
            compiles = [
                e
                for e in events
                if e.get("pid") == pid and e["name"] == "jit/compile"
            ]
            assert compiles, "no jit/compile instants for %s" % name

        doc = json.loads(metrics_path.read_text())
        assert doc["schema"] == "rolp-bench/v1"
        payload = doc["experiments"]["fig8"]
        collectors = payload["workloads"]["graphchi-cc"]["collectors"]
        # registry histogram totals match the figure payload (which is
        # built from the very PauseStudy objects the text rendering uses)
        histogram = doc["metrics"]["gc_pause_ms"]
        total_observed = sum(s["count"] for s in histogram["samples"])
        # the payload counts exclude the warmup pauses the figure
        # discards, so the registry (which sees every pause) dominates
        payload_total = sum(
            c["pause_count"] for c in collectors.values()
        )
        assert total_observed >= payload_total > 0

    def test_json_dir_writes_per_experiment_files(self, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert (
            main(
                [
                    "table1",
                    "--workloads",
                    "lucene",
                    "--json-dir",
                    str(out_dir),
                ]
            )
            == 0
        )
        doc = json.loads((out_dir / "table1.json").read_text())
        assert doc["schema"] == "rolp-bench/v1"
        rows = doc["table1"]["rows"]
        assert rows and rows[0]["workload"] == "lucene"

"""Tests for the simulated clock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.clock import NS_PER_MS, NS_PER_S, SimClock

durations = st.lists(
    st.floats(min_value=0, max_value=1e9, allow_nan=False), max_size=30
)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_custom_start(self):
        assert SimClock(start_ns=500).now_ns == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_ns=-1)

    def test_mutator_advance(self):
        clock = SimClock()
        clock.advance_mutator(1500)
        assert clock.now_ns == 1500
        assert clock.total_mutator_ns == 1500
        assert clock.total_pause_ns == 0

    def test_pause_advance(self):
        clock = SimClock()
        clock.advance_pause(2500)
        assert clock.now_ns == 2500
        assert clock.total_pause_ns == 2500
        assert clock.total_mutator_ns == 0

    def test_time_cannot_go_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_mutator(-1)
        with pytest.raises(ValueError):
            clock.advance_pause(-1)

    def test_unit_conversions(self):
        clock = SimClock()
        clock.advance_mutator(2 * NS_PER_S)
        assert clock.now_s == pytest.approx(2.0)
        assert clock.now_ms == pytest.approx(2000.0)

    def test_fractional_ns_truncated(self):
        clock = SimClock()
        clock.advance_mutator(10.9)
        assert clock.now_ns == 10

    @given(mutator=durations, pauses=durations)
    def test_accounting_identity(self, mutator, pauses):
        clock = SimClock()
        for ns in mutator:
            clock.advance_mutator(ns)
        for ns in pauses:
            clock.advance_pause(ns)
        assert clock.now_ns == clock.total_mutator_ns + clock.total_pause_ns

    @given(steps=durations)
    def test_monotonic(self, steps):
        clock = SimClock()
        previous = 0
        for ns in steps:
            clock.advance_mutator(ns)
            assert clock.now_ns >= previous
            previous = clock.now_ns

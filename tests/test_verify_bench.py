"""Integration tests for ``rolp-bench --verify``.

Three contracts matter here: verification must not change results
(verified and unverified runs of the same cell render byte-identical
output), verified and unverified runs must never share cache entries,
and an invariant violation anywhere in the grid must surface as exit
status 3 with the structured message on stderr.
"""

import re

import pytest

from repro.analysis import InvariantViolation, default_verify_level
from repro.analysis.heap_verifier import HeapVerifier
from repro.bench.cli import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.02")
    monkeypatch.setenv("ROLP_BENCH_CACHE_DIR", str(tmp_path / "cell-cache"))


def runner_stats(err):
    """Parse the ``[runner]`` stderr summary into a dict."""
    match = re.search(
        r"cells: (\d+) \| cache hits: (\d+) \| misses: (\d+) \| "
        r"simulations executed: (\d+)",
        err,
    )
    assert match, "no [runner] summary in stderr:\n%s" % err
    keys = ("cells", "hits", "misses", "simulations")
    return dict(zip(keys, map(int, match.groups())))


class TestVerifiedRuns:
    def test_table1_verified_passes_clean(self, capsys):
        assert main(["table1", "--workloads", "lucene", "--verify"]) == 0
        captured = capsys.readouterr()
        assert "Table 1" in captured.out
        assert "[verify] level 2: all invariant checks passed" in captured.err

    def test_fig6_verified_passes_clean(self, capsys):
        assert main(["fig6", "--benchmarks", "avrora", "--verify"]) == 0
        captured = capsys.readouterr()
        assert "Figure 6" in captured.out
        assert "[verify] level 2" in captured.err

    def test_heap_only_level(self, capsys):
        assert main(["table1", "--workloads", "lucene", "--verify", "1"]) == 0
        assert "[verify] level 1" in capsys.readouterr().err

    def test_unverified_run_prints_no_verify_line(self, capsys):
        assert main(["table1", "--workloads", "lucene"]) == 0
        assert "[verify]" not in capsys.readouterr().err

    def test_ambient_level_restored_after_run(self):
        assert default_verify_level() == 0
        assert main(["table1", "--workloads", "lucene", "--verify"]) == 0
        assert default_verify_level() == 0


class TestResultIdentity:
    def test_verified_output_is_byte_identical(self, capsys):
        """Verification observes; it must never perturb results."""
        args = ["table1", "--workloads", "lucene", "--no-cache"]
        assert main(args) == 0
        baseline = capsys.readouterr().out
        assert main(args + ["--verify"]) == 0
        verified = capsys.readouterr().out
        assert verified == baseline


class TestCacheSeparation:
    def test_verified_run_never_reads_unverified_entries(self, capsys):
        args = ["table1", "--workloads", "lucene"]
        assert main(args) == 0
        cold = runner_stats(capsys.readouterr().err)
        assert cold.pop("hits") == 0 and cold["simulations"] > 0

        # same grid, verification on: every cell must simulate afresh
        assert main(args + ["--verify"]) == 0
        verified_cold = runner_stats(capsys.readouterr().err)
        assert verified_cold.pop("hits") == 0
        assert verified_cold["simulations"] == cold["simulations"]

        # and each mode hits only its own entries on re-run
        assert main(args + ["--verify"]) == 0
        assert runner_stats(capsys.readouterr().err)["simulations"] == 0
        assert main(args) == 0
        assert runner_stats(capsys.readouterr().err)["simulations"] == 0

    def test_verify_levels_do_not_share_entries(self, capsys):
        args = ["table1", "--workloads", "lucene"]
        assert main(args + ["--verify", "1"]) == 0
        first = runner_stats(capsys.readouterr().err)
        assert main(args + ["--verify", "2"]) == 0
        second = runner_stats(capsys.readouterr().err)
        assert second["hits"] == 0
        assert second["simulations"] == first["simulations"]


class TestViolationExitPath:
    def test_violation_exits_3_with_structured_message(self, capsys, monkeypatch):
        def explode(self, heap, collector=None, biased=None, phase="manual"):
            raise InvariantViolation(
                "heap/region-used", "planted corruption", region=7, phase=phase
            )

        monkeypatch.setattr(HeapVerifier, "verify", explode)
        rc = main(["table1", "--workloads", "lucene", "--verify", "--no-cache"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "rolp-bench: invariant violation" in err
        assert "[heap/region-used] planted corruption" in err
        assert "region=7" in err

    def test_violation_restores_ambient_level(self, capsys, monkeypatch):
        monkeypatch.setattr(
            HeapVerifier,
            "verify",
            lambda self, *a, **k: (_ for _ in ()).throw(
                InvariantViolation("heap/committed", "planted")
            ),
        )
        assert (
            main(["table1", "--workloads", "lucene", "--verify", "--no-cache"])
            == 3
        )
        assert default_verify_level() == 0

    def test_unverified_run_is_immune_to_the_fault(self, capsys, monkeypatch):
        """With verification off the walker never runs, so the planted
        fault cannot fire — proof the default path takes no verify cost."""
        monkeypatch.setattr(
            HeapVerifier,
            "verify",
            lambda self, *a, **k: (_ for _ in ()).throw(
                InvariantViolation("heap/committed", "planted")
            ),
        )
        assert main(["table1", "--workloads", "lucene", "--no-cache"]) == 0

"""Tests for the benchmark harness itself (registry, config, renderers)
at tiny scales — the full-size assertions live in benchmarks/."""

import os

import pytest

from repro.bench.config import bench_scale, scaled_ops
from repro.bench.figures import (
    FIG6_MODES,
    figure6,
    figure7,
    render_figure6,
    render_figure7,
)
from repro.bench.tables import (
    Table1Row,
    Table2Row,
    render_table1,
    render_table2,
)
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    make_big_workload,
    run_big_workload,
)
from repro.workloads.dacapo import get_spec


class TestConfig:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("ROLP_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        assert scaled_ops(100_000) == 50_000

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_floor_keeps_runs_meaningful(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.0001")
        assert scaled_ops(100_000) >= 2_000


class TestRegistry:
    def test_six_workloads(self):
        assert set(BIG_WORKLOADS) == {
            "cassandra-wi",
            "cassandra-rw",
            "cassandra-ri",
            "lucene",
            "graphchi-cc",
            "graphchi-pr",
        }

    def test_make_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_big_workload("hbase")

    def test_run_returns_result_and_workload(self):
        result, workload = run_big_workload("lucene", "g1", operations=500)
        assert result.workload == "lucene"
        assert workload.vm is not None


class TestRenderers:
    def test_table1_renders(self):
        rows = [Table1Row("cassandra-wi", 1.0, 2.0, 2, 5, 8.0)]
        text = render_table1(rows)
        assert "cassandra-wi" in text and "OLD MB" in text

    def test_table2_renders(self):
        rows = [Table2Row("pmd", 32, 100, 50, 6, 1.2)]
        text = render_table2(rows)
        assert "pmd" in text and "CF #" in text


class TestFigureHarness:
    @pytest.fixture(scope="class")
    def tiny_fig6(self):
        return figure6(specs=[get_spec("avrora")])

    def test_figure6_modes_present(self, tiny_fig6):
        assert set(tiny_fig6["avrora"]) == set(FIG6_MODES)

    def test_figure6_renders(self, tiny_fig6):
        text = render_figure6(tiny_fig6)
        assert "avrora" in text and "slow-call-profiling" in text

    def test_figure7_inverse_p(self):
        series = figure7(specs=[get_spec("avrora")], p_fractions=(0.1, 0.2))
        row = series["avrora"]
        assert row[0.1] >= row[0.2]
        assert "avrora" in render_figure7(series)

"""Tests for the benchmark harness itself (registry, config, renderers)
at tiny scales — the full-size assertions live in benchmarks/."""

import os

import pytest

from repro.bench import config
from repro.bench.config import bench_scale, scaled_ops
from repro.bench.figures import (
    FIG6_MODES,
    figure6,
    figure7,
    render_figure6,
    render_figure7,
)
from repro.bench.tables import (
    Table1Row,
    Table2Row,
    render_table1,
    render_table2,
)
from repro.bench.workload_registry import (
    BIG_WORKLOADS,
    make_big_workload,
    run_big_workload,
)
from repro.workloads.dacapo import get_spec


class TestConfig:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("ROLP_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
        assert scaled_ops(100_000) == 50_000

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_floor_keeps_runs_meaningful(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.0001")
        assert scaled_ops(100_000) >= 2_000


class TestScaleWarnings:
    """Invalid ROLP_BENCH_SCALE values warn instead of silently running
    a full-scale grid (a typo like ``O.2`` used to cost hours)."""

    @pytest.fixture(autouse=True)
    def fresh_warning_state(self, monkeypatch):
        monkeypatch.setattr(config, "_warned_values", set())

    def test_garbage_warns_and_falls_back_to_one(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "O.2")
        with pytest.warns(RuntimeWarning, match="not a number"):
            assert bench_scale() == 1.0

    def test_negative_warns_and_falls_back_to_one(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "-0.5")
        with pytest.warns(RuntimeWarning, match="must be positive"):
            assert bench_scale() == 1.0

    def test_zero_warns_and_falls_back_to_one(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0")
        with pytest.warns(RuntimeWarning, match="must be positive"):
            assert bench_scale() == 1.0

    def test_nan_warns_and_falls_back_to_one(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "nan")
        with pytest.warns(RuntimeWarning, match="must be positive"):
            assert bench_scale() == 1.0

    def test_sub_floor_warns_and_clamps(self, monkeypatch):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.0001")
        with pytest.warns(RuntimeWarning, match="below the 0.01 floor"):
            assert bench_scale() == config.MIN_SCALE

    def test_each_value_warns_exactly_once(self, monkeypatch, recwarn):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "bogus")
        assert bench_scale() == 1.0
        assert len(recwarn.list) == 1
        assert bench_scale() == 1.0  # same bad value: fallback, no new warning
        assert len(recwarn.list) == 1
        monkeypatch.setenv("ROLP_BENCH_SCALE", "also-bogus")
        bench_scale()  # a *different* bad value warns again
        assert len(recwarn.list) == 2

    def test_valid_values_never_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.25")
        assert bench_scale() == 0.25
        assert not recwarn.list


class TestRegistry:
    def test_six_workloads(self):
        assert set(BIG_WORKLOADS) == {
            "cassandra-wi",
            "cassandra-rw",
            "cassandra-ri",
            "lucene",
            "graphchi-cc",
            "graphchi-pr",
        }

    def test_make_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_big_workload("hbase")

    def test_run_returns_result_and_workload(self):
        result, workload = run_big_workload("lucene", "g1", operations=500)
        assert result.workload == "lucene"
        assert workload.vm is not None


class TestRenderers:
    def test_table1_renders(self):
        rows = [Table1Row("cassandra-wi", 1.0, 2.0, 2, 5, 8.0)]
        text = render_table1(rows)
        assert "cassandra-wi" in text and "OLD MB" in text

    def test_table2_renders(self):
        rows = [Table2Row("pmd", 32, 100, 50, 6, 1.2)]
        text = render_table2(rows)
        assert "pmd" in text and "CF #" in text


class TestFigureHarness:
    @pytest.fixture(scope="class")
    def tiny_fig6(self):
        return figure6(specs=[get_spec("avrora")])

    def test_figure6_modes_present(self, tiny_fig6):
        assert set(tiny_fig6["avrora"]) == set(FIG6_MODES)

    def test_figure6_renders(self, tiny_fig6):
        text = render_figure6(tiny_fig6)
        assert "avrora" in text and "slow-call-profiling" in text

    def test_figure7_inverse_p(self):
        series = figure7(specs=[get_spec("avrora")], p_fractions=(0.1, 0.2))
        row = series["avrora"]
        assert row[0.1] >= row[0.2]
        assert "avrora" in render_figure7(series)

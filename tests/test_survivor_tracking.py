"""Tests for the survivor-tracking on/off controller (Section 7.4)."""

import pytest

from repro.core.survivor_tracking import SurvivorTrackingController


class TestShutdown:
    def test_starts_enabled(self):
        assert SurvivorTrackingController().enabled

    def test_no_shutdown_without_decisions(self):
        controller = SurvivorTrackingController(stable_passes_required=1)
        for _ in range(10):
            controller.on_inference(decisions_changed=False, have_decisions=False)
        assert controller.enabled

    def test_shutdown_after_stable_streak(self):
        controller = SurvivorTrackingController(stable_passes_required=3)
        controller.observe_pause(1e6)
        for i in range(3):
            controller.on_inference(decisions_changed=False, have_decisions=True)
        assert not controller.enabled
        assert controller.shutdowns == 1
        assert controller.baseline_pause_ns == pytest.approx(1e6)

    def test_change_resets_streak(self):
        controller = SurvivorTrackingController(stable_passes_required=2)
        controller.on_inference(False, True)
        controller.on_inference(True, True)    # streak broken
        controller.on_inference(False, True)
        assert controller.enabled
        controller.on_inference(False, True)
        assert not controller.enabled


class TestReactivation:
    def _shut_down(self, threshold=0.10):
        controller = SurvivorTrackingController(
            regression_threshold=threshold, window=4, stable_passes_required=1
        )
        for _ in range(4):
            controller.observe_pause(1e6)
        controller.on_inference(decisions_changed=False, have_decisions=True)
        assert not controller.enabled
        return controller

    def test_pause_regression_reactivates(self):
        controller = self._shut_down()
        for _ in range(4):
            controller.observe_pause(1.5e6)  # 50% regression
        assert controller.enabled
        assert controller.reactivations == 1

    def test_small_increase_does_not_reactivate(self):
        controller = self._shut_down()
        for _ in range(4):
            controller.observe_pause(1.05e6)  # only 5%
        assert not controller.enabled

    def test_decision_change_reactivates(self):
        controller = self._shut_down()
        controller.on_inference(decisions_changed=True, have_decisions=True)
        assert controller.enabled


class TestValidation:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SurvivorTrackingController(regression_threshold=0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SurvivorTrackingController(window=0)

    def test_invalid_streak(self):
        with pytest.raises(ValueError):
            SurvivorTrackingController(stable_passes_required=0)

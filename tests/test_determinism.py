"""Reproducibility guarantees: identical seeds produce bit-identical
simulations — the property that makes every benchmark in this repo
re-runnable and every bug report replayable."""

import pytest

from repro.workloads.base import run_workload
from repro.workloads.dacapo import make_dacapo
from repro.workloads.graph import GraphChiWorkload
from repro.workloads.search import LuceneWorkload


def fingerprint(result, workload):
    vm = workload.vm
    items = (
        result.gc_cycles,
        result.elapsed_ms,
        result.max_memory_bytes,
        vm.bytes_allocated,
        tuple(round(p.duration_ns) for p in result.pauses[:50]),
    )
    if result.profiler_summary is not None:
        items += (
            vm.profiler.resolver.conflicts_seen,
            tuple(sorted(vm.profiler.advice.items())),
        )
    return items


class TestDeterminism:
    @pytest.mark.parametrize("collector", ["g1", "cms", "zgc", "ng2c", "rolp"])
    def test_lucene_bit_identical(self, collector):
        def run():
            workload = LuceneWorkload(
                ram_buffer_bytes=512 << 10, worker_threads=2, seed=99
            )
            result = run_workload(workload, collector, operations=4000, heap_mb=32)
            return fingerprint(result, workload)

        assert run() == run()

    def test_graphchi_bit_identical(self):
        def run():
            workload = GraphChiWorkload(
                "pr", vertices=20_000, shards=3, subintervals_per_shard=8, seed=7
            )
            result = run_workload(workload, "rolp", operations=2000, heap_mb=32)
            return fingerprint(result, workload)

        assert run() == run()

    def test_dacapo_bit_identical(self):
        def run():
            workload = make_dacapo("lusearch", seed=3)
            result = run_workload(workload, "rolp", operations=1500)
            return fingerprint(result, workload)

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            workload = LuceneWorkload(
                ram_buffer_bytes=512 << 10, worker_threads=2, seed=seed
            )
            result = run_workload(workload, "g1", operations=4000, heap_mb=32)
            return fingerprint(result, workload)

        assert run(1) != run(2)

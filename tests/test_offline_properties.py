"""Property tests for the offline-profile serialization format."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.offline import OfflineProfile

site_keys = st.tuples(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="._"),
        min_size=1,
        max_size=40,
    ),
    st.integers(min_value=0, max_value=200),
)
profiles = st.dictionaries(site_keys, st.integers(min_value=1, max_value=15), max_size=40)


class TestSerializationProperties:
    @given(decisions=profiles)
    def test_roundtrip_identity(self, decisions):
        profile = OfflineProfile(decisions)
        assert OfflineProfile.loads(profile.dumps()).decisions == decisions

    @given(decisions=profiles)
    def test_dumps_deterministic(self, decisions):
        a = OfflineProfile(decisions)
        b = OfflineProfile(dict(reversed(list(decisions.items()))))
        assert a.dumps() == b.dumps()  # sorted, insertion-order independent

    @given(decisions=profiles)
    def test_length(self, decisions):
        assert len(OfflineProfile(decisions)) == len(decisions)

    @given(decisions=profiles)
    def test_lookup_consistency(self, decisions):
        profile = OfflineProfile(decisions)
        for (method, bci), gen in decisions.items():
            assert profile.generation_for_site(method, bci) == gen

    def test_empty_profile(self):
        profile = OfflineProfile()
        assert len(profile) == 0
        assert OfflineProfile.loads(profile.dumps()).decisions == {}

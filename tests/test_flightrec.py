"""Flight recorder tests: bounded memory, retention policy, sampling,
zero-cost null path, exporters, and on/off simulation byte-identity."""

import json

import pytest

from repro import build_vm
from repro.bench.workload_registry import run_big_workload
from repro.runtime.clock import SimClock
from repro.telemetry import (
    FLIGHT_RECORDER_DEFAULT_CAPACITY,
    FlightRecorder,
    NullTracer,
    RetentionPolicy,
    Telemetry,
    TelemetrySession,
    capacity_from_env,
    resolve_capacity,
)
from repro.telemetry.flightrec import _Ring


class TestRing:
    def test_never_exceeds_capacity(self):
        ring = _Ring(8)
        for i in range(100):
            ring.append((i,))
        assert len(ring) == 8
        assert ring.evicted == 92
        assert ring.appended == 100

    def test_snapshot_is_oldest_first(self):
        ring = _Ring(4)
        for i in range(10):
            ring.append((i,))
        assert [item[0] for item in ring.snapshot()] == [6, 7, 8, 9]

    def test_partial_fill(self):
        ring = _Ring(4)
        ring.append((1,))
        ring.append((2,))
        assert [item[0] for item in ring.snapshot()] == [1, 2]
        assert ring.evicted == 0


class TestRetention:
    def test_critical_categories_bypass_sampling(self):
        recorder = FlightRecorder(capacity=64)
        tracer = recorder.tracer("r", clock=SimClock())
        for i in range(20):
            tracer.span("gc/young", i * 1000, 500, category="gc", gc_number=i)
        counters = recorder.counters()
        assert counters["retained_critical"] == 20
        assert counters["events_sampled_out"] == 0

    def test_hot_stream_is_sampled(self):
        policy = RetentionPolicy(sample_every=4)
        recorder = FlightRecorder(capacity=1000, policy=policy)
        tracer = recorder.tracer("r", clock=SimClock())
        for i in range(100):
            tracer.hot_instant("vm/alloc", ts_ns=i, category="alloc", size=64)
        counters = recorder.counters()
        assert counters["events_seen"] == 100
        assert counters["events_sampled_out"] == 75
        assert counters["retained_sampled"] == 25

    def test_capacity_bound_under_heavy_run(self):
        """A fig-scale run with a tiny recorder: retained never exceeds
        the configured capacity, and the books balance."""
        recorder = FlightRecorder(capacity=256)
        telemetry = Telemetry(recorder.tracer("lucene/g1"))
        run_big_workload("lucene", "g1", operations=4000, telemetry=telemetry)
        counters = recorder.counters()
        assert 0 < counters["retained"] <= 256
        assert counters["events_seen"] == (
            counters["retained"]
            + counters["events_sampled_out"]
            + counters["events_evicted"]
        )
        assert counters["memory_bytes_estimate"] <= 256 * 200

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestNullPath:
    def test_null_tracer_hot_instant_is_a_noop(self):
        tracer = NullTracer()
        assert tracer.wants_hot_events is False
        tracer.hot_instant("vm/alloc", size=1)  # records nowhere, raises nothing

    def test_vm_without_recorder_skips_hot_stream(self):
        vm, _ = build_vm("g1", heap_mb=16)
        assert vm._rec_alloc is None

    def test_vm_with_recorder_binds_hot_stream(self):
        recorder = FlightRecorder(capacity=64)
        vm, _ = build_vm("g1", heap_mb=16, telemetry=Telemetry(recorder.tracer("r")))
        assert vm._rec_alloc is not None


def _result_fingerprint(result) -> bytes:
    return json.dumps(
        {
            "vm": result.vm_summary,
            "elapsed_ms": result.elapsed_ms,
            "pauses": [(p.start_ns, p.duration_ns, p.bytes_copied) for p in result.pauses],
            "max_memory": result.max_memory_bytes,
            "gc_cycles": result.gc_cycles,
        },
        sort_keys=True,
    ).encode()


class TestByteIdentity:
    def test_recorder_on_off_results_identical(self):
        """Recording must never touch the simulated clock or RNG: the
        run's numbers are byte-identical with the recorder attached."""
        baseline, _ = run_big_workload("lucene", "rolp", operations=3000, seed=7)
        recorder = FlightRecorder(capacity=512)
        recorded, _ = run_big_workload(
            "lucene",
            "rolp",
            operations=3000,
            seed=7,
            telemetry=Telemetry(recorder.tracer("lucene/rolp")),
        )
        assert _result_fingerprint(recorded) == _result_fingerprint(baseline)
        assert recorder.events_seen > 0


class TestExporters:
    def _recorded(self):
        recorder = FlightRecorder(capacity=128)
        tracer = recorder.tracer("lucene/g1", clock=SimClock(), trace_id="cafe01")
        tracer.span("gc/young", 1000, 500, category="gc", gc_number=1, span_id="gc-1/young")
        tracer.instant("jit/compile", ts_ns=2000, category="jit", method="m")
        tracer.hot_instant("vm/alloc", ts_ns=3000, category="alloc", size=64)
        return recorder

    def test_events_carry_ids_and_sort_by_time(self):
        recorder = self._recorded()
        events = recorder.events()
        assert [e.ts_ns for e in events] == sorted(e.ts_ns for e in events)
        gc = next(e for e in events if e.category == "gc")
        assert gc.trace_id == "cafe01"
        assert gc.span_id == "gc-1/young"
        assert "span_id" not in gc.args

    def test_jsonl_reuses_trace_sink_format(self):
        recorder = self._recorded()
        lines = recorder.to_jsonl().splitlines()
        docs = [json.loads(line) for line in lines]
        assert all(d["trace_id"] == "cafe01" for d in docs)
        assert {d["name"] for d in docs} >= {"gc/young", "jit/compile"}

    def test_chrome_export_has_process_metadata(self):
        doc = self._recorded().to_chrome()
        names = [e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"]
        assert "lucene/g1" in names

    def test_dump_ends_with_counters_line(self, tmp_path):
        path = tmp_path / "dump.jfr.jsonl"
        self._recorded().dump(str(path))
        last = path.read_text().splitlines()[-1]
        assert json.loads(last)["flight_recorder"]["capacity"] == 128


class TestSessionWiring:
    def test_session_tees_into_sink_and_recorder(self):
        recorder = FlightRecorder(capacity=64)
        session = TelemetrySession(flight_recorder=recorder)
        telemetry = session.for_run("r", trace_id="beef02")
        telemetry.tracer.bind_clock(SimClock())
        telemetry.tracer.span("gc/young", 0, 100, category="gc")
        assert len(session.sink.events) == 1
        assert session.sink.events[0].trace_id == "beef02"
        assert recorder.retained() == 1

    def test_recorder_only_session_keeps_sink_empty(self):
        recorder = FlightRecorder(capacity=64)
        session = TelemetrySession(flight_recorder=recorder, record_trace=False)
        telemetry = session.for_run("r")
        telemetry.tracer.span("gc/young", 0, 100, category="gc")
        assert session.sink.events == []
        assert recorder.retained() == 1

    def test_telemetry_counters_shape(self):
        session = TelemetrySession(flight_recorder=FlightRecorder(capacity=8))
        counters = session.telemetry_counters()
        assert counters["trace_events"] == 0
        assert counters["trace_events_dropped"] == 0
        assert counters["flight_recorder"]["capacity"] == 8
        assert TelemetrySession().telemetry_counters()["flight_recorder"] is None


class TestCapacityResolution:
    def test_env_parsing(self):
        assert capacity_from_env({}) is None
        assert capacity_from_env({"ROLP_FLIGHT_RECORDER": "0"}) is None
        assert capacity_from_env({"ROLP_FLIGHT_RECORDER": "off"}) is None
        assert (
            capacity_from_env({"ROLP_FLIGHT_RECORDER": "1"})
            == FLIGHT_RECORDER_DEFAULT_CAPACITY
        )
        assert (
            capacity_from_env({"ROLP_FLIGHT_RECORDER": "on"})
            == FLIGHT_RECORDER_DEFAULT_CAPACITY
        )
        assert capacity_from_env({"ROLP_FLIGHT_RECORDER": "4096"}) == 4096

    def test_cli_overrides_env(self):
        env = {"ROLP_FLIGHT_RECORDER": "4096"}
        assert resolve_capacity(None, env) == 4096
        assert resolve_capacity(-1, env) == FLIGHT_RECORDER_DEFAULT_CAPACITY
        assert resolve_capacity(8192, env) == 8192
        assert resolve_capacity(0, env) is None
        assert resolve_capacity(None, {}) is None

"""Property-style tests for :mod:`repro.heap.header`: whole-header
pack/unpack round-trips over randomized allocation-site / age / hash /
bias bit patterns, and the biased-lock overwrite/corruption lifecycle.

The per-field properties live in test_header.py; these tests exercise
*composite* states — every field populated at once, arbitrary operation
sequences, and the bias/revoke path the paper accepts as profiling
information loss (Section 3.2.2).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heap import header as hdr

u16 = st.integers(min_value=0, max_value=0xFFFF)
u25 = st.integers(min_value=0, max_value=(1 << 25) - 1)
u32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
ages = st.integers(min_value=0, max_value=hdr.MAX_AGE)
any_int = st.integers(min_value=-(1 << 70), max_value=1 << 70)


def build_header(site, state, age, identity_hash):
    header = hdr.fresh_header(hdr.pack_context(site, state))
    header = hdr.set_age(header, age)
    return hdr.set_identity_hash(header, identity_hash)


class TestFullRoundTrip:
    @given(site=u16, state=u16, age=ages, identity_hash=u25)
    def test_all_fields_roundtrip_simultaneously(
        self, site, state, age, identity_hash
    ):
        header = build_header(site, state, age, identity_hash)
        context = hdr.extract_context(header)
        assert hdr.context_site(context) == site
        assert hdr.context_stack_state(context) == state
        assert hdr.get_age(header) == age
        assert hdr.get_identity_hash(header) == identity_hash
        assert not hdr.is_biased_locked(header)

    @given(site=u16, state=u16, age=ages, identity_hash=u25)
    def test_header_stays_in_64_bits(self, site, state, age, identity_hash):
        assert 0 <= build_header(site, state, age, identity_hash) <= hdr.MASK_64

    @given(site=any_int, state=any_int)
    def test_pack_context_masks_arbitrary_ints_to_16_bits(self, site, state):
        context = hdr.pack_context(site, state)
        assert 0 <= context <= hdr.MASK_32
        assert hdr.context_site(context) == site & hdr.MASK_16
        assert hdr.context_stack_state(context) == state & hdr.MASK_16

    @given(
        header=u64,
        operations=st.lists(
            st.one_of(
                st.tuples(st.just("age"), ages),
                st.tuples(st.just("hash"), u25),
                st.tuples(st.just("context"), u32),
                st.tuples(st.just("increment"), st.just(0)),
            ),
            max_size=12,
        ),
    )
    @settings(max_examples=50)
    def test_operation_sequences_keep_fields_independent(self, header, operations):
        """Whatever sequence of writes runs, each field reads back the
        last value written to it, never a neighbour's bits."""
        expected_age = hdr.get_age(header)
        expected_hash = hdr.get_identity_hash(header)
        expected_context = hdr.extract_context(header)
        for op, value in operations:
            if op == "age":
                header = hdr.set_age(header, value)
                expected_age = value
            elif op == "hash":
                header = hdr.set_identity_hash(header, value)
                expected_hash = value
            elif op == "context":
                header = hdr.install_context(header, value)
                expected_context = value
            else:
                header = hdr.increment_age(header)
                expected_age = min(expected_age + 1, hdr.MAX_AGE)
        assert hdr.get_age(header) == expected_age
        assert hdr.get_identity_hash(header) == expected_hash
        assert hdr.extract_context(header) == expected_context
        assert 0 <= header <= hdr.MASK_64


class TestBiasedLockCorruption:
    @given(site=u16, state=u16, age=ages, identity_hash=u25, pointer=u64)
    def test_bias_overwrites_context_and_preserves_the_rest(
        self, site, state, age, identity_hash, pointer
    ):
        header = build_header(site, state, age, identity_hash)
        biased = hdr.bias_lock(header, pointer)
        assert hdr.is_biased_locked(biased)
        # the owning thread's pointer lands where the context lived
        assert hdr.extract_context(biased) == pointer & hdr.MASK_32
        assert hdr.get_age(biased) == age
        assert hdr.get_identity_hash(biased) == identity_hash
        assert 0 <= biased <= hdr.MASK_64

    @given(site=u16, state=u16, age=ages, identity_hash=u25, pointer=u64)
    def test_revoke_leaves_context_corrupted(
        self, site, state, age, identity_hash, pointer
    ):
        header = build_header(site, state, age, identity_hash)
        revoked = hdr.revoke_bias(hdr.bias_lock(header, pointer))
        assert not hdr.is_biased_locked(revoked)
        # the stale pointer persists: the context only equals the
        # original on an accidental collision (the paper's rare
        # mistaken-reuse scenario)
        assert hdr.extract_context(revoked) == pointer & hdr.MASK_32
        original = hdr.pack_context(site, state)
        if pointer & hdr.MASK_32 != original:
            assert hdr.extract_context(revoked) != original
        assert hdr.get_age(revoked) == age
        assert hdr.get_identity_hash(revoked) == identity_hash

    @given(header=u64, pointer=u64)
    def test_bias_revoke_touches_only_context_and_bias_bit(self, header, pointer):
        after = hdr.revoke_bias(hdr.bias_lock(header, pointer))
        untouched = hdr.MASK_64 & ~(hdr.CONTEXT_MASK | hdr.BIASED_MASK)
        assert after & untouched == header & untouched

    @given(header=u64)
    def test_context_survives_iff_never_biased(self, header):
        """The profiler's validity rule: an unbiased header's context is
        trustworthy; aging and hashing never corrupt it."""
        context = hdr.extract_context(header)
        aged = hdr.increment_age(hdr.set_identity_hash(header, 0x155_5555))
        assert hdr.extract_context(aged) == context

"""Tests for the GraphChi-like workload: interval lifecycle, vertex
data, algorithm convergence, and the block-factory conflict."""

import pytest

from repro.workloads.base import run_workload
from repro.workloads.graph import GraphChiWorkload


def small_workload(algorithm="cc", **kwargs):
    defaults = dict(
        vertices=20_000,
        edges_per_vertex=6.0,
        shards=3,
        subintervals_per_shard=8,
        worker_threads=2,
    )
    defaults.update(kwargs)
    return GraphChiWorkload(algorithm, **defaults)


class TestConstruction:
    def test_algorithm_names(self):
        assert GraphChiWorkload("cc").name == "graphchi-cc"
        assert GraphChiWorkload("pr").name == "graphchi-pr"

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError):
            GraphChiWorkload("bfs")

    def test_packages_match_paper(self):
        packages = GraphChiWorkload("cc").profiled_packages
        assert any("datablocks" in p for p in packages)
        assert any("engine" in p for p in packages)


class TestExecution:
    def test_vertex_data_allocated_up_front_and_stays_live(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=500, heap_mb=32)
        now = workload.vm.clock.now_ns
        assert workload.vertex_blocks
        assert all(b.is_live(now) for b in workload.vertex_blocks)

    def test_intervals_progress(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=100, heap_mb=32)
        assert workload.intervals_processed >= 100 // 8 - 1

    def test_interval_unload_kills_edge_blocks(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=9, heap_mb=32)
        # first interval (8 sub-intervals) finished: its blocks are dead
        assert workload.intervals_processed == 1


class TestConvergence:
    def test_cc_active_fraction_shrinks(self):
        workload = small_workload("cc")
        run_workload(workload, "g1", operations=60, heap_mb=32)
        if workload.iteration >= 1:
            assert workload.active_fraction < 1.0

    def test_pr_stays_full(self):
        workload = small_workload("pr")
        run_workload(workload, "g1", operations=60, heap_mb=32)
        assert workload.active_fraction == 1.0

    def test_cc_floor_at_ten_percent(self):
        workload = small_workload("cc")
        workload.iteration = 50
        workload._finish_iteration()
        assert workload.active_fraction == pytest.approx(0.1)


class TestConflictStructure:
    def test_factory_reached_from_loader_and_updater(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=300, heap_mb=32)
        factory = workload.m_allocate_block
        callers = set()
        for method in (workload.m_load_subinterval, workload.m_update):
            for site in method.call_sites.values():
                if factory in site.targets:
                    callers.add(method.name)
        assert callers == {"loadSubInterval", "update"}

    def test_ng2c_pretenures_blocks(self):
        workload = small_workload()
        run_workload(workload, "ng2c", operations=500, heap_mb=32)
        assert workload.vm.collector.pretenured_objects > 0

"""Tests for the determinism lint (``rolp-lint``).

Planted fixtures prove each rule fires at the right location; scoping
tests prove harness code keeps its legitimate wall-clock reads; and the
self-check asserts the shipped ``repro`` tree is clean — which is the
property CI enforces from here on.
"""

import textwrap

import pytest

from repro.analysis import lint

SIM_CORE = "src/repro/gc/fixture.py"
HARNESS = "src/repro/bench/fixture.py"
CLOCK = "src/repro/runtime/clock.py"


def findings(source, path=SIM_CORE):
    return [
        (f.rule, f.line) for f in lint.lint_source(textwrap.dedent(source), path)
    ]


def rules_of(source, path=SIM_CORE):
    return {rule for rule, _ in findings(source, path)}


class TestWallClockRule:
    def test_time_module_call_fires(self):
        src = """\
        import time
        stamp = time.time()
        """
        assert ("wall-clock", 2) in findings(src)

    def test_monotonic_and_perf_counter_fire(self):
        src = """\
        import time
        a = time.monotonic()
        b = time.perf_counter_ns()
        """
        assert [r for r, _ in findings(src)] == ["wall-clock", "wall-clock"]

    def test_from_import_fires_at_import_and_call(self):
        src = """\
        from time import time
        stamp = time()
        """
        hits = findings(src)
        assert ("wall-clock", 1) in hits and ("wall-clock", 2) in hits

    def test_datetime_now_variants_fire(self):
        src = """\
        import datetime
        from datetime import datetime as dt
        a = datetime.datetime.now()
        b = dt.utcnow()
        """
        assert [r for r, _ in findings(src)] == ["wall-clock", "wall-clock"]

    def test_harness_code_may_read_the_wall_clock(self):
        src = """\
        import time
        stamp = time.time()
        """
        assert findings(src, path=HARNESS) == []

    def test_clock_module_is_exempt(self):
        src = """\
        import time
        def now():
            return time.monotonic_ns()
        """
        assert findings(src, path=CLOCK) == []

    def test_unknown_paths_get_the_strict_treatment(self):
        # planted time.time() in a fixture outside any repro package
        src = """\
        import time
        t0 = time.time()
        """
        assert ("wall-clock", 2) in findings(src, path="/tmp/planted_fixture.py")


class TestUnseededRandomRule:
    def test_module_level_rng_fires(self):
        src = """\
        import random
        x = random.random()
        y = random.choice([1, 2])
        """
        assert [r for r, _ in findings(src)] == [
            "unseeded-random",
            "unseeded-random",
        ]

    def test_unseeded_constructor_fires(self):
        assert rules_of("import random\nrng = random.Random()\n") == {
            "unseeded-random"
        }

    def test_seeded_constructor_passes(self):
        src = """\
        import random
        rng = random.Random(42)
        value = rng.random()
        """
        assert findings(src) == []

    def test_system_random_always_fires(self):
        assert rules_of("import random\nr = random.SystemRandom()\n") == {
            "unseeded-random"
        }
        assert rules_of("from random import SystemRandom\n", path=HARNESS) == {
            "unseeded-random"
        }

    def test_from_import_of_module_api_fires(self):
        assert rules_of("from random import choice\n") == {"unseeded-random"}

    def test_from_import_of_random_class_passes(self):
        assert findings("from random import Random\nrng = Random(7)\n") == []

    def test_reseeding_the_module_rng_is_tolerated(self):
        # random.seed() is how legacy scripts pin the global RNG; the
        # lint pushes toward instances but seed() itself is not a draw
        assert findings("import random\nrandom.seed(42)\n") == []


class TestMutableDefaultRule:
    def test_list_and_dict_defaults_fire(self):
        src = """\
        def f(xs=[], mapping={}):
            return xs, mapping
        """
        assert [r for r, _ in findings(src)] == [
            "mutable-default",
            "mutable-default",
        ]

    def test_constructor_call_default_fires(self):
        assert rules_of("def f(xs=list()):\n    return xs\n") == {
            "mutable-default"
        }

    def test_lambda_default_fires(self):
        assert rules_of("g = lambda xs=[]: xs\n") == {"mutable-default"}

    def test_none_default_passes(self):
        assert findings("def f(xs=None, n=3, name='x'):\n    return xs\n") == []

    def test_fires_in_harness_code_too(self):
        assert rules_of("def f(xs=[]):\n    return xs\n", path=HARNESS) == {
            "mutable-default"
        }


class TestUnorderedIterationRule:
    def test_for_over_set_literal_fires(self):
        src = """\
        def f(out):
            for item in {1, 2, 3}:
                out.append(item)
        """
        assert rules_of(src) == {"unordered-iteration"}

    def test_comprehension_over_set_call_fires(self):
        assert rules_of("xs = [x for x in set(range(3))]\n") == {
            "unordered-iteration"
        }

    def test_enumerate_wrapper_is_unwrapped(self):
        assert rules_of(
            "def f():\n    for i, x in enumerate({1, 2}):\n        pass\n"
        ) == {"unordered-iteration"}

    def test_sorted_set_passes(self):
        assert findings("xs = [x for x in sorted(set(range(3)))]\n") == []

    def test_harness_code_may_iterate_sets(self):
        assert findings("xs = [x for x in {1, 2, 3}]\n", path=HARNESS) == []


class TestBuiltinShadowingRule:
    def test_shadowed_builtin_fires(self):
        assert rules_of("id = 3\n") == {"builtin-shadowing"}

    def test_jvm_exception_analogue_fires(self):
        src = """\
        class OutOfMemoryError(Exception):
            pass
        """
        hits = lint.lint_source(textwrap.dedent(src), SIM_CORE)
        assert hits[0].rule == "builtin-shadowing"
        assert "MemoryError" in hits[0].message

    def test_import_binding_fires(self):
        assert rules_of("from legacy.heap import OutOfMemoryError\n") == {
            "builtin-shadowing"
        }

    def test_alias_rename_passes(self):
        assert (
            findings("from legacy.heap import OutOfMemoryError as SimOOM\n") == []
        )

    def test_function_locals_are_not_module_bindings(self):
        assert findings("def f():\n    id = 3\n    return id\n") == []


class TestBackendHygieneRule:
    def test_twin_module_import_fires(self):
        assert rules_of("import repro.runtime.dispatch\n") == {"backend-hygiene"}
        assert rules_of("from repro.heap.soa import ObjectColumns\n") == {
            "backend-hygiene"
        }

    def test_twin_symbol_import_fires(self):
        src = "from repro.runtime.interpreter import FastExecutionContext\n"
        assert rules_of(src) == {"backend-hygiene"}

    def test_generic_symbol_from_twin_host_module_passes(self):
        # interpreter.py also hosts the reference ExecutionContext.
        assert findings("from repro.runtime.interpreter import ExecutionContext\n") == []

    def test_sanctioned_entry_points_are_exempt(self):
        src = "from repro.runtime.dispatch import CompiledExecutionContext\n"
        assert findings(src, "src/repro/runtime/vm.py") == []
        assert findings(src, "src/repro/fastpath.py") == []

    def test_harness_code_may_import_twins(self):
        src = "from repro.heap.soa import ObjectColumns\n"
        assert findings(src, HARNESS) == []

    def test_line_waiver_applies(self):
        src = (
            "from repro.heap.soa import ObjectColumns"
            "  # rolp-lint: allow[backend-hygiene]\n"
        )
        assert findings(src) == []

    def test_collector_soa_import_needs_its_waiver(self):
        """gc/collector.py names ObjectColumns directly (it snapshots
        the switch in __init__) — remove the waiver and the rule
        fires."""
        import repro.gc.collector as collector_mod

        path = collector_mod.__file__
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        assert lint.lint_source(source, path) == []
        stripped = source.replace("  # rolp-lint: allow[backend-hygiene]", "")
        hits = lint.lint_source(stripped, path)
        assert [f.rule for f in hits] == ["backend-hygiene"]


class TestWaivers:
    def test_rule_waiver_suppresses_the_finding(self):
        src = "import time\nt0 = time.time()  # rolp-lint: allow[wall-clock]\n"
        assert findings(src) == []

    def test_star_waiver_suppresses_everything(self):
        assert findings("id = 3  # rolp-lint: allow[*]\n") == []

    def test_waiver_for_the_wrong_rule_does_not_apply(self):
        src = "import time\nt0 = time.time()  # rolp-lint: allow[mutable-default]\n"
        assert rules_of(src) == {"wall-clock"}


class TestParseErrors:
    def test_syntax_error_reported_as_finding(self):
        hits = lint.lint_source("def f(:\n", SIM_CORE)
        assert hits[0].rule == "parse-error"


class TestTreeSelfCheck:
    def test_shipped_repro_tree_is_clean(self):
        """The property the CI lint job enforces."""
        assert lint.lint_paths([lint.default_target()]) == []
        assert lint.lint_paths.files_checked > 50

    def test_heap_module_needs_its_deprecation_waiver(self):
        """The deprecated OutOfMemoryError alias is exactly one waived
        builtin-shadowing finding — remove the waiver and it fires."""
        import repro.heap.heap as heap_mod

        path = heap_mod.__file__
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        assert lint.lint_source(source, path) == []
        stripped = source.replace("# rolp-lint: allow[builtin-shadowing]", "")
        hits = lint.lint_source(stripped, path)
        assert [f.rule for f in hits] == ["builtin-shadowing"]


class TestCommandLine:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 3\n")
        assert lint.main([str(target)]) == 0
        assert "clean (1 files)" in capsys.readouterr().err

    def test_findings_exit_one_with_locations(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import time\nstamp = time.time()\n")
        assert lint.main([str(target)]) == 1
        captured = capsys.readouterr()
        assert "%s:2:" % target in captured.out
        assert "wall-clock" in captured.out
        assert "1 finding(s)" in captured.err

    def test_directory_walk(self, tmp_path, capsys):
        (tmp_path / "a.py").write_text("id = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("import random\nx = random.random()\n")
        assert lint.main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "builtin-shadowing" in out and "unseeded-random" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert lint.main([str(tmp_path / "gone.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_parse_error_exits_two(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def f(:\n")
        assert lint.main([str(target)]) == 2

    def test_rules_listing(self, capsys):
        assert lint.main(["--rules"]) == 0
        out = capsys.readouterr().out
        for rule in lint.RULES:
            assert rule in out

    def test_default_target_is_the_package_tree(self, capsys):
        assert lint.main([]) == 0
        assert "clean" in capsys.readouterr().err


@pytest.mark.parametrize("rule", sorted(set(lint.RULES) - {"parse-error"}))
def test_every_rule_has_a_firing_fixture(rule):
    """Guard against rules that can never fire (dead lint code)."""
    fixtures = {
        "unseeded-random": "import random\nx = random.random()\n",
        "wall-clock": "import time\nx = time.time()\n",
        "mutable-default": "def f(xs=[]):\n    return xs\n",
        "unordered-iteration": "xs = [x for x in {1, 2}]\n",
        "builtin-shadowing": "id = 3\n",
        "backend-hygiene": "from repro.heap.soa import ObjectColumns\n",
    }
    assert rules_of(fixtures[rule]) == {rule}

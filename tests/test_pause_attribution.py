"""Pause-attribution tests: the decomposition math on synthetic data,
determinism across ``--jobs``, and the ``rolp-bench explain`` CLI."""

import json

import pytest

from repro.analysis.pause_attribution import (
    REPORT_SCHEMA,
    _attribute,
    _tail_count,
    build_report,
    explain,
    render_report,
    summarize_run,
)
from repro.bench.cli import main
from repro.bench.runner import Runner


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.02")
    monkeypatch.setenv("ROLP_BENCH_CACHE_DIR", str(tmp_path / "cell-cache"))
    monkeypatch.delenv("ROLP_FLIGHT_RECORDER", raising=False)


def _pause(start_ns, duration_ms, contributions, kind="young"):
    return {
        "span_id": "gc-1/%s" % kind,
        "kind": kind,
        "start_ns": start_ns,
        "duration_ms": duration_ms,
        "bytes_copied": sum(row[2] for row in contributions),
        "contributions": [list(row) for row in contributions],
    }


class TestAttributionMath:
    def test_tail_count(self):
        assert _tail_count(1000, 99.9) == 1
        assert _tail_count(1000, 99.0) == 10
        assert _tail_count(5, 99.9) == 1
        assert _tail_count(0, 99.9) == 1  # clamped floor

    def test_duration_splits_pro_rata_by_bytes(self):
        shares, attributed, total = _attribute(
            [_pause(0, 10.0, [[0x10000, 2, 750], [0x20000, 0, 250]])]
        )
        assert shares[(0x10000, 2)] == pytest.approx(7.5)
        assert shares[(0x20000, 0)] == pytest.approx(2.5)
        assert attributed == pytest.approx(10.0)
        assert total == pytest.approx(10.0)

    def test_zero_copy_pause_stays_unattributed(self):
        shares, attributed, total = _attribute([_pause(0, 4.0, [])])
        assert shares == {}
        assert attributed == 0.0
        assert total == pytest.approx(4.0)

    def test_summarize_ranks_tail_contributors(self):
        # 99 small pauses dominated by context A, one huge pause
        # dominated by context B: B must lead the tail ranking with a
        # strongly positive differential.
        pauses = [
            _pause(i * 1000, 1.0, [[0xA0000, 1, 1000]]) for i in range(99)
        ]
        pauses.append(_pause(999_000, 50.0, [[0xB0000, 5, 900], [0xA0000, 1, 100]]))
        run = summarize_run(
            {
                "workload": "w",
                "collector": "g1",
                "operations": 100,
                "pauses": pauses,
                "recorder": {"capacity": 100, "retained": 100},
            },
            trace_id="feed03",
        )
        assert run["pauses"] == 100
        top = run["contributors"][0]
        assert top["context"] == "0x000b0000"
        assert top["site_id"] == 0xB
        assert top["age_class"] == 5
        assert top["differential"] > 0.5
        assert top["trace_id"] == "feed03"
        assert run["tail"]["attributed_fraction"] == pytest.approx(1.0)
        assert run["p999_ms"] >= run["p99_ms"] >= run["p50_ms"]

    def test_report_is_sorted_and_schema_tagged(self):
        rows = [
            {
                "workload": "w",
                "collector": name,
                "operations": 1,
                "pauses": [],
                "recorder": {},
            }
            for name in ("rolp", "cms")
        ]
        report = build_report(rows, ["t1", "t2"], scale=1.0)
        assert report["schema"] == REPORT_SCHEMA
        assert [r["collector"] for r in report["runs"]] == ["cms", "rolp"]
        render_report(report)  # must not raise on empty runs


class TestExplainDeterminism:
    def test_jobs_do_not_change_the_report(self):
        serial = explain(["lucene"], ["g1", "rolp"], runner=Runner(jobs=1))
        parallel = explain(["lucene"], ["g1", "rolp"], runner=Runner(jobs=2))
        assert (
            json.dumps(serial, sort_keys=True).encode()
            == json.dumps(parallel, sort_keys=True).encode()
        )

    def test_tail_attribution_meets_the_acceptance_bar(self):
        report = explain(["lucene"], runner=Runner(jobs=1))
        assert report["runs"], "no runs in report"
        for run in report["runs"]:
            assert run["trace_id"]
            assert run["tail"]["attributed_fraction"] >= 0.90
            for contributor in run["contributors"]:
                assert contributor["trace_id"] == run["trace_id"]


class TestExplainCli:
    def test_cli_writes_report_and_dump(self, tmp_path, capsys):
        report_path = tmp_path / "pause_report.json"
        flight_path = tmp_path / "fleet.jfr.jsonl"
        assert (
            main(
                [
                    "explain",
                    "--workloads",
                    "lucene",
                    "--collectors",
                    "g1",
                    "--no-cache",
                    "--flight-recorder",
                    "2048",
                    "--flight-out",
                    str(flight_path),
                    "--report-out",
                    str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[Explain]" in out
        report = json.loads(report_path.read_text())
        assert report["schema"] == REPORT_SCHEMA
        (run,) = report["runs"]
        assert run["workload"] == "lucene"
        assert run["collector"] == "g1"
        assert run["recorder"]["retained"] <= run["recorder"]["capacity"]
        # the dump is always written, with its counters trailer
        trailer = json.loads(flight_path.read_text().splitlines()[-1])
        assert trailer["flight_recorder"]["capacity"] == 2048

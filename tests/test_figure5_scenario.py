"""The paper's Figure 5 scenario, end to end at unit scale.

Two call paths — A→C and B→C — reach the same allocation site inside C.
Path A's objects are long-lived, path B's die young.  ROLP must:

1. see a two-triangle curve for C's site and flag the conflict;
2. enable thread-stack-state tracking on some call sites (the minimal
   set S must contain A→C or B→C);
3. observe the contexts split and keep the distinguishing site enabled;
4. pretenure only path A's context.
"""

import pytest

from repro import build_vm
from repro.core import RolpConfig
from repro.core.context import context_site, context_stack_state
from repro.heap.region import Space
from repro.runtime import Method


@pytest.fixture(scope="module")
def resolved_vm():
    vm, profiler = build_vm(
        "rolp",
        heap_mb=24,
        young_regions=2,
        rolp_config=RolpConfig(min_samples=16),
    )
    thread = vm.spawn_thread()
    table = []
    table_bytes = [0]

    def c_body(ctx, hold):
        obj = ctx.alloc(1, 1024)
        if hold:
            table.append(obj)
            table_bytes[0] += obj.size
            if table_bytes[0] >= 6 << 20:
                now = ctx.now_ns
                for held in table:
                    held.kill_at(now)
                table.clear()
                table_bytes[0] = 0
        else:
            obj.kill_at(ctx.now_ns + 15_000)
        return obj

    method_c = Method("create", "app.data.C", c_body, bytecode_size=80)

    def a_body(ctx):
        return ctx.call(1, method_c, True)   # long-lived path

    def b_body(ctx):
        return ctx.call(1, method_c, False)  # short-lived path

    method_a = Method("ingest", "app.data.A", a_body, bytecode_size=120)
    method_b = Method("serve", "app.data.B", b_body, bytecode_size=120)

    last = {}
    for op in range(140_000):
        if op % 2 == 0:
            last["a"] = vm.run(thread, method_a)
        else:
            last["b"] = vm.run(thread, method_b)
    return vm, profiler, method_a, method_b, method_c, last


class TestFigure5:
    def test_conflict_detected(self, resolved_vm):
        _, profiler, _, _, method_c, _ = resolved_vm
        site_id = method_c.alloc_sites[1].site_id
        assert site_id in profiler.resolver.resolved_sites
        assert profiler.resolver.conflicts_seen >= 1

    def test_minimal_set_contains_a_distinguishing_frame(self, resolved_vm):
        """S must contain the A→C or the B→C call site (Figure 5's
        'conflicting frames')."""
        _, profiler, method_a, method_b, _, _ = resolved_vm
        enabled = {site for site in profiler.jitted_call_sites if site.enabled}
        distinguishing = set(method_a.call_sites.values()) | set(
            method_b.call_sites.values()
        )
        assert enabled & distinguishing

    def test_contexts_split_by_stack_state(self, resolved_vm):
        _, _, _, _, method_c, last = resolved_vm
        ctx_a = last["a"].context or 0
        ctx_b = last["b"].context or 0
        # both flow through C's single site...
        site_id = method_c.alloc_sites[1].site_id
        for ctx in (ctx_a, ctx_b):
            if ctx:
                assert context_site(ctx) == site_id
        # ...but at least one path carries a non-zero stack state, and
        # the advised (pretenured) object's context differs from the
        # young one's
        states = {context_stack_state(c) for c in (ctx_a, ctx_b) if c}
        assert len(states) == 2 or last["a"].region.space is Space.DYNAMIC

    def test_only_long_lived_path_pretenured(self, resolved_vm):
        _, _, _, _, _, last = resolved_vm
        assert last["a"].region.space is Space.DYNAMIC
        assert last["b"].region.space is Space.EDEN

"""Tests for simulated threads and the 16-bit stack-state register."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.method import Method
from repro.runtime.thread import SimThread

increments = st.lists(
    st.integers(min_value=0, max_value=0xFFFF), min_size=0, max_size=24
)


def method(name="m"):
    return Method(name, "pkg.Cls", lambda ctx: None)


class TestStackState:
    def test_push_adds_increment(self):
        thread = SimThread(1)
        thread.push_frame(method(), None, 100)
        assert thread.stack_state == 100

    def test_pop_subtracts(self):
        thread = SimThread(1)
        thread.push_frame(method(), None, 100)
        thread.pop_frame()
        assert thread.stack_state == 0

    def test_zero_increment_leaves_state(self):
        thread = SimThread(1)
        thread.push_frame(method(), None, 0)
        assert thread.stack_state == 0

    def test_wraparound_16_bits(self):
        thread = SimThread(1)
        thread.push_frame(method("a"), None, 0xFFFF)
        thread.push_frame(method("b"), None, 2)
        assert thread.stack_state == 1  # (0xFFFF + 2) mod 2^16

    def test_pop_empty_raises(self):
        with pytest.raises(RuntimeError):
            SimThread(1).pop_frame()

    @given(incs=increments)
    def test_push_pop_inverse(self, incs):
        """The paper's core invariant: entering then leaving any call
        path restores the register."""
        thread = SimThread(1)
        for inc in incs:
            thread.push_frame(method(), None, inc)
        for _ in incs:
            thread.pop_frame()
        assert thread.stack_state == 0

    @given(incs=increments)
    def test_state_independent_of_call_order(self, incs):
        """Addition commutes: the register encodes the *set* of active
        frames, not their order (Section 3.2.1)."""
        forward = SimThread(1)
        backward = SimThread(2)
        for inc in incs:
            forward.push_frame(method(), None, inc)
        for inc in reversed(incs):
            backward.push_frame(method(), None, inc)
        assert forward.stack_state == backward.stack_state


class TestCorruptionAndRepair:
    def test_unrepaired_pop_leaks_contribution(self):
        thread = SimThread(1)
        thread.push_frame(method(), None, 77)
        thread.pop_frame(repair=False)
        assert thread.stack_state == 77  # corrupted

    def test_verify_and_repair(self):
        thread = SimThread(1)
        thread.push_frame(method(), None, 77)
        thread.pop_frame(repair=False)
        assert thread.verify_and_repair()
        assert thread.stack_state == 0
        assert thread.state_repairs == 1

    def test_verify_noop_when_consistent(self):
        thread = SimThread(1)
        thread.push_frame(method(), None, 5)
        assert not thread.verify_and_repair()
        assert thread.stack_state == 5

    def test_expected_state_from_frames(self):
        thread = SimThread(1)
        thread.push_frame(method("a"), None, 10)
        thread.push_frame(method("b"), None, 20)
        assert thread.expected_stack_state() == 30

    @given(incs=increments, corruption=st.integers(min_value=1, max_value=0xFFFF))
    def test_repair_restores_any_corruption(self, incs, corruption):
        thread = SimThread(1)
        for inc in incs:
            thread.push_frame(method(), None, inc)
        expected = thread.stack_state
        thread.stack_state = (thread.stack_state + corruption) & 0xFFFF
        thread.verify_and_repair()
        assert thread.stack_state == expected


class TestFrames:
    def test_current_method(self):
        thread = SimThread(1)
        assert thread.current_method is None
        a = method("a")
        thread.push_frame(a, None, 0)
        assert thread.current_method is a

    def test_name_default(self):
        assert SimThread(7).name == "worker-7"
        assert SimThread(7, "MutationStage-1").name == "MutationStage-1"

"""Unit and property tests for the 64-bit object header bit model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap import header as hdr

u16 = st.integers(min_value=0, max_value=0xFFFF)
u25 = st.integers(min_value=0, max_value=(1 << 25) - 1)
u32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
ages = st.integers(min_value=0, max_value=hdr.MAX_AGE)


class TestContextPacking:
    def test_pack_layout(self):
        context = hdr.pack_context(0xABCD, 0x1234)
        assert context == 0xABCD_1234

    def test_site_extraction(self):
        assert hdr.context_site(0xABCD_1234) == 0xABCD

    def test_stack_state_extraction(self):
        assert hdr.context_stack_state(0xABCD_1234) == 0x1234

    def test_pack_masks_overflow(self):
        context = hdr.pack_context(0x1_FFFF, 0x2_0001)
        assert hdr.context_site(context) == 0xFFFF
        assert hdr.context_stack_state(context) == 0x0001

    @given(site=u16, state=u16)
    def test_roundtrip(self, site, state):
        context = hdr.pack_context(site, state)
        assert hdr.context_site(context) == site
        assert hdr.context_stack_state(context) == state

    @given(site=u16, state=u16)
    def test_context_fits_32_bits(self, site, state):
        assert 0 <= hdr.pack_context(site, state) <= hdr.MASK_32


class TestHeaderContext:
    def test_install_and_extract(self):
        header = hdr.install_context(0, 0xDEAD_BEEF)
        assert hdr.extract_context(header) == 0xDEAD_BEEF

    def test_install_preserves_low_bits(self):
        header = hdr.set_age(0, 7)
        header = hdr.install_context(header, 0x1234_5678)
        assert hdr.get_age(header) == 7

    @given(header=u64, context=u32)
    def test_install_extract_roundtrip(self, header, context):
        assert hdr.extract_context(hdr.install_context(header, context)) == context

    @given(header=u64, context=u32)
    def test_install_only_touches_upper_bits(self, header, context):
        installed = hdr.install_context(header, context)
        assert installed & hdr.MASK_32 == header & hdr.MASK_32

    def test_fresh_header(self):
        header = hdr.fresh_header(0xCAFE_BABE)
        assert hdr.extract_context(header) == 0xCAFE_BABE
        assert hdr.get_age(header) == 0
        assert not hdr.is_biased_locked(header)

    def test_fresh_header_with_age(self):
        assert hdr.get_age(hdr.fresh_header(0, age=5)) == 5


class TestAge:
    def test_new_object_age_zero(self):
        assert hdr.get_age(0) == 0

    @given(age=ages)
    def test_set_get_roundtrip(self, age):
        assert hdr.get_age(hdr.set_age(0, age)) == age

    def test_set_age_clamps_high(self):
        assert hdr.get_age(hdr.set_age(0, 99)) == hdr.MAX_AGE

    def test_set_age_clamps_negative(self):
        assert hdr.get_age(hdr.set_age(0, -3)) == 0

    def test_increment(self):
        header = hdr.set_age(0, 3)
        assert hdr.get_age(hdr.increment_age(header)) == 4

    def test_increment_saturates(self):
        header = hdr.set_age(0, hdr.MAX_AGE)
        assert hdr.get_age(hdr.increment_age(header)) == hdr.MAX_AGE

    @given(header=u64)
    def test_increment_never_decreases(self, header):
        assert hdr.get_age(hdr.increment_age(header)) >= hdr.get_age(header)

    @given(header=u64, age=ages)
    def test_set_age_preserves_context(self, header, age):
        assert hdr.extract_context(hdr.set_age(header, age)) == hdr.extract_context(
            header
        )

    def test_max_age_is_15(self):
        # 4 age bits, the basis for 16 OLD columns and NG2C generations
        assert hdr.MAX_AGE == 15
        assert hdr.NUM_AGES == 16


class TestBiasedLocking:
    def test_bias_sets_flag(self):
        assert hdr.is_biased_locked(hdr.bias_lock(0, 0x7F001234))

    def test_bias_overwrites_context(self):
        header = hdr.install_context(0, 0xAAAA_BBBB)
        header = hdr.bias_lock(header, 0x7F001234)
        assert hdr.extract_context(header) == 0x7F001234

    def test_revoke_clears_flag_keeps_stale_pointer(self):
        header = hdr.bias_lock(hdr.install_context(0, 0x1111_2222), 0x7F009900)
        revoked = hdr.revoke_bias(header)
        assert not hdr.is_biased_locked(revoked)
        # the stale thread pointer remains: the context is corrupted
        assert hdr.extract_context(revoked) == 0x7F009900

    @given(header=u64, pointer=u32)
    def test_bias_preserves_age(self, header, pointer):
        assert hdr.get_age(hdr.bias_lock(header, pointer)) == hdr.get_age(header)

    def test_bias_bit_is_bit_2(self):
        # the paper's 'bit number 3' in 1-based numbering
        assert hdr.BIASED_MASK == 0b100


class TestIdentityHash:
    @given(value=u25)
    def test_roundtrip(self, value):
        assert hdr.get_identity_hash(hdr.set_identity_hash(0, value)) == value

    @given(header=u64, value=u25)
    def test_does_not_disturb_context_or_age(self, header, value):
        updated = hdr.set_identity_hash(header, value)
        assert hdr.extract_context(updated) == hdr.extract_context(header)
        assert hdr.get_age(updated) == hdr.get_age(header)

    def test_masks_oversized_value(self):
        assert hdr.get_identity_hash(hdr.set_identity_hash(0, 1 << 30)) == 0


class TestFieldDisjointness:
    def test_field_masks_do_not_overlap(self):
        masks = [hdr.LOCK_MASK, hdr.BIASED_MASK, hdr.AGE_MASK, hdr.HASH_MASK, hdr.CONTEXT_MASK]
        for i, a in enumerate(masks):
            for b in masks[i + 1:]:
                assert a & b == 0

    def test_all_64_bits_accounted(self):
        combined = (
            hdr.LOCK_MASK
            | hdr.BIASED_MASK
            | hdr.AGE_MASK
            | hdr.HASH_MASK
            | hdr.CONTEXT_MASK
        )
        # bits 0..31 fully covered except none; the full header is 64 bits
        assert combined <= hdr.MASK_64

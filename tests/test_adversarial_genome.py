"""Property tests for the fuzzer's genome model.

The search loop leans on three contracts (docs/fuzzing.md):

* canonical serialization round-trips exactly (cell keys, cache
  entries and corpus digests all hang off ``encode()``),
* mutation and shrinking never leave the valid-spec domain, and every
  shrink candidate strictly reduces complexity (so shrink loops
  terminate),
* the whole pipeline is seed-deterministic: same seed => same genome
  => same operation stream.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import fuzz
from repro.workloads.adversarial import (
    BOUNDS,
    HOSTILE_DEFAULT,
    AdversarialWorkload,
    DemographyGenome,
    random_genome,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
mutation_counts = st.integers(min_value=0, max_value=6)


def genome_from(seed: int, mutations: int) -> DemographyGenome:
    """A valid genome: seeded random start plus a seeded mutation walk
    (covers regions plain random_genome never emits, e.g. post-shrink
    shapes)."""
    rng = random.Random(seed)
    genome = random_genome(rng)
    for _ in range(mutations):
        genome = genome.mutate(rng)
    return genome


class TestSerialization:
    @settings(max_examples=80, deadline=None)
    @given(seed=seeds, mutations=mutation_counts)
    def test_encode_decode_round_trip(self, seed, mutations):
        genome = genome_from(seed, mutations)
        assert DemographyGenome.decode(genome.encode()) == genome

    @settings(max_examples=40, deadline=None)
    @given(seed=seeds, mutations=mutation_counts)
    def test_encode_is_canonical(self, seed, mutations):
        """Equal genomes encode to equal bytes, and the encoding is its
        own fixed point through a dict round trip."""
        genome = genome_from(seed, mutations)
        again = DemographyGenome.from_dict(json.loads(genome.encode()))
        assert again.encode() == genome.encode()

    def test_decode_rejects_out_of_domain(self):
        data = HOSTILE_DEFAULT.as_dict()
        data["young_regions"] = 1  # single-region eden: collector pathology
        with pytest.raises(ValueError):
            DemographyGenome.from_dict(data)


class TestSearchOperators:
    @settings(max_examples=80, deadline=None)
    @given(seed=seeds, mutations=mutation_counts)
    def test_mutate_stays_valid(self, seed, mutations):
        genome = genome_from(seed, mutations)
        genome.validate()  # the walk itself already validated each step

    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, mutations=mutation_counts)
    def test_shrink_candidates_stay_valid_and_strictly_simpler(
        self, seed, mutations
    ):
        genome = genome_from(seed, mutations)
        candidates = genome.shrink_candidates()
        encodings = [candidate.encode() for candidate in candidates]
        assert len(set(encodings)) == len(encodings), "duplicate candidates"
        for candidate in candidates:
            candidate.validate()
            assert candidate.complexity() < genome.complexity()

    @settings(max_examples=30, deadline=None)
    @given(seed=seeds, mutations=mutation_counts)
    def test_shrink_to_fixpoint_terminates_inside_domain(self, seed, mutations):
        """Greedy always-accept descent bottoms out (complexity is a
        monotone integer measure) and every step stays valid."""
        genome = genome_from(seed, mutations)
        for _ in range(10_000):
            candidates = genome.shrink_candidates()
            if not candidates:
                break
            genome = candidates[0]
            genome.validate()
        else:
            pytest.fail("shrinking did not terminate")
        # the fully shrunk genome sits at the domain floor for the
        # monotone knobs shrinking drives down
        assert genome.collision_sites == 0
        assert genome.threads == BOUNDS["threads"][0]
        assert len(genome.classes) == BOUNDS["classes"][0]
        assert genome.oscillation_period_ops == 0
        assert genome.burst_size == 0


class TestDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(seed=seeds, mutations=mutation_counts)
    def test_same_seed_same_genome(self, seed, mutations):
        assert genome_from(seed, mutations).encode() == genome_from(
            seed, mutations
        ).encode()

    def test_same_genome_same_op_stream(self):
        """Two evaluations of one (genome, seed) pair replay the same
        allocation/call stream — the fingerprint pins every observable:
        clock totals, GC counts, pause stats, profiler state."""
        genome_json = HOSTILE_DEFAULT.encode()
        first = fuzz.evaluate_genome(genome_json, seed=7, ops=600, backend_name="reference")
        second = fuzz.evaluate_genome(genome_json, seed=7, ops=600, backend_name="reference")
        assert first["violation"] is None
        assert json.dumps(first["fingerprint"], sort_keys=True) == json.dumps(
            second["fingerprint"], sort_keys=True
        )

    def test_workload_expansion_is_pure(self):
        """Building the workload twice yields identical method rosters
        (names and classes), independent of dict iteration order."""
        first = AdversarialWorkload(HOSTILE_DEFAULT, seed=3)
        second = AdversarialWorkload(HOSTILE_DEFAULT, seed=3)
        assert first.max_retained == second.max_retained
        assert first._class_schedule == second._class_schedule

"""Tests for the phase-shifting workload module."""

import pytest

from repro.heap.object_model import IMMORTAL
from repro.workloads.base import run_workload
from repro.workloads.shifting import PhaseShiftWorkload


class TestConstruction:
    def test_invalid_residual_fraction(self):
        with pytest.raises(ValueError):
            PhaseShiftWorkload(residual_cache_fraction=1.5)

    def test_defaults(self):
        workload = PhaseShiftWorkload()
        assert workload.phase == 1
        assert not workload.reverse


class TestPhases:
    def test_shift_flips_phase(self):
        workload = PhaseShiftWorkload(shift_at_op=10)
        run_workload(workload, "g1", operations=12, heap_mb=24)
        assert workload.phase == 2

    def test_no_shift_before_boundary(self):
        workload = PhaseShiftWorkload(shift_at_op=1000)
        run_workload(workload, "g1", operations=20, heap_mb=24)
        assert workload.phase == 1

    def test_forward_phase1_caches_everything(self):
        workload = PhaseShiftWorkload(shift_at_op=10_000)
        run_workload(workload, "g1", operations=200, heap_mb=24)
        assert len(workload.cache) == 200

    def test_reverse_phase1_mostly_young(self):
        workload = PhaseShiftWorkload(
            shift_at_op=10_000, reverse=True, residual_cache_fraction=0.0
        )
        run_workload(workload, "g1", operations=200, heap_mb=24)
        assert workload.cache == []

    def test_forward_phase2_residual_fraction(self):
        workload = PhaseShiftWorkload(
            shift_at_op=0, residual_cache_fraction=0.10
        )
        run_workload(workload, "g1", operations=1000, heap_mb=24)
        cached = len(workload.cache) + workload.cache_bytes // max(
            1, workload.object_bytes
        )
        # ~10% of 1000 allocations cached (no eviction at this volume)
        assert 60 <= len(workload.cache) <= 140


class TestEviction:
    def test_cache_bounded_by_limit(self):
        workload = PhaseShiftWorkload(
            shift_at_op=10**9, cache_limit_bytes=64 << 10, object_bytes=1024
        )
        run_workload(workload, "g1", operations=500, heap_mb=24)
        assert workload.cache_bytes < 64 << 10

    def test_evicted_objects_die(self):
        workload = PhaseShiftWorkload(
            shift_at_op=10**9, cache_limit_bytes=32 << 10, object_bytes=1024
        )
        run_workload(workload, "g1", operations=100, heap_mb=24)
        now = workload.vm.clock.now_ns
        # survivors of the last eviction are the only live cache bytes
        live = [o for o in workload.cache if o.is_live(now)]
        assert len(live) == len(workload.cache)

    def test_site_id_zero_before_jit(self):
        workload = PhaseShiftWorkload()
        run_workload(workload, "g1", operations=5, heap_mb=24)
        assert workload.site_id() == 0

"""Property-based correctness tests for the collectors.

The fundamental GC safety/liveness properties, checked under random
allocation/death sequences:

* no live object is ever lost (safety);
* dead objects are eventually reclaimed (liveness/completeness);
* object identity and sizes survive any number of copies;
* heap accounting stays consistent throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.cms import CMSCollector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.gc.zgc import ZGCCollector
from repro.heap import BandwidthModel, RegionHeap, Space

#: a step: (size_in_kb, lives_steps_or_None, gen_hint)
steps = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=64),
        st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=1,
    max_size=120,
)

COLLECTORS = [
    lambda heap: G1Collector(heap, BandwidthModel(), young_regions=2),
    lambda heap: CMSCollector(heap, BandwidthModel(), young_regions=2),
    lambda heap: ZGCCollector(heap, BandwidthModel()),
    lambda heap: NG2CCollector(
        heap, BandwidthModel(), young_regions=2, use_profiler_advice=False
    ),
]
IDS = ["g1", "cms", "zgc", "ng2c"]


def drive(make_collector, sequence):
    """Run an allocation/death sequence; return (collector, live, dead)."""
    heap = RegionHeap(32 << 20)
    collector = make_collector(heap)
    live, dead, pending = [], [], []
    step_ns = 50_000  # mutator time per step
    for index, (size_kb, lifetime, gen_hint) in enumerate(sequence):
        collector.clock.advance_mutator(step_ns)
        now = collector.clock.now_ns
        death = float("inf") if lifetime is None else now + lifetime * step_ns
        obj = collector.allocate(size_kb << 10, death_time_ns=death, gen_hint=gen_hint)
        if lifetime is None:
            live.append(obj)
        else:
            pending.append(obj)
    final = collector.clock.now_ns + 200 * step_ns
    collector.clock.advance_mutator(200 * step_ns)
    for obj in pending:
        (live if obj.is_live(final) else dead).append(obj)
    return collector, live, dead


class TestSafety:
    @settings(max_examples=30, deadline=None)
    @given(sequence=steps)
    def test_live_objects_never_lost(self, sequence):
        for make, name in zip(COLLECTORS, IDS):
            collector, live, _ = drive(make, sequence)
            collector.collect_full("property-test")
            for obj in live:
                assert obj.region is not None, name
                assert obj in obj.region.objects, name

    @settings(max_examples=30, deadline=None)
    @given(sequence=steps)
    def test_sizes_survive_copies(self, sequence):
        for make, name in zip(COLLECTORS, IDS):
            collector, live, _ = drive(make, sequence)
            sizes = {id(o): o.size for o in live}
            collector.collect_full("property-test")
            for obj in live:
                assert obj.size == sizes[id(obj)], name

    @settings(max_examples=20, deadline=None)
    @given(sequence=steps)
    def test_heap_accounting_consistent(self, sequence):
        for make, name in zip(COLLECTORS, IDS):
            collector, live, dead = drive(make, sequence)
            heap = collector.heap
            by_regions = sum(r.used for r in heap.regions if r.space is not Space.FREE)
            assert heap.used_bytes() == by_regions, name
            assert heap.committed_bytes <= heap.capacity_bytes, name
            assert heap.max_committed_bytes >= heap.committed_bytes, name


class TestReclamation:
    @settings(max_examples=20, deadline=None)
    @given(sequence=steps)
    def test_generational_collectors_reclaim_young_garbage(self, sequence):
        """After a full + young collection with everything dead, the
        young spaces hold nothing."""
        for make, name in zip(COLLECTORS[:2] + COLLECTORS[3:], ["g1", "cms", "ng2c"]):
            collector, live, dead = drive(make, sequence)
            collector.collect_young()
            now = collector.clock.now_ns
            for region in collector.heap.regions_in(Space.EDEN):
                assert region.live_bytes(now) == region.used, name

    @settings(max_examples=20, deadline=None)
    @given(sequence=steps)
    def test_dead_objects_not_resurrected(self, sequence):
        for make, name in zip(COLLECTORS, IDS):
            collector, _, dead = drive(make, sequence)
            collector.collect_full("property-test")
            now = collector.clock.now_ns
            for obj in dead:
                assert not obj.is_live(now), name
                # a reclaimed object's region no longer lists it
                if obj.region is not None:
                    region = obj.region
                    if obj not in region.objects:
                        continue


class TestAges:
    @settings(max_examples=20, deadline=None)
    @given(sequence=steps)
    def test_ages_monotone_and_bounded(self, sequence):
        for make, name in zip(COLLECTORS, IDS):
            collector, live, _ = drive(make, sequence)
            ages_before = {id(o): o.age for o in live}
            collector.collect_full("property-test")
            for obj in live:
                assert obj.age >= ages_before[id(obj)], name
                assert 0 <= obj.age <= 15, name

"""Tests for lifetime inference: peak detection, triangle separation,
inflow correction, conflict flagging, and the inference engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap.header import NUM_AGES
from repro.core.context import encode
from repro.core.inference import (
    InferenceEngine,
    analyze_curve,
    distinct_triangles,
    find_peaks,
)
from repro.core.old_table import OldTable

curves = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=NUM_AGES, max_size=NUM_AGES
)


def curve(**columns):
    """Build a 16-column curve from sparse {age: count} kwargs."""
    result = [0] * NUM_AGES
    for key, value in columns.items():
        result[int(key.lstrip("a"))] = value
    return result


class TestFindPeaks:
    def test_empty_curve(self):
        assert find_peaks([0] * NUM_AGES) == []

    def test_single_triangle(self):
        c = curve(a2=10, a3=50, a4=100, a5=40, a6=5)
        assert find_peaks(c) == [4]

    def test_two_triangles(self):
        c = curve(a0=100, a6=80)
        assert find_peaks(c) == [0, 6]

    def test_noise_below_min_count_ignored(self):
        c = curve(a0=1000, a9=4)
        assert find_peaks(c, min_count=8) == [0]

    def test_insignificant_secondary_bump_ignored(self):
        c = curve(a0=1000, a9=20)
        assert find_peaks(c, significance=0.05) == [0]
        assert 9 in find_peaks(c, significance=0.01)

    def test_plateau_counts_once(self):
        c = curve(a3=50, a4=50, a5=50)
        assert find_peaks(c) == [3]

    def test_peak_at_last_column(self):
        c = curve(a14=20, a15=90)
        assert find_peaks(c) == [15]

    @given(c=curves)
    def test_peaks_are_valid_indices(self, c):
        for peak in find_peaks(c):
            assert 0 <= peak < NUM_AGES
            assert c[peak] > 0

    @given(c=curves)
    def test_peaks_sorted_ascending(self, c):
        peaks = find_peaks(c)
        assert peaks == sorted(peaks)


class TestDistinctTriangles:
    def test_deep_valley_keeps_both(self):
        c = curve(a0=100, a1=5, a6=80)
        assert distinct_triangles(c, [0, 6]) == [0, 6]

    def test_shallow_valley_merges_to_taller(self):
        c = curve(a2=100, a3=70, a4=90)
        assert distinct_triangles(c, [2, 4]) == [2]

    def test_single_peak_passthrough(self):
        assert distinct_triangles(curve(a3=10), [3]) == [3]

    def test_empty_passthrough(self):
        assert distinct_triangles(curve(), []) == []


class TestAnalyzeCurve:
    def test_triangle_estimate(self):
        analysis = analyze_curve(1, curve(a3=20, a4=90, a5=30))
        assert analysis.estimated_age == 4
        assert not analysis.is_conflict

    def test_conflict_flagged(self):
        analysis = analyze_curve(1, curve(a0=500, a6=400))
        assert analysis.is_conflict
        assert analysis.peaks == (0, 6)

    def test_inflow_correction_removes_fresh_allocation_peak(self):
        """A context whose objects all die at age 6: column 0 holds one
        inter-GC interval's fresh allocations (~total/16), which must
        not read as a die-young cohort."""
        total_live = 900
        c = curve(a6=total_live)
        fresh = (total_live + 60) // 16
        c[0] = fresh  # plausible steady-state inflow
        analysis = analyze_curve(1, c, inflow_period=16)
        assert not analysis.is_conflict
        assert analysis.estimated_age == 6

    def test_genuine_die_young_survives_correction(self):
        """Objects that actually die before their first GC accumulate in
        column 0 far beyond one interval's inflow."""
        c = curve(a0=1000, a6=500)
        analysis = analyze_curve(1, c, inflow_period=16)
        assert analysis.is_conflict

    def test_total_reported(self):
        assert analyze_curve(1, curve(a0=10, a5=20)).total == 30

    @given(c=curves)
    def test_estimate_in_range(self, c):
        analysis = analyze_curve(1, c)
        assert 0 <= analysis.estimated_age < NUM_AGES

    @given(c=curves)
    def test_conflict_iff_multiple_peaks(self, c):
        analysis = analyze_curve(1, c)
        assert analysis.is_conflict == (len(analysis.peaks) >= 2)


class TestInferenceEngine:
    def _table_with(self, context, counts):
        table = OldTable()
        table.register_site(context >> 16)
        row = table._row(context)
        for i, value in enumerate(counts):
            row[i] = value
        return table

    def test_due_every_period(self):
        engine = InferenceEngine(period_gcs=16)
        assert not engine.due(0)
        assert not engine.due(15)
        assert engine.due(16)
        assert engine.due(32)
        assert not engine.due(17)

    def test_run_analyzes_and_clears(self):
        ctx = encode(3, 0)
        table = self._table_with(ctx, curve(a4=100))
        engine = InferenceEngine(min_samples=10)
        result = engine.run(table, 16)
        assert result.analyses[ctx].estimated_age == 4
        assert table.total_objects(ctx) == 0  # freshness clear

    def test_min_samples_gate(self):
        ctx = encode(3, 0)
        table = self._table_with(ctx, curve(a4=5))
        engine = InferenceEngine(min_samples=10)
        result = engine.run(table, 16)
        assert ctx not in result.analyses

    def test_conflicted_sites_collected(self):
        ctx = encode(9, 0)
        table = self._table_with(ctx, curve(a0=500, a6=400))
        engine = InferenceEngine(min_samples=10)
        result = engine.run(table, 16)
        assert 9 in result.conflicted_sites

    def test_pretenured_contexts_never_conflict(self):
        """Once a context is pretenured, its column 0 is pure inflow
        artifact (no survival flow) and must be ignored."""
        ctx = encode(9, 0)
        table = self._table_with(ctx, curve(a0=5000, a6=400))
        engine = InferenceEngine(min_samples=10)
        result = engine.run(table, 16, pretenured=lambda c: True)
        analysis = result.analyses[ctx]
        assert not analysis.is_conflict
        assert not result.conflicted_sites
        assert analysis.estimated_age == 6

    def test_pretenured_context_below_samples_after_col0_skip(self):
        ctx = encode(9, 0)
        table = self._table_with(ctx, curve(a0=5000, a6=4))
        engine = InferenceEngine(min_samples=10)
        result = engine.run(table, 16, pretenured=lambda c: True)
        assert ctx not in result.analyses

    def test_passes_counted(self):
        engine = InferenceEngine()
        table = OldTable()
        engine.run(table, 16)
        engine.run(table, 32)
        assert engine.passes_run == 2

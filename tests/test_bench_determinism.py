"""Determinism net over the parallel runner (the ISSUE's acceptance
criterion): the pause study rendered serially, with ``--jobs 4`` and
from a warm cache must be byte-identical, and the warm re-run must
perform zero simulations."""

import json

import pytest

from repro.bench.cli import main

# two big workloads keep the full 4-collector grid (8 cells) under test
# budget while still giving the pool something to fan out
WORKLOADS = ["cassandra-wi", "graphchi-cc"]


@pytest.fixture(autouse=True)
def determinism_scale(monkeypatch):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.05")


def rendered(capsys):
    """Stdout minus the output-path echo lines (the only lines allowed
    to differ between runs: they name run-specific tmp directories)."""
    out = capsys.readouterr().out
    return "".join(
        line
        for line in out.splitlines(keepends=True)
        if " written to " not in line
    )


def run_fig8(tmp_path, capsys, tag, extra, workloads=WORKLOADS):
    json_dir = tmp_path / tag
    argv = ["fig8", "--workloads", *workloads, "--json-dir", str(json_dir)]
    assert main(argv + extra) == 0
    return (json_dir / "fig8.json").read_bytes(), rendered(capsys)


class TestPauseStudyDeterminism:
    def test_serial_parallel_and_cached_runs_are_byte_identical(
        self, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        metrics_path = tmp_path / "metrics.json"

        serial_json, serial_text = run_fig8(
            tmp_path, capsys, "serial", ["--no-cache"]
        )
        parallel_json, parallel_text = run_fig8(
            tmp_path, capsys, "parallel", ["--jobs", "4", "--cache-dir", cache_dir]
        )
        warm_json, warm_text = run_fig8(
            tmp_path,
            capsys,
            "warm",
            [
                "--jobs",
                "4",
                "--cache-dir",
                cache_dir,
                "--metrics-out",
                str(metrics_path),
            ],
        )

        # the rendered figure and the JSON artifact never depend on the
        # worker count or on whether results came from cache
        assert parallel_text == serial_text
        assert warm_text == serial_text
        assert parallel_json == serial_json
        assert warm_json == serial_json
        assert "Figure 8" in serial_text

        # a warm-cache re-run performs zero simulations
        doc = json.loads(metrics_path.read_text())
        runner_stats = doc["runner"]
        assert runner_stats["simulations"] == 0
        assert runner_stats["cache_misses"] == 0
        assert runner_stats["cache_hits"] == runner_stats["cells"] > 0

    def test_base_seed_changes_the_results(self, tmp_path, capsys):
        """--seed actually reaches the cells: a different base seed
        produces a different (still deterministic) artifact.  Uses
        cassandra-wi — the graphchi workloads are pure graph traversals
        that never consult their RNG, so their pauses are seed-invariant
        by design."""
        default_json, _ = run_fig8(
            tmp_path, capsys, "s42", ["--no-cache"], workloads=["cassandra-wi"]
        )
        other_json, _ = run_fig8(
            tmp_path,
            capsys,
            "s43",
            ["--no-cache", "--seed", "43"],
            workloads=["cassandra-wi"],
        )
        assert other_json != default_json

    def test_resume_requires_an_existing_cache(self, tmp_path, capsys):
        missing = str(tmp_path / "never-created")
        assert (
            main(
                [
                    "fig8",
                    "--workloads",
                    *WORKLOADS,
                    "--resume",
                    "--cache-dir",
                    missing,
                ]
            )
            == 2
        )
        err = capsys.readouterr().err
        assert "cache" in err

    def test_resume_and_no_cache_conflict(self, capsys):
        assert main(["fig8", "--resume", "--no-cache"]) == 2
        assert "--resume" in capsys.readouterr().err

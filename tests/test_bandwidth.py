"""Tests for the memory-bandwidth copy-cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap.bandwidth import BandwidthModel


class TestCopyCost:
    def test_zero_bytes_zero_cost(self):
        assert BandwidthModel().copy_ns(0) == 0.0

    def test_negative_bytes_zero_cost(self):
        assert BandwidthModel().copy_ns(-10) == 0.0

    def test_copy_cost_linear_in_bytes(self):
        model = BandwidthModel()
        assert model.copy_ns(2_000_000) == pytest.approx(2 * model.copy_ns(1_000_000))

    def test_single_thread_bandwidth(self):
        model = BandwidthModel(
            copy_bandwidth_bytes_per_s=1e9, gc_threads=1, parallel_alpha=0.7
        )
        # 1 GB at 1 GB/s = 1 s
        assert model.copy_ns(10**9) == pytest.approx(1e9)

    def test_more_threads_are_faster(self):
        slow = BandwidthModel(gc_threads=1)
        fast = BandwidthModel(gc_threads=8)
        assert fast.copy_ns(10**8) < slow.copy_ns(10**8)

    def test_parallel_scaling_sublinear(self):
        model = BandwidthModel(gc_threads=8, parallel_alpha=0.7)
        assert 1.0 < model.parallel_speedup() < 8.0

    @given(threads=st.integers(min_value=1, max_value=64))
    def test_speedup_at_least_one(self, threads):
        assert BandwidthModel(gc_threads=threads).parallel_speedup() >= 1.0


class TestPauseModel:
    def test_fixed_costs_floor(self):
        model = BandwidthModel()
        pause = model.pause_ns(0, regions_scanned=0)
        assert pause == model.safepoint_ns + model.root_scan_ns

    def test_region_scan_cost(self):
        model = BandwidthModel()
        base = model.pause_ns(0, regions_scanned=0)
        assert model.pause_ns(0, regions_scanned=4) == pytest.approx(
            base + 4 * model.region_scan_ns
        )

    def test_survivor_profiling_cost(self):
        model = BandwidthModel()
        base = model.pause_ns(0, 0)
        with_profiling = model.pause_ns(0, 0, survivors_profiled=1000)
        assert with_profiling == pytest.approx(base + 1000 * model.survivor_profile_ns)

    @given(
        copied=st.integers(min_value=0, max_value=1 << 30),
        regions=st.integers(min_value=0, max_value=1000),
        survivors=st.integers(min_value=0, max_value=10**6),
    )
    def test_pause_monotone_in_all_inputs(self, copied, regions, survivors):
        model = BandwidthModel()
        pause = model.pause_ns(copied, regions, survivors)
        assert pause >= model.pause_ns(0, 0, 0)
        assert model.pause_ns(copied + 1, regions, survivors) >= pause

    def test_frozen(self):
        model = BandwidthModel()
        with pytest.raises(Exception):
            model.gc_threads = 16

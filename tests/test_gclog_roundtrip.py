"""Property-style round trip: format_pause -> parse_line recovers every
field, for all nine pause kinds, including sub-millisecond durations and
zero-byte collections."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.gc.collector import PauseEvent
from repro.metrics.gclog import (
    _CAUSE,
    GcLogParseError,
    format_pause,
    kind_for_cause,
    parse_line,
    parse_log,
)

ALL_KINDS = sorted(_CAUSE)

#: format_pause prints seconds and milliseconds with %0.3f, so parsing
#: recovers them only to half of the last printed digit (plus float fuzz)
MS_TOLERANCE = 0.00051
S_TOLERANCE = 0.00051

kinds = st.sampled_from(ALL_KINDS)
gc_numbers = st.integers(min_value=0, max_value=10**6)
start_ns = st.integers(min_value=0, max_value=10**13)
#: down to single nanoseconds — far below one millisecond
duration_ns = st.one_of(
    st.integers(min_value=0, max_value=10**6),  # sub-millisecond
    st.integers(min_value=0, max_value=10**9),
)
heap_mb = st.integers(min_value=0, max_value=10**5)


@settings(max_examples=300, deadline=None)
@given(
    kind=kinds,
    gc_number=gc_numbers,
    start=start_ns,
    duration=duration_ns,
    before=heap_mb,
    after=heap_mb,
    cap=heap_mb,
)
def test_round_trip_recovers_every_field(
    kind, gc_number, start, duration, before, after, cap
):
    pause = PauseEvent(
        gc_number=gc_number, start_ns=start, duration_ns=float(duration), kind=kind
    )
    line = format_pause(pause, cap, before, after)
    record = parse_line(line)
    assert record is not None, line
    assert record.gc_number == gc_number
    assert record.cause == _CAUSE[kind]
    assert kind_for_cause(record.cause) == kind
    assert record.heap_before_mb == before
    assert record.heap_after_mb == after
    assert record.heap_capacity_mb == cap
    assert math.isclose(record.timestamp_s, start / 1e9, abs_tol=S_TOLERANCE)
    assert math.isclose(record.duration_ms, duration / 1e6, abs_tol=MS_TOLERANCE)


def test_every_kind_round_trips_exactly():
    """Deterministic sweep: one line per kind, sub-ms duration,
    zero-byte collection (before == after)."""
    lines = []
    for index, kind in enumerate(ALL_KINDS):
        pause = PauseEvent(
            gc_number=index,
            start_ns=index * 1_000_000,
            duration_ns=123_456.0,  # 0.123456 ms -> prints 0.123
            kind=kind,
            bytes_copied=0,
        )
        lines.append(format_pause(pause, 96, 42, 42))
    records = parse_log("\n".join(lines))
    assert len(records) == len(ALL_KINDS)
    for index, (kind, record) in enumerate(zip(ALL_KINDS, records)):
        assert record.gc_number == index
        assert kind_for_cause(record.cause) == kind
        assert record.heap_before_mb == record.heap_after_mb == 42
        assert math.isclose(record.duration_ms, 0.123, abs_tol=1e-9)


def test_unknown_kind_uses_fallback_cause():
    pause = PauseEvent(gc_number=7, start_ns=0, duration_ns=1e6, kind="exotic")
    record = parse_line(format_pause(pause, 96, 10, 5))
    assert record is not None
    assert record.cause == "Pause (exotic)"
    assert kind_for_cause(record.cause) == "exotic"


def test_kind_for_cause_rejects_noise():
    assert kind_for_cause("Concurrent Mark") is None
    assert kind_for_cause("") is None


# -- strict parsing: malformed and out-of-order rejection ---------------------


def well_formed_log(starts):
    """One valid line per start time, in the given order."""
    lines = []
    for index, start in enumerate(starts):
        pause = PauseEvent(
            gc_number=index, start_ns=start, duration_ns=1e6, kind="young"
        )
        lines.append(format_pause(pause, 96, 40, 20))
    return "\n".join(lines)


#: distinct enough that %0.3f-second formatting preserves the ordering
monotone_starts = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=2, max_size=12, unique=True
).map(lambda ns: sorted(n * 10**7 for n in ns))

garbage_lines = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\n\r"),
    min_size=1,
).filter(
    lambda s: s.strip()
    and s.splitlines() == [s]  # no exotic line separators (\x1e, U+2028, ...)
    and parse_line(s) is None
)


@settings(max_examples=100, deadline=None)
@given(starts=monotone_starts)
def test_strict_accepts_every_well_formed_monotone_log(starts):
    text = well_formed_log(starts)
    assert parse_log(text, strict=True) == parse_log(text)


@settings(max_examples=100, deadline=None)
@given(starts=monotone_starts, garbage=garbage_lines, data=st.data())
def test_strict_rejects_injected_garbage_with_line_number(starts, garbage, data):
    lines = well_formed_log(starts).splitlines()
    position = data.draw(st.integers(min_value=0, max_value=len(lines)))
    lines.insert(position, garbage)
    text = "\n".join(lines)
    # lenient mode silently skips the garbage — the exact data-loss
    # failure mode strict mode exists to surface
    assert len(parse_log(text)) == len(starts)
    with pytest.raises(GcLogParseError) as excinfo:
        parse_log(text, strict=True)
    assert excinfo.value.reason == "malformed"
    assert excinfo.value.line_number == position + 1
    assert excinfo.value.line == garbage


@settings(max_examples=100, deadline=None)
@given(starts=monotone_starts, data=st.data())
def test_strict_rejects_time_reversal(starts, data):
    lines = well_formed_log(starts).splitlines()
    # move a later (strictly larger-timestamp) line in front of an
    # earlier one: the earlier line is now out of order
    source = data.draw(st.integers(min_value=1, max_value=len(lines) - 1))
    moved = lines.pop(source)
    destination = data.draw(st.integers(min_value=0, max_value=source - 1))
    lines.insert(destination, moved)
    with pytest.raises(GcLogParseError) as excinfo:
        parse_log("\n".join(lines), strict=True)
    assert excinfo.value.reason == "out-of-order"
    # lenient mode still returns every line, rewind and all
    assert len(parse_log("\n".join(lines))) == len(starts)


def test_strict_allows_blank_lines_and_equal_timestamps():
    text = well_formed_log([5_000_000, 5_000_000, 7_000_000]) + "\n\n"
    records = parse_log(text, strict=True)
    assert len(records) == 3

"""Property-style round trip: format_pause -> parse_line recovers every
field, for all nine pause kinds, including sub-millisecond durations and
zero-byte collections."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.collector import PauseEvent
from repro.metrics.gclog import (
    _CAUSE,
    format_pause,
    kind_for_cause,
    parse_line,
    parse_log,
)

ALL_KINDS = sorted(_CAUSE)

#: format_pause prints seconds and milliseconds with %0.3f, so parsing
#: recovers them only to half of the last printed digit (plus float fuzz)
MS_TOLERANCE = 0.00051
S_TOLERANCE = 0.00051

kinds = st.sampled_from(ALL_KINDS)
gc_numbers = st.integers(min_value=0, max_value=10**6)
start_ns = st.integers(min_value=0, max_value=10**13)
#: down to single nanoseconds — far below one millisecond
duration_ns = st.one_of(
    st.integers(min_value=0, max_value=10**6),  # sub-millisecond
    st.integers(min_value=0, max_value=10**9),
)
heap_mb = st.integers(min_value=0, max_value=10**5)


@settings(max_examples=300, deadline=None)
@given(
    kind=kinds,
    gc_number=gc_numbers,
    start=start_ns,
    duration=duration_ns,
    before=heap_mb,
    after=heap_mb,
    cap=heap_mb,
)
def test_round_trip_recovers_every_field(
    kind, gc_number, start, duration, before, after, cap
):
    pause = PauseEvent(
        gc_number=gc_number, start_ns=start, duration_ns=float(duration), kind=kind
    )
    line = format_pause(pause, cap, before, after)
    record = parse_line(line)
    assert record is not None, line
    assert record.gc_number == gc_number
    assert record.cause == _CAUSE[kind]
    assert kind_for_cause(record.cause) == kind
    assert record.heap_before_mb == before
    assert record.heap_after_mb == after
    assert record.heap_capacity_mb == cap
    assert math.isclose(record.timestamp_s, start / 1e9, abs_tol=S_TOLERANCE)
    assert math.isclose(record.duration_ms, duration / 1e6, abs_tol=MS_TOLERANCE)


def test_every_kind_round_trips_exactly():
    """Deterministic sweep: one line per kind, sub-ms duration,
    zero-byte collection (before == after)."""
    lines = []
    for index, kind in enumerate(ALL_KINDS):
        pause = PauseEvent(
            gc_number=index,
            start_ns=index * 1_000_000,
            duration_ns=123_456.0,  # 0.123456 ms -> prints 0.123
            kind=kind,
            bytes_copied=0,
        )
        lines.append(format_pause(pause, 96, 42, 42))
    records = parse_log("\n".join(lines))
    assert len(records) == len(ALL_KINDS)
    for index, (kind, record) in enumerate(zip(ALL_KINDS, records)):
        assert record.gc_number == index
        assert kind_for_cause(record.cause) == kind
        assert record.heap_before_mb == record.heap_after_mb == 42
        assert math.isclose(record.duration_ms, 0.123, abs_tol=1e-9)


def test_unknown_kind_uses_fallback_cause():
    pause = PauseEvent(gc_number=7, start_ns=0, duration_ns=1e6, kind="exotic")
    record = parse_line(format_pause(pause, 96, 10, 5))
    assert record is not None
    assert record.cause == "Pause (exotic)"
    assert kind_for_cause(record.cause) == "exotic"


def test_kind_for_cause_rejects_noise():
    assert kind_for_cause("Concurrent Mark") is None
    assert kind_for_cause("") is None

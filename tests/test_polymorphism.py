"""Polymorphic call sites: the reason ROLP cannot rely on precise
caller/callee information (paper Sections 5 and 7.2.1).

A megamorphic site must never be inlined (so it *can* carry profiling
code), and the thread-stack-state machinery must stay balanced no
matter which receiver a call dispatches to.
"""

from repro import build_vm
from repro.runtime import Method


def make_receivers(n, size=20):
    """n small same-shaped callees (inlinable if monomorphic)."""
    return [
        Method("visit", "app.data.Impl%d" % i, lambda ctx: ctx.work(50), bytecode_size=size)
        for i in range(n)
    ]


class TestPolymorphicSites:
    def test_megamorphic_site_not_inlined(self):
        vm, _ = build_vm("rolp", heap_mb=16)
        thread = vm.spawn_thread()
        receivers = make_receivers(4)

        def body(ctx, index):
            ctx.call(1, receivers[index % len(receivers)])

        caller = Method("dispatch", "app.data.Visitor", body, bytecode_size=120)
        for i in range(vm.flags.compile_threshold * 3):
            vm.run(thread, caller, i)
        site = caller.call_sites[1]
        assert site.polymorphic
        assert not site.inlined
        assert site.instrumented  # profiling code can live here

    def test_monomorphic_same_shape_is_inlined(self):
        vm, _ = build_vm("rolp", heap_mb=16)
        thread = vm.spawn_thread()
        receivers = make_receivers(1)

        def body(ctx, index):
            ctx.call(1, receivers[0])

        caller = Method("dispatch", "app.data.Visitor", body, bytecode_size=120)
        for i in range(vm.flags.compile_threshold * 3):
            vm.run(thread, caller, i)
        site = caller.call_sites[1]
        assert not site.polymorphic
        assert site.inlined
        assert not site.instrumented

    def test_stack_state_balanced_across_receivers(self):
        """Slow-path profiling on a polymorphic site: the increment is
        the site's, not the receiver's, so any dispatch balances."""
        from repro.runtime import VMFlags

        vm, _ = build_vm(
            "rolp", heap_mb=16, flags=VMFlags(call_profiling_mode="slow")
        )
        thread = vm.spawn_thread()
        receivers = make_receivers(5, size=60)  # too big to inline
        observed = []

        def body(ctx, index):
            ctx.call(1, receivers[index % len(receivers)])
            observed.append(ctx.thread.stack_state)

        caller = Method("dispatch", "app.data.Visitor", body, bytecode_size=120)
        for i in range(vm.flags.compile_threshold * 2):
            vm.run(thread, caller, i)
        # after every return from the callee the register is back to the
        # caller frame's view; after every operation it is zero
        assert thread.stack_state == 0
        assert thread.frames == []

    def test_late_polymorphism_after_compile(self):
        """A site observed monomorphic at JIT time that later dispatches
        to a second receiver (HotSpot would deoptimize; the model keeps
        the inlining decision but records both targets)."""
        vm, _ = build_vm("rolp", heap_mb=16)
        thread = vm.spawn_thread()
        receivers = make_receivers(2)
        switch = {"wide": False}

        def body(ctx, index):
            receiver = receivers[index % 2 if switch["wide"] else 0]
            ctx.call(1, receiver)

        caller = Method("dispatch", "app.data.Visitor", body, bytecode_size=120)
        for i in range(vm.flags.compile_threshold + 10):
            vm.run(thread, caller, i)
        switch["wide"] = True
        for i in range(50):
            vm.run(thread, caller, i)
        site = caller.call_sites[1]
        assert site.polymorphic
        assert thread.stack_state == 0

"""Unit tests for the experiment runner (repro.bench.runner): cell
identity, seed derivation, memoisation, the disk cache and the worker
pool — all exercised through a cheap test-only cell kind."""

import pickle

import pytest

from repro.bench import runner as runner_mod
from repro.bench.runner import (
    DEFAULT_BASE_SEED,
    Cell,
    ResultCache,
    Runner,
    cell_kind,
    derive_seed,
    make_cell,
    run_cells,
    shared_seed_scope,
)
from repro.telemetry import TelemetrySession

# every inline execution appends here, so tests can count simulations
_EXECUTED = []


@cell_kind("echo_test", track=lambda p: "echo/%s" % p["tag"])
def _echo_cell(seed, telemetry, tag, value=0):
    _EXECUTED.append(tag)
    return {"tag": tag, "value": value, "seed": seed}


@cell_kind("scoped_test", seed_scope=shared_seed_scope("scoped_test", "treatment"))
def _scoped_cell(seed, telemetry, subject, treatment):
    return seed


@pytest.fixture(autouse=True)
def _reset_executions():
    del _EXECUTED[:]


def echo(tag, value=0):
    return make_cell("echo_test", tag=tag, value=value)


class TestCellIdentity:
    def test_key_is_stable_and_param_order_independent(self):
        a = make_cell("echo_test", tag="x", value=3)
        b = make_cell("echo_test", value=3, tag="x")
        assert a == b
        assert a.key == b.key == "echo_test(tag='x', value=3)"

    def test_label_uses_registered_track_name(self):
        assert echo("x").label == "echo/x"
        assert Cell("no_such_kind", (("a", 1),)).label == "no_such_kind(a=1)"

    def test_non_scalar_params_rejected(self):
        with pytest.raises(TypeError, match="not a scalar"):
            make_cell("echo_test", tag=["a", "list"])
        with pytest.raises(TypeError, match="not a scalar"):
            make_cell("echo_test", tag={"a": 1})

    def test_scalars_of_every_kind_accepted(self):
        cell = make_cell("echo_test", s="x", i=1, f=0.5, b=True, n=None)
        assert "n=None" in cell.key

    def test_unknown_kind_raises_with_registered_list(self):
        with pytest.raises(KeyError, match="unknown cell kind"):
            Runner().run([make_cell("no_such_kind")])


class TestDeriveSeed:
    def test_deterministic_and_key_sensitive(self):
        seed = derive_seed("pause(collector='g1')")
        assert seed == derive_seed("pause(collector='g1')")
        assert seed != derive_seed("pause(collector='cms')")
        assert 0 <= seed < 1 << 64

    def test_base_seed_changes_every_cell_seed(self):
        key = echo("x").key
        assert derive_seed(key, 42) != derive_seed(key, 43)
        assert derive_seed(key) == derive_seed(key, DEFAULT_BASE_SEED)

    def test_runner_seeds_cells_by_derivation(self):
        runner = Runner(base_seed=7)
        (result,) = runner.run([echo("seeded")])
        assert result["seed"] == derive_seed(echo("seeded").key, 7)

    def test_seed_scope_shares_seeds_across_treatments(self):
        """Cells of one controlled comparison (same subject, different
        treatment) replay the same seed; other subjects do not."""
        runner = Runner()
        a1, a2, b = runner.run(
            [
                make_cell("scoped_test", subject="a", treatment="g1"),
                make_cell("scoped_test", subject="a", treatment="rolp"),
                make_cell("scoped_test", subject="b", treatment="g1"),
            ]
        )
        assert a1 == a2 != b
        # the treatment-free scope, not the full key, feeds derivation
        assert a1 == derive_seed("scoped_test(subject='a')")

    def test_seed_scope_does_not_merge_cache_entries(self, tmp_path):
        """Shared seeds must not alias cache entries: the cache key
        still covers the full cell key."""
        cache = ResultCache(str(tmp_path))
        g1 = make_cell("scoped_test", subject="a", treatment="g1")
        rolp = make_cell("scoped_test", subject="a", treatment="rolp")
        runner = Runner(cache=cache)
        runner.run([g1, rolp])
        assert runner.stats.simulations == 2
        seed = runner.seed_for(g1)
        assert cache.path(g1, seed) != cache.path(rolp, seed)


class TestMemoisation:
    def test_duplicates_in_one_call_execute_once(self):
        results = Runner().run([echo("dup"), echo("dup"), echo("other")])
        assert _EXECUTED == ["dup", "other"]
        assert results[0] is results[1]

    def test_memo_spans_run_calls(self):
        runner = Runner()
        first = runner.run([echo("shared")])
        second = runner.run([echo("shared"), echo("new")])
        assert _EXECUTED == ["shared", "new"]
        assert second[0] is first[0]
        assert runner.stats.memo_hits == 1

    def test_results_return_in_submission_order(self):
        cells = [echo(tag) for tag in ("c", "a", "b")]
        results = Runner().run(cells)
        assert [r["tag"] for r in results] == ["c", "a", "b"]


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cell, seed = echo("rt"), 123
        assert cache.load(cell, seed) == (False, None)
        cache.store(cell, seed, {"answer": 42})
        assert cache.load(cell, seed) == (True, {"answer": 42})

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cell, seed = echo("corrupt"), 1
        cache.store(cell, seed, "ok")
        with open(cache.path(cell, seed), "wb") as handle:
            handle.write(b"\x00not a pickle")
        hit, _ = cache.load(cell, seed)
        assert not hit

    def test_stale_key_material_is_a_miss(self, tmp_path):
        """An entry written under other key material (e.g. an older
        CACHE_VERSION) is rejected even when the file path collides."""
        cache = ResultCache(str(tmp_path))
        cell, seed = echo("stale"), 1
        cache.store(cell, seed, "ok")
        path = cache.path(cell, seed)
        with open(path, "rb") as handle:
            entry = pickle.load(handle)
        entry["key_material"] = "rolp-bench-cache/v0\n" + cell.key
        with open(path, "wb") as handle:
            pickle.dump(entry, handle)
        hit, _ = cache.load(cell, seed)
        assert not hit

    def test_scale_and_seed_partition_the_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        cell = echo("scaled")
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.05")
        cache.store(cell, 1, "at 0.05")
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.1")
        hit, _ = cache.load(cell, 1)
        assert not hit  # other scale
        monkeypatch.setenv("ROLP_BENCH_SCALE", "0.05")
        assert cache.load(cell, 1) == (True, "at 0.05")
        hit, _ = cache.load(cell, 2)
        assert not hit  # other seed

    def test_runner_warm_cache_performs_zero_simulations(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cells = [echo("w1"), echo("w2")]
        cold = Runner(cache=cache)
        cold_results = cold.run(cells)
        assert cold.stats.simulations == 2

        del _EXECUTED[:]
        warm = Runner(cache=cache)  # fresh memo, same disk cache
        warm_results = warm.run(cells)
        assert _EXECUTED == []
        assert warm.stats.as_dict() | {"elapsed_s": 0} == {
            "cells": 2,
            "memo_hits": 0,
            "cache_hits": 2,
            "cache_misses": 0,
            "simulations": 0,
            "elapsed_s": 0,
        }
        assert warm_results == cold_results


class TestTraceIds:
    def test_derivation_is_deterministic_and_key_sensitive(self):
        from repro.bench.runner import derive_trace_id

        tid = derive_trace_id(echo("a").key, DEFAULT_BASE_SEED)
        assert tid == derive_trace_id(echo("a").key, DEFAULT_BASE_SEED)
        assert len(tid) == 16
        assert int(tid, 16) >= 0  # hex
        assert tid != derive_trace_id(echo("b").key, DEFAULT_BASE_SEED)
        assert tid != derive_trace_id(echo("a").key, DEFAULT_BASE_SEED + 1)

    def test_unlike_seeds_trace_ids_differ_across_treatments(self):
        """seed_scope collapses the *seed* across treatments; the trace id
        must still tell the cells apart (it hashes the full key)."""
        a = make_cell("scoped_test", subject="s", treatment="x")
        b = make_cell("scoped_test", subject="s", treatment="y")
        runner = Runner()
        runner.run([a, b])
        assert runner.seed_for(a) == runner.seed_for(b)
        assert runner.trace_ids[a.key] != runner.trace_ids[b.key]

    def test_runner_records_ids_even_for_cached_cells(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cell = echo("warm-id")
        cold = Runner(cache=cache)
        cold.run([cell])
        warm = Runner(cache=cache)
        warm.run([cell])
        assert warm.stats.simulations == 0
        assert warm.trace_ids[cell.key] == cold.trace_ids[cell.key]

    def test_cache_payload_carries_the_trace_id(self, tmp_path):
        from repro.bench.runner import derive_trace_id

        cache = ResultCache(str(tmp_path))
        cell, seed = echo("stamped"), 77
        cache.store(cell, seed, "ok")
        with open(cache.path(cell, seed), "rb") as handle:
            entry = pickle.load(handle)
        assert entry["trace_id"] == derive_trace_id(cell.key, seed)
        assert cache.load(cell, seed) == (True, "ok")


class TestPool:
    def test_parallel_results_match_serial_in_order(self, tmp_path):
        cells = [echo(tag, value=i) for i, tag in enumerate("abcd")]
        serial = Runner().run(cells)
        parallel = Runner(jobs=4).run(cells)
        assert parallel == serial

    def test_parallel_populates_the_shared_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cells = [echo("p1"), echo("p2")]
        Runner(jobs=2, cache=cache).run(cells)
        warm = Runner(cache=cache)
        warm.run(cells)
        assert warm.stats.cache_hits == 2
        assert warm.stats.simulations == 0


class TestTelemetryAndHelpers:
    def test_counters_reach_the_session_metrics(self, tmp_path):
        session = TelemetrySession()
        runner = Runner(cache=ResultCache(str(tmp_path)), session=session)
        runner.run([echo("t1"), echo("t2")])
        runner.run([echo("t1")])  # memoised, no new counters
        counters = session.metrics.counter
        assert counters("bench_runner_cells").total() == 2
        assert counters("bench_runner_simulations").total() == 2
        assert counters("bench_runner_cache_misses").total() == 2
        assert counters("bench_runner_cache_hits").total() == 0

    def test_inline_runs_carry_per_cell_trace_tracks(self):
        session = TelemetrySession()
        Runner(session=session).run([echo("tracked")])
        assert "echo/tracked" in session.sink.process_names.values()

    def test_run_cells_uses_given_runner_else_throwaway(self):
        runner = Runner()
        run_cells([echo("via-runner")], runner=runner)
        assert runner.stats.cells == 1
        results = run_cells([echo("via-helper")])
        assert results[0]["tag"] == "via-helper"

    def test_progress_lines_go_to_stderr(self, capsys):
        Runner(progress=True).run([echo("noisy")])
        captured = capsys.readouterr()
        assert "[runner] (1/1)" in captured.err
        assert "echo/noisy" in captured.err
        assert captured.out == ""

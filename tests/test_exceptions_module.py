"""Tests for the simulated-exception model and unwind semantics in the
full interpreter (beyond the frame-level tests in test_interpreter)."""

import pytest

from repro import build_vm
from repro.runtime import Method, VMFlags
from repro.runtime.exceptions import SimException


class TestSimException:
    def test_handled_depth_validation(self):
        with pytest.raises(ValueError):
            SimException(handled_depth=-1)

    def test_should_stop_at(self):
        exc = SimException(handled_depth=2)
        assert not exc.should_stop_at(1)
        assert exc.should_stop_at(2)
        assert exc.should_stop_at(3)

    def test_depth_zero_caught_in_thrower_frame(self):
        exc = SimException(handled_depth=0)
        assert exc.should_stop_at(0)


class TestDeepUnwind:
    @staticmethod
    def build_chain(vm, depth, handled_depth, increments_on=False):
        """root -> m1 -> m2 -> ... -> m_depth (throws)."""
        def thrower_body(ctx):
            ctx.throw_exception("deep", handled_depth=handled_depth)

        current = Method("thrower", "app.deep.T", thrower_body, bytecode_size=100)
        for i in range(depth - 1, 0, -1):
            callee = current

            def mid_body(ctx, _callee=callee):
                ctx.call(1, _callee)
                return "continued"

            current = Method("m%d" % i, "app.deep.M%d" % i, mid_body, bytecode_size=100)
        return current

    def test_unwind_stops_at_handler(self):
        vm, _ = build_vm("g1", heap_mb=16)
        thread = vm.spawn_thread()
        root = self.build_chain(vm, depth=5, handled_depth=3)
        result = vm.run(thread, root)
        # the exception was absorbed 3 frames above the throw point;
        # the remaining callers continue normally
        assert result == "continued"
        assert thread.frames == []

    def test_unwind_to_root_swallows_operation(self):
        vm, _ = build_vm("g1", heap_mb=16)
        thread = vm.spawn_thread()
        root = self.build_chain(vm, depth=4, handled_depth=99)
        result = vm.run(thread, root)
        assert result is None  # the whole operation terminated
        assert thread.frames == []
        assert thread.stack_state == 0

    def test_stack_state_balanced_through_deep_unwind(self):
        vm, _ = build_vm(
            "rolp", heap_mb=16, flags=VMFlags(fix_exception_unwind=True)
        )
        thread = vm.spawn_thread()
        root = self.build_chain(vm, depth=6, handled_depth=4)
        # heat everything so call profiling could be installed
        for _ in range(vm.flags.compile_threshold + 5):
            vm.run(thread, root)
        assert thread.stack_state == 0
        assert thread.state_repairs == 0  # never needed the safepoint fix

    def test_exceptions_counted(self):
        vm, _ = build_vm("g1", heap_mb=16)
        thread = vm.spawn_thread()
        root = self.build_chain(vm, depth=3, handled_depth=1)
        for _ in range(5):
            vm.run(thread, root)
        assert vm.exceptions_thrown == 5

"""Tests for the synthetic DaCapo suite."""

import pytest

from repro.workloads.base import run_workload
from repro.workloads.dacapo import (
    DACAPO_SPECS,
    DaCapoWorkload,
    SPEC_BY_NAME,
    get_spec,
    make_dacapo,
)
from repro.workloads.dacapo.synthetic import LONG, MEDIUM, YOUNG


class TestSpecs:
    def test_thirteen_benchmarks(self):
        assert len(DACAPO_SPECS) == 13

    def test_paper_names_present(self):
        expected = {
            "avrora", "eclipse", "fop", "h2", "jython", "luindex",
            "lusearch", "pmd", "sunflow", "tomcat", "tradebeans",
            "tradesoap", "xalan",
        }
        assert set(SPEC_BY_NAME) == expected

    def test_table2_conflict_counts(self):
        assert get_spec("pmd").conflicts == 6
        assert get_spec("tomcat").conflicts == 4
        assert get_spec("tradesoap").conflicts == 3
        assert get_spec("avrora").conflicts == 0

    def test_lifetime_mix_sums_to_one(self):
        for spec in DACAPO_SPECS:
            assert sum(spec.lifetime_mix) == pytest.approx(1.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_spec("nonexistent")

    def test_bad_mix_rejected(self):
        from repro.workloads.dacapo.specs import DaCapoSpec

        with pytest.raises(ValueError):
            DaCapoSpec(
                name="x", heap_mb=16, hot_methods=4, alloc_sites=4,
                calls_per_op=4, allocs_per_op=4, work_ns_per_op=100,
                lifetime_mix=(0.5, 0.2, 0.2), obj_bytes=64, conflicts=0,
            )


class TestWorkloadStructure:
    def test_build_creates_method_graph(self):
        workload = make_dacapo("avrora")
        run_workload(workload, "g1", operations=50)
        spec = get_spec("avrora")
        assert len(workload.services) == spec.hot_methods
        assert workload.helpers

    def test_factories_only_for_conflicted_specs(self):
        pmd = make_dacapo("pmd")
        run_workload(pmd, "g1", operations=10)
        assert len(pmd.factories) == 6
        avrora = make_dacapo("avrora")
        run_workload(avrora, "g1", operations=10)
        assert avrora.factories == []

    def test_site_lifetime_classes_match_mix(self):
        workload = make_dacapo("h2")
        spec = get_spec("h2")
        classes = [workload._class_for_site(i) for i in range(200)]
        young_share = classes.count(YOUNG) / len(classes)
        assert young_share == pytest.approx(spec.lifetime_mix[0], abs=0.08)

    def test_factory_sees_both_lifetime_classes(self):
        """The conflict ground truth: each factory must be called with
        at least two different lifetime classes."""
        workload = make_dacapo("pmd")
        run_workload(workload, "g1", operations=10)
        spec = get_spec("pmd")
        per_factory = {}
        for i in range(spec.hot_methods):
            factory_index = i % len(workload.factories)
            lifetime = MEDIUM if (i // len(workload.factories)) % 2 == 0 else YOUNG
            per_factory.setdefault(factory_index, set()).add(lifetime)
        assert all(len(classes) == 2 for classes in per_factory.values())


class TestExecution:
    def test_medium_objects_expire(self):
        workload = make_dacapo("h2")
        result = run_workload(workload, "g1", operations=2000)
        # the expiry queue drained at least partially
        assert len(workload.medium_queue._queue) < 10_000

    def test_methods_become_hot(self):
        workload = make_dacapo("avrora")
        run_workload(workload, "g1", operations=2000)
        compiled = [m for m in workload.services if m.compiled]
        assert len(compiled) == len(workload.services)

    def test_exceptions_exercised(self):
        workload = make_dacapo("avrora")
        run_workload(workload, "g1", operations=300)
        assert workload.vm.exceptions_thrown >= 3

    def test_deterministic(self):
        def run():
            workload = make_dacapo("luindex", seed=5)
            result = run_workload(workload, "g1", operations=800)
            return (result.gc_cycles, result.elapsed_ms)

        assert run() == run()

    def test_inlined_helpers_exist(self):
        workload = make_dacapo("fop")
        run_workload(workload, "rolp", operations=3000)
        inlined = [
            s
            for m in workload.services
            for s in m.call_sites.values()
            if s.inlined
        ]
        assert inlined  # small helpers were inlined (and not profiled)

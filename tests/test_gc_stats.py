"""Tests for the collector statistics helpers."""

import pytest

from repro.gc.g1 import G1Collector
from repro.gc.stats import copy_ratio, pause_summary, pauses_by_kind
from repro.heap import BandwidthModel, RegionHeap
from repro.runtime import JavaVM, Method


def driven_collector():
    heap = RegionHeap(8 << 20)
    gc = G1Collector(heap, BandwidthModel(), young_regions=2)
    vm = JavaVM(gc)
    thread = vm.spawn_thread()

    def body(ctx):
        ctx.alloc(1, 4096)  # immortal: survives and is copied

    m = Method("mk", "app.A", body)
    for _ in range(1500):
        vm.run(thread, m)
    return gc, vm


class TestPauseSummary:
    def test_empty_collector(self):
        gc = G1Collector(RegionHeap(8 << 20))
        summary = pause_summary(gc)
        assert summary["count"] == 0
        assert summary["total_ms"] == 0.0

    def test_populated(self):
        gc, _ = driven_collector()
        summary = pause_summary(gc)
        assert summary["count"] == len(gc.pauses)
        assert summary["max_ms"] >= summary["mean_ms"] > 0
        assert summary["total_ms"] == pytest.approx(
            sum(p.duration_ms for p in gc.pauses)
        )


class TestPausesByKind:
    def test_grouping(self):
        gc, _ = driven_collector()
        groups = pauses_by_kind(gc)
        assert sum(len(v) for v in groups.values()) == len(gc.pauses)
        for kind, pauses in groups.items():
            assert all(p.kind == kind for p in pauses)


class TestCopyRatio:
    def test_unattached_collector_is_zero(self):
        gc = G1Collector(RegionHeap(8 << 20))
        assert copy_ratio(gc) == 0.0

    def test_surviving_objects_produce_positive_ratio(self):
        gc, vm = driven_collector()
        ratio = copy_ratio(gc)
        assert ratio > 0
        assert ratio == pytest.approx(gc.bytes_copied_total / vm.bytes_allocated)

"""Additional ZGC-model tests: cycle pacing, pause-kind structure, and
the barrier-tax accounting through the VM."""

from repro.gc.zgc import ZGCCollector
from repro.heap import BandwidthModel, RegionHeap
from repro.runtime import JavaVM, Method


def make_zgc(heap_mb=8, **kwargs):
    return ZGCCollector(RegionHeap(heap_mb << 20), BandwidthModel(), **kwargs)


class TestCyclePacing:
    def test_cycles_not_back_to_back(self):
        zgc = make_zgc(occupancy_trigger=0.01, min_cycle_alloc_fraction=0.10)
        for _ in range(4096):
            zgc.allocate(1024, death_time_ns=zgc.clock.now_ns)
            zgc.clock.advance_mutator(100)
        # 4 MB allocated; pacing demands >= 0.8 MB between cycle starts
        assert zgc.concurrent_cycles <= 6

    def test_below_trigger_no_cycles(self):
        zgc = make_zgc(occupancy_trigger=0.99)
        for _ in range(512):
            zgc.allocate(1024)
        assert zgc.concurrent_cycles == 0


class TestPauseStructure:
    def test_three_pauses_per_cycle(self):
        zgc = make_zgc(occupancy_trigger=0.05)
        zgc.min_cycle_alloc_bytes = 0
        zgc._concurrent_cycle()
        kinds = [p.kind for p in zgc.pauses]
        assert kinds == ["zgc-mark-start", "zgc-relocate-start", "zgc-mark-end"]

    def test_cycle_counts_as_one_gc(self):
        zgc = make_zgc()
        zgc._concurrent_cycle()
        zgc._concurrent_cycle()
        assert zgc.gc_cycles == 2

    def test_relocation_cost_is_concurrent(self):
        """Live-object relocation adds no pause time — the copy bytes
        are accounted as concurrent work."""
        zgc = make_zgc(occupancy_trigger=0.05)
        zgc.min_cycle_alloc_bytes = 0
        live = [zgc.allocate(1024) for _ in range(256)]
        dead = [zgc.allocate(1024, death_time_ns=zgc.clock.now_ns + 1) for _ in range(256)]
        zgc.clock.advance_mutator(1000)
        zgc._concurrent_cycle()  # classifies
        zgc._concurrent_cycle()  # relocates
        durations = {p.duration_ns for p in zgc.pauses}
        assert durations == {zgc.cycle_pause_ns}
        assert zgc.concurrent_bytes_copied > 0


class TestBarrierTax:
    def test_mutator_work_inflated_through_vm(self):
        zgc_vm = JavaVM(make_zgc())
        g1_vm = None
        from repro.gc.g1 import G1Collector

        g1_vm = JavaVM(G1Collector(RegionHeap(8 << 20), BandwidthModel()))

        def body(ctx):
            ctx.work(10_000)

        for vm in (zgc_vm, g1_vm):
            thread = vm.spawn_thread()
            vm.run(thread, Method("op", "app.A", body))
        assert zgc_vm.clock.total_mutator_ns > g1_vm.clock.total_mutator_ns
        ratio = zgc_vm.clock.total_mutator_ns / g1_vm.clock.total_mutator_ns
        assert ratio > 1.15

"""Tests for the region heap manager."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap.heap import OutOfMemoryError, RegionHeap
from repro.heap.object_model import SimObject
from repro.heap.region import Space


def make_heap(mb=8, region_kb=1024):
    return RegionHeap(mb << 20, region_kb << 10)


def obj(size, death=None):
    return SimObject(size=size, alloc_time_ns=0, death_time_ns=death or float("inf"))


class TestConstruction:
    def test_region_count(self):
        assert len(make_heap(8).regions) == 8

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RegionHeap(100, 1 << 20)

    def test_all_regions_free_initially(self):
        heap = make_heap()
        assert heap.free_regions == 8
        assert heap.committed_bytes == 0


class TestClaimRelease:
    def test_claim(self):
        heap = make_heap()
        region = heap.claim_region(Space.EDEN)
        assert region.space is Space.EDEN
        assert heap.free_regions == 7
        assert heap.committed_bytes == 1 << 20

    def test_release(self):
        heap = make_heap()
        region = heap.claim_region(Space.OLD)
        heap.release_region(region)
        assert heap.free_regions == 8
        assert region.space is Space.FREE

    def test_release_free_region_rejected(self):
        heap = make_heap()
        region = heap.claim_region(Space.OLD)
        heap.release_region(region)
        with pytest.raises(ValueError):
            heap.release_region(region)

    def test_exhaustion_raises(self):
        heap = make_heap(2)
        heap.claim_region(Space.EDEN)
        heap.claim_region(Space.EDEN)
        with pytest.raises(OutOfMemoryError):
            heap.claim_region(Space.EDEN)

    def test_max_committed_high_water(self):
        heap = make_heap()
        regions = [heap.claim_region(Space.EDEN) for _ in range(5)]
        for region in regions:
            heap.release_region(region)
        assert heap.max_committed_bytes == 5 << 20
        assert heap.committed_bytes == 0


class TestAllocation:
    def test_bump_into_same_region(self):
        heap = make_heap()
        a, b = obj(1000), obj(1000)
        r1 = heap.allocate(a, Space.EDEN)
        r2 = heap.allocate(b, Space.EDEN)
        assert r1 is r2

    def test_new_region_when_full(self):
        heap = make_heap()
        big = (1 << 20) - 100
        r1 = heap.allocate(obj(big), Space.EDEN)
        r2 = heap.allocate(obj(big), Space.EDEN)
        assert r1 is not r2

    def test_spaces_do_not_share_regions(self):
        heap = make_heap()
        r1 = heap.allocate(obj(100), Space.EDEN)
        r2 = heap.allocate(obj(100), Space.OLD)
        assert r1 is not r2

    def test_dynamic_gens_do_not_share_regions(self):
        heap = make_heap()
        r1 = heap.allocate(obj(100), Space.DYNAMIC, gen=1)
        r2 = heap.allocate(obj(100), Space.DYNAMIC, gen=2)
        assert r1 is not r2
        assert r1.gen == 1 and r2.gen == 2

    def test_retire_alloc_region(self):
        heap = make_heap()
        r1 = heap.allocate(obj(100), Space.SURVIVOR)
        heap.retire_alloc_region(Space.SURVIVOR)
        r2 = heap.allocate(obj(100), Space.SURVIVOR)
        assert r1 is not r2

    def test_release_only_clears_own_cache_entry(self):
        heap = make_heap()
        current = heap.allocate(obj(100), Space.OLD)
        other = heap.claim_region(Space.OLD)
        heap.release_region(other)
        # The bump region is still current: next alloc reuses it.
        assert heap.allocate(obj(100), Space.OLD) is current


class TestHumongous:
    def test_large_object_gets_own_region(self):
        heap = make_heap()
        region = heap.allocate(obj(600 << 10), Space.EDEN)
        assert region.space is Space.HUMONGOUS

    def test_small_object_is_not_humongous(self):
        heap = make_heap()
        assert not heap.is_humongous(512 << 10)
        assert heap.is_humongous((512 << 10) + 1)

    def test_spanning_humongous_claims_multiple_regions(self):
        heap = make_heap()
        before = heap.free_regions
        heap.allocate(obj((2 << 20) + 100), Space.EDEN)
        assert before - heap.free_regions == 3

    def test_spanning_humongous_oom(self):
        heap = make_heap(2)
        with pytest.raises(OutOfMemoryError):
            heap.allocate(obj(4 << 20), Space.EDEN)


class TestQueriesAndStats:
    def test_regions_in(self):
        heap = make_heap()
        heap.allocate(obj(100), Space.EDEN)
        heap.allocate(obj(100), Space.DYNAMIC, gen=3)
        assert len(heap.regions_in(Space.EDEN)) == 1
        assert len(heap.regions_in(Space.DYNAMIC)) == 1
        assert len(heap.regions_in(Space.DYNAMIC, gen=3)) == 1
        assert len(heap.regions_in(Space.DYNAMIC, gen=4)) == 0

    def test_occupancy(self):
        heap = make_heap(8)
        heap.claim_region(Space.OLD)
        heap.claim_region(Space.OLD)
        assert heap.occupancy() == pytest.approx(0.25)

    def test_used_bytes(self):
        heap = make_heap()
        heap.allocate(obj(123), Space.EDEN)
        heap.allocate(obj(456), Space.OLD)
        assert heap.used_bytes() == 579

    def test_space_summary(self):
        heap = make_heap()
        heap.allocate(obj(100, death=50), Space.EDEN)
        heap.allocate(obj(200), Space.DYNAMIC, gen=2)
        summary = heap.space_summary(now_ns=100)
        assert summary["eden"]["used"] == 100
        assert summary["eden"]["live"] == 0
        assert summary["gen2"]["live"] == 200


class TestAccountingInvariant:
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=300 << 10), min_size=1, max_size=40
        )
    )
    def test_used_equals_sum_of_sizes(self, sizes):
        heap = RegionHeap(64 << 20)
        total = 0
        for size in sizes:
            heap.allocate(obj(size), Space.EDEN)
            total += size
        assert heap.used_bytes() == total

    @given(
        claims=st.lists(st.booleans(), min_size=1, max_size=60)
    )
    def test_committed_matches_nonfree_regions(self, claims):
        heap = RegionHeap(64 << 20)
        held = []
        for do_claim in claims:
            if do_claim or not held:
                if heap.free_regions:
                    held.append(heap.claim_region(Space.OLD))
            else:
                heap.release_region(held.pop())
        nonfree = sum(1 for r in heap.regions if r.space is not Space.FREE)
        assert heap.committed_bytes == nonfree * heap.region_bytes

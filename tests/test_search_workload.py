"""Tests for the Lucene-like workload: RAM buffer, segment flush,
merges, retention, and query mix."""

import pytest

from repro.workloads.base import run_workload
from repro.workloads.search import LuceneWorkload, Segment


def small_workload(**kwargs):
    defaults = dict(
        ram_buffer_bytes=256 << 10,
        merge_factor=2,
        max_open_segments=4,
        worker_threads=2,
        dictionary_size=500,
    )
    defaults.update(kwargs)
    return LuceneWorkload(**defaults)


class TestMix:
    def test_default_write_fraction_matches_paper(self):
        assert LuceneWorkload().write_fraction == pytest.approx(0.80)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            LuceneWorkload(write_fraction=1.5)

    def test_both_op_types_run(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=2000, heap_mb=32)
        assert workload.docs_indexed > 0
        assert workload.queries_run > 0
        assert workload.docs_indexed > workload.queries_run


class TestSegmentLifecycle:
    def test_flush_creates_segment_and_kills_ram_blocks(self):
        workload = small_workload()
        result = run_workload(workload, "g1", operations=2000, heap_mb=32)
        assert workload.flushes >= 1
        assert workload.ram_bytes < workload.ram_buffer_bytes

    def test_merges_reduce_segment_count(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=6000, heap_mb=32)
        assert workload.merges >= 1
        level1 = [s for s in workload.segments if s.level >= 1]
        assert level1 or workload.merges > 0

    def test_retention_bounds_open_segments(self):
        workload = small_workload(max_open_segments=3)
        run_workload(workload, "g1", operations=8000, heap_mb=32)
        assert len(workload.segments) <= 3

    def test_closed_segment_objects_die(self):
        from repro.heap.object_model import SimObject

        segment = Segment()
        obj = SimObject(64, 0)
        segment.add(obj)
        segment.close(5000)
        assert not obj.is_live(5000)
        assert segment.objects == []


class TestProfiling:
    def test_store_filter_matches_paper(self):
        assert LuceneWorkload.profiled_packages == ("org.apache.lucene.store",)

    def test_rolp_learns_ram_buffer_lifetime(self):
        workload = small_workload()
        result = run_workload(workload, "rolp", operations=15_000, heap_mb=32)
        profiler = workload.vm.profiler
        # the RAMFile append site is instrumented and eventually advised
        assert workload.m_ram_append.instrumented
        assert profiler.inference.passes_run >= 1

    def test_query_path_outside_filter(self):
        workload = small_workload()
        run_workload(workload, "rolp", operations=5000, heap_mb=32)
        assert not workload.m_query.instrumented

"""Tests for the allocation-context encoding helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.context import (
    context_site,
    context_stack_state,
    encode,
    is_plausible,
    site_base_context,
)

u16 = st.integers(min_value=0, max_value=0xFFFF)


class TestEncode:
    @given(site=u16, state=u16)
    def test_roundtrip(self, site, state):
        ctx = encode(site, state)
        assert context_site(ctx) == site
        assert context_stack_state(ctx) == state

    def test_site_base_context(self):
        assert site_base_context(42) == encode(42, 0)
        assert context_stack_state(site_base_context(42)) == 0


class TestPlausibility:
    def test_zero_context_implausible(self):
        assert not is_plausible(0)

    def test_zero_site_implausible(self):
        assert not is_plausible(encode(0, 1234))

    @given(site=st.integers(min_value=1, max_value=0xFFFF), state=u16)
    def test_nonzero_site_plausible(self, site, state):
        assert is_plausible(encode(site, state))

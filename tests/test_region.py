"""Tests for heap regions."""

import pytest

from repro.heap.object_model import SimObject
from repro.heap.region import DEFAULT_REGION_BYTES, Region, Space


def obj(size=100, death=None):
    return SimObject(size=size, alloc_time_ns=0, death_time_ns=death or float("inf"))


class TestAllocation:
    def test_bump_allocation(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.EDEN)
        a, b = obj(400), obj(500)
        region.allocate(a)
        region.allocate(b)
        assert region.used == 900
        assert region.objects == [a, b]
        assert a.region is region

    def test_has_room(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.EDEN)
        region.allocate(obj(900))
        assert region.has_room(100)
        assert not region.has_room(101)

    def test_overflow_raises(self):
        region = Region(0, capacity=100)
        region.retarget(Space.EDEN)
        with pytest.raises(MemoryError):
            region.allocate(obj(200))

    def test_default_capacity_1mb(self):
        assert Region(0).capacity == DEFAULT_REGION_BYTES == 1 << 20


class TestAccounting:
    def test_live_and_garbage_bytes(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.EDEN)
        region.allocate(obj(300, death=500))   # dead at t=1000
        region.allocate(obj(200))              # immortal
        assert region.live_bytes(1000) == 200
        assert region.garbage_bytes(1000) == 300

    def test_live_objects_iterator(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.EDEN)
        dead, live = obj(100, death=10), obj(100)
        region.allocate(dead)
        region.allocate(live)
        assert list(region.live_objects(100)) == [live]

    def test_occupancy(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.EDEN)
        region.allocate(obj(250))
        assert region.occupancy() == 0.25

    def test_fragmentation_empty_region(self):
        region = Region(0, capacity=1000)
        assert region.fragmentation(0) == 0.0

    def test_fragmentation_is_dead_fraction_of_used(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.EDEN)
        region.allocate(obj(300, death=10))
        region.allocate(obj(100))
        assert region.fragmentation(100) == pytest.approx(0.75)

    def test_fully_live_region_not_fragmented(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.EDEN)
        region.allocate(obj(500))
        assert region.fragmentation(100) == 0.0


class TestLifecycle:
    def test_retarget_free_region(self):
        region = Region(0)
        region.retarget(Space.DYNAMIC, gen=5)
        assert region.space is Space.DYNAMIC
        assert region.gen == 5

    def test_retarget_nonfree_rejected(self):
        region = Region(0)
        region.retarget(Space.EDEN)
        with pytest.raises(ValueError):
            region.retarget(Space.OLD)

    def test_reset_returns_to_free(self):
        region = Region(0, capacity=1000)
        region.retarget(Space.SURVIVOR)
        o = obj(100)
        region.allocate(o)
        region.reset()
        assert region.space is Space.FREE
        assert region.used == 0
        assert region.objects == []
        assert o.region is None
        assert region.gen == 0

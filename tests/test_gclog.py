"""Tests for the GC-log emitter/parser."""

import pytest

from repro.gc.collector import PauseEvent
from repro.gc.g1 import G1Collector
from repro.heap import BandwidthModel, RegionHeap
from repro.metrics.gclog import (
    GcLogRecord,
    format_pause,
    parse_line,
    parse_log,
    pause_durations_ms,
    render_log,
)


def pause(kind="young", number=3, start_ns=1_234_000_000, duration_ns=2_481_000):
    return PauseEvent(
        gc_number=number,
        start_ns=start_ns,
        duration_ns=duration_ns,
        kind=kind,
        bytes_copied=1 << 20,
    )


class TestFormat:
    def test_line_shape(self):
        line = format_pause(pause(), 96, 61, 35)
        assert line == "[1.234s][info][gc] GC(3) Pause Young (normal) 61M->35M(96M) 2.481ms"

    def test_kind_mapping(self):
        assert "Pause Young (mixed)" in format_pause(pause("mixed"), 96, 1, 1)
        assert "Pause Full" in format_pause(pause("full"), 96, 1, 1)
        assert "Pause Mark Start" in format_pause(pause("zgc-mark-start"), 96, 1, 1)

    def test_unknown_kind_fallback(self):
        assert "Pause (weird)" in format_pause(pause("weird"), 96, 1, 1)


class TestRoundtrip:
    def test_parse_formatted_line(self):
        line = format_pause(pause(), 96, 61, 35)
        record = parse_line(line)
        assert record is not None
        assert record.gc_number == 3
        assert record.timestamp_s == pytest.approx(1.234)
        assert record.heap_before_mb == 61
        assert record.heap_after_mb == 35
        assert record.heap_capacity_mb == 96
        assert record.duration_ms == pytest.approx(2.481)

    def test_non_gc_lines_skipped(self):
        text = "\n".join(
            [
                "random stdout noise",
                format_pause(pause(number=1), 96, 10, 5),
                "[1.0s][info][safepoint] not a gc line",
                format_pause(pause(number=2, start_ns=2_000_000_000), 96, 12, 6),
            ]
        )
        records = parse_log(text)
        assert [r.gc_number for r in records] == [1, 2]

    def test_durations_extraction(self):
        records = [
            GcLogRecord(1.0, 1, "Pause Young (normal)", 10, 5, 96, 1.5),
            GcLogRecord(2.0, 2, "Pause Full", 50, 10, 96, 20.0),
        ]
        assert pause_durations_ms(records) == [1.5, 20.0]


class TestRenderFromCollector:
    def test_render_real_collector(self):
        collector = G1Collector(
            RegionHeap(8 << 20), BandwidthModel(), young_regions=2
        )
        for _ in range(4096):
            collector.allocate(1024, death_time_ns=collector.clock.now_ns + 1)
            collector.clock.advance_mutator(100)
        text = render_log(collector)
        records = parse_log(text)
        assert len(records) == len(collector.pauses)
        assert [r.gc_number for r in records] == [p.gc_number for p in collector.pauses]
        for record, event in zip(records, collector.pauses):
            assert record.duration_ms == pytest.approx(event.duration_ms, abs=0.001)

"""Tests for pause metrics, throughput, memory, and report rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gc import G1Collector
from repro.heap import RegionHeap
from repro.metrics.memory import MemoryReport, measure
from repro.metrics.pauses import (
    DEFAULT_INTERVALS_MS,
    duration_histogram,
    percentile,
    percentile_profile,
    tail_reduction,
)
from repro.metrics.report import (
    render_histogram_series,
    render_percentile_series,
    render_table,
)
from repro.metrics.throughput import ThroughputMeter, normalized
from repro.runtime.clock import SimClock

floats = st.lists(
    st.floats(min_value=0, max_value=1e4, allow_nan=False), min_size=1, max_size=200
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_median_of_known_list(self):
        assert percentile([1, 2, 3, 4, 5], 50.0) == 3

    def test_p100_is_max(self):
        assert percentile([5, 1, 9, 3], 100.0) == 9

    def test_p0_is_min(self):
        assert percentile([5, 1, 9, 3], 0.0) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(values=floats, pct=st.floats(min_value=0, max_value=100))
    def test_result_is_an_element(self, values, pct):
        assert percentile(values, pct) in values

    @given(values=floats)
    def test_monotone_in_pct(self, values):
        previous = percentile(values, 0)
        for pct in (25, 50, 75, 90, 99, 100):
            current = percentile(values, pct)
            assert current >= previous
            previous = current

    def test_profile_has_requested_keys(self):
        profile = percentile_profile([1.0, 2.0], percentiles=(50.0, 99.0))
        assert set(profile) == {50.0, 99.0}


class TestHistogram:
    def test_buckets_cover_all_pauses(self):
        pauses = [1, 20, 60, 300, 2000]
        histogram = duration_histogram(pauses)
        assert sum(count for _, count in histogram) == len(pauses)

    def test_bucket_placement(self):
        histogram = duration_histogram([5.0], intervals_ms=(10.0, 100.0))
        assert histogram == [("0-10", 1), ("10-100", 0), (">100", 0)]

    def test_edge_inclusive(self):
        histogram = duration_histogram([10.0], intervals_ms=(10.0, 100.0))
        assert histogram[0][1] == 1

    def test_overflow_bucket(self):
        histogram = duration_histogram([5000.0])
        assert histogram[-1][1] == 1

    def test_unsorted_edges_rejected(self):
        with pytest.raises(ValueError):
            duration_histogram([1.0], intervals_ms=(100.0, 10.0))

    @given(values=floats)
    def test_conservation(self, values):
        histogram = duration_histogram(values)
        assert sum(count for _, count in histogram) == len(values)


class TestTailReduction:
    def test_halving_is_fifty_percent(self):
        base = [10.0] * 100
        improved = [5.0] * 100
        assert tail_reduction(base, improved) == pytest.approx(0.5)

    def test_zero_baseline(self):
        assert tail_reduction([0.0], [1.0]) == 0.0

    def test_regression_is_negative(self):
        assert tail_reduction([1.0] * 10, [2.0] * 10) < 0


class TestThroughput:
    def test_ops_per_second(self):
        clock = SimClock()
        meter = ThroughputMeter(clock)
        for _ in range(100):
            meter.record()
        clock.advance_mutator(2e9)  # 2 s
        assert meter.ops_per_second() == pytest.approx(50.0)

    def test_zero_time(self):
        meter = ThroughputMeter(SimClock())
        assert meter.ops_per_second() == 0.0

    def test_windowed_rates(self):
        clock = SimClock()
        meter = ThroughputMeter(clock)
        meter.record(10)
        clock.advance_mutator(1e9)
        meter.mark()
        meter.record(30)
        clock.advance_mutator(1e9)
        meter.mark()
        rates = meter.windowed_rates()
        assert rates[0][1] == pytest.approx(10.0)
        assert rates[1][1] == pytest.approx(30.0)

    def test_normalized(self):
        assert normalized(50, 100) == 0.5
        assert normalized(50, 0) == 0.0


class TestMemory:
    def test_measure_includes_profiler_table(self):
        heap = RegionHeap(8 << 20)
        collector = G1Collector(heap)
        collector.allocate(1024)

        class FakeProfiler:
            @staticmethod
            def old_table_memory_bytes():
                return 4 << 20

        report = measure(collector, FakeProfiler())
        assert report.old_table_bytes == 4 << 20
        assert report.heap_max_bytes >= 1 << 20
        assert report.total_bytes == report.heap_max_bytes + (4 << 20)

    def test_measure_without_profiler(self):
        heap = RegionHeap(8 << 20)
        collector = G1Collector(heap)
        assert measure(collector).old_table_bytes == 0

    def test_total_mb(self):
        report = MemoryReport(heap_max_bytes=2 << 20, old_table_bytes=0)
        assert report.total_mb == pytest.approx(2.0)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "bb" in lines[3]

    def test_render_table_empty_rows(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text

    def test_render_percentile_series(self):
        series = {"g1": {50.0: 1.0, 99.0: 5.0}, "rolp": {50.0: 0.5, 99.0: 1.0}}
        text = render_percentile_series(series, title="demo")
        assert "demo" in text
        assert "p50" in text and "p99" in text
        assert "rolp" in text

    def test_render_histogram_series(self):
        series = {"g1": [("0-10", 3), (">10", 1)]}
        text = render_histogram_series(series)
        assert "0-10" in text and "g1" in text

    def test_render_percentile_series_differing_keys(self):
        """Regression: collectors with different percentile sets used to
        KeyError; the columns are now the union, blanks for missing."""
        series = {
            "g1": {50.0: 1.0, 99.0: 5.0},
            "zgc": {50.0: 0.1},  # no p99 recorded
            "empty": {},  # no pauses survived the warmup cutoff
        }
        text = render_percentile_series(series, title="demo")
        lines = text.splitlines()
        assert "p50" in lines[1] and "p99" in lines[1]
        zgc_row = next(line for line in lines if line.startswith("zgc"))
        assert "0.10" in zgc_row and "-" in zgc_row
        empty_row = next(line for line in lines if line.startswith("empty"))
        assert "-" in empty_row

    def test_render_percentile_series_all_empty(self):
        text = render_percentile_series({"g1": {}}, title="demo")
        assert "demo" in text and "g1" in text

    def test_render_histogram_series_differing_labels(self):
        """Regression: differing interval labels used to misalign the
        columns; the header is now the ordered union of all labels."""
        series = {
            "g1": [("0-10", 3), ("10-100", 2), (">100", 1)],
            "custom": [("0-5", 4), (">5", 0)],
            "empty": [],
        }
        text = render_histogram_series(series, title="demo")
        lines = text.splitlines()
        header = lines[1]
        for label in ("0-10", "10-100", ">100", "0-5", ">5"):
            assert label in header
        g1_row = next(line for line in lines if line.startswith("g1"))
        assert "-" in g1_row  # g1 lacks the custom labels
        empty_row = next(line for line in lines if line.startswith("empty"))
        assert "-" in empty_row

    def test_render_histogram_series_counts_stay_under_their_labels(self):
        series = {
            "a": [("x", 7)],
            "b": [("y", 9)],
        }
        text = render_histogram_series(series)
        lines = text.splitlines()
        header = lines[0]
        x_col = header.index("x")
        a_row = next(line for line in lines if line.startswith("a"))
        b_row = next(line for line in lines if line.startswith("b"))
        assert a_row[x_col] == "7"
        assert b_row[x_col] == "-"

"""Tests for the conflict-resolution search."""

import pytest

from repro.core.conflicts import ConflictResolver, worst_case_resolution_ns
from repro.runtime.method import CallSite, Method


def make_sites(n):
    method = Method("m", "pkg.Cls", lambda ctx: None)
    sites = []
    for i in range(n):
        site = method.call_site(i)
        site.increment = i + 1
        sites.append(site)
    return sites


class TestWorstCaseModel:
    def test_linear_in_inverse_p(self):
        t20 = worst_case_resolution_ns(100, 0.20, 16, 1e6)
        t10 = worst_case_resolution_ns(100, 0.10, 16, 1e6)
        assert t10 == pytest.approx(2 * t20)

    def test_formula(self):
        # 100 sites, P=20% -> subsets of 20 -> 5 rounds of 16 GCs
        assert worst_case_resolution_ns(100, 0.20, 16, 1e6) == 5 * 16 * 1e6

    def test_zero_sites(self):
        assert worst_case_resolution_ns(0, 0.2, 16, 1e6) == 0.0

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            worst_case_resolution_ns(10, 0.0, 16, 1e6)
        with pytest.raises(ValueError):
            worst_case_resolution_ns(10, 1.5, 16, 1e6)

    def test_p_one_single_round(self):
        assert worst_case_resolution_ns(64, 1.0, 16, 1e6) == 16 * 1e6


class TestSearchLifecycle:
    def test_startup_nothing_profiled(self):
        sites = make_sites(10)
        ConflictResolver()
        assert not any(s.enabled for s in sites)

    def test_conflict_enables_subset(self):
        sites = make_sites(10)
        resolver = ConflictResolver(p_fraction=0.2)
        resolver.on_inference({1}, sites)
        enabled = [s for s in sites if s.enabled]
        assert len(enabled) == 2  # 20% of 10
        assert resolver.conflicts_seen == 1

    def test_resolution_keeps_minimal_set_pinned(self):
        sites = make_sites(10)
        resolver = ConflictResolver(p_fraction=0.2, min_set_size=2)
        resolver.on_inference({1}, sites)
        # next pass: conflict gone -> subset contained S -> narrow/pin
        resolver.on_inference(set(), sites)
        assert 1 in resolver.resolved_sites
        assert resolver.pinned
        assert all(s.enabled for s in resolver.pinned)

    def test_failed_subset_tries_fresh_sites(self):
        sites = make_sites(10)
        resolver = ConflictResolver(p_fraction=0.2)
        resolver.on_inference({1}, sites)
        first = {s for s in sites if s.enabled}
        resolver.on_inference({1}, sites)  # conflict persists
        second = {s for s in sites if s.enabled}
        assert first.isdisjoint(second)

    def test_exhaustion_gives_up(self):
        sites = make_sites(4)
        resolver = ConflictResolver(p_fraction=0.25)  # 1 site per round
        for _ in range(6):
            resolver.on_inference({1}, sites)
        assert 1 in resolver.given_up_sites
        assert 1 in resolver.resolved_sites
        assert 1 not in resolver.active
        # everything tried was turned back off
        assert not any(s.enabled for s in sites)

    def test_inlined_sites_never_sampled(self):
        sites = make_sites(4)
        for s in sites[:3]:
            s.inlined = True
        resolver = ConflictResolver(p_fraction=1.0)
        resolver.on_inference({1}, sites)
        assert not any(s.enabled for s in sites[:3])

    def test_resolved_site_not_restarted(self):
        sites = make_sites(10)
        resolver = ConflictResolver(p_fraction=0.2)
        resolver.on_inference({1}, sites)
        resolver.on_inference(set(), sites)
        assert 1 in resolver.resolved_sites
        count = resolver.conflicts_seen
        resolver.on_inference({1}, sites)  # stale flag: ignored
        assert resolver.conflicts_seen == count


class TestParallelSearches:
    def test_effective_p_shrinks_with_parallel_conflicts(self):
        sites = make_sites(40)
        resolver = ConflictResolver(p_fraction=0.2)
        resolver.on_inference({1, 2}, sites)
        assert resolver.effective_p() == pytest.approx(0.1)

    def test_searches_do_not_clobber_each_other(self):
        """One search's failed-subset cleanup must not switch off a site
        another search keeps pinned (reference counting)."""
        sites = make_sites(3)
        resolver = ConflictResolver(p_fraction=1.0, min_set_size=1)
        # site 1's search: enables all, conflict resolves -> narrowing
        resolver.on_inference({1}, sites)
        for _ in range(5):
            resolver.on_inference(set(), sites)
        assert 1 in resolver.resolved_sites
        kept = {s for s in sites if s.enabled}
        assert kept  # the pinned minimal set
        # site 2's search now churns through subsets and fails
        for _ in range(6):
            resolver.on_inference({2}, sites)
        # the pinned set survived the other search's cleanup
        assert all(s.enabled for s in kept)

    def test_multiple_conflicts_tracked_independently(self):
        sites = make_sites(30)
        resolver = ConflictResolver(p_fraction=0.2)
        resolver.on_inference({1, 2, 3}, sites)
        assert set(resolver.active) == {1, 2, 3}
        resolver.on_inference(set(), sites)
        assert resolver.resolved_sites >= {1, 2, 3}


class TestNarrowing:
    def test_narrowing_reaches_min_set(self):
        sites = make_sites(20)
        resolver = ConflictResolver(p_fraction=1.0, min_set_size=2)
        resolver.on_inference({1}, sites)
        assert sum(s.enabled for s in sites) == 20
        for _ in range(10):
            resolver.on_inference(set(), sites)
            if 1 in resolver.resolved_sites:
                break
        assert 1 in resolver.resolved_sites
        assert sum(s.enabled for s in sites) <= 2

    def test_narrowing_reenables_needed_half(self):
        sites = make_sites(8)
        resolver = ConflictResolver(p_fraction=1.0, min_set_size=1)
        resolver.on_inference({1}, sites)       # all 8 on
        resolver.on_inference(set(), sites)     # resolve -> disable half
        trial_disabled = {s for s in sites if not s.enabled}
        assert trial_disabled
        # conflict returns: the disabled half contained S -> it is
        # brought back and pinned as confirmed-necessary
        resolver.on_inference({1}, sites)
        search = resolver.active[1]
        assert set(search.confirmed) == trial_disabled
        assert all(s.enabled for s in search.confirmed)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            ConflictResolver(p_fraction=0.0)

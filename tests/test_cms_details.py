"""Additional CMS-model tests: waste accounting, fragmentation-forced
compaction triggering, and tail-latency structure."""

import pytest

from repro.gc.cms import CMSCollector
from repro.heap import BandwidthModel, RegionHeap, Space


def make_cms(heap_mb=8, **kwargs):
    return CMSCollector(RegionHeap(heap_mb << 20), BandwidthModel(), **kwargs)


def promote_population(cms, count=1024, size=1024):
    objs = []
    for _ in range(count):
        objs.append(cms.allocate(size))
        cms.clock.advance_mutator(100)
    cms.collect_young()  # threshold-1 callers promote immediately
    return objs


class TestWasteAccounting:
    def test_waste_fraction_zero_when_empty(self):
        assert make_cms()._old_waste_fraction() == 0.0

    def test_waste_fraction_rises_with_scattered_deaths(self):
        cms = make_cms(young_regions=2, tenuring_threshold=1)
        objs = promote_population(cms)
        for o in objs[::3]:
            o.kill_at(cms.clock.now_ns)
        cms._concurrent_cycle()
        assert 0.2 < cms._old_waste_fraction() < 0.5

    def test_waste_limit_forces_compaction(self):
        cms = make_cms(young_regions=2, tenuring_threshold=1, waste_limit=0.2)
        objs = promote_population(cms)
        for o in objs[::2]:
            o.kill_at(cms.clock.now_ns)
        cms._concurrent_cycle()
        # next allocation sees the waste fraction and compacts
        cms.allocate(1024)
        assert cms.full_compactions >= 1
        assert cms.wasted_bytes == 0


class TestTailStructure:
    def test_full_compaction_dominates_pause_distribution(self):
        """CMS's signature: medians fine, max terrible."""
        cms = make_cms(young_regions=2, tenuring_threshold=2, waste_limit=0.25)
        for round_index in range(6):
            objs = promote_population(cms, count=2048)
            for o in objs[::2]:
                o.kill_at(cms.clock.now_ns)
        durations = sorted(p.duration_ms for p in cms.pauses)
        if cms.full_compactions:
            assert durations[-1] > durations[len(durations) // 2] * 3

    def test_remark_scales_with_live_population(self):
        small = make_cms(young_regions=2, tenuring_threshold=1, concurrent_trigger=0.0)
        promote_population(small, count=128)
        small._concurrent_cycle()
        big = make_cms(young_regions=4, tenuring_threshold=1, concurrent_trigger=0.0)
        promote_population(big, count=3000)
        big._concurrent_cycle()

        def remark(cms):
            return max(
                p.duration_ns for p in cms.pauses if p.kind == "cms-remark"
            )

        assert remark(big) > remark(small)

    def test_auxiliary_pauses_do_not_count_cycles(self):
        cms = make_cms(concurrent_trigger=0.0)
        before = cms.gc_cycles
        cms._concurrent_cycle()
        assert cms.gc_cycles == before

"""Tests for the YCSB-style workload generators."""

import math
from collections import Counter

import pytest

from repro.workloads.ycsb import (
    MIX_READ_INTENSIVE,
    MIX_READ_WRITE,
    MIX_WRITE_INTENSIVE,
    OperationChooser,
    OperationMix,
    RecordSpec,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)


class TestZipfian:
    def test_values_in_range(self):
        gen = ZipfianGenerator(1000, seed=1)
        for _ in range(5000):
            assert 0 <= gen.next() < 1000

    def test_skew_toward_low_items(self):
        gen = ZipfianGenerator(1000, seed=1)
        counts = Counter(gen.next() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        # with theta=0.99, the top-10 items draw a large share
        assert top10 / 20000 > 0.25

    def test_rank_ordering(self):
        gen = ZipfianGenerator(100, seed=2)
        counts = Counter(gen.next() for _ in range(50000))
        assert counts[0] > counts[10] > counts.get(90, 0)

    def test_deterministic_under_seed(self):
        a = ZipfianGenerator(100, seed=3)
        b = ZipfianGenerator(100, seed=3)
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_invalid_item_count(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)


class TestScrambledZipfian:
    def test_values_in_range(self):
        gen = ScrambledZipfianGenerator(1000, seed=1)
        for _ in range(2000):
            assert 0 <= gen.next() < 1000

    def test_hot_keys_spread_over_keyspace(self):
        gen = ScrambledZipfianGenerator(10000, seed=1)
        counts = Counter(gen.next() for _ in range(20000))
        hot = [k for k, _ in counts.most_common(10)]
        # the hottest keys are not clustered at the low end
        assert max(hot) > 1000

    def test_skew_preserved(self):
        gen = ScrambledZipfianGenerator(1000, seed=1)
        counts = Counter(gen.next() for _ in range(20000))
        top_share = sum(c for _, c in counts.most_common(10)) / 20000
        assert top_share > 0.2


class TestUniform:
    def test_roughly_flat(self):
        gen = UniformGenerator(10, seed=1)
        counts = Counter(gen.next() for _ in range(10000))
        assert all(800 < counts[i] < 1200 for i in range(10))

    def test_invalid_item_count(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)


class TestOperationMix:
    def test_paper_mixes_write_fractions(self):
        assert MIX_WRITE_INTENSIVE.write_fraction == pytest.approx(0.75)
        assert MIX_READ_WRITE.write_fraction == pytest.approx(0.50)
        assert MIX_READ_INTENSIVE.write_fraction == pytest.approx(0.25)

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            OperationMix(read=0.5, update=0.3)

    def test_chooser_matches_mix(self):
        chooser = OperationChooser(MIX_WRITE_INTENSIVE, seed=1)
        counts = Counter(chooser.next() for _ in range(20000))
        assert counts["read"] / 20000 == pytest.approx(0.25, abs=0.02)
        writes = (counts["update"] + counts["insert"]) / 20000
        assert writes == pytest.approx(0.75, abs=0.02)

    def test_chooser_deterministic(self):
        a = OperationChooser(MIX_READ_WRITE, seed=9)
        b = OperationChooser(MIX_READ_WRITE, seed=9)
        assert [a.next() for _ in range(50)] == [b.next() for _ in range(50)]


class TestRecordSpec:
    def test_ycsb_default_1kb(self):
        assert RecordSpec().record_bytes == 1000

    def test_custom(self):
        assert RecordSpec(field_count=4, field_bytes=50).record_bytes == 200

"""Unit tests for the compiled tier's code format and dispatch loop:
:mod:`repro.runtime.program` (builder, generic replay, lowering) and
:mod:`repro.runtime.dispatch` (linking, mixed tiers, backend parity).
"""

import pytest

from repro import build_vm
from repro.fastpath import BACKENDS, set_backend
from repro.runtime import Method, VMFlags
from repro.runtime.dispatch import OP_RETURN, _link
from repro.runtime.program import (
    MethodProgram,
    OP_ALLOC_T,
    ProgramBuilder,
    lower_callable,
)

MID_LIVES = 5_000.0


def run_under(backend, workload):
    previous = set_backend(backend)
    try:
        return workload()
    finally:
        set_backend(previous)


def fingerprint(vm, thread):
    return {
        "allocations": vm.allocations,
        "bytes": vm.bytes_allocated,
        "now_ns": vm.clock.now_ns,
        "tax": repr(vm.profiling_tax_ns),
        "gc_cycles": vm.collector.gc_cycles,
        "stack_state": thread.stack_state,
        "exceptions": vm.exceptions_thrown,
        "biased": thread.biased_objects,
    }


class TestProgramBuilder:
    def test_operand_tuples_must_parallel_ops(self):
        with pytest.raises(ValueError):
            MethodProgram([0], [1], [], [])

    def test_end_repeat_without_repeat(self):
        with pytest.raises(ValueError):
            ProgramBuilder().end_repeat()

    def test_unclosed_repeat_rejected(self):
        builder = ProgramBuilder(nregs=2).repeat(1, 0).work(5.0)
        with pytest.raises(ValueError):
            builder.build()

    def test_generic_replay_steps_index_register(self):
        seen = []

        class Recorder:
            def work(self, ns):
                seen.append(ns)

            def alloc(self, bci, size, lives):
                seen.append((bci, size))

        program = (
            ProgramBuilder(nregs=2)
            .repeat(1, 0)
            .alloc_table(3, (10, 20), None, 0)
            .end_repeat()
            .work(7.0)
            .build()
        )
        program(Recorder(), 4, 3)  # base index 4, three iterations
        assert seen == [(1, 10), (2, 20), (0, 10), 7.0]


class TestLowering:
    def test_straight_line_body_lowers(self):
        def body(ctx):
            """Allocate then spin."""
            ctx.work(4.0)
            ctx.alloc(3, 256, MID_LIVES)
            return None

        program = lower_callable(body)
        assert program is not None
        assert len(program.ops) == 2

    def test_callee_resolved_through_closure(self):
        leaf = Method("leaf", "t.L", ProgramBuilder().build(), bytecode_size=100)

        def body(ctx):
            ctx.call(1, leaf)

        program = lower_callable(body)
        assert program is not None
        assert program.b[0] is leaf

    @pytest.mark.parametrize(
        "body",
        [
            lambda ctx, extra: ctx.work(1.0),  # extra parameter
            lambda ctx: ctx.alloc(1, 64, lives_ns=5.0),  # keyword argument
            lambda ctx: ctx.bias_lock(None),  # unsupported ctx method
        ],
        ids=["extra-param", "kwarg", "unsupported-op"],
    )
    def test_unlowerable_shapes_return_none(self, body):
        assert lower_callable(body) is None

    def test_loop_bodies_stay_callables(self):
        def body(ctx):
            for i in range(4):
                ctx.work(1.0)

        assert lower_callable(body) is None

    def test_computed_arguments_stay_callables(self):
        def body(ctx):
            ctx.work(2.0 + 2.0)

        assert lower_callable(body) is None

    def test_program_passthrough(self):
        program = ProgramBuilder().work(1.0).build()
        assert lower_callable(program) is program


class TestLinking:
    def test_link_appends_return_and_expands_tables(self):
        program = (
            ProgramBuilder(nregs=2)
            .repeat(1, 0)
            .alloc_table(5, (64, 96, 128), (1.0, 2.0), 0)
            .end_repeat()
            .build()
        )
        ops, a, b, c = _link(program)
        assert ops[-1] == OP_RETURN
        table = a[ops.index(OP_ALLOC_T)]
        assert table == (5, (64, 96, 128), 3, (1.0, 2.0), 2)
        # the REPEAT header's b operand is patched to the linked pc
        # just past its block (the END_REPEAT back-edge)
        assert b[0] == ops.index(OP_ALLOC_T) + 2


class TestBackendParity:
    """Small program workloads covering the ops the perf kernels do not:
    ALLOC with a destination register, BIAS_LOCK, WORK, nested calls.
    All three backends must agree on every observable."""

    def build_workload(self):
        def workload():
            vm, _ = build_vm(
                "g1",
                heap_mb=16,
                flags=VMFlags(compile_threshold=3, call_profiling_mode="slow"),
            )
            thread = vm.spawn_thread()
            leaf = Method(
                "leaf",
                "t.P",
                ProgramBuilder("leaf").work(3.0).build(),
                bytecode_size=100,
            )
            body = (
                ProgramBuilder("body", nregs=3)
                .repeat(1, 0)
                .alloc(1, 128, 2_000.0, dst=2)
                .bias_lock(2)
                .call(4, leaf)
                .work(11.0)
                .end_repeat()
                .build()
            )
            method = Method("body", "t.P", body, bytecode_size=100)
            for i in range(40):
                vm.run(thread, method, i * 8, 8)
            return fingerprint(vm, thread)

        return workload

    def test_alloc_dst_and_bias_lock_identical_across_backends(self):
        workload = self.build_workload()
        results = {name: run_under(name, workload) for name in BACKENDS}
        assert results["fast"] == results["reference"]
        assert results["compiled"] == results["reference"]
        assert results["reference"]["biased"] > 0

    def test_program_shared_across_methods_falls_back(self):
        """A program body reused under a second Method cannot share the
        first method's site cache; the dispatch loop must reject it and
        still execute correctly through the generic path."""

        def workload():
            vm, _ = build_vm("g1", heap_mb=16, flags=VMFlags(compile_threshold=3))
            thread = vm.spawn_thread()
            shared = (
                ProgramBuilder("shared", nregs=2)
                .repeat(1, 0)
                .alloc(1, 64, 1_000.0)
                .end_repeat()
                .build()
            )
            first = Method("first", "t.S", shared, bytecode_size=100)
            second = Method("second", "t.S", shared, bytecode_size=100)
            for i in range(10):
                vm.run(thread, first, i * 4, 4)
                vm.run(thread, second, i * 4, 4)
            return fingerprint(vm, thread)

        results = {name: run_under(name, workload) for name in BACKENDS}
        assert results["fast"] == results["reference"]
        assert results["compiled"] == results["reference"]

"""Tests for the interpreter / execution context: calls, allocation,
exception unwinding, OSR, bias locking."""

import pytest

from repro import build_vm
from repro.runtime import Method, VMFlags


def make_vm(collector="g1", flags=None, **kwargs):
    vm, _ = build_vm(collector, heap_mb=16, flags=flags, **kwargs)
    return vm


def simple_method(name="leaf", klass="app.Leaf", size=100):
    def body(ctx):
        ctx.work(10)
        return name

    return Method(name, klass, body, bytecode_size=size)


class TestCalls:
    def test_call_returns_body_result(self):
        vm = make_vm()
        thread = vm.spawn_thread()
        assert vm.run(thread, simple_method()) == "leaf"

    def test_invocation_counted(self):
        vm = make_vm()
        thread = vm.spawn_thread()
        m = simple_method()
        for _ in range(5):
            vm.run(thread, m)
        assert m.invocations == 5

    def test_nested_call_records_site_and_target(self):
        vm = make_vm()
        thread = vm.spawn_thread()
        leaf = simple_method()

        def outer_body(ctx):
            return ctx.call(3, leaf)

        outer = Method("outer", "app.Outer", outer_body)
        vm.run(thread, outer)
        site = outer.call_sites[3]
        assert leaf in site.targets
        assert site.invocations == 1

    def test_stack_balanced_after_run(self):
        vm = make_vm()
        thread = vm.spawn_thread()
        vm.run(thread, simple_method())
        assert thread.frames == []
        assert thread.stack_state == 0

    def test_call_advances_clock(self):
        vm = make_vm()
        thread = vm.spawn_thread()
        before = vm.clock.now_ns
        vm.run(thread, simple_method())
        assert vm.clock.now_ns > before


class TestAllocation:
    def test_alloc_returns_object(self):
        vm = make_vm()
        thread = vm.spawn_thread()

        def body(ctx):
            return ctx.alloc(1, 128, lives_ns=500)

        obj = vm.run(thread, Method("alloc", "app.A", body))
        assert obj.size == 128
        assert obj.death_time_ns > obj.alloc_time_ns

    def test_alloc_without_lifetime_is_immortal(self):
        vm = make_vm()
        thread = vm.spawn_thread()

        def body(ctx):
            return ctx.alloc(1, 64)

        obj = vm.run(thread, Method("alloc", "app.A", body))
        assert obj.death_time_ns == float("inf")

    def test_alloc_outside_method_rejected(self):
        vm = make_vm()
        thread = vm.spawn_thread()
        ctx = vm.context(thread)
        with pytest.raises(RuntimeError):
            ctx.alloc(1, 64)

    def test_alloc_counts(self):
        vm = make_vm()
        thread = vm.spawn_thread()

        def body(ctx):
            ctx.alloc(1, 64)
            ctx.alloc(2, 64)

        m = Method("alloc", "app.A", body)
        vm.run(thread, m)
        assert vm.allocations == 2
        assert vm.bytes_allocated == 128
        assert m.alloc_sites[1].alloc_count == 1


class TestExceptions:
    @staticmethod
    def _chain(depth_handler):
        """root -> mid -> thrower; handler ``depth_handler`` frames up."""
        def thrower_body(ctx):
            ctx.throw_exception("boom", handled_depth=depth_handler)

        thrower = Method("thrower", "app.T", thrower_body)

        def mid_body(ctx):
            ctx.call(1, thrower)
            return "mid-continued"

        mid = Method("mid", "app.M", mid_body)

        def root_body(ctx):
            result = ctx.call(1, mid)
            return ("root", result)

        return Method("root", "app.R", root_body)

    def test_exception_handled_up_stack(self):
        vm = make_vm()
        thread = vm.spawn_thread()
        # handler 2 frames up: mid's call returns None, root continues
        result = vm.run(thread, self._chain(2))
        assert result == ("root", None)
        assert vm.exceptions_thrown == 1

    def test_stack_state_balanced_with_fix(self):
        vm = make_vm(flags=VMFlags(fix_exception_unwind=True))
        thread = vm.spawn_thread()
        vm.run(thread, self._chain(2))
        assert thread.stack_state == 0
        assert thread.frames == []

    def test_unwind_without_fix_can_corrupt(self):
        """Without ROLP's rethrow hook the register leaks increments;
        the safepoint verifier is the only recovery (Section 7.2.2)."""
        vm = make_vm(flags=VMFlags(fix_exception_unwind=False))
        thread = vm.spawn_thread()
        # Manufacture a frame whose pop would skip the repair.
        m = simple_method()
        thread.push_frame(m, None, 99)
        thread.pop_frame(repair=False)
        assert thread.stack_state == 99
        thread.verify_and_repair()
        assert thread.stack_state == 0


class TestOSR:
    def test_loop_triggers_osr_for_eligible_method(self):
        vm = make_vm()
        thread = vm.spawn_thread()

        def loopy_body(ctx):
            ctx.loop(1000)

        loopy = Method("loopy", "app.L", loopy_body, osr_eligible=True)
        vm.run(thread, loopy)
        assert loopy.compiled
        assert vm.jit.osr_events == 1

    def test_osr_corruption_repaired_at_safepoint(self):
        vm = make_vm()
        thread = vm.spawn_thread()

        def loopy_body(ctx):
            ctx.loop(10)
            # inside the frame the register is corrupted by the OSR model
            return ctx.thread.stack_state

        loopy = Method("loopy", "app.L", loopy_body, osr_eligible=True)
        corrupted = vm.run(thread, loopy)
        assert corrupted != 0
        vm.at_safepoint()
        assert thread.stack_state == 0

    def test_loop_on_plain_method_no_osr(self):
        vm = make_vm()
        thread = vm.spawn_thread()

        def body(ctx):
            ctx.loop(1000)

        m = Method("plain", "app.P", body)
        vm.run(thread, m)
        assert not m.compiled


class TestBiasLocking:
    def test_bias_lock_through_context(self):
        vm = make_vm()
        thread = vm.spawn_thread()

        def body(ctx):
            obj = ctx.alloc(1, 64)
            ctx.bias_lock(obj)
            return obj

        obj = vm.run(thread, Method("lock", "app.K", body))
        assert obj.biased_locked
        assert vm.biased_locks.locks_taken == 1
        assert thread.biased_objects == 1

"""Tests for the Figure 8/9 pause-study harness helpers."""

import pytest

from repro.bench.figures import (
    FIG6_LABELS,
    FIG6_MODES,
    PAUSE_FIGURE_COLLECTORS,
    PauseStudy,
    pause_study,
    render_figure8,
    render_figure9,
)


class TestPauseStudyContainer:
    def _study(self):
        return PauseStudy(
            workload="demo",
            pauses_ms={
                "g1": [1.0, 2.0, 3.0, 10.0],
                "rolp": [0.5, 0.5, 0.6, 0.7],
            },
        )

    def test_percentiles_per_collector(self):
        profiles = self._study().percentiles()
        assert set(profiles) == {"g1", "rolp"}
        assert profiles["g1"][100.0] == 10.0
        assert profiles["rolp"][50.0] == pytest.approx(0.5)

    def test_histograms_per_collector(self):
        histograms = self._study().histograms()
        for collector, histogram in histograms.items():
            assert sum(c for _, c in histogram) == len(
                self._study().pauses_ms[collector]
            )

    def test_renderers_include_workload_name(self):
        study = self._study()
        assert "demo" in render_figure8([study])
        assert "demo" in render_figure9([study])


class TestPauseStudyRunner:
    def test_discard_fraction_drops_leading_pauses(self):
        full = pause_study(["graphchi-cc"], collectors=("g1",), discard_fraction=0.0)
        trimmed = pause_study(["graphchi-cc"], collectors=("g1",), discard_fraction=0.5)
        assert len(trimmed[0].pauses_ms["g1"]) < len(full[0].pauses_ms["g1"])

    def test_default_collector_set_matches_paper(self):
        # CMS, G1, NG2C, ROLP — the paper omits ZGC from Figures 8/9
        assert set(PAUSE_FIGURE_COLLECTORS) == {"cms", "g1", "ng2c", "rolp"}
        assert "zgc" not in PAUSE_FIGURE_COLLECTORS


class TestFig6Constants:
    def test_modes_cover_the_four_bars(self):
        assert FIG6_MODES == ("none", "fast", "real", "slow")
        assert set(FIG6_LABELS) == set(FIG6_MODES)

"""Tests for the JVM facade: flags, profiling-cost accounting, the four
call-profiling modes, and summary statistics."""

import pytest

from repro import build_vm
from repro.core import RolpConfig, RolpProfiler
from repro.gc import G1Collector
from repro.heap import BandwidthModel, RegionHeap
from repro.runtime import CALL_PROFILING_MODES, JavaVM, Method, VMFlags


def vm_with_profiler(mode="real"):
    heap = RegionHeap(16 << 20)
    gc = G1Collector(heap, BandwidthModel())
    profiler = RolpProfiler(RolpConfig())
    return JavaVM(gc, profiler, VMFlags(call_profiling_mode=mode, compile_threshold=1))


def call_heavy_workload(vm, calls=50):
    thread = vm.spawn_thread()
    leaf = Method("leaf", "app.data.Leaf", lambda ctx: ctx.work(10), bytecode_size=100)

    def body(ctx):
        for i in range(calls):
            ctx.call(1, leaf)

    root = Method("root", "app.data.Root", body, bytecode_size=200)
    for _ in range(5):
        vm.run(thread, root)
    return vm


class TestFlags:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            VMFlags(call_profiling_mode="turbo")

    def test_all_modes_constructible(self):
        for mode in CALL_PROFILING_MODES:
            assert VMFlags(call_profiling_mode=mode).call_profiling_mode == mode


class TestCallProfilingModes:
    def test_none_mode_charges_nothing(self):
        vm = call_heavy_workload(vm_with_profiler("none"))
        assert vm.profiling_tax_ns == 0

    def test_fast_mode_charges_branch_only(self):
        vm = call_heavy_workload(vm_with_profiler("fast"))
        assert vm.profiling_tax_ns > 0

    def test_slow_mode_costs_more_than_fast(self):
        fast = call_heavy_workload(vm_with_profiler("fast"))
        slow = call_heavy_workload(vm_with_profiler("slow"))
        assert slow.profiling_tax_ns > fast.profiling_tax_ns

    def test_slow_mode_updates_stack_state_in_flight(self):
        vm = vm_with_profiler("slow")
        thread = vm.spawn_thread()
        observed = []

        leaf = Method(
            "leaf",
            "app.data.Leaf",
            lambda ctx: observed.append(ctx.thread.stack_state),
            bytecode_size=100,
        )

        def body(ctx):
            ctx.call(1, leaf)

        root = Method("root", "app.data.Root", body, bytecode_size=200)
        for _ in range(3):
            vm.run(thread, root)
        # Once both methods are jitted, the slow path applies increments.
        assert any(state != 0 for state in observed)
        assert thread.stack_state == 0  # balanced afterwards

    def test_real_mode_fast_path_when_disabled(self):
        vm = vm_with_profiler("real")
        thread = vm.spawn_thread()
        observed = []
        leaf = Method(
            "leaf",
            "app.data.Leaf",
            lambda ctx: observed.append(ctx.thread.stack_state),
            bytecode_size=100,
        )

        def body(ctx):
            ctx.call(1, leaf)

        root = Method("root", "app.data.Root", body, bytecode_size=200)
        for _ in range(3):
            vm.run(thread, root)
        # No conflict resolution enabled any site: no updates happen.
        assert all(state == 0 for state in observed)

    def test_uninstrumented_site_never_charged(self):
        vm, _ = build_vm("g1", heap_mb=16)  # NullProfiler
        call_heavy_workload(vm)
        assert vm.profiling_tax_ns == 0


class TestSummary:
    def test_summary_keys(self):
        vm = call_heavy_workload(vm_with_profiler())
        summary = vm.summary()
        for key in (
            "allocations",
            "bytes_allocated",
            "compiled_methods",
            "profiled_alloc_sites",
            "profiled_call_sites",
            "gc_cycles",
            "total_pause_ms",
            "profiling_tax_ms",
            "now_ms",
        ):
            assert key in summary

    def test_thread_ids_unique(self):
        vm, _ = build_vm("g1", heap_mb=16)
        ids = {vm.spawn_thread().thread_id for _ in range(10)}
        assert len(ids) == 10


class TestBuildVm:
    def test_all_collector_names(self):
        from repro import COLLECTOR_NAMES

        for name in COLLECTOR_NAMES:
            vm, profiler = build_vm(name, heap_mb=16)
            assert vm.collector.name in ("g1", "cms", "zgc", "ng2c")
            if name == "rolp":
                assert profiler is not None
                assert vm.profiler is profiler
            else:
                assert profiler is None

    def test_unknown_collector_rejected(self):
        with pytest.raises(ValueError):
            build_vm("shenandoah")

    def test_rolp_uses_ng2c_with_advice(self):
        vm, profiler = build_vm("rolp", heap_mb=16)
        assert vm.collector.use_profiler_advice

    def test_ng2c_uses_annotations(self):
        vm, _ = build_vm("ng2c", heap_mb=16)
        assert not vm.collector.use_profiler_advice

    def test_young_regions_forwarded(self):
        vm, _ = build_vm("g1", heap_mb=32, young_regions=3)
        assert vm.collector.young_regions == 3

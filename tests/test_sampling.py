"""Tests for the allocation-sampling extension (Section 8.5)."""

import pytest

from repro import build_vm
from repro.core import RolpConfig
from repro.core.context import encode
from repro.runtime import Method


def sampled_vm(rate, heap_mb=16):
    config = RolpConfig(allocation_sample_rate=rate, min_samples=4)
    vm, profiler = build_vm("rolp", heap_mb=heap_mb, rolp_config=config)
    return vm, profiler


def hot_alloc_method():
    return Method("mk", "app.data.Factory", lambda ctx: ctx.alloc(1, 64))


class TestSampling:
    def test_rate_one_samples_everything(self):
        vm, profiler = sampled_vm(1)
        thread = vm.spawn_thread()
        m = hot_alloc_method()
        for _ in range(vm.flags.compile_threshold + 100):
            vm.run(thread, m)
        assert profiler.allocations_skipped == 0

    def test_rate_four_samples_quarter(self):
        vm, profiler = sampled_vm(4)
        thread = vm.spawn_thread()
        m = hot_alloc_method()
        for _ in range(vm.flags.compile_threshold + 400):
            vm.run(thread, m)
        sampled = profiler.allocations_sampled
        skipped = profiler.allocations_skipped
        assert sampled + skipped >= 400
        assert skipped / (sampled + skipped) == pytest.approx(0.75, abs=0.02)

    def test_unsampled_objects_carry_no_header_context(self):
        vm, profiler = sampled_vm(1000)  # sample almost nothing
        thread = vm.spawn_thread()
        m = hot_alloc_method()
        objs = []
        for _ in range(vm.flags.compile_threshold + 50):
            objs.append(vm.run(thread, m))
        tail = objs[-40:]
        assert sum(1 for o in tail if o.context) <= 1

    def test_table_counts_match_sampled_only(self):
        vm, profiler = sampled_vm(4)
        thread = vm.spawn_thread()
        m = hot_alloc_method()
        for _ in range(vm.flags.compile_threshold + 200):
            vm.run(thread, m)
        site_id = m.alloc_sites[1].site_id
        counted = profiler.old_table.total_objects(encode(site_id, 0))
        assert counted == pytest.approx(profiler.allocations_sampled, abs=2)

    def test_sampling_reduces_profiling_tax(self):
        def tax(rate):
            vm, _ = sampled_vm(rate)
            thread = vm.spawn_thread()
            m = hot_alloc_method()
            for _ in range(vm.flags.compile_threshold + 500):
                vm.run(thread, m)
            return vm.profiling_tax_ns

        assert tax(16) < tax(1)

    def test_advice_still_reaches_unsampled_allocations(self):
        """Pretenuring advice applies to every allocation of an advised
        context, sampled or not."""
        vm, profiler = sampled_vm(4)
        thread = vm.spawn_thread()
        m = hot_alloc_method()
        for _ in range(vm.flags.compile_threshold + 2):
            vm.run(thread, m)
        site_id = m.alloc_sites[1].site_id
        context = encode(site_id, 0)
        profiler.advice.update_estimate(context, 7)
        objs = [vm.run(thread, m) for _ in range(8)]
        from repro.heap.region import Space

        assert all(o.region.space is Space.DYNAMIC for o in objs)

"""Unit tests for the telemetry layer: tracer, sink, exporters,
metrics registry, and the zero-cost null defaults."""

import json

import pytest

from repro.runtime.clock import SimClock
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    PAUSE_HISTOGRAM_BUCKETS_MS,
    Telemetry,
    TelemetrySession,
    TraceSink,
    Tracer,
)


class TestTracer:
    def test_span_records_times_in_ns(self):
        tracer = Tracer()
        tracer.span("gc/young", start_ns=1_000_000, duration_ns=500_000, collector="g1")
        (event,) = tracer.events
        assert event.phase == "X"
        assert event.ts_ns == 1_000_000
        assert event.dur_ns == 500_000
        assert event.args == {"collector": "g1"}

    def test_instant_uses_bound_clock(self):
        clock = SimClock()
        clock.advance_mutator(2_500)
        tracer = Tracer()
        tracer.bind_clock(clock)
        tracer.instant("jit/compile", method="m")
        (event,) = tracer.events
        assert event.phase == "i"
        assert event.ts_ns == clock.now_ns

    def test_first_clock_wins(self):
        first, second = SimClock(), SimClock()
        second.advance_mutator(999)
        tracer = Tracer()
        tracer.bind_clock(first)
        tracer.bind_clock(second)
        tracer.instant("x")
        assert tracer.events[0].ts_ns == first.now_ns

    def test_explicit_ts_overrides_clock(self):
        tracer = Tracer()
        tracer.instant("x", ts_ns=77)
        assert tracer.events[0].ts_ns == 77

    def test_chrome_export_shape(self):
        sink = TraceSink()
        tracer = sink.tracer("lucene/g1")
        tracer.span("gc/young", start_ns=2_000, duration_ns=1_000)
        tracer.instant("jit/compile", ts_ns=500)
        doc = sink.to_chrome()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        # metadata first: process_name per pid
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "lucene/g1"
        span = next(e for e in events if e["ph"] == "X")
        assert span["ts"] == pytest.approx(2.0)  # µs
        assert span["dur"] == pytest.approx(1.0)
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "p"
        json.dumps(doc)  # must be serializable

    def test_jsonl_export_one_object_per_line(self):
        sink = TraceSink()
        tracer = sink.tracer()
        tracer.instant("a", ts_ns=1)
        tracer.instant("b", ts_ns=2)
        lines = sink.to_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"
        assert json.loads(lines[1])["ts_ns"] == 2

    def test_sink_allocates_distinct_pids(self):
        sink = TraceSink()
        one = sink.tracer("run-one")
        two = sink.tracer("run-two")
        assert one.pid != two.pid
        one.instant("x", ts_ns=0)
        two.instant("y", ts_ns=0)
        pids = {e.pid for e in sink.events}
        assert pids == {one.pid, two.pid}

    def test_write_chrome(self, tmp_path):
        sink = TraceSink()
        sink.tracer("r").instant("x", ts_ns=1)
        path = tmp_path / "trace.json"
        sink.write_chrome(str(path))
        doc = json.loads(path.read_text())
        assert any(e.get("name") == "x" for e in doc["traceEvents"])

    def test_max_events_cap_counts_drops(self):
        sink = TraceSink(max_events=2)
        tracer = sink.tracer()
        for i in range(5):
            tracer.instant("e%d" % i, ts_ns=i)
        assert len(sink.events) == 2
        assert sink.dropped_events == 3
        assert [e.name for e in sink.events] == ["e0", "e1"]

    def test_trace_id_stamped_on_every_event(self):
        sink = TraceSink()
        tracer = sink.tracer("r", trace_id="abc123")
        tracer.instant("x", ts_ns=1)
        tracer.span("y", 2, 3)
        assert all(e.trace_id == "abc123" for e in sink.events)
        jsonl = [json.loads(line) for line in sink.to_jsonl().splitlines()]
        assert all(d["trace_id"] == "abc123" for d in jsonl)

    def test_ids_default_empty_and_keep_chrome_args_clean(self):
        sink = TraceSink()
        tracer = sink.tracer()
        tracer.instant("x", ts_ns=1, detail="d")
        event = sink.events[0]
        assert event.trace_id == "" and event.span_id == ""
        chrome = event.to_chrome()
        # empty ids never appear in chrome args: old documents stay
        # byte-for-byte what they were
        assert "trace_id" not in chrome["args"]
        assert "span_id" not in chrome["args"]
        jsonl = event.to_jsonl()
        assert jsonl["trace_id"] == "" and jsonl["span_id"] == ""

    def test_span_id_kwarg_moves_to_field(self):
        sink = TraceSink()
        sink.tracer().span("gc/young", 0, 10, span_id="gc-1/young", collector="g1")
        event = sink.events[0]
        assert event.span_id == "gc-1/young"
        assert event.args == {"collector": "g1"}
        assert event.to_chrome()["args"]["span_id"] == "gc-1/young"


class TestMetrics:
    def test_counter_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("allocs_total", "allocations")
        counter.inc(2, site="a")
        counter.inc(3, site="b")
        counter.inc(site="a")
        assert counter.value(site="a") == 3
        assert counter.total() == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_set_and_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.dec(4)
        assert gauge.value() == 6

    def test_histogram_bucket_semantics(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        histogram.observe(1.0)  # le 1.0 -> first bucket
        histogram.observe(5.0)
        histogram.observe(99.0)  # overflow
        assert histogram.counts() == [1, 1, 1]
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(105.0)

    def test_histogram_default_buckets_mirror_figure9(self):
        histogram = MetricsRegistry().histogram("gc_pause_ms")
        assert histogram.buckets == PAUSE_HISTOGRAM_BUCKETS_MS

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_json_export(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text").inc(2, collector="g1")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        doc = registry.to_json()
        assert doc["c"]["type"] == "counter"
        assert doc["c"]["samples"] == [{"labels": {"collector": "g1"}, "value": 2}]
        assert doc["h"]["samples"][0]["count"] == 1
        json.dumps(doc)

    def test_prometheus_export(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(2, collector="g1")
        histogram = registry.histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(20.0)
        text = registry.to_prometheus()
        assert "# HELP c a counter" in text
        assert "# TYPE c counter" in text
        assert 'c{collector="g1"} 2' in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="10"} 1' in text  # cumulative
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_sum 20.5" in text
        assert "h_count 2" in text

    def test_write_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        path = tmp_path / "metrics.prom"
        registry.write_prometheus(str(path))
        assert "c 1" in path.read_text()

    def test_prometheus_lines_sorted_regardless_of_insert_order(self):
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        samples = [("zeta", "g1"), ("alpha", "rolp"), ("mid", "cms")]
        for name, collector in samples:
            forward.counter(name).inc(1, collector=collector)
            forward.histogram("h", buckets=(1.0,)).observe(0.5, collector=collector)
        for name, collector in reversed(samples):
            backward.counter(name).inc(1, collector=collector)
            backward.histogram("h", buckets=(1.0,)).observe(0.5, collector=collector)
        assert forward.to_prometheus() == backward.to_prometheus()

    def test_histogram_percentile_interpolates_within_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(10.0, 20.0))
        for value in (5.0, 15.0, 15.0, 15.0):
            histogram.observe(value)
        # rank 2 of 4 -> 25% into the 3 observations of the (10, 20]
        # bucket after the first bucket's single count
        assert histogram.percentile(50.0) == pytest.approx(10.0 + 10.0 / 3)
        assert histogram.percentile(0.0) == 0.0
        assert histogram.percentile(25.0) == pytest.approx(10.0)

    def test_histogram_percentile_edge_cases(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        assert histogram.percentile(99.0) == 0.0  # no observations
        histogram.observe(100.0)  # overflow bucket
        assert histogram.percentile(99.0) == 10.0  # clamped to last edge
        with pytest.raises(ValueError):
            histogram.percentile(101.0)

    def test_histogram_percentile_respects_labels(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5, collector="g1")
        histogram.observe(9.0, collector="rolp")
        assert histogram.percentile(100.0, collector="g1") <= 1.0
        assert histogram.percentile(100.0, collector="rolp") > 1.0
        assert histogram.percentile(50.0) == 0.0  # unlabeled set is empty


class TestNullDefaults:
    def test_null_telemetry_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.tracer.enabled is False
        assert NULL_TELEMETRY.metrics.enabled is False

    def test_null_tracer_accepts_everything(self):
        tracer = NullTracer()
        tracer.bind_clock(SimClock())
        tracer.instant("x", anything=1)
        tracer.span("y", 0, 10, extra="z")

    def test_null_metrics_instruments_are_no_ops(self):
        metrics = NullMetrics()
        counter = metrics.counter("c")
        counter.inc(5, any_label="v")
        gauge = metrics.gauge("g")
        gauge.set(1)
        gauge.dec()
        metrics.histogram("h").observe(3.0)
        assert metrics.to_json() == {}

    def test_enabled_flag_set_when_either_side_is_live(self):
        assert Telemetry().enabled is False
        assert Telemetry(metrics=MetricsRegistry()).enabled is True
        assert Telemetry(tracer=TraceSink().tracer()).enabled is True


class TestSession:
    def test_runs_share_metrics_but_not_pids(self):
        session = TelemetrySession()
        one = session.for_run("lucene/g1")
        two = session.for_run("lucene/rolp")
        assert one.metrics is two.metrics is session.metrics
        assert one.tracer.pid != two.tracer.pid
        assert session.sink.process_names[one.tracer.pid] == "lucene/g1"

    def test_write_trace_and_prometheus(self, tmp_path):
        session = TelemetrySession()
        run = session.for_run("r")
        run.tracer.instant("x", ts_ns=5)
        run.metrics.counter("c").inc()
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        session.write_trace(str(trace_path))
        session.write_prometheus(str(prom_path))
        assert json.loads(trace_path.read_text())["traceEvents"]
        assert "c 1" in prom_path.read_text()

    def test_single_run_convenience(self):
        telemetry = Telemetry.for_run("solo")
        assert telemetry.enabled
        telemetry.tracer.instant("x", ts_ns=0)
        assert telemetry.tracer.sink.process_names[telemetry.tracer.pid] == "solo"

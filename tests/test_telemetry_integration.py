"""End-to-end telemetry: events and metrics recorded by real runs, and
the zero-cost guarantee (telemetry off == bit-identical numbers)."""

import json

import pytest

from repro.heap.object_model import SimObject
from repro.runtime.biased_lock import BiasedLockManager
from repro.runtime.method import Method
from repro.runtime.thread import SimThread
from repro.core.conflicts import ConflictResolver
from repro.bench.workload_registry import run_big_workload
from repro.telemetry import Telemetry, TelemetrySession


def run_traced(name="graphchi-cc", collector="rolp", operations=4000):
    session = TelemetrySession()
    telemetry = session.for_run("%s/%s" % (name, collector))
    result, workload = run_big_workload(
        name, collector, operations=operations, telemetry=telemetry
    )
    return session, result, workload


class TestWorkloadTrace:
    def test_gc_spans_match_recorded_pauses(self):
        session, result, workload = run_traced()
        # the "rolp" setup runs on the NG2C collector under the hood
        gc_name = workload.vm.collector.name
        spans = [e for e in session.sink.events if e.name.startswith("gc/")]
        assert len(spans) == len(result.pauses)
        by_start = {e.ts_ns: e for e in spans}
        for pause in result.pauses:
            span = by_start[pause.start_ns]
            assert span.dur_ns == pytest.approx(pause.duration_ns)
            assert span.args["collector"] == gc_name
            assert span.name == "gc/%s" % pause.kind

    def test_jit_compile_instants_present(self):
        session, _, workload = run_traced()
        compiles = [e for e in session.sink.events if e.name == "jit/compile"]
        assert len(compiles) == len(workload.vm.jit.compiled_methods)
        assert all(e.phase == "i" for e in compiles)

    def test_pause_histogram_counts_match(self):
        session, result, workload = run_traced()
        histogram = session.metrics.histogram("gc_pause_ms")
        gc_name = workload.vm.collector.name
        assert histogram.count(collector=gc_name) == len(result.pauses)
        assert session.metrics.counter("gc_pauses_total").total() == len(result.pauses)

    def test_allocation_counter_matches_vm(self):
        session, _, workload = run_traced()
        allocations = session.metrics.counter("vm_allocations_total")
        assert allocations.total() == workload.vm.allocations

    def test_rolp_events_present(self):
        session, _, workload = run_traced()
        names = {e.name for e in session.sink.events}
        assert "rolp/inference" in names
        instrumented = session.metrics.gauge("rolp_instrumented_methods")
        assert instrumented.value() == len(workload.vm.profiler.instrumented_methods)

    def test_chrome_export_round_trips(self, tmp_path):
        session, _, _ = run_traced(operations=2000)
        path = tmp_path / "trace.json"
        session.write_trace(str(path))
        doc = json.loads(path.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "M" in phases and "X" in phases


class TestZeroCost:
    def test_numbers_identical_with_and_without_telemetry(self):
        session = TelemetrySession()
        traced, _ = run_big_workload(
            "cassandra-wi",
            "rolp",
            operations=4000,
            telemetry=session.for_run("cassandra-wi/rolp"),
        )
        plain, _ = run_big_workload("cassandra-wi", "rolp", operations=4000)
        assert [(p.start_ns, p.duration_ns, p.kind) for p in traced.pauses] == [
            (p.start_ns, p.duration_ns, p.kind) for p in plain.pauses
        ]
        assert traced.vm_summary == plain.vm_summary
        assert traced.elapsed_ms == plain.elapsed_ms
        assert traced.max_memory_bytes == plain.max_memory_bytes


class TestComponentEvents:
    def test_bias_revocation_event_and_counters(self):
        telemetry = Telemetry.for_run("unit")
        manager = BiasedLockManager()
        manager.bind_telemetry(telemetry)
        obj = SimObject(64, 0, context=0x0042_0007)
        manager.lock(SimThread(1), obj)
        manager.revoke(obj)
        metrics = telemetry.metrics
        assert metrics.counter("vm_bias_locks_total").total() == 1
        assert metrics.counter("vm_bias_contexts_clobbered_total").total() == 1
        assert metrics.counter("vm_bias_revocations_total").total() == 1
        (event,) = [e for e in telemetry.tracer.events if e.name == "vm/bias-revocation"]
        assert event.category == "vm"

    def test_conflict_resolver_events(self):
        telemetry = Telemetry.for_run("unit")
        resolver = ConflictResolver(p_fraction=0.2, min_set_size=1)
        resolver.bind_telemetry(telemetry)
        method = Method("m", "pkg.Cls", lambda ctx: None)
        sites = [method.call_site(i) for i in range(10)]
        resolver.on_inference({1}, sites)  # conflict appears -> search starts
        resolver.on_inference(set(), sites)  # conflict gone -> narrowing
        for _ in range(8):
            resolver.on_inference(set(), sites)
            if 1 in resolver.resolved_sites:
                break
        assert 1 in resolver.resolved_sites
        metrics = telemetry.metrics
        assert metrics.counter("rolp_conflicts_total").total() == 1
        assert metrics.counter("rolp_conflicts_resolved_total").total() == 1
        assert metrics.counter("rolp_conflict_subsets_tried_total").total() >= 1
        names = [e.name for e in telemetry.tracer.events]
        assert "rolp/conflict-start" in names
        resolved = [
            e for e in telemetry.tracer.events if e.name == "rolp/conflict-resolved"
        ]
        assert len(resolved) == 1
        assert resolved[0].args["site_id"] == 1
        assert resolved[0].args["given_up"] is False

"""Planted-fault tests for the static program verifier (``staticcheck``).

Mirrors ``test_invariant_verifier.py``: each test hand-builds one
malformed :class:`MethodProgram` and asserts the verifier fires with
exactly the stable rule id the fault plants.  A verifier that only
passes on healthy programs proves nothing.

Also covers the ``ROLP_STATIC_CHECK=1`` pre-execution gate (read-only:
checked runs must be byte-identical to unchecked runs), the
``LoweringDiagnostics`` side-channel, and the ``rolp-bench
staticcheck`` exit codes.
"""

import json

import pytest

from repro import build_vm
from repro.analysis.staticcheck import (
    PROBE_FACTORS,
    PROBE_TAXES,
    VERIFIER_RULES,
    check_shipped_programs,
    run_staticcheck,
    symbolic_tick_sum,
    verify_call_tree,
    verify_program,
)
from repro.analysis.violations import InvariantViolation
from repro.bench import cli
from repro.bench.workload_registry import (
    EXTRA_WORKLOADS,
    EXTRA_WORKLOAD_OPS,
    register_workload,
)
from repro.fastpath import set_static_check
from repro.runtime.method import Method
from repro.runtime.program import (
    OP_ALLOC,
    OP_BIAS_LOCK,
    OP_CALL,
    OP_LOOP,
    OP_REPEAT,
    OP_THROW,
    OP_WORK,
    LoweringDiagnostics,
    MethodProgram,
    ProgramBuilder,
    lower_callable,
)
from repro.workloads.base import Workload


def expect_rule(rule, program, **kwargs):
    with pytest.raises(InvariantViolation) as exc_info:
        verify_program(program, **kwargs)
    assert exc_info.value.rule == rule
    return exc_info.value


class TestPlantedFaults:
    def test_unbalanced_repeat_body(self):
        program = MethodProgram(
            [OP_REPEAT, OP_WORK], [0, 10.0], [5, None], [1, -1], nregs=2
        )
        violation = expect_rule("program/repeat-nesting", program)
        assert violation.details["pc"] == 0

    def test_repeat_body_length_not_an_int(self):
        program = MethodProgram([OP_REPEAT], [0], [None], [1], nregs=2)
        expect_rule("program/repeat-nesting", program)

    def test_bias_lock_use_before_def(self):
        program = MethodProgram([OP_BIAS_LOCK], [None], [None], [0], nregs=1)
        violation = expect_rule("program/register-use-before-def", program)
        assert violation.details["register"] == 0

    def test_bias_lock_after_alloc_passes(self):
        program = MethodProgram(
            [OP_ALLOC, OP_BIAS_LOCK],
            [1, None],
            [(64, 1000.0), None],
            [0, 0],
            nregs=1,
        )
        assert verify_program(program)["ops"] == 2

    def test_arg_register_counts_as_defined_for_roots(self):
        program = MethodProgram([OP_BIAS_LOCK], [None], [None], [0], nregs=1)
        assert verify_program(program, arity=1)["nregs"] == 1
        expect_rule("program/register-use-before-def", program, arity=0)

    def test_repeat_body_defs_do_not_escape(self):
        # the REPEAT body may run zero times, so its ALLOC does not
        # define r0 for the BIAS_LOCK after the block
        program = MethodProgram(
            [OP_REPEAT, OP_ALLOC, OP_BIAS_LOCK],
            [1, 1, None],
            [1, (64, 1000.0), None],
            [0, 0, 0],
            nregs=2,
        )
        expect_rule("program/register-use-before-def", program)

    def test_unreachable_op_after_throw(self):
        program = MethodProgram(
            [OP_THROW, OP_WORK], ["boom", 10.0], [1, None], [-1, -1]
        )
        violation = expect_rule("program/unreachable-op", program)
        assert violation.details["thrown_at"] == 0

    def test_throw_inside_repeat_does_not_poison_the_tail(self):
        # the guarded THROW unwinds only some iterations' frames; the op
        # after the REPEAT block is reachable when count == 0
        program = MethodProgram(
            [OP_REPEAT, OP_THROW, OP_WORK],
            [0, "boom", 10.0],
            [1, 1, None],
            [1, -1, -1],
            nregs=2,
        )
        assert verify_program(program)["ops"] == 3

    def test_negative_throw_depth(self):
        program = MethodProgram([OP_THROW], ["boom"], [-1], [-1])
        expect_rule("program/throw-depth", program)

    def test_negative_work_tick(self):
        program = MethodProgram([OP_WORK], [-5.0], [None], [-1])
        expect_rule("program/clock-accounting", program)

    def test_nan_work_tick(self):
        program = MethodProgram([OP_WORK], [float("nan")], [None], [-1])
        expect_rule("program/clock-accounting", program)

    def test_negative_loop_per_iteration_tick(self):
        program = MethodProgram([OP_LOOP], [10], [-1.0], [-1])
        expect_rule("program/clock-accounting", program)

    def test_unknown_opcode(self):
        program = MethodProgram([42], [None], [None], [-1])
        expect_rule("program/operand-shape", program)

    def test_register_index_out_of_range(self):
        program = MethodProgram([OP_BIAS_LOCK], [None], [None], [7], nregs=1)
        expect_rule("program/operand-shape", program)

    def test_mutated_operand_arrays_lose_parallelism(self):
        # the constructor enforces parallel lengths; the verifier must
        # still catch a program corrupted after construction
        program = MethodProgram([OP_WORK], [10.0], [None], [-1])
        program.a = ()
        expect_rule("program/operand-shape", program)

    def test_alloc_bad_operand_tuple(self):
        program = MethodProgram([OP_ALLOC], [1], [64], [-1])
        expect_rule("program/operand-shape", program)

    def test_call_target_not_a_method(self):
        program = MethodProgram([OP_CALL], [1], ["not-a-method"], [-1])
        expect_rule("program/operand-shape", program)


class TestCallTreeRules:
    @staticmethod
    def mutually_recursive_methods():
        stub = ProgramBuilder("stub").build()
        m_b = Method("b", "cycle.Test", stub, bytecode_size=40)
        prog_a = ProgramBuilder("a").call(1, m_b).build()
        m_a = Method("a", "cycle.Test", prog_a, bytecode_size=40)
        prog_b = ProgramBuilder("b").call(1, m_a).build()
        m_b.body = prog_b
        return m_a, m_b

    def test_unconditional_call_cycle_is_stack_wrap(self):
        m_a, _m_b = self.mutually_recursive_methods()
        with pytest.raises(InvariantViolation) as exc_info:
            verify_call_tree(m_a.body, name=m_a.qualified_name)
        assert exc_info.value.rule == "program/stack-wrap"
        assert "cycle.Test.a" in str(exc_info.value)

    def test_repeat_guarded_recursion_is_exempt(self):
        # recursion whose back edge sits inside a REPEAT body has a
        # data-dependent iteration count: not statically unconditional
        stub = ProgramBuilder("stub").build()
        m_b = Method("b", "cycle.Guarded", stub, bytecode_size=40)
        prog_a = ProgramBuilder("a").call(1, m_b).build()
        m_a = Method("a", "cycle.Guarded", prog_a, bytecode_size=40)
        builder = ProgramBuilder("b", nregs=2)
        builder.repeat(0, 1)
        builder.call(1, m_a)
        builder.end_repeat()
        m_b.body = builder.build()
        summary = verify_call_tree(m_a.body, name=m_a.qualified_name)
        assert summary["programs"] == 2

    def test_root_escaping_throw_depth(self):
        leaf_prog = MethodProgram([OP_THROW], ["deep"], [3], [-1], name="leaf")
        leaf = Method("leaf", "throw.Test", leaf_prog, bytecode_size=40)
        root_prog = ProgramBuilder("root").call(1, leaf).build()
        # without root knowledge the depth is legal (unknown callers may
        # sit above); as a vm.run root it is a guaranteed escape
        assert verify_call_tree(root_prog)["programs"] == 2
        with pytest.raises(InvariantViolation) as exc_info:
            verify_call_tree(root_prog, assume_root=True)
        assert exc_info.value.rule == "program/throw-depth"

    def test_handled_throw_depth_passes_as_root(self):
        leaf_prog = MethodProgram([OP_THROW], ["ok"], [1], [-1], name="leaf")
        leaf = Method("leaf", "throw.Ok", leaf_prog, bytecode_size=40)
        root_prog = ProgramBuilder("root").call(1, leaf).build()
        assert verify_call_tree(root_prog, assume_root=True)["programs"] == 2


class TestSymbolicTicks:
    def test_generic_and_dispatch_sums_agree_on_shipped_ops(self):
        callee = Method(
            "callee", "ticks.Test", ProgramBuilder("callee").build(), bytecode_size=40
        )
        builder = ProgramBuilder("body")
        builder.work(37.0).loop(10, 5.5).call(1, callee)
        program = builder.build()
        for factor in PROBE_FACTORS:
            for tax in PROBE_TAXES:
                generic, dispatch = symbolic_tick_sum(program, factor, tax)
                assert generic == dispatch

    def test_every_probe_point_is_exercised(self):
        assert len(PROBE_FACTORS) * len(PROBE_TAXES) == 16

    def test_shipped_perf_kernel_programs_verify_clean(self):
        entry = check_shipped_programs()
        assert entry["verifier_findings"] == []
        assert entry["programs_checked"] >= 3


class TestRuleCatalogue:
    def test_rules_documented(self):
        assert set(VERIFIER_RULES) == {
            "program/operand-shape",
            "program/repeat-nesting",
            "program/register-use-before-def",
            "program/unreachable-op",
            "program/throw-depth",
            "program/stack-wrap",
            "program/clock-accounting",
        }


class TestLoweringDiagnostics:
    def test_unsupported_signature_records_reason(self):
        def body(ctx, extra_arg):
            ctx.work(10)

        diagnostics = LoweringDiagnostics()
        assert lower_callable(body, diagnostics=diagnostics) is None
        assert len(diagnostics) == 1
        event = diagnostics.events[0]
        assert event["reason"] == "unsupported-signature"
        assert "body" in event["function"]
        assert diagnostics.reasons() == {"unsupported-signature": 1}

    def test_non_lowerable_statement_records_location(self):
        def body(ctx):
            total = 0  # noqa: F841 - deliberately unlowerable
            ctx.work(10)

        diagnostics = LoweringDiagnostics()
        assert lower_callable(body, diagnostics=diagnostics) is None
        assert len(diagnostics) == 1
        assert diagnostics.events[0]["line"] > 0

    def test_diagnostics_default_is_silent(self):
        def body(ctx, extra_arg):
            ctx.work(10)

        assert lower_callable(body) is None

    def test_successful_lowering_records_nothing(self):
        def body(ctx):
            ctx.work(10)

        diagnostics = LoweringDiagnostics()
        assert lower_callable(body, diagnostics=diagnostics) is not None
        assert len(diagnostics) == 0

    def test_vm_counts_lowering_failures(self):
        from repro.runtime.dispatch import _program_of
        from repro.telemetry import Telemetry

        vm, _ = build_vm("g1", heap_mb=8, telemetry=Telemetry.for_run("test"))

        def opaque_body(ctx, extra):
            ctx.work(1)

        method = Method("m", "diag.Test", opaque_body, bytecode_size=40)
        assert _program_of(vm, method) is None
        assert vm.lowering_diagnostics.reasons() == {"unsupported-signature": 1}
        assert (
            vm._m_lowering_failures.value(reason="unsupported-signature") == 1
        )
        # memoized failure: no double counting on re-dispatch
        assert _program_of(vm, method) is None
        assert (
            vm._m_lowering_failures.value(reason="unsupported-signature") == 1
        )


def faulty_method():
    program = MethodProgram(
        [OP_REPEAT, OP_WORK], [0, 10.0], [9, None], [1, -1], nregs=2, name="bad"
    )
    return Method("bad", "gate.Test", program, bytecode_size=40)


def healthy_method():
    builder = ProgramBuilder("ok", nregs=2)
    builder.repeat(1, 0)
    builder.alloc_table(3, [64, 128], [5_000.0, 50_000.0], 0)
    builder.end_repeat()
    builder.work(25.0)
    return Method("ok", "gate.Test", builder.build(), bytecode_size=60)


class TestStaticCheckGate:
    def run_cells(self, method, ops=64):
        vm, _ = build_vm("rolp", heap_mb=16)
        thread = vm.spawn_thread("main")
        for start in range(0, ops, 8):
            vm.run(thread, method, start, 8)
        return {
            "now_ns": vm.clock.now_ns,
            "allocations": vm.allocations,
            "bytes": vm.bytes_allocated,
            "stack_state": thread.stack_state,
            "tax": repr(vm.profiling_tax_ns),
        }

    def test_gate_off_by_default_and_null_hook(self):
        vm, _ = build_vm("rolp", heap_mb=16)
        assert vm.static_check is False
        thread = vm.spawn_thread("main")
        vm.run(thread, healthy_method(), 0, 4)
        assert vm._static_checked == set()

    def test_gate_trips_on_planted_fault_before_execution(self):
        previous = set_static_check(True)
        try:
            vm, _ = build_vm("rolp", heap_mb=16)
            thread = vm.spawn_thread("main")
            with pytest.raises(InvariantViolation) as exc_info:
                vm.run(thread, faulty_method(), 0, 4)
            assert exc_info.value.rule == "program/repeat-nesting"
            # tripped before any op executed: clock never moved
            assert vm.clock.now_ns == 0
            assert vm.allocations == 0
        finally:
            set_static_check(previous)

    def test_gate_runs_are_byte_identical(self):
        baseline = self.run_cells(healthy_method())
        previous = set_static_check(True)
        try:
            checked = self.run_cells(healthy_method())
        finally:
            set_static_check(previous)
        assert checked == baseline

    def test_gate_memoizes_per_method(self):
        previous = set_static_check(True)
        try:
            vm, _ = build_vm("rolp", heap_mb=16)
            thread = vm.spawn_thread("main")
            method = healthy_method()
            vm.run(thread, method, 0, 4)
            vm.run(thread, method, 4, 4)
            assert vm._static_checked == {id(method)}
        finally:
            set_static_check(previous)


class _FaultyWorkload(Workload):
    """A registered workload shipping one malformed program."""

    name = "staticcheck-faulty"
    heap_mb = 16

    def build(self, vm) -> None:
        self.vm = vm
        self.method = faulty_method()

    def run_op(self, op_index: int) -> None:  # pragma: no cover - never run
        raise AssertionError("staticcheck must flag this workload unrun")


class TestCommandLine:
    def test_staticcheck_exits_zero_on_shipped_workloads(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli.main(
            ["staticcheck", "--workloads", "lucene", "--report-out", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "rolp-bench/staticcheck/v1"
        assert report["totals"]["verifier_findings"] == 0
        assert report["totals"]["programs_checked"] > 0
        assert [entry["name"] for entry in report["workloads"]] == ["lucene"]

    def test_staticcheck_exits_three_on_planted_fault(self, tmp_path, capsys):
        register_workload("staticcheck-faulty", _FaultyWorkload, 100)
        try:
            out = tmp_path / "report.json"
            code = cli.main(
                [
                    "staticcheck",
                    "--workloads",
                    "staticcheck-faulty",
                    "--report-out",
                    str(out),
                ]
            )
            assert code == 3
            report = json.loads(out.read_text())
            findings = report["workloads"][0]["verifier_findings"]
            assert [finding["rule"] for finding in findings] == [
                "program/repeat-nesting"
            ]
            assert "program/repeat-nesting" in capsys.readouterr().err
        finally:
            EXTRA_WORKLOADS.pop("staticcheck-faulty", None)
            EXTRA_WORKLOAD_OPS.pop("staticcheck-faulty", None)

    def test_full_report_over_every_registered_workload(self):
        report = run_staticcheck()
        names = [entry["name"] for entry in report["workloads"]]
        assert "cassandra-wi" in names and "adversarial" in names
        assert report["totals"]["verifier_findings"] == 0
        assert report["totals"]["predicted_conflict_sites"] > 0
        assert report["programs"]["programs_checked"] >= 6

"""Integration tests: the whole pipeline end to end on small runs.

These check the paper's qualitative claims hold on miniature versions
of the workloads — fast enough for the unit-test suite; the full-size
claims live in benchmarks/.
"""

import pytest

from repro.metrics.pauses import percentile
from repro.workloads.base import run_workload
from repro.workloads.kvstore import CassandraWorkload


def mini_cassandra(**kwargs):
    defaults = dict(
        key_count=5000,
        # the memtable must span several GC cycles or nothing is
        # middle-lived enough to be worth pretenuring
        memtable_flush_bytes=5 << 20,
        row_cache_entries=300,
        worker_threads=2,
    )
    defaults.update(kwargs)
    return CassandraWorkload.write_intensive(**defaults)


OPS = 45_000
HEAP = 48


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for collector in ("g1", "cms", "zgc", "ng2c", "rolp"):
            workload = mini_cassandra()
            results[collector] = (
                run_workload(workload, collector, operations=OPS, heap_mb=HEAP),
                workload,
            )
        return results

    def test_all_collectors_complete(self, runs):
        for collector, (result, _) in runs.items():
            assert result.operations == OPS
            assert result.elapsed_ms > 0

    def test_work_is_identical_across_collectors(self, runs):
        """The same workload seed does the same application work no
        matter the collector."""
        allocations = {
            collector: result.vm_summary["allocations"]
            for collector, (result, _) in runs.items()
        }
        assert len(set(allocations.values())) == 1

    def test_pretenuring_reduces_gc_cycles(self, runs):
        g1 = runs["g1"][0]
        ng2c = runs["ng2c"][0]
        assert ng2c.gc_cycles < g1.gc_cycles

    def test_ng2c_flattens_pauses(self, runs):
        g1 = runs["g1"][0]
        ng2c = runs["ng2c"][0]
        assert percentile(ng2c.pause_ms, 99.0) < percentile(g1.pause_ms, 99.0)

    def test_rolp_learns_and_improves_late_pauses(self, runs):
        rolp, workload = runs["rolp"]
        profiler = workload.vm.profiler
        assert profiler.inference.passes_run >= 1
        assert len(profiler.advice) >= 1
        late = [
            p.duration_ms
            for p in rolp.pauses
            if p.start_ns > rolp.elapsed_ms * 1e6 * 0.6
        ]
        early = [
            p.duration_ms
            for p in rolp.pauses
            if p.start_ns < rolp.elapsed_ms * 1e6 * 0.3
        ]
        if early and late:
            assert percentile(late, 50.0) <= percentile(early, 50.0) * 1.05

    def test_zgc_pauses_tiny(self, runs):
        zgc = runs["zgc"][0]
        assert max(zgc.pause_ms) < 2.0

    def test_profiler_overhead_bounded(self, runs):
        rolp, workload = runs["rolp"]
        tax_ms = workload.vm.profiling_tax_ns / 1e6
        assert tax_ms < rolp.elapsed_ms * 0.10

    def test_old_table_memory_bounded(self, runs):
        _, workload = runs["rolp"]
        assert workload.vm.profiler.old_table_memory_bytes() <= 16 << 20

    def test_memory_within_heap(self, runs):
        for collector, (result, _) in runs.items():
            if collector == "zgc":
                continue  # reports committed + headroom reserve
            assert result.max_memory_bytes <= HEAP << 20


class TestCrossCollectorOracleConsistency:
    def test_object_deaths_independent_of_collector(self):
        """The liveness oracle is workload-driven: flushing kills the
        same cells regardless of who collects."""
        flushes = {}
        for collector in ("g1", "rolp"):
            workload = mini_cassandra(seed=123)
            run_workload(workload, collector, operations=10_000, heap_mb=HEAP)
            flushes[collector] = workload.flushes
        assert flushes["g1"] == flushes["rolp"]

"""Interpreter edge cases every execution backend must preserve:
exception unwinds that cross allocation sites (with and without the
rethrow hook), 16-bit stack-state wraparound under deeply instrumented
call chains, the OSR corruption pulse, allocation outside any frame,
and ``loop()`` clock accounting.

Every test runs against all three execution backends (the reference
:class:`ExecutionContext`, :class:`FastExecutionContext` and the
table-dispatch :class:`CompiledExecutionContext`), selected the way
production selects them — via the process-global backend switch at VM
construction.  The workload bodies are written in the straight-line
shape :func:`~repro.runtime.program.lower_callable` accepts, so under
the compiled backend they genuinely execute in the dispatch loop (a
body that records observations through a closure stays a Python
callable and exercises the mixed-tier fallback instead).
"""

import pytest

from repro import build_vm
from repro.fastpath import BACKENDS, set_backend
from repro.heap.header import MASK_16
from repro.runtime import Method, VMFlags
from repro.runtime.dispatch import CompiledExecutionContext
from repro.runtime.interpreter import ExecutionContext, FastExecutionContext
from repro.runtime.program import ProgramBuilder


@pytest.fixture(params=BACKENDS)
def exec_backend(request):
    previous = set_backend(request.param)
    yield request.param
    set_backend(previous)


def make_vm(flags=None):
    vm, _ = build_vm("g1", heap_mb=16, flags=flags)
    return vm


def make_method(name, body, klass="app.Edge"):
    # bytecode_size above inline_max_size: call sites to these methods
    # stay out of inlining, so each can carry a stack-state increment
    return Method(name, klass, body, bytecode_size=100)


def set_increment(caller, bci, increment):
    """Hand an already-recorded call site a deterministic increment (the
    JIT normally draws one from its RNG at compile time)."""
    caller.call_sites[bci].increment = increment


class TestContextSelection:
    def test_vm_picks_context_class_from_ambient_switch(self, exec_backend):
        vm = make_vm()
        ctx = vm.context(vm.spawn_thread())
        expected = {
            "reference": ExecutionContext,
            "fast": FastExecutionContext,
            "compiled": CompiledExecutionContext,
        }[exec_backend]
        assert type(ctx) is expected


class TestExceptionUnwindThroughAlloc:
    """A method that allocates and then throws: the unwind crosses a
    frame whose call site contributed to the stack state, and — per
    Section 7.2.2 — only ROLP's rethrow hook (``fix_exception_unwind``)
    rebalances it."""

    def run_workload(self, fix):
        vm = make_vm(
            VMFlags(call_profiling_mode="slow", fix_exception_unwind=fix)
        )
        thread = vm.spawn_thread()

        def inner_body(ctx):
            ctx.alloc(1, 128, 1_000)
            ctx.throw_exception("post-alloc failure", 2)

        inner = make_method("inner", inner_body)

        def mid_body(ctx):
            ctx.alloc(2, 64, 1_000)
            ctx.call(5, inner)

        mid = make_method("mid", mid_body)

        def root_body(ctx):
            ctx.call(7, mid)

        root = make_method("root", root_body)

        # first run records the call sites; then instrument them by hand
        # so the second run's unwind carries real contributions
        vm.run(thread, root)
        set_increment(root, 7, 0x0101)
        set_increment(mid, 5, 0x0202)
        vm.run(thread, root)
        return vm, thread, inner

    def test_alloc_site_recorded_despite_unwind(self, exec_backend):
        vm, thread, inner = self.run_workload(fix=True)
        assert inner.alloc_sites[1].alloc_count == 2
        assert vm.allocations == 4  # 2 allocs per run (mid + inner)

    def test_unwind_with_fix_rebalances_stack_state(self, exec_backend):
        _, thread, _ = self.run_workload(fix=True)
        assert thread.frames == []
        assert thread.stack_state == 0

    def test_unwind_without_fix_leaks_contributions(self, exec_backend):
        # the exception is handled in root (2 frames up): both frames it
        # crosses — inner (contributed 0x0202) and mid (0x0101) — unwind
        # unrepaired; root's own pop is a normal return and stays balanced
        _, thread, _ = self.run_workload(fix=False)
        assert thread.frames == []
        assert thread.stack_state == 0x0202 + 0x0101
        assert thread.expected_stack_state() == 0
        assert thread.verify_and_repair() is True  # safepoint repairs it
        assert thread.stack_state == 0

    @pytest.mark.parametrize("fix", [True, False], ids=["hook", "no-hook"])
    def test_program_bodies_unwind_like_callables(self, exec_backend, fix):
        """The same workload authored directly as MethodPrograms: the
        unwind must cross *dispatch* frames under the compiled backend
        and generic replay frames elsewhere, with identical balances."""
        vm = make_vm(
            VMFlags(call_profiling_mode="slow", fix_exception_unwind=fix)
        )
        thread = vm.spawn_thread()
        inner = make_method(
            "inner",
            ProgramBuilder("inner")
            .alloc(1, 128, 1_000)
            .throw("post-alloc failure", 2)
            .build(),
        )
        mid = make_method(
            "mid", ProgramBuilder("mid").alloc(2, 64, 1_000).call(5, inner).build()
        )
        root = make_method("root", ProgramBuilder("root").call(7, mid).build())

        vm.run(thread, root)
        set_increment(root, 7, 0x0101)
        set_increment(mid, 5, 0x0202)
        vm.run(thread, root)

        assert inner.alloc_sites[1].alloc_count == 2
        assert vm.allocations == 4
        assert thread.frames == []
        assert thread.stack_state == (0 if fix else 0x0202 + 0x0101)


class TestStackStateOverflow:
    """Contributions are 16-bit modular arithmetic: a nested chain whose
    increments sum past 0xFFFF must wrap, agree with
    ``expected_stack_state`` mid-flight, and unwind back to zero."""

    def test_nested_increments_wrap_mod_2_16(self, exec_backend):
        vm = make_vm(VMFlags(call_profiling_mode="slow"))
        thread = vm.spawn_thread()
        observed = {}

        def leaf_body(ctx):
            observed["stack_state"] = ctx.thread.stack_state
            observed["expected"] = ctx.thread.expected_stack_state()

        leaf = make_method("leaf", leaf_body)

        def mid_body(ctx):
            ctx.call(3, leaf)

        mid = make_method("mid", mid_body)

        def root_body(ctx):
            ctx.call(4, mid)

        root = make_method("root", root_body)

        vm.run(thread, root)  # record sites
        set_increment(root, 4, 0x9000)
        set_increment(mid, 3, 0x9000)
        vm.run(thread, root)

        wrapped = (0x9000 + 0x9000) & MASK_16
        assert wrapped == 0x2000  # the sum really exceeds 16 bits
        assert observed["stack_state"] == wrapped
        assert observed["expected"] == wrapped
        assert thread.stack_state == 0
        assert thread.frames == []

    def test_wraparound_survives_exception_unwind(self, exec_backend):
        vm = make_vm(
            VMFlags(call_profiling_mode="slow", fix_exception_unwind=True)
        )
        thread = vm.spawn_thread()

        def leaf_body(ctx):
            ctx.throw_exception("boom", 2)

        leaf = make_method("leaf", leaf_body)

        def mid_body(ctx):
            ctx.call(3, leaf)

        mid = make_method("mid", mid_body)

        def root_body(ctx):
            ctx.call(4, mid)

        root = make_method("root", root_body)

        vm.run(thread, root)
        set_increment(root, 4, 0xFFFF)
        set_increment(mid, 3, 0xFFFF)
        vm.run(thread, root)
        # the repair path subtracts mod 2**16 too: wrapped contributions
        # unwind to exactly zero, not to a 2**16 residue
        assert thread.stack_state == 0


class TestOsrCorruptionPulse:
    """``loop()`` in an OSR-eligible interpreted method compiles it
    mid-execution and applies the 0x5A5A stack-state pulse the
    safepoint verifier exists to repair (§7.2.3)."""

    def run_looper(self):
        vm = make_vm(VMFlags(compile_threshold=1_000_000))
        thread = vm.spawn_thread()

        def body(ctx):
            ctx.loop(100, 10.0)

        looper = Method(
            "looper", "app.Edge", body, bytecode_size=100, osr_eligible=True
        )
        vm.run(thread, looper)
        return vm, thread, looper

    def test_osr_compiles_and_corrupts_stack_state(self, exec_backend):
        vm, thread, looper = self.run_looper()
        assert looper.compiled
        assert vm.jit.osr_events == 1
        # the pulse survives until the next safepoint repairs it
        assert thread.stack_state == 0x5A5A
        assert thread.verify_and_repair() is True
        assert thread.stack_state == 0

    def test_osr_fires_once(self, exec_backend):
        vm, thread, looper = self.run_looper()
        thread.verify_and_repair()
        vm.run(thread, looper)  # already compiled: no second pulse
        assert vm.jit.osr_events == 1
        assert thread.stack_state == 0


class TestAllocationOutsideFrame:
    def test_alloc_without_frame_raises(self, exec_backend):
        vm = make_vm()
        ctx = vm.context(vm.spawn_thread())
        with pytest.raises(RuntimeError, match="outside any method frame"):
            ctx.alloc(1, 64)


class TestLoopClockAccounting:
    def test_loop_charges_iterations_times_cost(self, exec_backend):
        vm = make_vm()
        thread = vm.spawn_thread()
        factor = vm.collector.mutator_overhead_factor
        deltas = {}

        def body(ctx):
            before = vm.clock.now_ns
            ctx.loop(1_000, ns_per_iteration=7.5)
            deltas["loop"] = vm.clock.now_ns - before

        vm.run(thread, Method("looper", "app.Edge", body, bytecode_size=100))
        assert deltas["loop"] == 1_000 * 7.5 * factor

    def test_loop_without_osr_leaves_stack_state_alone(self, exec_backend):
        vm = make_vm()
        thread = vm.spawn_thread()

        def body(ctx):
            ctx.loop(10)

        # osr_eligible defaults to False, so no OSR corruption is modeled
        vm.run(thread, Method("looper", "app.Edge", body, bytecode_size=100))
        assert thread.stack_state == 0

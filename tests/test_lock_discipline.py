"""Happens-before tests for the biased-lock discipline checker.

Covers both the checker driven directly with hand-built event sequences
(fault injection: out-of-order revocation, races, header/record
mismatches) and the checker wired through :class:`BiasedLockManager`
and the VM, where every event comes from real lock operations.
"""

import pytest

from repro.analysis import InvariantViolation, VerifierSuite
from repro.analysis.lock_checker import VM_ACTOR, LockDisciplineChecker, _happens_before
from repro.gc import G1Collector
from repro.heap import BandwidthModel, RegionHeap
from repro.heap import header as hdr
from repro.heap.object_model import SimObject
from repro.runtime import JavaVM, VMFlags
from repro.runtime.biased_lock import BiasedLockManager
from repro.runtime.thread import SimThread


def bias(checker, thread, obj):
    """Drive one legal acquisition: checker event, then the mutation."""
    checker.on_bias_lock(thread, obj)
    obj.bias_lock(0x7F00_0000 | (thread.thread_id << 8))


def revoke(checker, obj, thread=None):
    checker.on_bias_revoke(obj, thread)
    obj.header = hdr.revoke_bias(obj.header)


class TestVectorClocks:
    def test_happens_before_ordering(self):
        assert _happens_before({1: 1}, {1: 2})
        assert _happens_before({}, {1: 1})
        assert not _happens_before({1: 2}, {1: 1})
        assert not _happens_before({1: 1, 2: 1}, {1: 5})  # actor 2 unseen

    def test_safepoint_joins_all_actors(self):
        checker = LockDisciplineChecker()
        t1, t2 = SimThread(1), SimThread(2)
        obj = SimObject(64, 0)
        bias(checker, t1, obj)
        revoke(checker, obj, t1)
        checker.at_safepoint([t1, t2])
        # after the join, t2's clock dominates everything t1 did
        assert _happens_before(checker._clocks[1], checker._clocks[2])
        assert checker.safepoints == 1


class TestLegalSequences:
    def test_lock_revoke_safepoint_relock(self):
        checker = LockDisciplineChecker()
        t1, t2 = SimThread(1), SimThread(2)
        obj = SimObject(64, 0)
        bias(checker, t1, obj)
        assert checker.owner_of(obj) == 1
        assert checker.biased_count() == 1
        revoke(checker, obj)  # VM-initiated revocation
        checker.at_safepoint([t1, t2])
        bias(checker, t2, obj)  # ordered after the revoke: legal
        assert checker.owner_of(obj) == 2
        assert checker.violations == 0

    def test_same_thread_rebias_needs_no_safepoint(self):
        checker = LockDisciplineChecker()
        t1 = SimThread(1)
        obj = SimObject(64, 0)
        bias(checker, t1, obj)
        revoke(checker, obj, t1)
        bias(checker, t1, obj)  # its own revoke already happened-before
        assert checker.violations == 0

    def test_distinct_objects_are_independent(self):
        checker = LockDisciplineChecker()
        t1, t2 = SimThread(1), SimThread(2)
        a, b = SimObject(64, 0), SimObject(64, 0)
        bias(checker, t1, a)
        bias(checker, t2, b)
        assert checker.biased_count() == 2
        assert checker.owner_of(a) == 1
        assert checker.owner_of(b) == 2


class TestOrderingFaults:
    def test_double_bias_fires(self):
        checker = LockDisciplineChecker()
        t1, t2 = SimThread(1), SimThread(2)
        obj = SimObject(64, 0)
        bias(checker, t1, obj)
        with pytest.raises(InvariantViolation) as info:
            checker.on_bias_lock(t2, obj)
        assert info.value.rule == "lock/double-bias"
        assert info.value.details["thread"] == 2
        assert info.value.details["owner"] == 1

    def test_revoke_of_unbiased_object_fires(self):
        checker = LockDisciplineChecker()
        obj = SimObject(64, 0)
        with pytest.raises(InvariantViolation) as info:
            checker.on_bias_revoke(obj, SimThread(1))
        assert info.value.rule == "lock/revoke-unbiased"
        assert info.value.details["thread"] == 1

    def test_rebias_without_safepoint_fires(self):
        checker = LockDisciplineChecker()
        t1, t2 = SimThread(1), SimThread(2)
        obj = SimObject(64, 0)
        bias(checker, t1, obj)
        revoke(checker, obj)  # VM revokes; t2 never observes it
        with pytest.raises(InvariantViolation) as info:
            checker.on_bias_lock(t2, obj)
        assert info.value.rule == "lock/unordered-rebias"
        assert info.value.details["thread"] == 2
        assert info.value.details["revoker"] == VM_ACTOR

    def test_safepoint_between_revoke_and_rebias_heals(self):
        checker = LockDisciplineChecker()
        t1, t2 = SimThread(1), SimThread(2)
        obj = SimObject(64, 0)
        bias(checker, t1, obj)
        revoke(checker, obj)
        checker.at_safepoint([t1, t2])
        bias(checker, t2, obj)
        assert checker.violations == 0

    def test_context_overwrite_on_live_lock_fires(self):
        checker = LockDisciplineChecker()
        t1, t2 = SimThread(1), SimThread(2)
        obj = SimObject(64, 0)
        bias(checker, t1, obj)
        with pytest.raises(InvariantViolation) as info:
            checker.on_context_install(t2, obj, 0x0042_0007)
        assert info.value.rule == "lock/context-overwrite"
        assert info.value.details["owner"] == 1
        assert info.value.details["new_context"] == 0x0042_0007

    def test_context_install_on_unlocked_object_passes(self):
        checker = LockDisciplineChecker()
        checker.on_context_install(SimThread(1), SimObject(64, 0), 0x42)
        assert checker.violations == 0


class TestHeaderRecordMismatch:
    def test_bit_without_grant_fires(self):
        checker = LockDisciplineChecker()
        obj = SimObject(64, 0)
        obj.bias_lock(0x7F00_0100)  # header written behind the manager's back
        with pytest.raises(InvariantViolation) as info:
            checker.on_bias_lock(SimThread(1), obj)
        assert info.value.rule == "lock/header-mismatch"

    def test_grant_without_bit_fires_on_revoke(self):
        checker = LockDisciplineChecker()
        t1 = SimThread(1)
        obj = SimObject(64, 0)
        checker.on_bias_lock(t1, obj)  # granted, but the bit never lands
        with pytest.raises(InvariantViolation) as info:
            checker.on_bias_revoke(obj, t1)
        assert info.value.rule == "lock/header-mismatch"
        assert info.value.details["owner"] == 1


class TestManagerIntegration:
    """The checker fed by real BiasedLockManager operations."""

    def manager(self):
        suite = VerifierSuite(2)
        manager = BiasedLockManager()
        manager.bind_verifier(suite)
        return manager, suite

    def test_legal_lock_revoke_cycle(self):
        manager, suite = self.manager()
        t1, t2 = SimThread(1), SimThread(2)
        obj = SimObject(64, 0)
        manager.lock(t1, obj)
        manager.revoke(obj)
        suite.locks.at_safepoint([t1, t2])
        manager.lock(t2, obj)
        assert suite.violations == 0
        assert suite.locks.owner_of(obj) == 2

    def test_double_lock_through_manager_fires(self):
        manager, _ = self.manager()
        obj = SimObject(64, 0)
        manager.lock(SimThread(1), obj)
        with pytest.raises(InvariantViolation, match="double-bias"):
            manager.lock(SimThread(2), obj)

    def test_racing_rebias_through_manager_fires(self):
        manager, _ = self.manager()
        obj = SimObject(64, 0)
        manager.lock(SimThread(1), obj)
        manager.revoke(obj)
        with pytest.raises(InvariantViolation, match="unordered-rebias"):
            manager.lock(SimThread(2), obj)

    def test_unbound_manager_checks_nothing(self):
        manager = BiasedLockManager()  # null verifier: old behaviour
        obj = SimObject(64, 0)
        manager.lock(SimThread(1), obj)
        manager.lock(SimThread(2), obj)  # double bias goes unnoticed
        assert manager.locks_taken == 2


class TestVmIntegration:
    def make_vm(self, level):
        heap = RegionHeap(8 << 20)
        return JavaVM(
            G1Collector(heap, BandwidthModel()), flags=VMFlags(verify_level=level)
        )

    def test_full_level_wires_lock_checker(self):
        vm = self.make_vm(2)
        assert vm.verifier.locks is not None
        assert vm.biased_locks._verifier is vm.verifier
        t1 = vm.spawn_thread()
        obj = SimObject(64, 0)
        vm.biased_locks.lock(t1, obj)
        assert vm.verifier.locks.owner_of(obj) == t1.thread_id
        vm.at_safepoint()
        assert vm.verifier.locks.safepoints == 1

    def test_heap_level_skips_lock_checker(self):
        vm = self.make_vm(1)
        assert vm.verifier.locks is None
        obj = SimObject(64, 0)
        vm.biased_locks.lock(vm.spawn_thread(), obj)
        vm.biased_locks.lock(vm.spawn_thread(), obj)  # not checked at level 1
        assert vm.biased_locks.locks_taken == 2

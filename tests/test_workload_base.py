"""Tests for the workload base class and run harness."""

import pytest

from repro.core import RolpConfig
from repro.runtime import Method
from repro.workloads.base import RunResult, Workload, run_workload


class TinyWorkload(Workload):
    """Minimal concrete workload for harness tests."""

    name = "tiny"
    profiled_packages = ("app.data",)
    heap_mb = 16
    young_regions = 2
    default_ops = 50

    def build(self, vm):
        self.vm = vm
        self.make_thread("tiny-worker")

        def body(ctx):
            ctx.alloc(1, 256, lives_ns=10_000)
            ctx.work(500)

        self.m_op = Method("op", "app.data.Tiny", body)

    def run_op(self, op_index):
        self.vm.run(self.threads[0], self.m_op)


class TestWorkloadBase:
    def test_build_must_be_implemented(self):
        with pytest.raises(NotImplementedError):
            Workload().build(None)

    def test_run_op_must_be_implemented(self):
        with pytest.raises(NotImplementedError):
            Workload().run_op(0)

    def test_make_thread_requires_build(self):
        with pytest.raises(AssertionError):
            TinyWorkload().make_thread("x")

    def test_package_filter_from_declared_packages(self):
        workload = TinyWorkload()
        pkg_filter = workload.package_filter()
        assert pkg_filter.accepts("app.data")
        assert pkg_filter.accepts("app.data.sub")
        assert not pkg_filter.accepts("app.web")

    def test_empty_packages_accept_all(self):
        workload = TinyWorkload()
        workload.profiled_packages = ()
        assert workload.package_filter().accepts("anything")

    def test_count_sites(self):
        workload = TinyWorkload()
        run_workload(workload, "g1", operations=5)
        alloc_sites, call_sites = workload.count_sites()
        assert alloc_sites == 1
        assert call_sites == 0

    def test_all_methods_discovers_method_attributes(self):
        workload = TinyWorkload()
        run_workload(workload, "g1", operations=5)
        assert workload.m_op in workload.all_methods()


class TestRunHarness:
    def test_default_ops_used(self):
        workload = TinyWorkload()
        result = run_workload(workload, "g1")
        assert result.operations == 50

    def test_explicit_ops_override(self):
        workload = TinyWorkload()
        result = run_workload(workload, "g1", operations=7)
        assert result.operations == 7

    def test_rolp_gets_workload_filter_by_default(self):
        workload = TinyWorkload()
        run_workload(workload, "rolp", operations=5)
        assert workload.vm.profiler.config.package_filter.accepts("app.data")
        assert not workload.vm.profiler.config.package_filter.accepts("app.web")

    def test_explicit_rolp_config_respected(self):
        workload = TinyWorkload()
        config = RolpConfig(pretenure_min_age=5)
        run_workload(workload, "rolp", operations=5, rolp_config=config)
        assert workload.vm.profiler.config.pretenure_min_age == 5

    def test_result_fields(self):
        workload = TinyWorkload()
        result = run_workload(workload, "g1", operations=20)
        assert isinstance(result, RunResult)
        assert result.workload == "tiny"
        assert result.collector == "g1"
        assert result.elapsed_ms > 0
        assert result.throughput_ops_s > 0
        assert result.vm_summary["allocations"] == 20
        assert result.profiler_summary is None

    def test_result_profiler_summary_for_rolp(self):
        workload = TinyWorkload()
        result = run_workload(workload, "rolp", operations=20)
        assert result.profiler_summary is not None

    def test_percentiles_and_histogram_api(self):
        workload = TinyWorkload()
        result = run_workload(workload, "g1", operations=50)
        profile = result.percentiles((50.0, 99.0))
        assert set(profile) == {50.0, 99.0}
        histogram = result.histogram()
        assert sum(c for _, c in histogram) == len(result.pauses)

    def test_pause_timeline_sorted(self):
        workload = TinyWorkload()
        result = run_workload(workload, "g1", operations=50)
        timeline = result.pause_timeline()
        assert timeline == sorted(timeline)

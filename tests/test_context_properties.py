"""Property tests for :func:`repro.core.context.is_plausible` and the
optimised header helpers' reference twins.

``is_plausible`` guards every context read back from an object header:
it must reject anything that cannot have come from ``encode`` — site id
0, zero, negatives, and (the historical bug) values wider than 32 bits,
which would otherwise alias the context sharing their low 32 bits.

The header section pins the fast/reference equivalence at the function
level: ``increment_age`` and ``fresh_header`` must agree with their
``*_reference`` twins over the whole input domain, not just the inputs
the perf kernels happen to draw.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import context as ctx
from repro.heap import header as hdr

u16 = st.integers(min_value=0, max_value=0xFFFF)
u32 = st.integers(min_value=0, max_value=hdr.MASK_32)
u64 = st.integers(min_value=0, max_value=hdr.MASK_64)
wide = st.integers(min_value=hdr.MASK_32 + 1, max_value=1 << 80)
non_positive = st.integers(min_value=-(1 << 80), max_value=0)
ages = st.integers(min_value=0, max_value=hdr.MAX_AGE)


class TestIsPlausible:
    @given(site=st.integers(min_value=1, max_value=0xFFFF), state=u16)
    def test_every_encoded_context_with_nonzero_site_is_plausible(
        self, site, state
    ):
        assert ctx.is_plausible(ctx.encode(site, state))

    @given(state=u16)
    def test_site_zero_is_never_plausible(self, state):
        assert not ctx.is_plausible(ctx.encode(0, state))

    @given(value=wide)
    def test_values_wider_than_32_bits_are_rejected(self, value):
        """The regression this suite exists for: a 33+-bit value used to
        be accepted whenever its low 32 bits looked like a context."""
        assert not ctx.is_plausible(value)

    @given(value=wide)
    def test_wide_value_rejected_even_when_low_half_is_plausible(self, value):
        plausible_low = (value & hdr.MASK_32) | (1 << 16)
        widened = (value & ~hdr.MASK_32) | plausible_low
        assert ctx.is_plausible(plausible_low)
        assert not ctx.is_plausible(widened)

    @given(value=non_positive)
    def test_zero_and_negatives_are_rejected(self, value):
        assert not ctx.is_plausible(value)

    @given(value=st.integers(min_value=-(1 << 80), max_value=1 << 80))
    def test_matches_structural_definition(self, value):
        expected = 0 < value <= hdr.MASK_32 and ctx.context_site(value) != 0
        assert ctx.is_plausible(value) == expected

    @given(site=st.integers(min_value=1, max_value=0xFFFF))
    def test_site_base_context_is_plausible(self, site):
        assert ctx.is_plausible(ctx.site_base_context(site))


class TestHeaderFastReferenceEquivalence:
    @given(header=u64)
    def test_increment_age_matches_reference(self, header):
        assert hdr.increment_age(header) == hdr.increment_age_reference(header)

    @given(header=u64)
    def test_increment_age_saturates_at_max_age(self, header):
        saturated = hdr.set_age(header, hdr.MAX_AGE)
        assert hdr.increment_age(saturated) == saturated

    @given(context=u32, age=ages)
    def test_fresh_header_matches_reference(self, context, age):
        assert hdr.fresh_header(context, age) == hdr.fresh_header_reference(
            context, age
        )

    @given(context=u32, age=ages)
    def test_fresh_header_fields_read_back(self, context, age):
        header = hdr.fresh_header(context, age)
        assert hdr.extract_context(header) == context
        assert hdr.get_age(header) == age

"""Tests for the method / allocation-site / call-site models."""

from repro.runtime.method import AllocSite, CallSite, Method


def noop(ctx):
    return None


class TestMethod:
    def test_package_extraction(self):
        method = Method("put", "org.apache.cassandra.db.Memtable", noop)
        assert method.package == "org.apache.cassandra.db"
        assert method.qualified_name == "org.apache.cassandra.db.Memtable.put"

    def test_default_package_empty(self):
        assert Method("main", "Main", noop).package == ""

    def test_starts_cold(self):
        method = Method("m", "a.B", noop)
        assert not method.compiled
        assert not method.instrumented
        assert method.invocations == 0

    def test_alloc_site_get_or_create(self):
        method = Method("m", "a.B", noop)
        site = method.alloc_site(5)
        assert method.alloc_site(5) is site
        assert method.alloc_site(6) is not site
        assert len(method.alloc_sites) == 2

    def test_call_site_get_or_create(self):
        method = Method("m", "a.B", noop)
        site = method.call_site(3)
        assert method.call_site(3) is site
        assert len(method.call_sites) == 1


class TestAllocSite:
    def test_unprofiled_by_default(self):
        site = AllocSite(Method("m", "a.B", noop), 1)
        assert not site.profiled
        assert site.site_id == 0

    def test_profiled_after_id_assignment(self):
        site = AllocSite(Method("m", "a.B", noop), 1)
        site.site_id = 42
        assert site.profiled


class TestCallSite:
    def test_not_instrumented_by_default(self):
        site = CallSite(Method("m", "a.B", noop), 1)
        assert not site.instrumented
        assert not site.enabled

    def test_instrumented_needs_increment_and_no_inline(self):
        site = CallSite(Method("m", "a.B", noop), 1)
        site.increment = 77
        assert site.instrumented
        site.inlined = True
        assert not site.instrumented

    def test_polymorphism_detection(self):
        site = CallSite(Method("m", "a.B", noop), 1)
        assert not site.polymorphic
        site.targets.add(Method("x", "a.X", noop))
        assert not site.polymorphic
        site.targets.add(Method("y", "a.Y", noop))
        assert site.polymorphic

"""End-to-end tests of the ROLP profiler against a small driven VM."""

import pytest

from repro import build_vm
from repro.core import PackageFilter, RolpConfig, RolpProfiler
from repro.core.context import context_site, encode
from repro.heap.object_model import SimObject
from repro.runtime import Method, SimThread


def rolp_vm(heap_mb=16, **config_kwargs):
    config = RolpConfig(**config_kwargs)
    vm, profiler = build_vm("rolp", heap_mb=heap_mb, rolp_config=config)
    return vm, profiler


class TestInstrumentationHooks:
    def test_package_filter_gates_instrumentation(self):
        vm, profiler = rolp_vm(package_filter=PackageFilter(include=["app.data"]))
        thread = vm.spawn_thread()
        data = Method("mk", "app.data.Factory", lambda ctx: ctx.alloc(1, 64))
        control = Method("mk", "app.web.Handler", lambda ctx: ctx.alloc(1, 64))
        for _ in range(vm.flags.compile_threshold + 1):
            vm.run(thread, data)
            vm.run(thread, control)
        assert data.instrumented
        assert not control.instrumented
        assert data.alloc_sites[1].profiled
        assert not control.alloc_sites[1].profiled

    def test_sites_registered_in_old_table(self):
        vm, profiler = rolp_vm()
        thread = vm.spawn_thread()
        m = Method("mk", "app.Factory", lambda ctx: ctx.alloc(1, 64))
        for _ in range(vm.flags.compile_threshold + 1):
            vm.run(thread, m)
        site_id = m.alloc_sites[1].site_id
        assert site_id in profiler.old_table.registered_sites


class TestAllocationHooks:
    def test_cold_code_allocations_unprofiled(self):
        vm, profiler = rolp_vm()
        thread = vm.spawn_thread()
        m = Method("mk", "app.Factory", lambda ctx: ctx.alloc(1, 64))
        obj = vm.run(thread, m)  # first run: interpreted
        assert obj.context == 0

    def test_hot_code_allocations_carry_context(self):
        vm, profiler = rolp_vm()
        thread = vm.spawn_thread()
        m = Method("mk", "app.Factory", lambda ctx: ctx.alloc(1, 64))
        for _ in range(vm.flags.compile_threshold + 2):
            obj = vm.run(thread, m)
        assert obj.context != 0
        assert context_site(obj.context) == m.alloc_sites[1].site_id

    def test_old_table_counts_allocations(self):
        vm, profiler = rolp_vm()
        thread = vm.spawn_thread()
        m = Method("mk", "app.Factory", lambda ctx: ctx.alloc(1, 64))
        for _ in range(vm.flags.compile_threshold + 10):
            vm.run(thread, m)
        site_id = m.alloc_sites[1].site_id
        context = encode(site_id, 0)
        assert profiler.old_table.curve(context)[0] >= 9


class TestSurvivorHooks:
    def test_biased_locked_survivor_discarded(self):
        _, profiler = rolp_vm()
        profiler.old_table.register_site(5)
        obj = SimObject(64, 0, context=encode(5, 0))
        obj.bias_lock(0x7F00_0001)
        profiler.on_gc_survivor(0, obj)
        assert profiler.survivals_discarded == 1
        assert profiler.survivals_recorded == 0

    def test_unknown_context_discarded(self):
        _, profiler = rolp_vm()
        obj = SimObject(64, 0, context=encode(999, 0))
        profiler.on_gc_survivor(0, obj)
        assert profiler.survivals_discarded == 1

    def test_valid_survivor_buffered_then_merged(self):
        _, profiler = rolp_vm()
        profiler.old_table.register_site(5)
        context = encode(5, 0)
        profiler.old_table.increment_alloc(context)
        obj = SimObject(64, 0, context=context)
        profiler.on_gc_survivor(0, obj)
        # buffered privately until the end of the cycle
        assert profiler.old_table.curve(context)[1] == 0
        profiler.on_gc_end(1, 1000, 1e6)
        assert profiler.old_table.curve(context)[1] == 1

    def test_workers_partition_by_id(self):
        _, profiler = rolp_vm()
        profiler.old_table.register_site(5)
        context = encode(5, 0)
        for worker_id in range(8):
            profiler.on_gc_survivor(worker_id, SimObject(64, 0, context=context))
        non_empty = sum(1 for w in profiler.workers if len(w))
        assert non_empty == len(profiler.workers)


class TestInferenceIntegration:
    def test_inference_runs_on_period(self):
        _, profiler = rolp_vm()
        period = profiler.config.inference_period_gcs
        for gc in range(1, period + 1):
            profiler.on_gc_end(gc, gc * 1000, 1e6)
        assert profiler.inference.passes_run == 1

    def test_learned_advice_feeds_allocation(self):
        """Drive a synthetic survival pattern and check the advice."""
        _, profiler = rolp_vm(min_samples=10)
        profiler.old_table.register_site(5)
        context = encode(5, 0)
        # 100 objects that survive to age 4 and die there
        row = profiler.old_table._row(context)
        row[4] = 100
        profiler.on_gc_end(16, 16_000, 1e6)
        assert profiler.allocation_advice(context) == 4

    def test_conflicted_context_gets_no_advice(self):
        _, profiler = rolp_vm(min_samples=10)
        profiler.old_table.register_site(5)
        context = encode(5, 0)
        row = profiler.old_table._row(context)
        row[0] = 500
        row[6] = 400
        profiler.on_gc_end(16, 16_000, 1e6)
        assert profiler.allocation_advice(context) == 0
        assert 5 in profiler.last_inference.conflicted_sites

    def test_old_table_memory_grows_on_persistent_conflict(self):
        """The sizing step happens once a conflict has persisted for two
        consecutive passes (one-off warmup artifacts are debounced)."""
        _, profiler = rolp_vm(min_samples=10)
        profiler.old_table.register_site(5)
        before = profiler.old_table_memory_bytes()
        for pass_index in (1, 2):
            row = profiler.old_table._row(encode(5, 0))
            row[0] = 500
            row[6] = 400
            profiler.on_gc_end(16 * pass_index, 16_000 * pass_index, 1e6)
        assert profiler.old_table_memory_bytes() == before + (4 << 20)

    def test_one_off_conflict_debounced(self):
        _, profiler = rolp_vm(min_samples=10)
        profiler.old_table.register_site(5)
        row = profiler.old_table._row(encode(5, 0))
        row[0] = 500
        row[6] = 400
        before = profiler.old_table_memory_bytes()
        profiler.on_gc_end(16, 16_000, 1e6)
        # clean second pass: the one-off conflict never starts a search
        row = profiler.old_table._row(encode(5, 0))
        row[4] = 200
        profiler.on_gc_end(32, 32_000, 1e6)
        assert profiler.old_table_memory_bytes() == before
        assert profiler.resolver.conflicts_seen == 0


class TestFragmentationFeedback:
    def test_copy_dominant_blame_decrements(self):
        _, profiler = rolp_vm()
        context = encode(5, 0)
        profiler.advice.update_estimate(context, 6)
        for _ in range(profiler.advice.cooldown_passes + 1):
            profiler.advice.begin_pass()
        blame = {context: (1 << 20, 0)}  # all evacuated, none wholesale
        profiler.on_fragmentation_report(blame)
        profiler._judge_fragmentation()
        assert profiler.advice.generation_for(context) == 5

    def test_wholesale_dominant_blame_spared(self):
        _, profiler = rolp_vm()
        context = encode(5, 0)
        profiler.advice.update_estimate(context, 6)
        for _ in range(profiler.advice.cooldown_passes + 1):
            profiler.advice.begin_pass()
        blame = {context: (1 << 20, 10 << 20)}  # mostly died-together
        profiler.on_fragmentation_report(blame)
        profiler._judge_fragmentation()
        assert profiler.advice.generation_for(context) == 6

    def test_small_blame_ignored(self):
        _, profiler = rolp_vm()
        context = encode(5, 0)
        profiler.advice.update_estimate(context, 6)
        for _ in range(profiler.advice.cooldown_passes + 1):
            profiler.advice.begin_pass()
        profiler.on_fragmentation_report({context: (1024, 0)})
        profiler._judge_fragmentation()
        assert profiler.advice.generation_for(context) == 6

    def test_evidence_accumulates_across_reports(self):
        _, profiler = rolp_vm()
        context = encode(5, 0)
        profiler.advice.update_estimate(context, 6)
        for _ in range(profiler.advice.cooldown_passes + 1):
            profiler.advice.begin_pass()
        half = profiler.config.fragmentation_blame_bytes // 2 + 1
        profiler.on_fragmentation_report({context: (half, 0)})
        profiler.on_fragmentation_report({context: (half, 0)})
        profiler._judge_fragmentation()
        assert profiler.advice.generation_for(context) == 5


class TestSummary:
    def test_summary_shape(self):
        _, profiler = rolp_vm()
        summary = profiler.summary()
        for key in (
            "instrumented_methods",
            "jitted_call_sites",
            "advice_entries",
            "conflicts",
            "old_table_mb",
            "inference_passes",
        ):
            assert key in summary

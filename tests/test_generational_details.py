"""Detailed tests of the shared generational machinery: evacuation
accounting, copy breakdown, bump-region reuse across collections, and
survivor-profiling pause costs."""

from repro.gc.g1 import G1Collector
from repro.heap import BandwidthModel, RegionHeap, Space
from repro.heap.object_model import IMMORTAL
from repro.runtime.hooks import NullProfiler
from repro.runtime.vm import JavaVM


class CountingProfiler(NullProfiler):
    """Tracks survivor-processing calls; always-on tracking."""

    def __init__(self):
        self.survivors_seen = 0
        self.gc_ends = 0

    def should_instrument(self, method):
        return True

    def survivor_tracking_enabled(self):
        return True

    def on_gc_survivor(self, worker_id, obj):
        self.survivors_seen += 1

    def on_gc_end(self, gc_number, now_ns, pause_ns):
        self.gc_ends += 1


def collector_with(profiler=None, heap_mb=8, **kwargs):
    heap = RegionHeap(heap_mb << 20)
    gc = G1Collector(heap, BandwidthModel(), **kwargs)
    JavaVM(gc, profiler)
    return gc


class TestEvacuationAccounting:
    def test_bytes_copied_matches_live_sizes(self):
        gc = collector_with(young_regions=4)
        for _ in range(100):
            gc.allocate(1000)
        gc.collect_young()
        assert gc.pauses[-1].bytes_copied == 100 * 1000
        assert gc.copy_breakdown["young"] == 100 * 1000

    def test_old_bump_region_reused_across_collections(self):
        """The old generation's allocation region must keep filling
        across cycles; retiring it each GC leaks a partial region per
        pause (a real bug caught by the cassandra-ri runs)."""
        gc = collector_with(young_regions=2, tenuring_threshold=1)
        for _ in range(64):
            gc.allocate(1024)
        gc.collect_young()  # everyone promoted (threshold 1)
        old_regions_after_first = len(gc.heap.regions_in(Space.OLD))
        for _ in range(64):
            gc.allocate(1024)
        gc.collect_young()
        old_regions_after_second = len(gc.heap.regions_in(Space.OLD))
        # 128 KB total fits one region comfortably
        assert old_regions_after_first == old_regions_after_second == 1

    def test_survivor_space_drained_each_cycle(self):
        gc = collector_with(young_regions=2)
        objs = [gc.allocate(1024) for _ in range(64)]
        gc.collect_young()
        for o in objs:
            o.kill_at(gc.clock.now_ns)
        gc.collect_young()
        assert all(r.used == 0 for r in gc.heap.regions_in(Space.SURVIVOR))


class TestSurvivorProfilingCost:
    def test_profiler_sees_every_survivor(self):
        profiler = CountingProfiler()
        gc = collector_with(profiler, young_regions=4)
        for _ in range(50):
            gc.allocate(1000)
        gc.collect_young()
        assert profiler.survivors_seen == 50
        assert profiler.gc_ends == 1

    def test_tracking_cost_visible_in_pause(self):
        with_profiler = CountingProfiler()
        gc_tracked = collector_with(with_profiler, young_regions=4)
        gc_plain = collector_with(None, young_regions=4)
        for gc in (gc_tracked, gc_plain):
            for _ in range(2000):
                gc.allocate(500)
            gc.collect_young()
        assert (
            gc_tracked.pauses[-1].duration_ns > gc_plain.pauses[-1].duration_ns
        )

    def test_dead_objects_not_profiled(self):
        profiler = CountingProfiler()
        gc = collector_with(profiler, young_regions=4)
        for _ in range(50):
            gc.allocate(1000, death_time_ns=gc.clock.now_ns)
            gc.clock.advance_mutator(10)
        gc.collect_young()
        assert profiler.survivors_seen == 0

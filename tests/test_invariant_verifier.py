"""Fault-injection tests for the heap/header invariant verifier.

Each test corrupts one invariant the simulator otherwise maintains and
asserts the verifier fires with a structured, identifier-bearing
:class:`InvariantViolation` naming the corrupted entity.  A verifier
that only passes on healthy heaps proves nothing; these tests prove
every rule can actually fail.
"""

import pickle

import pytest

from repro.analysis import (
    NULL_VERIFIER,
    InvariantViolation,
    VerifierSuite,
    make_verifier,
    set_default_verify_level,
)
from repro.analysis.heap_verifier import HeapVerifier
from repro.gc import G1Collector
from repro.heap import BandwidthModel, RegionHeap
from repro.heap import header as hdr
from repro.heap.object_model import SimObject
from repro.heap.region import Space
from repro.runtime import JavaVM, VMFlags
from repro.runtime.biased_lock import BiasedLockManager
from repro.runtime.thread import SimThread


def small_heap(regions=8, region_bytes=1 << 16):
    return RegionHeap(regions * region_bytes, region_bytes=region_bytes)


def populated_heap():
    """A heap with eden, old, and humongous contents."""
    heap = small_heap()
    objs = [SimObject(512 * (i + 1), 0) for i in range(4)]
    for obj in objs[:3]:
        heap.allocate(obj, Space.EDEN)
    heap.allocate(objs[3], Space.OLD)
    return heap, objs


class _Capabilities:
    """Stand-in collector exposing only the capability flags."""

    name = "stub"
    ages_on_copy = False
    in_place_old_sweep = False
    supports_dynamic_gens = False
    tenuring_threshold = 15

    def __init__(self, **overrides):
        for key, value in overrides.items():
            setattr(self, key, value)


def expect_violation(rule, heap, **kwargs):
    verifier = HeapVerifier()
    with pytest.raises(InvariantViolation) as info:
        verifier.verify(heap, **kwargs)
    assert info.value.rule == rule
    assert verifier.violations == 1
    return info.value


class TestCleanHeap:
    def test_clean_heap_passes(self):
        heap, _ = populated_heap()
        verifier = HeapVerifier()
        checks = verifier.verify(heap)
        assert checks > 0
        assert verifier.violations == 0

    def test_empty_heap_passes(self):
        verifier = HeapVerifier()
        assert verifier.verify(small_heap()) > 0

    def test_humongous_spanning_object_passes(self):
        heap = small_heap()
        big = SimObject(heap.region_bytes * 2 + 100, 0)
        heap.allocate(big, Space.EDEN)  # rerouted to HUMONGOUS
        assert big.region.space is Space.HUMONGOUS
        HeapVerifier().verify(heap)


class TestRegionAccountingFaults:
    def test_corrupted_used_counter_fires(self):
        heap, objs = populated_heap()
        region = objs[0].region
        region.used += 64  # drift between counter and object list
        violation = expect_violation("heap/region-used", heap)
        assert violation.details["region"] == region.index
        assert violation.details["used"] == region.used
        assert violation.details["object_bytes"] == region.used - 64

    def test_free_list_drop_fires(self):
        heap, _ = populated_heap()
        heap._free.pop()  # a FREE region vanishes from the free list
        violation = expect_violation("heap/free-list", heap)
        assert violation.details["free_list"] < violation.details["free_regions"]

    def test_committed_counter_drift_fires(self):
        heap, _ = populated_heap()
        heap._committed_regions += 1
        violation = expect_violation("heap/committed", heap)
        assert violation.details["committed_bytes"] == heap.committed_bytes

    def test_stale_alloc_cache_fires(self):
        heap, objs = populated_heap()
        region = objs[0].region  # cached as the (EDEN, 0) bump region
        assert heap.current_alloc_region(Space.EDEN) is region
        region.space = Space.OLD  # retargeted without a cache update
        violation = expect_violation("heap/alloc-cache", heap)
        assert violation.details["region"] == region.index
        assert violation.details["cached_space"] == "eden"
        assert violation.details["actual_space"] == "old"

    def test_humongous_ragged_capacity_fires(self):
        heap = small_heap()
        big = SimObject(heap.region_bytes * 2 + 100, 0)
        heap.allocate(big, Space.EDEN)
        big.region.capacity += heap.region_bytes  # claims a region it never took
        violation = expect_violation("heap/humongous", heap)
        assert violation.details["phase"] == "manual"

    def test_humongous_shared_region_fires(self):
        heap = small_heap()
        big = SimObject(heap.region_bytes - 10, 0)
        heap.allocate(big, Space.EDEN)
        squatter = SimObject(8, 0)
        big.region.allocate(squatter)
        violation = expect_violation("heap/humongous", heap)
        assert violation.details["objects"] == 2


class TestObjectGraphFaults:
    def test_broken_backpointer_fires(self):
        heap, objs = populated_heap()
        objs[1].region = None
        violation = expect_violation("heap/backpointer", heap)
        assert violation.details["backpointer"] is None

    def test_duplicate_object_fires(self):
        heap, objs = populated_heap()
        other = objs[3].region  # the OLD region
        other.objects.append(objs[0])
        other.used += objs[0].size
        violation = expect_violation("heap/duplicate-object", heap)
        assert violation.details["region"] == other.index

    def test_non_word_header_fires(self):
        heap, objs = populated_heap()
        objs[0].header = hdr.MASK_64 + 1
        violation = expect_violation("header/bits", heap)
        assert violation.details["region"] == objs[0].region.index


class TestHeaderFaults:
    def test_stray_age_bits_fire_under_aging_collector(self):
        heap, objs = populated_heap()
        obj = objs[3]  # OLD-space object, so no eden placement rule
        obj.header = hdr.set_age(obj.header, 3)  # never copied, yet aged
        violation = expect_violation(
            "header/age", heap, collector=_Capabilities(ages_on_copy=True)
        )
        assert violation.details["age"] == 3
        assert violation.details["copies"] == 0

    def test_age_beyond_copies_fires_even_without_aging(self):
        heap, objs = populated_heap()
        obj = objs[3]
        obj.header = hdr.set_age(obj.header, 2)
        expect_violation("header/age", heap, collector=_Capabilities())

    def test_age_equal_to_copies_passes(self):
        heap, objs = populated_heap()
        obj = objs[3]
        obj.copies = 2
        obj.header = hdr.set_age(obj.header, 2)
        HeapVerifier().verify(heap, collector=_Capabilities(ages_on_copy=True))

    def test_biased_bit_without_lock_record_fires(self):
        heap, objs = populated_heap()
        obj = objs[2]
        obj.header = hdr.bias_lock(obj.header, 0x7F00_0100)
        violation = expect_violation(
            "header/bias-agreement", heap, biased=BiasedLockManager()
        )
        assert violation.details["region"] == obj.region.index
        assert "0x7f00" in violation.format()  # thread pointer rendered hex

    def test_bias_pointer_disagreeing_with_record_fires(self):
        heap, objs = populated_heap()
        obj = objs[2]
        manager = BiasedLockManager()
        manager.lock(SimThread(5), obj)
        # profiling write lands on a live lock word (the Section 3.2.2
        # hazard the checker exists to catch)
        obj.header = hdr.install_context(obj.header, 0x1234)
        violation = expect_violation("header/bias-agreement", heap, biased=manager)
        assert violation.details["thread"] == 5

    def test_record_without_biased_bit_fires(self):
        heap, objs = populated_heap()
        obj = objs[2]
        manager = BiasedLockManager()
        manager.lock(SimThread(5), obj)
        obj.header = hdr.revoke_bias(obj.header)  # bit cleared, record kept
        violation = expect_violation("header/bias-agreement", heap, biased=manager)
        assert violation.details["thread"] == 5

    def test_live_bias_with_record_passes(self):
        heap, objs = populated_heap()
        manager = BiasedLockManager()
        manager.lock(SimThread(5), objs[2])
        HeapVerifier().verify(heap, biased=manager)


class TestPlacementFaults:
    def test_aged_object_in_eden_fires(self):
        heap, objs = populated_heap()
        obj = objs[0]
        obj.copies = 3  # keep header/age consistent: the *placement* is wrong
        obj.header = hdr.set_age(obj.header, 3)
        violation = expect_violation("placement/eden-age", heap)
        assert violation.details["age"] == 3

    def test_survivor_object_below_window_fires(self):
        heap = small_heap()
        obj = SimObject(256, 0)
        heap.allocate(obj, Space.SURVIVOR)  # age 0: must have been copied
        violation = expect_violation(
            "placement/survivor-age",
            heap,
            collector=_Capabilities(ages_on_copy=True, tenuring_threshold=4),
        )
        assert violation.details["tenuring_threshold"] == 4

    def test_survivor_object_at_threshold_fires(self):
        heap = small_heap()
        obj = SimObject(256, 0)
        obj.copies = 4
        obj.header = hdr.set_age(obj.header, 4)
        heap.allocate(obj, Space.SURVIVOR)
        expect_violation(
            "placement/survivor-age",
            heap,
            collector=_Capabilities(ages_on_copy=True, tenuring_threshold=4),
        )

    def test_dynamic_region_gen_out_of_range_fires(self):
        heap = small_heap()
        region = heap.claim_region(Space.DYNAMIC, gen=15)  # 15 is OLD's number
        region.allocate(SimObject(128, 0))
        violation = expect_violation("placement/dynamic-gen", heap)
        assert violation.details["gen"] == 15

    def test_dynamic_region_under_non_ng2c_collector_fires(self):
        heap = small_heap()
        heap.claim_region(Space.DYNAMIC, gen=3).allocate(SimObject(128, 0))
        violation = expect_violation(
            "placement/dynamic-unsupported", heap, collector=_Capabilities()
        )
        assert violation.details["collector"] == "stub"

    def test_dynamic_region_with_support_passes(self):
        heap = small_heap()
        heap.claim_region(Space.DYNAMIC, gen=3).allocate(SimObject(128, 0))
        HeapVerifier().verify(
            heap, collector=_Capabilities(supports_dynamic_gens=True)
        )

    def test_generation_number_on_plain_region_fires(self):
        heap = small_heap()
        region = heap.claim_region(Space.OLD)
        region.gen = 3  # only DYNAMIC regions carry generations
        violation = expect_violation("placement/space-gen", heap)
        assert violation.details["space"] == "old"


class TestViolationStructure:
    def test_violation_carries_rule_and_identifiers(self):
        heap, objs = populated_heap()
        objs[0].region.used += 1
        try:
            HeapVerifier().verify(heap, phase="before-gc")
        except InvariantViolation as exc:
            assert exc.rule == "heap/region-used"
            assert exc.details["phase"] == "before-gc"
            assert exc.format().startswith("[heap/region-used]")
            doc = exc.as_dict()
            assert doc["rule"] == "heap/region-used"
            assert doc["details"]["region"] == objs[0].region.index
        else:  # pragma: no cover - the fault must fire
            pytest.fail("verifier did not fire")

    def test_violation_pickles_across_pool_workers(self):
        original = InvariantViolation(
            "heap/committed", "drift", region=3, committed_bytes=1 << 20
        )
        clone = pickle.loads(pickle.dumps(original))
        assert clone.rule == original.rule
        assert clone.details == original.details
        assert str(clone) == str(original)


class TestDefaultsAndWiring:
    def test_verification_is_off_by_default(self):
        assert VMFlags().verify_level == 0
        vm = JavaVM(G1Collector(RegionHeap(8 << 20), BandwidthModel()))
        assert vm.verifier is NULL_VERIFIER
        assert not vm.verifier.enabled
        assert vm.collector.verifier is NULL_VERIFIER

    def test_null_verifier_hooks_are_noops(self):
        assert NULL_VERIFIER.verify_heap(None) == 0
        NULL_VERIFIER.at_gc_start(None)
        NULL_VERIFIER.at_safepoint(None)
        NULL_VERIFIER.on_bias_lock(None, None)
        assert NULL_VERIFIER.checks_run == 0

    def test_make_verifier_levels(self):
        assert make_verifier(0) is NULL_VERIFIER
        assert make_verifier(1).locks is None
        assert make_verifier(2).locks is not None

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError):
            VMFlags(verify_level=5)
        with pytest.raises(ValueError):
            VerifierSuite(0)

    def test_ambient_level_applies_to_new_vms(self):
        previous = set_default_verify_level(2)
        try:
            vm = JavaVM(G1Collector(RegionHeap(8 << 20), BandwidthModel()))
            assert isinstance(vm.verifier, VerifierSuite)
            assert vm.verifier.level == 2
            # explicit flags always win over the ambient default
            off = JavaVM(
                G1Collector(RegionHeap(8 << 20), BandwidthModel()),
                flags=VMFlags(verify_level=0),
            )
            assert off.verifier is NULL_VERIFIER
        finally:
            set_default_verify_level(previous)

    def test_gc_boundaries_drive_the_verifier(self):
        heap = RegionHeap(8 << 20)
        vm = JavaVM(
            G1Collector(heap, BandwidthModel()), flags=VMFlags(verify_level=1)
        )
        assert vm.collector.verifier is vm.verifier
        vm.collector.collect_full("test")
        assert vm.verifier.checks_run > 0
        assert vm.verifier.violations == 0

"""Tests for the Object Lifetime Distribution table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap.header import MAX_AGE, NUM_AGES
from repro.core.context import encode
from repro.core.old_table import STEP_BYTES, OldTable, WorkerTable

CTX = encode(7, 0)


def registered_table(*sites):
    table = OldTable()
    for site in sites or (7,):
        table.register_site(site)
    return table


class TestRegistration:
    def test_unregistered_context_rejected(self):
        table = OldTable()
        assert not table.is_known_context(CTX)
        assert not table.increment_alloc(CTX)

    def test_registered_site_accepts_any_stack_state(self):
        table = registered_table(7)
        assert table.is_known_context(encode(7, 12345))

    def test_zero_context_never_known(self):
        table = registered_table(7)
        assert not table.is_known_context(0)

    def test_register_zero_site_ignored(self):
        table = OldTable()
        table.register_site(0)
        assert 0 not in table.registered_sites

    def test_stale_bias_pointer_rejected(self):
        # a thread-pointer-looking context whose site id is unregistered
        table = registered_table(7)
        assert not table.is_known_context(0x7F00_1234)


class TestAllocationCounting:
    def test_increment_goes_to_column_zero(self):
        table = registered_table()
        table.increment_alloc(CTX)
        table.increment_alloc(CTX)
        assert table.curve(CTX)[0] == 2

    def test_distinct_contexts_distinct_rows(self):
        table = registered_table(7)
        a, b = encode(7, 1), encode(7, 2)
        table.increment_alloc(a)
        assert table.curve(a)[0] == 1
        assert table.curve(b)[0] == 0

    def test_total_objects(self):
        table = registered_table()
        for _ in range(5):
            table.increment_alloc(CTX)
        assert table.total_objects(CTX) == 5


class TestSurvivalUpdates:
    def test_survival_moves_one_object_up(self):
        table = registered_table()
        table.increment_alloc(CTX)
        table.apply_survival(CTX, 0)
        curve = table.curve(CTX)
        assert curve[0] == 0
        assert curve[1] == 1

    def test_saturated_age_never_moves(self):
        table = registered_table()
        table.increment_alloc(CTX)
        for _ in range(MAX_AGE):
            # walk the object up to the last column
            age = next(i for i, c in enumerate(table.curve(CTX)) if c)
            table.apply_survival(CTX, age)
        assert table.curve(CTX)[MAX_AGE] == 1
        table.apply_survival(CTX, MAX_AGE)
        assert table.curve(CTX)[MAX_AGE] == 1

    def test_decrement_floors_at_zero(self):
        table = registered_table()
        table.apply_survival(CTX, 3)  # no one was ever at column 3
        curve = table.curve(CTX)
        assert curve[3] == 0
        assert curve[4] == 1

    @given(
        allocations=st.integers(min_value=0, max_value=200),
        survivals=st.lists(
            st.integers(min_value=0, max_value=MAX_AGE - 1), max_size=200
        ),
    )
    def test_population_conservation(self, allocations, survivals):
        """Survival updates move objects between columns; they never
        create or destroy them (beyond the floor-at-zero clamp, which
        only ever adds)."""
        table = registered_table()
        for _ in range(allocations):
            table.increment_alloc(CTX)
        before = table.total_objects(CTX)
        created = 0
        for age in survivals:
            if table.curve(CTX)[age] == 0:
                created += 1  # floor clamp: dec skipped, inc applied
            table.apply_survival(CTX, age)
        assert table.total_objects(CTX) == before + created


class TestWorkerTables:
    def test_private_buffer_then_merge(self):
        table = registered_table()
        table.increment_alloc(CTX)
        worker = WorkerTable()
        worker.record_survival(CTX, 0)
        worker.record_survival(CTX, 0)
        # nothing visible before the merge
        assert table.curve(CTX)[1] == 0
        table.merge_worker(worker)
        assert table.curve(CTX)[1] == 2
        assert len(worker) == 0  # cleared by the merge

    def test_multiple_workers_accumulate(self):
        table = registered_table()
        for _ in range(4):
            table.increment_alloc(CTX)
        workers = [WorkerTable() for _ in range(4)]
        for worker in workers:
            worker.record_survival(CTX, 0)
        for worker in workers:
            table.merge_worker(worker)
        assert table.curve(CTX)[1] == 4


class TestIncrementLoss:
    def test_no_loss_by_default(self):
        table = registered_table()
        for _ in range(1000):
            table.increment_alloc(CTX)
        assert table.lost_increments == 0

    def test_configured_loss_is_observed(self):
        table = OldTable(increment_loss_probability=0.5, seed=1)
        table.register_site(7)
        for _ in range(1000):
            table.increment_alloc(CTX)
        assert 300 < table.lost_increments < 700
        assert table.curve(CTX)[0] + table.lost_increments == 1000

    def test_loss_is_deterministic_under_seed(self):
        def run():
            table = OldTable(increment_loss_probability=0.1, seed=42)
            table.register_site(7)
            for _ in range(500):
                table.increment_alloc(CTX)
            return table.lost_increments

        assert run() == run()

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            OldTable(increment_loss_probability=1.0)


class TestFreshnessAndMemory:
    def test_clear_drops_counts_keeps_registration(self):
        table = registered_table()
        table.increment_alloc(CTX)
        table.clear()
        assert table.total_objects(CTX) == 0
        assert table.is_known_context(CTX)

    def test_base_memory_is_4mb(self):
        assert OldTable().memory_bytes() == STEP_BYTES == 4 << 20

    def test_memory_grows_4mb_per_conflict(self):
        table = registered_table(1, 2, 3)
        table.expand_for_conflict(1)
        assert table.memory_bytes() == 8 << 20
        table.expand_for_conflict(2)
        assert table.memory_bytes() == 12 << 20
        # expanding the same site twice does not double-count
        table.expand_for_conflict(1)
        assert table.memory_bytes() == 12 << 20

    def test_expand_unregistered_site_ignored(self):
        table = registered_table(1)
        table.expand_for_conflict(99)
        assert table.memory_bytes() == 4 << 20

    def test_contexts_for_site(self):
        table = registered_table(7, 8)
        table.increment_alloc(encode(7, 1))
        table.increment_alloc(encode(7, 2))
        table.increment_alloc(encode(8, 1))
        assert len(table.contexts_for_site(7)) == 2
        assert len(table.contexts_for_site(8)) == 1

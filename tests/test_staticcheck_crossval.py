"""Cross-validation: static conflict prediction vs runtime observation.

The context-space analyzer's soundness contract is *zero false
negatives*: every allocation site the runtime profiler observes in a
context conflict must be in the statically predicted conflictable set
(the predictor may over-approximate, never under-approximate).  These
tests run real simulations — Figure 6's DaCapo grid and the banked
adversarial fuzz-corpus genome — and check the superset property.

The flip side: the corpus genome that beat the conflict-rate baseline
by >= 10x must be flagged conflict-heavy from its static structure
alone, without paying for a single simulated operation.
"""

import glob
import json
import os

import pytest

from repro import build_vm
from repro.analysis.staticcheck import (
    CONFLICT_HEAVY_MIN,
    analyze_genome,
    analyze_workload,
    observed_conflicts,
    static_conflict_pressure,
    validate_against_runtime,
)
from repro.core.profiler import RolpConfig
from repro.workloads.adversarial import (
    HOSTILE_DEFAULT,
    AdversarialWorkload,
    DemographyGenome,
    LifetimeClass,
)
from repro.workloads.dacapo import get_spec
from repro.workloads.dacapo.synthetic import DaCapoWorkload

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def banked_conflict_genome():
    """The banked max-conflicts objective winner (>= 10x baseline)."""
    paths = sorted(glob.glob(os.path.join(CORPUS_DIR, "*objective-max-conflicts*.json")))
    assert paths, "the fuzz corpus must bank a max-conflicts winner"
    with open(paths[0]) as handle:
        entry = json.load(handle)
    return DemographyGenome.from_dict(entry["genome"]), entry


def run_built_workload(workload, ops, inference_period_gcs=8):
    """Build + run ``workload`` under the ROLP configuration, returning
    ``(analysis_before_run, profiler)`` — the analysis is taken before
    the first op executes (ahead-of-time by construction)."""
    vm, profiler = build_vm(
        "rolp",
        heap_mb=workload.heap_mb,
        young_regions=workload.young_regions,
        rolp_config=RolpConfig(
            package_filter=workload.package_filter(),
            inference_period_gcs=inference_period_gcs,
        ),
    )
    workload.build(vm)
    analysis = analyze_workload(workload)
    for op_index in range(ops):
        workload.run_op(op_index)
    return analysis, profiler


class TestDaCapoGridSuperset:
    # 4000 ops gives the profiler at least one full inference pass
    # (inference runs every 8 GCs; 1600 ops is only ~5 GC cycles)
    @pytest.mark.parametrize("spec_name", ["avrora", "pmd", "tomcat"])
    def test_no_false_negatives_on_fig6_workloads(self, spec_name):
        workload = DaCapoWorkload(get_spec(spec_name), seed=11)
        analysis, profiler = run_built_workload(workload, ops=4000)
        outcome = validate_against_runtime(analysis, profiler)
        assert outcome["false_negatives"] == []

    def test_conflicted_spec_actually_observes_conflicts(self):
        # guard against a vacuous superset: pmd ships 6 planted
        # conflict factories, and the runtime must see some of them
        workload = DaCapoWorkload(get_spec("pmd"), seed=11)
        analysis, profiler = run_built_workload(workload, ops=4000)
        observed = observed_conflicts(profiler, analysis.methods)
        assert observed, "pmd's conflict factories never conflicted at runtime"
        outcome = validate_against_runtime(analysis, profiler)
        assert len(outcome["observed"]) == len(observed) > 0
        assert outcome["false_negatives"] == []


class TestAdversarialGenomeSuperset:
    def test_no_false_negatives_on_banked_genome(self):
        genome, _entry = banked_conflict_genome()
        workload = AdversarialWorkload(genome=genome, seed=7)
        analysis, profiler = run_built_workload(workload, ops=2500)
        observed = observed_conflicts(profiler, analysis.methods)
        assert observed, "the banked conflict genome must conflict at runtime"
        outcome = validate_against_runtime(analysis, profiler)
        assert outcome["false_negatives"] == []


class TestStaticPredictor:
    def test_banked_genome_flagged_heavy_without_running(self):
        genome, entry = banked_conflict_genome()
        assert entry["check"] == "max-conflicts"
        summary = analyze_genome(genome)
        assert summary["conflict_heavy"] is True
        assert summary["conflict_pressure"] >= CONFLICT_HEAVY_MIN
        # analyze_genome only *builds* the method graph — nothing ran
        assert summary["methods"] > 0

    def test_hostile_default_flagged_heavy(self):
        summary = analyze_genome(HOSTILE_DEFAULT)
        assert summary["conflict_heavy"] is True
        assert summary["structural_sites"] == HOSTILE_DEFAULT.collision_sites

    def test_benign_genome_is_not_heavy_and_skippable(self):
        benign = DemographyGenome(
            classes=(
                LifetimeClass(
                    size_bytes=64,
                    kind="young",
                    lives_ns=20_000,
                    lifetime_bytes=128 << 10,
                    weight=1,
                ),
            ),
            collision_sites=0,
            collision_fanout=2,
            oscillation_period_ops=0,
            burst_every_ops=0,
            burst_size=0,
            threads=1,
            heap_mb=16,
            young_regions=2,
        )
        assert static_conflict_pressure(benign) == 0
        summary = analyze_genome(benign)
        assert summary["conflict_heavy"] is False

    def test_pressure_matches_analyze_genome(self):
        genome, _entry = banked_conflict_genome()
        assert (
            static_conflict_pressure(genome)
            == analyze_genome(genome)["conflict_pressure"]
        )

"""Load/soak determinism for the fleet server.

The contract under test: job payloads returned over the server protocol
are **byte-identical** to what a serial, single-tenant
:class:`~repro.bench.runner.Runner` produces for the same cells — no
matter how many clients run concurrently, how jobs get coalesced into
batches, whether results come from cache, or whether the server's
runner itself is parallel.  Backpressure (429) may delay a job but can
never drop or corrupt an accepted one.

No assertion here depends on wall-clock time: plans are seeded, the
overload scenario forces rejections by pausing the batcher rather than
racing it, and the soak compares canonical payload bytes, not
latencies.
"""

import asyncio

import pytest

from repro.bench.runner import Runner, make_cell
from repro.server import ServerApp
from repro.server.jobs import canonical_json, expected_payloads
from repro.server.testing import (
    LoadPlan,
    TestClient,
    expected_payload_bytes,
    run_load,
)


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.05")


OPS = 2_000


def run(coro):
    return asyncio.run(coro)


async def soak(app, plan):
    await app.startup()
    try:
        return await run_load(lambda planned: TestClient(app), plan)
    finally:
        await app.shutdown()


def assert_byte_identical(report, plan, base_seed):
    expected = expected_payload_bytes(plan, base_seed)
    assert report.errors == []
    assert len(report.payloads) == len(expected)
    mismatches = [
        index
        for index, (got, want) in enumerate(zip(report.payloads, expected))
        if got != want
    ]
    assert mismatches == [], (
        "%d/%d payloads diverge; first divergence at plan index %d"
        % (len(mismatches), len(expected), mismatches[0] if mismatches else -1)
    )


class TestConcurrentEqualsSerial:
    def test_soak_200_sessions_byte_identical_to_serial(self):
        """The acceptance bar: >=200 concurrent in-process sessions whose
        payloads match a serial Runner byte for byte.  The plan draws
        from a small workload/collector grid, so the runner's memo makes
        repeats cheap while every (cell, seed) still gets simulated."""
        plan = LoadPlan.generate(
            seed=1234, clients=200, jobs_per_client=1, operations=OPS
        )
        app = ServerApp(runner=Runner(jobs=1, cache=None), max_batch=16)
        report = run(soak(app, plan))
        assert report.clients == 200
        assert report.jobs_completed == 200
        assert_byte_identical(report, plan, app.base_seed)

    def test_multi_job_sessions_with_steps(self):
        """Sessions mixing whole runs and per-step cells: step indices
        are per-session state, so this exercises the claim/submit
        ordering under concurrency."""
        plan = LoadPlan.generate(
            seed=77, clients=24, jobs_per_client=3, operations=OPS
        )
        assert any(
            job.action == "step" for client in plan.clients for job in client.jobs
        )
        app = ServerApp(runner=Runner(jobs=1, cache=None), max_batch=8)
        report = run(soak(app, plan))
        assert report.jobs_completed == 24 * 3
        assert_byte_identical(report, plan, app.base_seed)

    def test_parallel_runner_inside_server_is_still_serial_equivalent(self):
        """`rolp-bench serve --jobs 2`: the batcher hands coalesced
        batches to a parallel Runner; payloads must not change."""
        plan = LoadPlan.generate(
            seed=9, clients=16, jobs_per_client=2, operations=OPS
        )
        app = ServerApp(runner=Runner(jobs=2, cache=None), max_batch=8)
        report = run(soak(app, plan))
        assert report.jobs_completed == 32
        assert_byte_identical(report, plan, app.base_seed)

    def test_cache_hits_are_byte_identical(self, tmp_path):
        """Same plan against a cache-backed server twice: the second
        pass is served from the PR 3 ResultCache and must produce the
        same bytes as the first (and as serial)."""
        from repro.bench.runner import ResultCache

        plan = LoadPlan.generate(
            seed=5, clients=8, jobs_per_client=1, operations=OPS
        )
        reports = []
        for _ in range(2):
            app = ServerApp(
                runner=Runner(jobs=1, cache=ResultCache(str(tmp_path)))
            )
            reports.append(run(soak(app, plan)))
        assert reports[0].payloads == reports[1].payloads
        assert_byte_identical(reports[1], plan, app.base_seed)

    def test_plan_is_a_pure_function_of_its_seed(self):
        one = LoadPlan.generate(seed=42, clients=12, jobs_per_client=2)
        two = LoadPlan.generate(seed=42, clients=12, jobs_per_client=2)
        assert [c.__dict__ for c in one.clients] == [c.__dict__ for c in two.clients]
        three = LoadPlan.generate(seed=43, clients=12, jobs_per_client=2)
        assert [c.__dict__ for c in one.clients] != [c.__dict__ for c in three.clients]


class TestBackpressure:
    def test_overload_rejects_visibly_but_never_corrupts(self):
        """With a tiny admission queue and the batcher paused, clients
        must observe >=1 429 — and after resume, every accepted job
        still completes with serial-identical bytes (retried jobs land
        exactly once in plan order)."""
        plan = LoadPlan.generate(
            seed=21, clients=40, jobs_per_client=1, operations=OPS
        )

        async def scenario():
            app = ServerApp(
                runner=Runner(jobs=1, cache=None), queue_limit=4, max_batch=4
            )
            await app.startup()
            app.batcher.pause()

            async def release():
                # let the clients slam into the paused 4-slot queue first
                for _ in range(200):
                    await asyncio.sleep(0)
                app.batcher.resume()

            releaser = asyncio.ensure_future(release())
            report = await run_load(lambda planned: TestClient(app), plan)
            await releaser
            await app.shutdown()
            return app, report

        app, report = run(scenario())
        assert report.rejected_429 >= 1, "backpressure never engaged"
        assert report.jobs_completed == 40
        assert_byte_identical(report, plan, app.base_seed)
        # the batcher's own ledger agrees: rejects counted, accepts drained
        counters = app.batcher.counters()
        assert counters["rejected"] == report.rejected_429
        assert counters["completed"] == counters["accepted"]

    def test_batch_coalescing_actually_happens(self):
        """Coalescing is the whole point of the batcher: with many jobs
        arriving while the worker is held, at least one batch must carry
        more than one cell — and the math must close."""

        async def scenario():
            app = ServerApp(
                runner=Runner(jobs=1, cache=None), queue_limit=64, max_batch=16
            )
            await app.startup()
            client = TestClient(app)
            sid = (
                await client.post(
                    "/v1/sessions",
                    {"workload": "lucene", "collector": "g1", "operations": OPS},
                )
            ).json()["session"]["id"]
            app.batcher.pause()
            tasks = [
                asyncio.ensure_future(
                    client.post("/v1/sessions/%s/step" % sid, {"ops": OPS})
                )
                for _ in range(10)
            ]
            for _ in range(50):
                await asyncio.sleep(0)
            app.batcher.resume()
            responses = [await task for task in tasks]
            counters = app.batcher.counters()
            await app.shutdown()
            return responses, counters

        responses, counters = run(scenario())
        assert all(r.status == 200 for r in responses)
        assert counters["accepted"] == counters["completed"] == 10
        assert counters["batches"] < 10, "jobs were never coalesced"


class TestPayloadConstruction:
    def test_expected_payloads_round_trip_the_wire_format(self):
        """`expected_payloads` (the serial oracle) emits exactly the
        protocol `job` object — guards against oracle/server skew."""
        cells = [
            make_cell(
                "session_step",
                workload="lucene",
                collector="rolp",
                operations=OPS,
                step=0,
            ),
            make_cell(
                "trace_run", workload="lucene", collector="g1", operations=OPS
            ),
        ]
        payloads = expected_payloads(cells, base_seed=1)
        from repro.server import protocol

        for payload in payloads:
            body = {"schema": protocol.SCHEMA, "job": payload}
            assert protocol.check_response(body) == "job"

    def test_canonical_json_is_stable_and_compact(self):
        blob = canonical_json({"b": 1, "a": [1, 2], "c": {"z": None, "y": 0.5}})
        assert blob == '{"a":[1,2],"b":1,"c":{"y":0.5,"z":null}}'

    def test_session_identity_is_not_in_the_cell_key(self):
        """Two sessions with the same bindings share cells — and thus
        the memo/cache — by design; the session id only namespaces
        lifecycle state, never simulation results."""

        async def scenario():
            app = ServerApp(runner=Runner(jobs=1, cache=None))
            await app.startup()
            client = TestClient(app)
            bindings = {"workload": "lucene", "collector": "g1", "operations": OPS}
            first = (await client.post("/v1/sessions", bindings)).json()["session"]
            second = (await client.post("/v1/sessions", bindings)).json()["session"]
            assert first["trace_id"] != second["trace_id"]  # sessions distinct
            job_a = (
                await client.post("/v1/sessions/%s/run" % first["id"])
            ).json()["job"]
            job_b = (
                await client.post("/v1/sessions/%s/run" % second["id"])
            ).json()["job"]
            await app.shutdown()
            return job_a, job_b

        job_a, job_b = run(scenario())
        assert job_a == job_b  # identical cell -> identical payload bytes

"""Tests for the Cassandra-like workload: memtable lifecycle, flush,
compaction, row cache, and the buffer-factory conflict structure."""

import pytest

from repro import build_vm
from repro.workloads.base import run_workload
from repro.workloads.kvstore import CassandraWorkload


def small_workload(**kwargs):
    defaults = dict(
        key_count=2000,
        memtable_flush_bytes=512 << 10,
        row_cache_entries=100,
        worker_threads=2,
    )
    defaults.update(kwargs)
    return CassandraWorkload.write_intensive(**defaults)


class TestPresets:
    def test_three_mixes(self):
        assert CassandraWorkload.write_intensive().mix.write_fraction == pytest.approx(0.75)
        assert CassandraWorkload.read_write().mix.write_fraction == pytest.approx(0.50)
        assert CassandraWorkload.read_intensive().mix.write_fraction == pytest.approx(0.25)

    def test_names(self):
        assert CassandraWorkload.write_intensive().name == "cassandra-wi"
        assert CassandraWorkload.read_intensive().name == "cassandra-ri"

    def test_profiled_packages_match_paper(self):
        packages = CassandraWorkload.write_intensive().profiled_packages
        assert any("cassandra.db" in p for p in packages)
        assert any("cassandra.utils" in p for p in packages)


class TestLifecycle:
    def test_memtable_flushes(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=3000, heap_mb=32)
        assert workload.flushes >= 1
        assert workload.sstables or workload.compactions

    def test_flush_kills_cells(self):
        workload = small_workload()
        vm, _ = build_vm("g1", heap_mb=32)
        workload.build(vm)
        cells = []
        op = 0
        while workload.flushes == 0:
            workload.run_op(op)
            op += 1
            cells = cells or list(workload.memtable_cells)
        # every pre-flush cell is now dead
        now = vm.clock.now_ns
        assert all(not c.is_live(now) for c in cells)
        assert workload.memtable_bytes == 0

    def test_compaction_kills_inputs(self):
        workload = small_workload(compaction_threshold=2)
        run_workload(workload, "g1", operations=4000, heap_mb=32)
        assert workload.compactions >= 1
        # the active sstable list stays bounded
        assert len(workload.sstables) < 4

    def test_row_cache_bounded_with_eviction(self):
        workload = small_workload()
        result = run_workload(workload, "g1", operations=5000, heap_mb=32)
        assert len(workload.row_cache) <= workload.row_cache_entries
        # evicted entries are dead
        now = workload.vm.clock.now_ns
        live_cache = [e for e in workload.row_cache.values() if e.is_live(now)]
        assert len(live_cache) == len(workload.row_cache)


class TestConflictStructure:
    def test_buffer_factory_called_from_both_paths(self):
        workload = small_workload()
        run_workload(workload, "g1", operations=3000, heap_mb=32)
        factory = workload.m_buffer_allocate
        callers = set()
        for method in (workload.m_memtable_put, workload.m_read_execute):
            for site in method.call_sites.values():
                if factory in site.targets:
                    callers.add(method.name)
        assert callers == {"put", "execute"}

    def test_factory_not_inlined(self):
        workload = small_workload()
        run_workload(workload, "rolp", operations=3000, heap_mb=32)
        for method in (workload.m_memtable_put, workload.m_read_execute):
            for site in method.call_sites.values():
                if workload.m_buffer_allocate in site.targets:
                    assert not site.inlined

    def test_rolp_detects_cassandra_conflicts(self):
        # The standard workload shape: the memtable spans several GC
        # cycles, so cell/response lifetimes diverge into two triangles
        # with enough volume to survive the conflict debounce.  (The
        # full-size claim lives in benchmarks/test_table1_*.)
        workload = CassandraWorkload.write_intensive()
        result = run_workload(workload, "rolp", operations=50_000)
        profiler = workload.vm.profiler
        assert profiler.resolver.conflicts_seen >= 1


class TestAnnotations:
    def test_ng2c_hint_sites_counted(self):
        workload = small_workload()
        vm, _ = build_vm("ng2c", heap_mb=32)
        workload.build(vm)
        assert workload.annotated_sites == 5

    def test_ng2c_pretenures_from_hints(self):
        workload = small_workload()
        result = run_workload(workload, "ng2c", operations=3000, heap_mb=32)
        assert workload.vm.collector.pretenured_objects > 0

    def test_g1_ignores_hints(self):
        workload = small_workload()
        result = run_workload(workload, "g1", operations=1000, heap_mb=32)
        # G1 has no pretenuring machinery at all
        assert not hasattr(workload.vm.collector, "pretenured_objects")


class TestDeterminism:
    def test_same_seed_same_run(self):
        def run():
            workload = small_workload(seed=77)
            result = run_workload(workload, "g1", operations=2000, heap_mb=32)
            return (result.gc_cycles, result.elapsed_ms, workload.flushes)

        assert run() == run()

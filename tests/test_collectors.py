"""Tests for the four collector models: young collections, promotion,
mixed collections, CMS's full compactions, ZGC's concurrent cycles, and
NG2C's pretenuring placement."""

import pytest

from repro.gc.cms import CMSCollector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector, OLD_GEN
from repro.gc.zgc import ZGCCollector
from repro.heap import BandwidthModel, RegionHeap, Space
from repro.heap.object_model import IMMORTAL


def make(collector_cls, heap_mb=8, **kwargs):
    heap = RegionHeap(heap_mb << 20)
    return collector_cls(heap, BandwidthModel(), **kwargs)


def fill_eden(collector, total_bytes, obj_size=1024, lives_ns=0.0, **kwargs):
    objs = []
    for _ in range(total_bytes // obj_size):
        death = collector.clock.now_ns + lives_ns if lives_ns else IMMORTAL
        objs.append(collector.allocate(obj_size, death_time_ns=death, **kwargs))
        # Mutator time passes between allocations, so short-lived
        # objects are genuinely dead by the next collection.
        collector.clock.advance_mutator(200)
    return objs


class TestG1Young:
    def test_young_gc_triggers_at_eden_budget(self):
        g1 = make(G1Collector, young_regions=2)
        fill_eden(g1, 3 << 20, lives_ns=1)  # everything dies young
        assert g1.young_collections >= 1
        assert g1.pauses

    def test_dead_objects_reclaimed_without_copy(self):
        g1 = make(G1Collector, young_regions=2)
        fill_eden(g1, 2 << 20, lives_ns=1)
        g1.collect_young()
        # dead young objects cost no copying
        assert g1.copy_breakdown["young"] == 0

    def test_survivors_copied_and_aged(self):
        g1 = make(G1Collector, young_regions=2)
        objs = fill_eden(g1, 1 << 20)  # immortal
        g1.collect_young()
        assert all(o.age == 1 for o in objs)
        assert all(o.copies == 1 for o in objs)
        assert all(o.region.space is Space.SURVIVOR for o in objs)

    def test_promotion_at_tenuring_threshold(self):
        g1 = make(G1Collector, young_regions=2, tenuring_threshold=3)
        objs = fill_eden(g1, 1 << 20)
        for _ in range(3):
            g1.collect_young()
        assert all(o.region.space is Space.OLD for o in objs)
        assert g1.objects_promoted == len(objs)

    def test_pause_grows_with_live_bytes(self):
        small = make(G1Collector, young_regions=4)
        fill_eden(small, 1 << 20)
        small.collect_young()
        large = make(G1Collector, young_regions=4)
        fill_eden(large, 3 << 20)
        large.collect_young()
        assert large.pauses[-1].duration_ns > small.pauses[-1].duration_ns

    def test_gc_cycle_counter(self):
        g1 = make(G1Collector, young_regions=2)
        g1.collect_young()
        g1.collect_young()
        assert g1.gc_cycles == 2


class TestG1Mixed:
    def test_mixed_collects_garbage_rich_old_regions(self):
        g1 = make(G1Collector, heap_mb=8, young_regions=2, tenuring_threshold=1, ihop=0.3)
        # Medium-lived objects: promoted, then die.
        objs = fill_eden(g1, 2 << 20)
        g1.collect_young()  # age 1 -> promoted to old
        for o in objs:
            o.kill_at(g1.clock.now_ns)
        # More allocation raises occupancy and drives the mixed phase.
        fill_eden(g1, 4 << 20, lives_ns=1)
        old_used = sum(r.used for r in g1.heap.regions_in(Space.OLD))
        assert g1.mixed_collections >= 1 or old_used == 0

    def test_full_collection_compacts_old(self):
        g1 = make(G1Collector, young_regions=2, tenuring_threshold=1)
        objs = fill_eden(g1, 1 << 20)
        g1.collect_young()
        half = objs[: len(objs) // 2]
        for o in half:
            o.kill_at(g1.clock.now_ns)
        before = len(g1.heap.regions_in(Space.OLD))
        g1.collect_full("test")
        after = len(g1.heap.regions_in(Space.OLD))
        assert after <= before
        assert any(p.kind == "full" for p in g1.pauses)


class TestCMS:
    def test_concurrent_cycle_short_pauses(self):
        cms = make(CMSCollector, young_regions=2, concurrent_trigger=0.1)
        fill_eden(cms, 3 << 20)
        marks = [p for p in cms.pauses if p.kind.startswith("cms-")]
        assert marks
        young = [p for p in cms.pauses if p.kind == "young"]
        if young:
            assert min(m.duration_ns for m in marks) < max(
                y.duration_ns for y in young
            ) * 2

    def test_sweep_releases_fully_dead_regions(self):
        cms = make(CMSCollector, young_regions=2, tenuring_threshold=1)
        objs = fill_eden(cms, 1 << 20)
        cms.collect_young()  # promote to old
        for o in objs:
            o.kill_at(cms.clock.now_ns)
        cms._concurrent_cycle()
        assert sum(r.used for r in cms.heap.regions_in(Space.OLD)) == 0

    def test_partial_sweep_accumulates_waste(self):
        cms = make(CMSCollector, young_regions=2, tenuring_threshold=1)
        objs = fill_eden(cms, 1 << 20)
        cms.collect_young()
        for o in objs[::2]:
            o.kill_at(cms.clock.now_ns)
        cms._concurrent_cycle()
        assert cms.wasted_bytes > 0

    def test_full_compaction_resets_waste_with_long_pause(self):
        cms = make(CMSCollector, young_regions=2, tenuring_threshold=1)
        objs = fill_eden(cms, 2 << 20)
        cms.collect_young()
        for o in objs[::2]:
            o.kill_at(cms.clock.now_ns)
        cms._concurrent_cycle()
        cms.collect_full("test")
        assert cms.wasted_bytes == 0
        assert cms.full_compactions == 1
        full = [p for p in cms.pauses if p.kind == "cms-full"]
        assert full
        # Serial compaction: long relative to the young pauses.
        young = [p for p in cms.pauses if p.kind == "young"]
        assert full[0].duration_ns > max(y.duration_ns for y in young)


class TestZGC:
    def test_pauses_are_tiny_and_constant(self):
        zgc = make(ZGCCollector, heap_mb=8, occupancy_trigger=0.2)
        fill_eden(zgc, 6 << 20, lives_ns=1)
        assert zgc.pauses
        durations = {p.duration_ns for p in zgc.pauses}
        assert len(durations) == 1
        assert durations.pop() < 2e6  # < 2 ms

    def test_mutator_tax(self):
        assert ZGCCollector(RegionHeap(8 << 20)).mutator_overhead_factor > 1.0
        assert G1Collector(RegionHeap(8 << 20)).mutator_overhead_factor == 1.0

    def test_floating_garbage_delays_reclaim(self):
        zgc = make(ZGCCollector, heap_mb=8, occupancy_trigger=0.01)
        zgc.min_cycle_alloc_bytes = 0
        objs = fill_eden(zgc, 1 << 20)
        live_before = zgc.heap.used_bytes()
        for o in objs:
            o.kill_at(zgc.clock.now_ns)
        # Partially-dead pages wait one cycle.
        zgc._concurrent_cycle()
        zgc._concurrent_cycle()
        assert zgc.heap.used_bytes() < live_before

    def test_headroom_in_max_memory(self):
        zgc = make(ZGCCollector, heap_mb=8)
        fill_eden(zgc, 2 << 20)
        assert zgc.max_memory_bytes() > zgc.heap.max_committed_bytes

    def test_allocation_failure_recovers(self):
        zgc = make(ZGCCollector, heap_mb=4, occupancy_trigger=0.9)
        # Dead churn beyond the heap size: full-cycle fallback must cope.
        fill_eden(zgc, 12 << 20, lives_ns=1)
        assert zgc.concurrent_cycles >= 1


class TestNG2C:
    def test_gen_zero_goes_to_eden(self):
        ng2c = make(NG2CCollector, young_regions=4)
        obj = ng2c.allocate(1024, gen_hint=0)
        assert obj.region.space is Space.EDEN

    def test_dynamic_generation_placement(self):
        ng2c = make(NG2CCollector, young_regions=4)
        obj = ng2c.allocate(1024, gen_hint=5)
        assert obj.region.space is Space.DYNAMIC
        assert obj.region.gen == 5
        assert ng2c.pretenured_objects == 1

    def test_old_gen_placement(self):
        ng2c = make(NG2CCollector, young_regions=4)
        obj = ng2c.allocate(1024, gen_hint=OLD_GEN)
        assert obj.region.space is Space.OLD

    def test_pretenured_objects_skip_young_collection(self):
        ng2c = make(NG2CCollector, young_regions=2)
        obj = ng2c.allocate(1024, gen_hint=3)
        fill_eden(ng2c, 3 << 20, lives_ns=1)
        assert obj.copies == 0
        assert obj.age == 0

    def test_wholesale_reclaim_of_dead_generation(self):
        ng2c = make(NG2CCollector, young_regions=2)
        objs = [ng2c.allocate(1024, gen_hint=4) for _ in range(512)]
        for o in objs:
            o.kill_at(ng2c.clock.now_ns)
        ng2c.collect_young()
        assert ng2c.regions_reclaimed_wholesale >= 1
        assert ng2c.copy_breakdown["dynamic"] == 0

    def test_annotation_mode_ignores_profiler(self):
        ng2c = make(NG2CCollector, young_regions=4, use_profiler_advice=False)
        obj = ng2c.allocate(1024, context=0x0001_0000, gen_hint=7)
        assert obj.region.gen == 7

    def test_advice_mode_ignores_hints(self):
        ng2c = make(NG2CCollector, young_regions=4, use_profiler_advice=True)
        # no VM/profiler attached: advice falls back to the null profiler
        obj = ng2c.allocate(1024, context=0x0001_0000, gen_hint=7)
        assert obj.region.space is Space.EDEN

    def test_full_collection_covers_dynamic_gens(self):
        ng2c = make(NG2CCollector, young_regions=2)
        live = [ng2c.allocate(1024, gen_hint=3) for _ in range(512)]
        dead = [ng2c.allocate(1024, gen_hint=3) for _ in range(512)]
        for o in dead:
            o.kill_at(ng2c.clock.now_ns)
        ng2c.collect_full("test")
        assert all(o.region is not None for o in live)
        used = sum(r.used for r in ng2c.heap.regions_in(Space.DYNAMIC))
        assert used == sum(o.size for o in live)

"""The fuzz harness itself: oracle judgment, budget parsing, genome
shrinking, corpus banking/replay, and the --jobs determinism contract
of the search loop."""

from __future__ import annotations

import json

import pytest

from repro.analysis.fuzz_oracle import judge
from repro.bench import fuzz
from repro.bench.runner import Runner
from repro.workloads.adversarial import HOSTILE_DEFAULT, DemographyGenome

SEED = 20260805


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.02")


def clean(fingerprint="fp", drift=0.0, passes=3, **metrics):
    base = {"prediction_error": drift, "inference_passes": passes}
    base.update(metrics)
    return {"violation": None, "fingerprint": fingerprint, "metrics": base}


def violated(rule="heap/region-accounting"):
    return {
        "violation": {"rule": rule, "message": "boom", "details": {}},
        "fingerprint": None,
        "metrics": {},
    }


class TestOracle:
    def test_quiet_on_agreeing_clean_backends(self):
        results = {name: clean() for name in ("reference", "fast", "compiled")}
        assert judge(results) == []

    def test_invariant_violation_carries_rule_and_backend(self):
        results = {"reference": clean(), "fast": violated("lock/discipline")}
        findings = judge(results)
        assert [f.rule_id for f in findings] == ["invariant/lock/discipline"]
        assert "[fast]" in findings[0].detail

    def test_fingerprint_divergence_excludes_violated_backends(self):
        results = {
            "reference": clean("A"),
            "fast": clean("B"),
            "compiled": violated(),
        }
        rules = [f.rule_id for f in judge(results)]
        assert "differential/fingerprint-divergence" in rules
        # the violated backend is reported as a violation, not as part
        # of the divergence comparison
        assert rules[0].startswith("invariant/")

    def test_accuracy_cliff_needs_multiple_passes(self):
        thrashing = {"reference": clean(drift=2.5, passes=3)}
        assert [f.rule_id for f in judge(thrashing)] == ["inference/accuracy-cliff"]
        single_pass = {"reference": clean(drift=2.5, passes=1)}
        assert judge(single_pass) == []
        converged = {"reference": clean(drift=0.2, passes=8)}
        assert judge(converged) == []

    def test_findings_deterministically_ordered(self):
        results = {
            "compiled": violated("b-rule"),
            "fast": violated("a-rule"),
            "reference": clean(drift=5.0, passes=4),
        }
        rules = [f.rule_id for f in judge(results)]
        assert rules == [
            "invariant/b-rule",  # sorted by backend name: compiled < fast
            "invariant/a-rule",
            "inference/accuracy-cliff",
        ]


class TestBudget:
    def test_count_budget(self):
        assert fuzz.parse_budget("64") == (64, None)

    def test_time_budget(self):
        assert fuzz.parse_budget("120s") == (None, 120.0)

    @pytest.mark.parametrize("bad", ["0", "-3", "0s", "-1s"])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError):
            fuzz.parse_budget(bad)


class TestShrinking:
    def test_shrinks_to_minimum_when_predicate_always_holds(self):
        shrunk = fuzz.shrink_genome(HOSTILE_DEFAULT, lambda g: True)
        assert shrunk.complexity() < HOSTILE_DEFAULT.complexity()
        # greedy descent with an always-true predicate must reach the
        # domain floor, where no shrink candidates remain
        assert shrunk.shrink_candidates() == []
        assert shrunk.collision_sites == 0
        assert shrunk.threads == 1

    def test_identity_when_predicate_never_holds(self):
        assert (
            fuzz.shrink_genome(HOSTILE_DEFAULT, lambda g: False) == HOSTILE_DEFAULT
        )

    def test_preserves_predicate(self):
        # keep at least 8 collision sites: the shrink must stop right
        # at the boundary, never below it
        holds = lambda g: g.collision_sites >= 8
        shrunk = fuzz.shrink_genome(HOSTILE_DEFAULT, holds)
        assert holds(shrunk)
        assert shrunk.collision_sites == 8


class TestCorpus:
    def test_bank_and_load_round_trip(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        name = fuzz.bank_corpus_entry(
            corpus_dir,
            "objective/max-conflicts",
            "detail text",
            HOSTILE_DEFAULT,
            seed=123,
            check="max-conflicts",
            metrics={"conflict_rate": 22.0},
            baseline_conflict_rate=1.0,
        )
        entries = fuzz.load_corpus(corpus_dir)
        assert [entry["_file"] for entry in entries] == [name]
        entry = entries[0]
        assert entry["schema"] == fuzz.CORPUS_SCHEMA
        assert entry["ops"] == fuzz.CORPUS_OPS
        assert entry["seed"] == 123
        assert DemographyGenome.from_dict(entry["genome"]) == HOSTILE_DEFAULT
        assert "fuzz_eval(" in entry["cell_key"]

    def test_entry_name_is_deterministic(self):
        first = fuzz.corpus_entry_name("invariant/heap/x", HOSTILE_DEFAULT)
        second = fuzz.corpus_entry_name("invariant/heap/x", HOSTILE_DEFAULT)
        assert first == second
        assert first.startswith("fuzz-invariant-heap-x-")
        assert first != fuzz.corpus_entry_name("other/rule", HOSTILE_DEFAULT)

    def test_load_rejects_unknown_schema(self, tmp_path):
        corpus_dir = tmp_path / "corpus"
        corpus_dir.mkdir()
        (corpus_dir / "bad.json").write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ValueError):
            fuzz.load_corpus(str(corpus_dir))

    def test_missing_dir_is_empty(self, tmp_path):
        assert fuzz.load_corpus(str(tmp_path / "absent")) == []


class TestFailureRules:
    def test_only_invariant_and_differential_fail_ci(self):
        report = {
            "findings": [
                {"rule_id": "inference/accuracy-cliff", "detail": ""},
                {"rule_id": "invariant/heap/x", "detail": ""},
                {"rule_id": "differential/fingerprint-divergence", "detail": ""},
                {"rule_id": "invariant/heap/x", "detail": "dup"},
            ]
        }
        assert fuzz.report_failure_rules(report) == [
            "differential/fingerprint-divergence",
            "invariant/heap/x",
        ]
        assert fuzz.report_failure_rules({"findings": []}) == []


@pytest.mark.fuzz
class TestSearchDeterminism:
    """--jobs N must be byte-identical to the serial run: the report
    payload and every banked corpus entry."""

    def run_search(self, tmp_path, monkeypatch, jobs, tag):
        # corpus replays are banked at CORPUS_OPS; compress it here so
        # the shrink descent (many single-cell evaluations) stays cheap
        monkeypatch.setattr(fuzz, "CORPUS_OPS", 800)
        corpus_dir = str(tmp_path / ("corpus-%s" % tag))
        runner = Runner(jobs=jobs, cache=None, base_seed=SEED)
        report = fuzz.fuzz(runner, budget="3", corpus_dir=corpus_dir)
        banked = {
            name: (tmp_path / ("corpus-%s" % tag) / name).read_bytes()
            for name in report["corpus_entries"]
        }
        return json.dumps(report, sort_keys=True).encode(), banked

    def test_jobs_byte_identical(self, tmp_path, monkeypatch):
        serial = self.run_search(tmp_path, monkeypatch, jobs=1, tag="serial")
        pooled = self.run_search(tmp_path, monkeypatch, jobs=4, tag="pooled")
        assert serial == pooled

    def test_report_has_no_wallclock_fields(self, tmp_path, monkeypatch):
        report_bytes, _ = self.run_search(tmp_path, monkeypatch, jobs=1, tag="shape")
        report = json.loads(report_bytes)
        assert report["schema"] == "rolp-bench/fuzz-report/v1"
        assert report["base_seed"] == SEED
        assert report["evaluations"] == 3
        # determinism would silently break if anyone adds timing to the
        # payload; pin the full key set
        assert sorted(report) == [
            "base_seed",
            "baseline",
            "budget",
            "corpus_entries",
            "corpus_ops",
            "eval_ops",
            "evaluations",
            "findings",
            "generations",
            "inference_period_gcs",
            "objectives",
            "schema",
            "static_predictor",
        ]

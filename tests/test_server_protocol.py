"""Protocol-conformance suite for the fleet server.

Every endpoint's request/response is validated against the versioned
``rolp-bench/server/v1`` schemas in :mod:`repro.server.protocol` —
including every error envelope: unknown session → 404, malformed body
→ 400 with a reason slug, full queue → 429 + Retry-After, wrong verb →
405, expired deadline → 504.  The schema document itself is asserted
stable (version string, reason-slug table, envelope keys), so any wire
change must come with an explicit schema bump.
"""

import asyncio
import json

import pytest

from repro.bench.runner import Runner, make_cell
from repro.server import protocol
from repro.server.app import ServerApp
from repro.server.batcher import JobBatcher, ServerStopping
from repro.server.http import MAX_HEADER_LINES, HttpFrontend, _ProtocolError
from repro.server.jobs import result_fingerprint
from repro.server.testing import HttpClient, TestClient


@pytest.fixture(autouse=True)
def small_scale(monkeypatch):
    monkeypatch.setenv("ROLP_BENCH_SCALE", "0.05")


#: tiny but real simulation budget for endpoint tests
OPS = 2_000


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def run(coro):
    return asyncio.run(coro)


def make_app(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return ServerApp(runner=Runner(jobs=1, cache=None), **kwargs)


async def started(app):
    await app.startup()
    return TestClient(app)


def check(response, status, schema_name=None):
    """Assert status and validate the body against its response schema."""
    assert response.status == status, response.raw
    body = response.json()
    name = protocol.check_response(body)
    if schema_name is not None:
        assert name == schema_name, (name, body)
    return body


def check_error(response, status, reason):
    body = check(response, status, "error")
    assert body["error"]["status"] == status
    assert body["error"]["reason"] == reason
    assert body["error"]["detail"]
    return body


# ------------------------------------------------------------ schema stability

class TestSchemaStability:
    def test_schema_version_string(self):
        assert protocol.SCHEMA == "rolp-bench/server/v1"

    def test_reason_slug_table_is_stable(self):
        # the wire contract: slugs and their statuses may only change
        # with a schema-version bump
        assert protocol.REASONS == {
            "malformed-body": 400,
            "invalid-field": 400,
            "unknown-kind": 400,
            "invalid-params": 400,
            "unknown-workload": 400,
            "unknown-collector": 400,
            "unknown-session": 404,
            "unknown-endpoint": 404,
            "method-not-allowed": 405,
            "recording-disabled": 409,
            "queue-full": 429,
            "timeout": 504,
            "internal-error": 500,
            "server-stopping": 503,
        }

    def test_schema_document_lists_every_schema(self):
        doc = protocol.schema_document()
        protocol.validate(doc, protocol.SCHEMA_RESPONSE)
        assert sorted(doc["requests"]) == ["job", "session_create", "step"]
        assert sorted(doc["responses"]) == [
            "error", "health", "job", "metrics", "recording", "schema",
            "session", "session_closed", "session_list", "step",
        ]

    def test_every_schema_is_self_consistent(self):
        # every declared schema must itself be a dict with a type
        for name, schema in protocol.iter_schemas():
            assert isinstance(schema, dict), name
            assert schema.get("type") == "object", name

    def test_validator_rejects_and_locates(self):
        with pytest.raises(protocol.SchemaError) as err:
            protocol.validate(
                {"workload": 3}, protocol.SESSION_CREATE_REQUEST
            )
        assert "$.workload" in str(err.value)
        with pytest.raises(protocol.SchemaError):
            protocol.validate({"nope": 1}, protocol.SESSION_CREATE_REQUEST)
        protocol.validate({}, protocol.SESSION_CREATE_REQUEST)


# ------------------------------------------------------------- happy endpoints

class TestEndpoints:
    def test_healthz(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            body = check(await client.get("/healthz"), 200, "health")
            assert body["status"] == "ok"
            assert body["accepting"] is True
            await app.shutdown()

        run(scenario())

    def test_schema_endpoint(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            body = check(await client.get("/v1/schema"), 200, "schema")
            assert body["schema"] == protocol.SCHEMA
            assert body["reasons"] == protocol.REASONS
            await app.shutdown()

        run(scenario())

    def test_session_lifecycle_endpoints(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            created = check(
                await client.post(
                    "/v1/sessions",
                    {"workload": "lucene", "collector": "g1", "operations": OPS},
                ),
                201,
                "session",
            )
            session = created["session"]
            assert session["id"] == "s-000001"
            assert session["seq"] == 1
            assert session["steps"] == session["jobs"] == 0

            listed = check(await client.get("/v1/sessions"), 200, "session_list")
            assert listed["count"] == 1
            assert listed["sessions"][0]["id"] == session["id"]

            queried = check(
                await client.get("/v1/sessions/%s" % session["id"]), 200, "session"
            )
            assert queried["session"]["trace_id"] == session["trace_id"]

            closed = check(
                await client.delete("/v1/sessions/%s" % session["id"]),
                200,
                "session_closed",
            )
            assert closed["closed"]["id"] == session["id"]
            assert check(await client.get("/v1/sessions"), 200)["count"] == 0
            await app.shutdown()

        run(scenario())

    def test_run_and_step_payloads(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            body = await client.post(
                "/v1/sessions",
                {"workload": "graphchi-cc", "collector": "rolp", "operations": OPS},
            )
            sid = body.json()["session"]["id"]

            ran = check(await client.post("/v1/sessions/%s/run" % sid), 200, "job")
            job = ran["job"]
            assert job["kind"] == "trace_run"
            assert job["fingerprint"] == result_fingerprint(job["result"])

            stepped = check(
                await client.post("/v1/sessions/%s/step" % sid, {"ops": OPS}),
                200,
                "step",
            )
            assert stepped["step"] == 0
            assert stepped["job"]["kind"] == "session_step"
            assert stepped["job"]["result"]["step"] == 0

            # counters visible through query
            queried = check(await client.get("/v1/sessions/%s" % sid), 200)
            assert queried["session"]["jobs"] == 1
            assert queried["session"]["steps"] == 1
            await app.shutdown()

        run(scenario())

    def test_explicit_kind_job(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            sid = (await client.post("/v1/sessions", {"operations": OPS})).json()[
                "session"
            ]["id"]
            ran = check(
                await client.post(
                    "/v1/sessions/%s/run" % sid,
                    {
                        "kind": "trace_run",
                        "params": {
                            "workload": "lucene",
                            "collector": "g1",
                            "operations": OPS,
                        },
                    },
                ),
                200,
                "job",
            )
            assert "workload='lucene'" in ran["job"]["cell_key"]
            await app.shutdown()

        run(scenario())

    def test_metrics_json_and_prometheus(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            await client.post("/v1/sessions", {"operations": OPS})
            body = check(await client.get("/metrics"), 200, "metrics")
            assert body["sessions"]["created"] == 1
            assert body["sessions"]["active"] == 1
            assert body["queue"]["capacity"] >= 1
            text = await client.get("/metrics", query={"format": "prometheus"})
            assert text.status == 200
            assert b"# HELP" in text.raw or b"server_" in text.raw
            await app.shutdown()

        run(scenario())

    def test_recording_endpoint(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            sid = (
                await client.post(
                    "/v1/sessions", {"operations": OPS, "flight_recorder": 256}
                )
            ).json()["session"]["id"]
            await client.post("/v1/sessions/%s/step" % sid, {"ops": OPS})
            body = check(
                await client.get("/v1/sessions/%s/recording" % sid), 200, "recording"
            )
            assert body["session_id"] == sid
            names = [event["name"] for event in body["events"]]
            assert "session/create" in names
            assert "session/step" in names
            assert body["counters"]["events_seen"] >= len(body["events"])
            await app.shutdown()

        run(scenario())


# ------------------------------------------------------------- error envelopes

class TestErrorEnvelopes:
    def test_unknown_session_is_404(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            check_error(await client.get("/v1/sessions/s-999999"), 404, "unknown-session")
            check_error(
                await client.post("/v1/sessions/s-999999/run"), 404, "unknown-session"
            )
            check_error(
                await client.post("/v1/sessions/s-999999/step"), 404, "unknown-session"
            )
            check_error(
                await client.delete("/v1/sessions/s-999999"), 404, "unknown-session"
            )
            await app.shutdown()

        run(scenario())

    def test_double_close_is_clean_404(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            sid = (await client.post("/v1/sessions", {"operations": OPS})).json()[
                "session"
            ]["id"]
            assert (await client.delete("/v1/sessions/%s" % sid)).status == 200
            check_error(
                await client.delete("/v1/sessions/%s" % sid), 404, "unknown-session"
            )
            await app.shutdown()

        run(scenario())

    def test_malformed_body_is_400_with_slug(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            check_error(
                await client.post("/v1/sessions", raw_body=b"{not json"),
                400,
                "malformed-body",
            )
            check_error(
                await client.post("/v1/sessions", raw_body=b"[1, 2]"),
                400,
                "malformed-body",
            )
            await app.shutdown()

        run(scenario())

    def test_schema_violations_are_400_invalid_field(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            body = check_error(
                await client.post("/v1/sessions", {"workload": 7}),
                400,
                "invalid-field",
            )
            assert "$.workload" in body["error"]["detail"]
            check_error(
                await client.post("/v1/sessions", {"surprise": True}),
                400,
                "invalid-field",
            )
            check_error(
                await client.post("/v1/sessions", {"operations": 0}),
                400,
                "invalid-field",
            )
            await app.shutdown()

        run(scenario())

    def test_unknown_names_have_dedicated_slugs(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            check_error(
                await client.post("/v1/sessions", {"workload": "nope"}),
                400,
                "unknown-workload",
            )
            check_error(
                await client.post("/v1/sessions", {"collector": "nope"}),
                400,
                "unknown-collector",
            )
            sid = (await client.post("/v1/sessions", {"operations": OPS})).json()[
                "session"
            ]["id"]
            check_error(
                await client.post(
                    "/v1/sessions/%s/run" % sid, {"kind": "no_such_kind"}
                ),
                400,
                "unknown-kind",
            )
            check_error(
                await client.post(
                    "/v1/sessions/%s/run" % sid,
                    {"kind": "trace_run", "params": {"bogus_param": 1}},
                ),
                400,
                "invalid-params",
            )
            await app.shutdown()

        run(scenario())

    def test_unknown_endpoint_and_method_not_allowed(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            check_error(await client.get("/v2/anything"), 404, "unknown-endpoint")
            check_error(await client.post("/healthz"), 405, "method-not-allowed")
            check_error(await client.delete("/metrics"), 405, "method-not-allowed")
            check_error(
                await client.request("PATCH", "/v1/sessions"),
                405,
                "method-not-allowed",
            )
            sid = (await client.post("/v1/sessions", {"operations": OPS})).json()[
                "session"
            ]["id"]
            check_error(
                await client.get("/v1/sessions/%s/run" % sid),
                405,
                "method-not-allowed",
            )
            await app.shutdown()

        run(scenario())

    def test_recording_disabled_is_409(self):
        async def scenario():
            app = make_app()
            client = await started(app)
            sid = (await client.post("/v1/sessions", {"operations": OPS})).json()[
                "session"
            ]["id"]
            check_error(
                await client.get("/v1/sessions/%s/recording" % sid),
                409,
                "recording-disabled",
            )
            await app.shutdown()

        run(scenario())

    def test_full_queue_is_429_with_retry_after(self):
        async def scenario():
            app = make_app(queue_limit=2)
            client = await started(app)
            app.batcher.pause()  # deterministic: nothing drains
            sid = (await client.post("/v1/sessions", {"operations": OPS})).json()[
                "session"
            ]["id"]
            accepted = [
                asyncio.ensure_future(client.post("/v1/sessions/%s/run" % sid))
                for _ in range(2)
            ]
            await asyncio.sleep(0)  # let both submissions reach the queue
            rejected = await client.post("/v1/sessions/%s/run" % sid)
            body = check_error(rejected, 429, "queue-full")
            assert rejected.headers.get("Retry-After") == "1"
            assert "capacity" in body["error"]["detail"]
            app.batcher.resume()
            for task in accepted:
                check(await task, 200, "job")  # accepted jobs never dropped
            await app.shutdown()

        run(scenario())

    def test_request_timeout_is_504(self):
        async def scenario():
            app = make_app(request_timeout_s=0.05)
            client = await started(app)
            app.batcher.pause()  # the job can never finish in time
            sid = (await client.post("/v1/sessions", {"operations": OPS})).json()[
                "session"
            ]["id"]
            check_error(
                await client.post("/v1/sessions/%s/run" % sid), 504, "timeout"
            )
            app.batcher.resume()
            await app.shutdown()

        run(scenario())


# ------------------------------------------------------------------- the wire

class TestHttpFrontend:
    """One TCP pass over the real codec; everything else runs in-process."""

    def test_round_trip_and_wire_errors(self):
        async def scenario():
            app = make_app()
            frontend = HttpFrontend(app, "127.0.0.1", 0)
            await frontend.start()
            client = HttpClient("http://127.0.0.1:%d" % frontend.bound_port)

            check(await client.get("/healthz"), 200, "health")
            created = check(
                await client.post("/v1/sessions", {"operations": OPS}), 201, "session"
            )
            sid = created["session"]["id"]
            check(await client.post("/v1/sessions/%s/run" % sid), 200, "job")
            check_error(await client.get("/v1/sessions/nope"), 404, "unknown-session")

            # truncated JSON body straight over the socket
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", frontend.bound_port
            )
            writer.write(
                b"POST /v1/sessions HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 4\r\nConnection: close\r\n\r\n{oop"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 400")
            body = json.loads(payload.decode())
            assert protocol.check_response(body) == "error"
            assert body["error"]["reason"] == "malformed-body"

            # negative Content-Length: refused before it can reach
            # readexactly, with the same 400 envelope
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", frontend.bound_port
            )
            writer.write(
                b"POST /v1/sessions HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: -5\r\nConnection: close\r\n\r\n"
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 400")
            body = json.loads(payload.decode())
            assert protocol.check_response(body) == "error"
            assert body["error"]["reason"] == "malformed-body"
            assert "negative" in body["error"]["detail"]

            await frontend.stop()

        run(scenario())

    def test_codec_rejects_hostile_framing(self):
        """Negative Content-Length, header floods and over-limit lines
        are all refused at the codec, before any body allocation."""

        def feed(data, limit=2 ** 16):
            reader = asyncio.StreamReader(limit=limit)
            reader.feed_data(data)
            reader.feed_eof()
            return reader

        async def scenario():
            frontend = HttpFrontend(make_app())

            with pytest.raises(_ProtocolError) as err:
                await frontend._read_request(
                    feed(b"POST /v1/sessions HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
                )
            assert err.value.response.status == 400
            assert "negative Content-Length" in str(err.value)

            flood = (
                b"GET /healthz HTTP/1.1\r\n"
                + b"".join(
                    b"X-%d: x\r\n" % i for i in range(MAX_HEADER_LINES + 5)
                )
                + b"\r\n"
            )
            with pytest.raises(_ProtocolError) as err:
                await frontend._read_request(feed(flood))
            assert err.value.response.status == 400
            assert "header lines" in str(err.value)

            # a header line over the StreamReader limit surfaces as
            # ValueError, which _handle_connection maps to the same 400
            with pytest.raises(ValueError):
                await frontend._read_request(
                    feed(
                        b"GET / HTTP/1.1\r\nX-Big: " + b"x" * 4096 + b"\r\n\r\n",
                        limit=1024,
                    )
                )

        run(scenario())


class TestAppConstruction:
    def test_explicit_base_seed_wins_over_runner(self):
        """base_seed=N must govern every derived seed and trace id even
        when the caller also supplies a runner."""

        async def scenario():
            runner = Runner(jobs=1, cache=None, base_seed=7)
            app = ServerApp(runner=runner, base_seed=99, clock=FakeClock())
            assert app.base_seed == 99
            assert runner.base_seed == 99
            assert app.manager.base_seed == 99

            inherited = ServerApp(
                runner=Runner(jobs=1, cache=None, base_seed=7), clock=FakeClock()
            )
            assert inherited.base_seed == 7
            assert inherited.manager.base_seed == 7

        run(scenario())


class TestBatcherShutdown:
    def test_stop_abandons_queued_jobs_even_mid_batch(self):
        """stop() during an in-flight batch lets that batch finish but
        fails still-queued jobs with ServerStopping instead of draining
        the whole backlog first."""

        class GateRunner:
            def __init__(self):
                self.entered = asyncio.Event()
                self.release = asyncio.Event()

            async def run_async(self, cells, executor):
                self.entered.set()
                await self.release.wait()
                return [{"ok": cell.key} for cell in cells]

        async def scenario():
            runner = GateRunner()
            batcher = JobBatcher(runner, queue_limit=8, max_batch=1)
            batcher.start()
            cells = [
                make_cell(
                    "trace_run",
                    workload="lucene",
                    collector="g1",
                    operations=OPS + i,
                )
                for i in range(3)
            ]
            futures = [batcher.submit(cell) for cell in cells]
            await runner.entered.wait()  # worker is mid-batch with job 0
            stop_task = asyncio.ensure_future(batcher.stop())
            await asyncio.sleep(0)  # stop() observed before the batch ends
            runner.release.set()
            await stop_task
            assert (await futures[0])["ok"] == cells[0].key
            for future in futures[1:]:
                with pytest.raises(ServerStopping):
                    await future
            assert batcher.completed == 1
            assert batcher.abandoned == 2

        run(scenario())


class TestServeCli:
    def test_serve_is_a_cli_choice(self):
        from repro.bench.cli import main

        with pytest.raises(SystemExit) as err:
            main(["serve", "--port", "not-a-port"])
        assert err.value.code == 2  # argparse rejects, proving the route exists


def test_runner_cells_cover_server_kinds():
    """The server's job vocabulary is the runner registry, including
    the session_step kind the server itself registers."""
    from repro.bench.runner import registered_cell_kinds

    kinds = registered_cell_kinds()
    assert "trace_run" in kinds
    assert "session_step" in kinds
    cell = make_cell(
        "session_step", workload="lucene", collector="g1", operations=OPS, step=3
    )
    assert "step=3" in cell.key
    # step stays in the seed scope; collector is the dropped treatment
    assert "step=3" in cell.seed_key
    assert "collector" not in cell.seed_key

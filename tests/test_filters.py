"""Tests for package-based profiling filters."""

from repro.core.filters import PackageFilter


class TestAcceptAll:
    def test_empty_filter_accepts_everything(self):
        f = PackageFilter.accept_all()
        assert f.accepts("org.apache.cassandra.db")
        assert f.accepts("")
        assert f.accepts("anything.at.all")


class TestIncludes:
    def test_exact_package(self):
        f = PackageFilter(include=["org.apache.cassandra.db"])
        assert f.accepts("org.apache.cassandra.db")

    def test_subpackages_included(self):
        f = PackageFilter(include=["org.apache.cassandra.db"])
        assert f.accepts("org.apache.cassandra.db.compaction")

    def test_prefix_must_align_on_package_boundary(self):
        f = PackageFilter(include=["org.apache.cassandra.db"])
        assert not f.accepts("org.apache.cassandra.dbx")

    def test_unrelated_package_rejected(self):
        f = PackageFilter(include=["org.apache.cassandra.db"])
        assert not f.accepts("org.apache.cassandra.transport")

    def test_multiple_includes(self):
        f = PackageFilter(include=["a.b", "c.d"])
        assert f.accepts("a.b.x")
        assert f.accepts("c.d")
        assert not f.accepts("e.f")


class TestExcludes:
    def test_exclude_wins_over_include(self):
        f = PackageFilter(include=["a"], exclude=["a.internal"])
        assert f.accepts("a.public")
        assert not f.accepts("a.internal")
        assert not f.accepts("a.internal.deep")

    def test_exclude_with_accept_all(self):
        f = PackageFilter(exclude=["sun.misc"])
        assert f.accepts("org.app")
        assert not f.accepts("sun.misc.Unsafe")

    def test_duplicate_prefixes_deduped(self):
        f = PackageFilter(include=["a.b", "a.b"])
        assert f.include == ["a.b"]

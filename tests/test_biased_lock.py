"""Tests for the biased-locking model and its profiling side effects."""

from repro.heap import header as hdr
from repro.heap.object_model import SimObject
from repro.runtime.biased_lock import BiasedLockManager
from repro.runtime.thread import SimThread


class TestBiasedLockManager:
    def test_lock_sets_bias_and_clobbers_context(self):
        manager = BiasedLockManager()
        thread = SimThread(3)
        obj = SimObject(64, 0, context=0x0042_0007)
        manager.lock(thread, obj)
        assert obj.biased_locked
        assert obj.context != 0x0042_0007
        assert manager.locks_taken == 1
        assert manager.contexts_clobbered == 1

    def test_unprofiled_object_not_counted_as_clobbered(self):
        manager = BiasedLockManager()
        obj = SimObject(64, 0)
        manager.lock(SimThread(1), obj)
        assert manager.contexts_clobbered == 0

    def test_thread_pointer_distinct_per_thread(self):
        manager = BiasedLockManager()
        a, b = SimObject(64, 0), SimObject(64, 0)
        manager.lock(SimThread(1), a)
        manager.lock(SimThread(2), b)
        assert a.context != b.context

    def test_revoke_leaves_stale_pointer(self):
        manager = BiasedLockManager()
        obj = SimObject(64, 0, context=0x0042_0007)
        manager.lock(SimThread(1), obj)
        pointer = obj.context
        manager.revoke(obj)
        assert not obj.biased_locked
        assert obj.context == pointer  # corrupted, as the paper accepts
        assert manager.revocations == 1

    def test_thread_lock_count(self):
        manager = BiasedLockManager()
        thread = SimThread(1)
        for _ in range(3):
            manager.lock(thread, SimObject(64, 0))
        assert thread.biased_objects == 3

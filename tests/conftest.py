"""Shared test fixtures.

The backend/instrumentation switches are process-global by design
(components capture them at construction), which makes them exactly the
kind of state a test can leak: a test that flips ``ROLP_BACKEND`` or
calls ``set_backend`` and then fails mid-way would silently change what
every later test executes.  The autouse guard below snapshots both the
environment variables and the in-process switch state before each test
and restores them after, so backend selection can never bleed between
tests regardless of outcome or execution order.
"""

import os

import pytest

from repro import fastpath

#: the process-ambient switches tests are allowed to mutate
_GUARDED_ENV = (
    "ROLP_BACKEND",
    "ROLP_FAST_PATHS",
    "ROLP_FLIGHT_RECORDER",
    "ROLP_STATIC_CHECK",
)


@pytest.fixture(autouse=True)
def _rolp_switch_guard():
    """Snapshot/restore the backend-selection env vars *and* the
    module-global switches they seed, around every test."""
    saved_env = {name: os.environ.get(name) for name in _GUARDED_ENV}
    saved_backend = fastpath.backend()
    saved_static = fastpath.static_check_enabled()
    try:
        yield
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        fastpath.set_backend(saved_backend)
        fastpath.set_static_check(saved_static)

"""Tests for fragmentation metrics and context blame attribution."""

from repro.heap.fragmentation import (
    dead_bytes_by_context,
    fragmented_regions,
    guilty_contexts,
    space_fragmentation,
)
from repro.heap.object_model import SimObject
from repro.heap.region import Region, Space


def obj(size, death=None, context=0):
    return SimObject(
        size=size, alloc_time_ns=0, death_time_ns=death or float("inf"), context=context
    )


def region_with(space, objects, gen=0, index=0, capacity=1 << 20):
    region = Region(index, capacity)
    region.retarget(space, gen)
    for o in objects:
        region.allocate(o)
    return region


class TestSpaceFragmentation:
    def test_empty_heap(self):
        assert space_fragmentation([], 0) == {}

    def test_per_space_garbage_fraction(self):
        regions = [
            region_with(Space.OLD, [obj(300, death=10), obj(100)]),
            region_with(Space.DYNAMIC, [obj(200)], gen=3, index=1),
        ]
        fractions = space_fragmentation(regions, now_ns=100)
        assert fractions[(Space.OLD, 0)] == 0.75
        assert fractions[(Space.DYNAMIC, 3)] == 0.0

    def test_free_and_empty_regions_ignored(self):
        free = Region(0)
        empty = Region(1)
        empty.retarget(Space.OLD)
        assert space_fragmentation([free, empty], 0) == {}


class TestFragmentedRegions:
    def test_threshold_filtering(self):
        high = region_with(Space.OLD, [obj(600, death=10), obj(400)])
        low = region_with(Space.OLD, [obj(100, death=10), obj(900)], index=1)
        result = fragmented_regions([high, low], now_ns=100, threshold=0.25)
        assert result == [high]

    def test_fully_dead_region_is_fragmented_by_this_metric(self):
        dead = region_with(Space.OLD, [obj(100, death=10)])
        assert fragmented_regions([dead], 100, threshold=0.25) == [dead]


class TestBlame:
    def test_dead_bytes_grouped_by_context(self):
        region = region_with(
            Space.DYNAMIC,
            [
                obj(100, death=10, context=0x0001_0000),
                obj(200, death=10, context=0x0001_0000),
                obj(50, death=10, context=0x0002_0000),
                obj(400, context=0x0001_0000),  # live: not blamed
            ],
            gen=2,
        )
        blame = dead_bytes_by_context([region], now_ns=100)
        assert blame == {0x0001_0000: 300, 0x0002_0000: 50}

    def test_unprofiled_context_skipped(self):
        region = region_with(Space.DYNAMIC, [obj(100, death=10, context=0)], gen=2)
        assert dead_bytes_by_context([region], 100) == {}

    def test_biased_locked_objects_skipped(self):
        o = obj(100, death=10, context=0x0003_0000)
        o.bias_lock(0x7F00_0001)
        region = region_with(Space.DYNAMIC, [o], gen=2)
        assert dead_bytes_by_context([region], 100) == {}

    def test_guilty_contexts_only_over_threshold_regions(self):
        fragmented = region_with(
            Space.DYNAMIC, [obj(500, death=10, context=0x0005_0000), obj(500)], gen=1
        )
        healthy = region_with(
            Space.DYNAMIC,
            [obj(10, death=10, context=0x0006_0000), obj(990)],
            gen=1,
            index=1,
        )
        blame = guilty_contexts([fragmented, healthy], now_ns=100, threshold=0.25)
        assert 0x0005_0000 in blame
        assert 0x0006_0000 not in blame

"""Property-based tests: the heap's incremental accounting always
agrees with the verifier's independent walk.

Random allocate/release/retire sequences drive :class:`RegionHeap`
through every lifecycle path (bump allocation, region claiming,
humongous stretching, wholesale release), and after every step the
verifier's re-derived aggregates must match both the heap's counters
and an externally tracked model.  The verifier also runs end-to-end
under every collector's random workload to prove GC-boundary walks
never false-positive on healthy heaps.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.heap_verifier import HeapVerifier
from repro.gc.cms import CMSCollector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.gc.zgc import ZGCCollector
from repro.heap import BandwidthModel, RegionHeap
from repro.heap.heap import SimOutOfMemoryError
from repro.heap.object_model import SimObject
from repro.heap.region import Space

REGION = 1 << 16  # 64 KiB regions keep the humongous path reachable

ALLOC_SPACES = (Space.EDEN, Space.SURVIVOR, Space.OLD)

#: an op: (kind, space selector, size in bytes)
#: sizes reach past 2*REGION so spanning humongous objects occur
ops = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "release", "retire"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=16, max_value=3 * REGION),
    ),
    min_size=1,
    max_size=60,
)


def apply_ops(heap, sequence):
    """Replay an op sequence; returns the externally tracked live model."""
    allocated = []  # every object successfully placed
    for kind, which, size in sequence:
        space = ALLOC_SPACES[which]
        if kind == "alloc":
            obj = SimObject(size, 0)
            try:
                heap.allocate(obj, space)
            except SimOutOfMemoryError:
                continue  # heap full: a legal outcome, not a corruption
            allocated.append(obj)
        elif kind == "retire":
            heap.retire_alloc_region(space)
        else:  # release a committed, non-humongous region wholesale
            victims = [
                r
                for r in heap.regions
                if r.space in ALLOC_SPACES
            ]
            if victims:
                victim = victims[which % len(victims)]
                for obj in victim.objects:
                    allocated.remove(obj)
                heap.release_region(victim)
    return allocated


class TestAccountingAgainstTheWalk:
    @settings(deadline=None, max_examples=60)
    @given(sequence=ops)
    def test_walk_matches_counters_after_every_step(self, sequence):
        heap = RegionHeap(32 * REGION, region_bytes=REGION)
        verifier = HeapVerifier()
        live = apply_ops(heap, sequence)
        checks = verifier.verify(heap)
        assert checks > 0
        assert verifier.violations == 0
        # the verifier passed; cross-check its subject against the
        # external model so "passed" cannot mean "checked nothing"
        assert heap.used_bytes() == sum(obj.size for obj in live)
        assert heap.free_regions == sum(
            1 for r in heap.regions if r.space is Space.FREE
        )
        assert heap.committed_bytes == (
            len(heap.regions) - heap.free_regions
        ) * REGION
        assert heap.max_committed_bytes >= heap.committed_bytes

    @settings(deadline=None, max_examples=60)
    @given(sequence=ops)
    def test_verifier_detects_planted_drift(self, sequence):
        """Whatever state the ops produce, one planted byte of counter
        drift in any occupied region must be caught."""
        heap = RegionHeap(32 * REGION, region_bytes=REGION)
        apply_ops(heap, sequence)
        occupied = [r for r in heap.regions if r.space is not Space.FREE]
        if not occupied:
            return
        occupied[len(occupied) // 2].used += 1
        verifier = HeapVerifier()
        try:
            verifier.verify(heap)
        except Exception as exc:  # noqa: BLE001 - asserting on the type below
            assert exc.__class__.__name__ == "InvariantViolation"
            assert verifier.violations == 1
        else:
            raise AssertionError("planted drift went undetected")

    @settings(deadline=None, max_examples=40)
    @given(
        sizes=st.lists(
            st.integers(min_value=REGION // 2 + 1, max_value=4 * REGION),
            min_size=1,
            max_size=6,
        )
    )
    def test_humongous_claims_exactly_cover_their_capacity(self, sizes):
        heap = RegionHeap(64 * REGION, region_bytes=REGION)
        placed = 0
        for size in sizes:
            try:
                heap.allocate(SimObject(size, 0), Space.EDEN)
            except SimOutOfMemoryError:
                break
            placed += 1
        verifier = HeapVerifier()
        verifier.verify(heap)
        humongous = heap.regions_in(Space.HUMONGOUS)
        assert sum(r.capacity for r in humongous) == len(humongous) * REGION
        assert sum(len(r.objects) for r in humongous) == placed


#: a GC-workload step, as in test_gc_properties: (kb, lifetime, gen hint)
gc_steps = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=64),
        st.one_of(st.none(), st.integers(min_value=0, max_value=30)),
        st.integers(min_value=0, max_value=15),
    ),
    min_size=1,
    max_size=80,
)

COLLECTORS = [
    lambda heap: G1Collector(heap, BandwidthModel(), young_regions=2),
    lambda heap: CMSCollector(heap, BandwidthModel(), young_regions=2),
    lambda heap: ZGCCollector(heap, BandwidthModel()),
    lambda heap: NG2CCollector(
        heap, BandwidthModel(), young_regions=2, use_profiler_advice=False
    ),
]
IDS = ["g1", "cms", "zgc", "ng2c"]


class TestCollectorsNeverTripTheVerifier:
    @settings(deadline=None, max_examples=25)
    @given(steps=gc_steps, which=st.integers(min_value=0, max_value=3))
    def test_random_workload_walks_clean(self, steps, which):
        heap = RegionHeap(8 << 20)
        collector = COLLECTORS[which](heap)
        verifier = HeapVerifier()
        for kb, lifetime, gen_hint in steps:
            collector.clock.advance_mutator(1000)
            now = collector.clock.now_ns
            death = now + lifetime * 1000 if lifetime is not None else float("inf")
            try:
                collector.allocate(kb << 10, 0, death, gen_hint)
            except SimOutOfMemoryError:
                break
            verifier.verify(heap, collector=collector, phase="property")
        collector.collect_full("property-final")
        verifier.verify(heap, collector=collector, phase="property-final")
        assert verifier.violations == 0

"""Replay every banked fuzz-corpus entry (tests/corpus/*.json).

Each entry is a shrunk genome the fuzzer found interesting, pinned with
its seed, op count, backends and check semantics.  Replay runs the
genome under every recorded backend with level-2 verification live and
asserts the entry's contract still holds:

* ``replay-clean`` — no invariant violation, no fingerprint divergence
  (a once-found bug must stay fixed),
* ``max-conflicts`` — clean AND the conflict rate still beats the
  banked kvstore baseline by the acceptance ratio,
* ``accuracy-cliff`` — clean AND the inference-drift cliff still
  reproduces.

Entries bank at a fixed op count (``fuzz.CORPUS_OPS``), so this test's
behaviour does not depend on ``ROLP_BENCH_SCALE``.  To re-bless the
corpus after an intentional behaviour change, see docs/fuzzing.md.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import fuzz

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = fuzz.load_corpus(CORPUS_DIR)


def entry_id(entry):
    return entry["_file"]


@pytest.mark.fuzz
def test_corpus_is_not_empty():
    """The shipped corpus must carry at least the conflict-objective
    winner (the fuzzer's acceptance artifact)."""
    assert ENTRIES, "tests/corpus has no banked entries"
    assert any(entry["check"] == "max-conflicts" for entry in ENTRIES)


@pytest.mark.fuzz
@pytest.mark.parametrize("entry", ENTRIES, ids=entry_id)
def test_corpus_entry_replays(entry):
    outcome = fuzz.replay_corpus_entry(entry)
    assert outcome["ok"], "%s: %s" % (entry["_file"], "; ".join(outcome["problems"]))


@pytest.mark.fuzz
@pytest.mark.parametrize("entry", ENTRIES, ids=entry_id)
def test_corpus_entry_is_well_formed(entry):
    assert entry["schema"] == fuzz.CORPUS_SCHEMA
    assert entry["ops"] == fuzz.CORPUS_OPS
    assert set(entry["backends"]) == {"reference", "fast", "compiled"}
    assert entry["check"] in {"replay-clean", "max-conflicts", "accuracy-cliff"}
    # the filename is the deterministic digest of (rule, genome) — a
    # hand-edited genome would silently detach from its name
    from repro.workloads.adversarial import DemographyGenome

    genome = DemographyGenome.from_dict(entry["genome"])
    assert entry["_file"] == fuzz.corpus_entry_name(entry["rule_id"], genome)
    if entry["check"] == "max-conflicts":
        assert entry["baseline_conflict_rate"] >= fuzz.BASELINE_RATE_FLOOR

"""Legacy setup shim: enables editable installs in environments without
the ``wheel`` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()

#!/usr/bin/env python
"""Collector comparison on the Cassandra write-intensive workload.

Runs the same YCSB-driven Cassandra model under the paper's five
systems (CMS, G1, ZGC, NG2C, ROLP) and prints pause-time percentiles, a
duration histogram, throughput and peak memory — a miniature of the
paper's Figures 8-10.

Run:  python examples/collector_comparison.py           (a few minutes)
      QUICK=1 python examples/collector_comparison.py   (smaller run)
"""

import os

from repro.metrics.pauses import duration_histogram, percentile_profile
from repro.metrics.report import render_histogram_series, render_percentile_series, render_table
from repro.workloads.base import run_workload
from repro.workloads.kvstore import CassandraWorkload

COLLECTORS = ("cms", "g1", "zgc", "ng2c", "rolp")


def main():
    operations = 40_000 if os.environ.get("QUICK") else 150_000
    percentiles = {}
    histograms = {}
    rows = []
    for collector in COLLECTORS:
        workload = CassandraWorkload.write_intensive()
        result = run_workload(workload, collector, operations=operations)
        # Discard the first half: warmup is examples/warmup_timeline.py's
        # subject; steady state is what SLAs see.
        cutoff = result.elapsed_ms * 1e6 * 0.5
        steady = [p.duration_ms for p in result.pauses if p.start_ns >= cutoff]
        percentiles[collector] = percentile_profile(steady)
        histograms[collector] = duration_histogram(steady)
        rows.append(
            [
                collector,
                "%d" % result.throughput_ops_s,
                "%.0f" % (result.max_memory_bytes / 1e6),
                "%d" % result.gc_cycles,
                "%d" % len(steady),
            ]
        )

    print(render_percentile_series(percentiles, title="Pause-time percentiles (ms), steady state"))
    print()
    print(render_histogram_series(histograms, title="Pauses per duration interval (ms)"))
    print()
    print(render_table(["collector", "ops/s", "peak MB", "GCs", "pauses"], rows))
    print()
    print("Expected shape (paper Figs 8-10): NG2C and ROLP flat and low;")
    print("G1 higher; CMS with a long tail; ZGC tiny pauses but the lowest")
    print("throughput and the highest memory.")


if __name__ == "__main__":
    main()

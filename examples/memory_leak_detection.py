#!/usr/bin/env python
"""Memory-leak detection from per-context lifetime statistics.

The paper (Section 2.2) notes that beyond pretenuring, ROLP's
object-lifetime statistics have other uses, e.g. "detecting memory
leaks in applications by reporting object lifetime statistics per
allocation context".  This example builds exactly that: a service with
a listener registry that is never cleaned up (the classic Java leak),
and a leak report derived from the OLD table — the leaking allocation
context shows a monotonically growing population stuck at the maximum
age, while healthy contexts show stable triangles.

Run:  python examples/memory_leak_detection.py
"""

from collections import defaultdict

from repro.core import RolpConfig, RolpProfiler
from repro.core.context import context_site
from repro.gc import G1Collector
from repro.heap import BandwidthModel, RegionHeap
from repro.runtime import JavaVM, Method


def main():
    # Observe-only deployment: the profiler watches object lifetimes but
    # no pretenuring collector consumes its advice — leaking objects keep
    # flowing through collections, so their age signal keeps accruing.
    heap = RegionHeap(64 << 20)
    collector = G1Collector(heap, BandwidthModel(), young_regions=2)
    profiler = RolpProfiler(RolpConfig(dynamic_survivor_tracking=False))
    vm = JavaVM(collector, profiler)
    thread = vm.spawn_thread("service")

    leaked = []

    def handle_body(ctx):
        ctx.alloc(1, 512, lives_ns=20_000)        # request: healthy
        ctx.work(1_500)

    def subscribe_body(ctx):
        # listener registered but never unregistered: leaks
        leaked.append(ctx.alloc(1, 256))
        ctx.work(800)

    handle = Method("handle", "app.service.Handler", handle_body, bytecode_size=120)
    subscribe = Method(
        "subscribe", "app.service.ListenerRegistry", subscribe_body, bytecode_size=120
    )

    # Sample the cumulative old-age population per context at every
    # inference pass (the table itself is cleared for freshness, so a
    # leak detector accumulates across passes).  Objects promoted at
    # the tenuring threshold stop aging, so the leak signature is a
    # population stuck at or beyond that age — healthy contexts form a
    # death triangle and drain instead.
    STUCK_AGE = 4
    stuck_population = defaultdict(int)
    original = profiler.inference.run

    def sampling_run(table, gc_number, pretenured=None):
        for context in list(table.contexts()):
            curve = table.curve(context)
            stuck_population[context] += sum(curve[STUCK_AGE:])
        return original(table, gc_number, pretenured)

    profiler.inference.run = sampling_run

    for op in range(150_000):
        vm.run(thread, handle)
        if op % 10 == 0:
            vm.run(thread, subscribe)

    site_names = {}
    for method in (handle, subscribe):
        for site in method.alloc_sites.values():
            site_names[site.site_id] = method.qualified_name

    print("=== Leak report (population stuck at old ages, by allocation context) ===")
    suspects = sorted(stuck_population.items(), key=lambda kv: kv[1], reverse=True)
    for context, stuck in suspects:
        if stuck == 0:
            continue
        name = site_names.get(context_site(context), "site %d" % context_site(context))
        print("  %-44s stuck>=%d population ~%6d" % (name, STUCK_AGE, stuck))

    top = suspects[0]
    top_name = site_names.get(context_site(top[0]), "?")
    print("\nPrime suspect: %s" % top_name)
    assert "ListenerRegistry" in top_name, "expected the leaky registry to top the report"
    print("(the registry never drops its listeners: its context's objects")
    print(" pile up at old ages instead of forming a death triangle)")


if __name__ == "__main__":
    main()

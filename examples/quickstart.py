#!/usr/bin/env python
"""Quickstart: profile a tiny application with ROLP and watch it learn.

Builds a simulated JVM running the NG2C pretenuring collector with the
ROLP profiler attached, defines a two-path factory application (the
allocation-context-conflict pattern from the paper's Figure 5), runs it,
and prints what the profiler learned — which contexts it decided to
pretenure, the conflict it had to resolve, and the pause-time effect.

Run:  python examples/quickstart.py
"""

from repro import build_vm
from repro.core.context import context_site, context_stack_state
from repro.metrics.pauses import percentile
from repro.runtime import Method


def build_application(vm, state):
    """A miniature Big Data app: one shared buffer factory reached from
    a long-lived-data path and a request path (different lifetimes)."""

    def factory_body(ctx, lives_ns, hold):
        ctx.work(50)
        obj = ctx.alloc(1, 2048, lives_ns=lives_ns)
        if hold:
            state["table"].append(obj)
        return obj

    factory = Method("allocate", "app.data.BufferFactory", factory_body,
                     bytecode_size=80)

    def ingest_body(ctx):
        # data cells: die only when the in-memory table is flushed
        ctx.call(1, factory, None, True)
        ctx.work(2_000)

    ingest = Method("ingest", "app.data.Ingest", ingest_body, bytecode_size=150)

    def serve_body(ctx):
        # response buffers: die within the request
        ctx.call(1, factory, 20_000, False)
        ctx.work(2_500)

    serve = Method("serve", "app.data.Serve", serve_body, bytecode_size=150)
    return ingest, serve


def main():
    vm, profiler = build_vm("rolp", heap_mb=48, young_regions=2)
    thread = vm.spawn_thread("app-worker")
    state = {"table": []}
    ingest, serve = build_application(vm, state)

    flush_every_bytes = 4 << 20
    table_bytes = 0
    for op in range(120_000):
        if op % 2 == 0:
            vm.run(thread, ingest)
            table_bytes += 2048
            if table_bytes >= flush_every_bytes:
                now = vm.clock.now_ns
                for obj in state["table"]:
                    obj.kill_at(now)
                state["table"].clear()
                table_bytes = 0
        else:
            vm.run(thread, serve)

    print("=== VM summary ===")
    for key, value in vm.summary().items():
        print("  %-22s %s" % (key, value))

    print("\n=== What ROLP learned ===")
    print("  conflicts found:        %d" % profiler.resolver.conflicts_seen)
    print("  conflicts resolved:     %s" % sorted(profiler.resolver.resolved_sites))
    for context, gen in profiler.advice.items():
        print(
            "  pretenure advice:       site %d (stack state 0x%04x) -> generation %d"
            % (context_site(context), context_stack_state(context), gen)
        )
    print("  OLD table memory:       %.0f MB" % (profiler.old_table_memory_bytes() / 1e6))
    print("  survivor tracking on:   %s" % profiler.survivor_tracking_enabled())

    pauses = [p.duration_ms for p in vm.collector.pauses]
    late = [
        p.duration_ms
        for p in vm.collector.pauses
        if p.start_ns > vm.clock.now_ns * 0.5
    ]
    print("\n=== Pause times (ms) ===")
    print("  whole run:   p50=%.2f p99=%.2f max=%.2f (%d pauses)"
          % (percentile(pauses, 50), percentile(pauses, 99), max(pauses), len(pauses)))
    print("  second half: p50=%.2f p99=%.2f max=%.2f  <- after the profile stabilized"
          % (percentile(late, 50), percentile(late, 99), max(late)))


if __name__ == "__main__":
    main()

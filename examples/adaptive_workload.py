#!/usr/bin/env python
"""Dynamic-workload adaptation: ROLP vs a stale offline profile.

The paper's third design goal is coping with workloads that *change*.
This example runs the phase-shifting workload (request-heavy, then
cache-heavy — objects suddenly start living longer) three ways:

* **G1** — no pretenuring at all (the floor);
* **offline profile (POLM2-style)** — captured during the
  request-heavy phase, then replayed: correct in phase 1, stale the
  moment the cache-heavy phase begins;
* **ROLP** — watches the lifetime change online (paper Section 6) and
  re-adapts in both directions.

Run:  python examples/adaptive_workload.py
"""

from repro.core import OfflineAdviceProfiler, OfflineProfile
from repro.gc import NG2CCollector
from repro.heap import BandwidthModel, RegionHeap
from repro.metrics.pauses import percentile
from repro.runtime import JavaVM
from repro.workloads.base import run_workload
from repro.workloads.shifting import PhaseShiftWorkload

OPS = 200_000
SHIFT = 100_000


def phase_stats(result):
    """(phase-1 p99, settled phase-2 p99).

    Phase 2 is measured over the last 30% of the run so ROLP's
    re-learning window (its warmup after the shift) is excluded — the
    paper's evaluation discards warmup the same way."""
    end_ns = result.elapsed_ms * 1e6
    # windows safely inside each phase (op->time mapping is not exactly
    # linear because pause time differs between the phases)
    phase1 = [p.duration_ms for p in result.pauses if p.start_ns < end_ns * 0.35]
    phase2 = [p.duration_ms for p in result.pauses if p.start_ns >= end_ns * 0.7]
    return percentile(phase1, 99.0), percentile(phase2, 99.0)


def run_offline():
    # capture from a phase-1-only (request-heavy) run: the profile
    # learns "everything dies young" and never updates again
    capture = PhaseShiftWorkload(shift_at_op=10**9, reverse=True, residual_cache_fraction=0.0)
    run_workload(capture, "rolp", operations=SHIFT)
    profile = OfflineProfile.capture(capture.vm.profiler, capture.vm)

    workload = PhaseShiftWorkload(shift_at_op=SHIFT, reverse=True, residual_cache_fraction=0.0)
    heap = RegionHeap(workload.heap_mb << 20)
    collector = NG2CCollector(
        heap,
        BandwidthModel(),
        young_regions=workload.young_regions,
        use_profiler_advice=True,
    )
    vm = JavaVM(collector, OfflineAdviceProfiler(profile))
    workload.build(vm)
    for op_index in range(OPS):
        workload.run_op(op_index)

    class Shim:
        pauses = collector.pauses
        elapsed_ms = vm.clock.now_ms

    return Shim()


def main():
    print("%-22s %12s %12s" % ("", "phase1 p99", "phase2 p99"))

    result = run_workload(PhaseShiftWorkload(shift_at_op=SHIFT, reverse=True, residual_cache_fraction=0.0), "g1", operations=OPS)
    p1, p2 = phase_stats(result)
    print("%-22s %9.2f ms %9.2f ms" % ("g1", p1, p2))

    offline = run_offline()
    p1, p2 = phase_stats(offline)
    print("%-22s %9.2f ms %9.2f ms" % ("offline (POLM2-style)", p1, p2))

    workload = PhaseShiftWorkload(shift_at_op=SHIFT, reverse=True, residual_cache_fraction=0.0)
    result = run_workload(workload, "rolp", operations=OPS)
    p1, p2 = phase_stats(result)
    print("%-22s %9.2f ms %9.2f ms" % ("rolp", p1, p2))
    profiler = workload.vm.profiler
    print(
        "\nrolp adaptation: advice after the shift: %s"
        % dict(profiler.advice.items())
    )
    print("Expected: ROLP's phase-2 tail approaches its phase-1 level while")
    print("the stale offline profile leaves phase 2 at G1-like pause times.")


if __name__ == "__main__":
    main()

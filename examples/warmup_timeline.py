#!/usr/bin/env python
"""ROLP warmup timeline (the paper's Figure 10, left plot).

Runs Cassandra WI under ROLP and renders an ASCII timeline of pause
durations: the early phase behaves like plain G1 (ROLP is still
learning), then pause times step down as lifetime estimations land and
NG2C starts pretenuring.

Run:  python examples/warmup_timeline.py
"""

from repro.workloads.base import run_workload
from repro.workloads.kvstore import CassandraWorkload

BUCKETS = 30
WIDTH = 56


def main():
    workload = CassandraWorkload.write_intensive()
    result = run_workload(workload, "rolp", operations=200_000)

    timeline = result.pause_timeline()
    end_s = timeline[-1][0]
    bucket_s = end_s / BUCKETS
    scale = max(d for _, d in timeline)

    print("ROLP warmup on Cassandra WI — avg pause per time window")
    print("(each row is %.2f simulated seconds; bar scale %.2f ms)\n" % (bucket_s, scale))
    for i in range(BUCKETS):
        window = [d for t, d in timeline if i * bucket_s <= t < (i + 1) * bucket_s]
        if not window:
            print("%6.2fs |" % (i * bucket_s))
            continue
        avg = sum(window) / len(window)
        bar = "#" * max(1, int(avg / scale * WIDTH))
        print("%6.2fs |%-*s %.2f ms (n=%d)" % (i * bucket_s, WIDTH, bar, avg, len(window)))

    profiler = workload.vm.profiler
    print("\nadvice changes per inference pass:", profiler.decision_change_log)
    print("conflicts found/resolved: %d/%d" % (
        profiler.resolver.conflicts_seen, len(profiler.resolver.resolved_sites)))
    print("survivor tracking still on:", profiler.survivor_tracking_enabled())
    print("\nExpected shape (paper Fig. 10): tall bars early (G1-like),")
    print("stepping down as lifetime estimations reach the collector.")


if __name__ == "__main__":
    main()

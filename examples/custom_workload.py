#!/usr/bin/env python
"""Defining a custom workload on the public Workload API.

Shows everything a downstream user needs to model their own
application: a method graph with packages (so ROLP's filters apply),
allocation sites with oracle lifetimes, NG2C annotations (gen_hint) for
the hand-tuned baseline, and the shared run harness for an
apples-to-apples collector comparison.

The example models a sliding-window stream aggregator: events arrive,
live exactly one window, and are folded into long-lived per-key
aggregates — a lifetime pattern neither purely young nor permanent,
which is exactly where pretenuring pays.

Run:  python examples/custom_workload.py
"""

from repro.metrics.pauses import percentile
from repro.runtime import Method
from repro.workloads.base import Workload, run_workload


class StreamAggregator(Workload):
    """Sliding-window stream processing with per-key state."""

    name = "stream-aggregator"
    profiled_packages = ("io.example.stream.state",)
    heap_mb = 48
    young_regions = 2
    default_ops = 80_000

    def __init__(self, window_events=4_000, keys=512, seed=42):
        super().__init__(seed)
        self.window_events = window_events
        self.keys = keys
        self.window = []
        self.aggregates = {}

    def build(self, vm):
        self.vm = vm
        self.make_thread("stream-worker")

        def buffer_event(ctx, key):
            # window buffer entry: lives exactly one window
            event = ctx.alloc(1, 1024, gen_hint=3)
            ctx.work(300)
            return event

        self.m_buffer = Method(
            "buffer", "io.example.stream.state.WindowBuffer", buffer_event,
            bytecode_size=90,
        )

        def fold_aggregate(ctx, key):
            if key not in self.aggregates:
                # per-key state: effectively permanent
                self.aggregates[key] = ctx.alloc(1, 512, gen_hint=10)
            ctx.work(400)

        self.m_fold = Method(
            "fold", "io.example.stream.state.Aggregates", fold_aggregate,
            bytecode_size=110,
        )

        def on_event(ctx, key):
            ctx.alloc(1, 200, lives_ns=15_000)  # the decoded event itself
            buffered = ctx.call(2, self.m_buffer, key)
            ctx.call(3, self.m_fold, key)
            ctx.work(4_000)
            return buffered

        self.m_on_event = Method(
            "onEvent", "io.example.stream.Pipeline", on_event, bytecode_size=200
        )
        self.annotated_sites = 2

    def run_op(self, op_index):
        key = self.rng.randrange(self.keys)
        buffered = self.vm.run(self.threads[0], self.m_on_event, key)
        if buffered is not None:
            self.window.append(buffered)
        if len(self.window) >= self.window_events:
            now = self.vm.clock.now_ns
            for event in self.window:
                event.kill_at(now)
            self.window.clear()


def main():
    print("%-6s %8s %8s %8s %10s" % ("", "p50 ms", "p99 ms", "max ms", "ops/s"))
    for collector in ("g1", "ng2c", "rolp"):
        workload = StreamAggregator()
        result = run_workload(workload, collector)
        steady = [
            p.duration_ms
            for p in result.pauses
            if p.start_ns >= result.elapsed_ms * 1e6 * 0.5
        ]
        print(
            "%-6s %8.2f %8.2f %8.2f %10d"
            % (
                collector,
                percentile(steady, 50),
                percentile(steady, 99),
                max(steady),
                result.throughput_ops_s,
            )
        )
    print("\nROLP should approach NG2C's hand-annotated numbers with zero")
    print("annotations — the paper's central claim, on your own workload.")


if __name__ == "__main__":
    main()

"""Profiler hook interface between the runtime/collector and ROLP.

The simulated VM and the collectors are profiler-agnostic: they emit
events through this interface.  :class:`NullProfiler` is the no-op
implementation used for the baseline collectors (G1, CMS, ZGC, and NG2C
with hand annotations); :class:`repro.core.profiler.RolpProfiler`
implements the real thing.

Keeping the interface here (in the runtime package) avoids a circular
dependency: the core profiler imports the runtime, never the reverse.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.heap.object_model import SimObject
    from repro.runtime.method import AllocSite, CallSite, Method
    from repro.runtime.thread import SimThread


class NullProfiler:
    """Does nothing; costs nothing.  Baseline VM behaviour."""

    #: extra mutator nanoseconds charged per profiled allocation
    alloc_profile_ns: float = 0.0
    #: extra mutator nanoseconds for a call-site fast-branch check
    call_fast_ns: float = 0.0
    #: extra mutator nanoseconds for a call-site slow add/sub update
    call_slow_ns: float = 0.0

    # -- telemetry -------------------------------------------------------------

    def bind_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.telemetry.Telemetry` bundle.

        The null profiler observes nothing, so there is nothing to
        wire; :class:`repro.core.profiler.RolpProfiler` overrides this.
        """

    # -- JIT-time hooks --------------------------------------------------------

    def should_instrument(self, method: "Method") -> bool:
        """Decide (package filters) whether a jitted method gets profiling
        code at all."""
        return False

    def on_method_compiled(self, method: "Method") -> None:
        """A method was JIT compiled (profiling code now installed)."""

    # -- mutator hooks ----------------------------------------------------------

    def allocation_context(self, thread: "SimThread", site: "AllocSite") -> int:
        """Context to install in a new object's header; 0 = unprofiled."""
        return 0

    def sample_allocation(self, site: "AllocSite") -> bool:
        """Whether this allocation contributes lifetime statistics.

        Sampling (Jump et al., the extension the paper names in
        Section 8.5) reduces the profiling tax: unsampled objects still
        receive pretenuring advice via their context, but carry no
        context in their header and produce no table updates.
        """
        return True

    def on_allocation(self, context: int, obj: "SimObject") -> None:
        """Object allocated with a (possibly zero) context."""

    def call_site_enabled(self, site: "CallSite") -> bool:
        """Whether this call site currently updates the thread stack state
        (the slow path of the conditional profiling branch)."""
        return False

    # -- GC hooks ------------------------------------------------------------------

    def survivor_tracking_enabled(self) -> bool:
        """Whether survivor-processing profiling code is currently on."""
        return False

    def on_gc_survivor(self, worker_id: int, obj: "SimObject") -> None:
        """A live object survived the current collection (about to age)."""

    def on_gc_survivors(self, objs, gc_threads: int) -> None:
        """Batched form of :meth:`on_gc_survivor` for a whole survivor set.

        The generic implementation delegates to the per-object hook with
        the collectors' round-robin worker assignment, so subclasses that
        override only :meth:`on_gc_survivor` stay correct; the ROLP
        profiler overrides this wholesale on its fast path.
        """
        for index, obj in enumerate(objs):
            self.on_gc_survivor(index % gc_threads, obj)

    def on_gc_end(self, gc_number: int, now_ns: int, pause_ns: float) -> None:
        """A stop-the-world cycle finished (worker tables merge here)."""

    def on_fragmentation_report(self, blame: dict) -> None:
        """Collector reports ``context -> (evacuated dead bytes,
        wholesale-reclaimed dead bytes)`` for the dynamic generations."""

    # -- pretenuring advice -----------------------------------------------------------

    def allocation_advice(self, context: int) -> int:
        """Estimated generation (0..15) for allocations with ``context``.

        0 = young (normal allocation), 1..14 = dynamic generations,
        15 = old.  The null profiler never pretenures.
        """
        return 0

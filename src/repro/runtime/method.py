"""Method, allocation-site and call-site models.

A :class:`Method` stands in for a Java method: it has a fully qualified
class (so package filters work), a bytecode size (so the inlining policy
works), and a *body* — a Python callable executed by the interpreter.
The body receives an :class:`~repro.runtime.interpreter.ExecutionContext`
and performs allocations and calls through it, which is what lets the
VM interpose JIT/profiling behaviour.

Sites (allocation sites and call sites) are identified by a bytecode
index (``bci``) chosen by the body author; the pair ``(method, bci)`` is
the stable identity, mirroring the paper's "method m, bytecode index i".
Site records are created on first execution; *profiling identifiers* are
only assigned when the method is JIT compiled (ROLP instruments hot code
only).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set


class AllocSite:
    """One ``new`` bytecode in a method.

    ``site_id`` is the 16-bit allocation-site identifier assigned at JIT
    time when the owning method is instrumented; 0 means unprofiled
    (cold code, filtered package, or id space exhausted).
    """

    __slots__ = ("method", "bci", "site_id", "alloc_count")

    def __init__(self, method: "Method", bci: int) -> None:
        self.method = method
        self.bci = bci
        self.site_id = 0
        #: total objects allocated through this site (simulator statistic)
        self.alloc_count = 0

    @property
    def profiled(self) -> bool:
        return self.site_id != 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "AllocSite(%s@%d, id=%d)" % (self.method.name, self.bci, self.site_id)


class CallSite:
    """One ``invoke*`` bytecode in a method.

    At JIT time, a non-inlined call site in an instrumented method is
    given a random non-zero 16-bit ``increment``.  When the site's
    profiling is *enabled* (by the conflict-resolution algorithm), the
    executing thread adds the increment to its stack state before the
    call and subtracts it after — the paper's add/sub slow path.  When
    disabled, only the cheap fast-branch check is paid.
    """

    __slots__ = (
        "method",
        "bci",
        "increment",
        "enabled",
        "inlined",
        "targets",
        "invocations",
    )

    def __init__(self, method: "Method", bci: int) -> None:
        self.method = method
        self.bci = bci
        self.increment = 0
        self.enabled = False
        self.inlined = False
        #: distinct callee methods observed (polymorphism detection)
        self.targets: Set["Method"] = set()
        self.invocations = 0

    @property
    def instrumented(self) -> bool:
        """Whether profiling code was installed (jitted, not inlined)."""
        return self.increment != 0 and not self.inlined

    @property
    def polymorphic(self) -> bool:
        return len(self.targets) > 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CallSite(%s@%d, inc=%d, %s)" % (
            self.method.name,
            self.bci,
            self.increment,
            "on" if self.enabled else "off",
        )


class Method:
    """A simulated JVM method.

    Parameters
    ----------
    name:
        Simple method name (e.g. ``"put"``).
    klass:
        Fully qualified class name (e.g.
        ``"org.apache.cassandra.db.Memtable"``); package filters match
        against its package prefix.
    body:
        ``body(ctx, *args, **kwargs)`` — executed by the interpreter.
    bytecode_size:
        Size proxy used by the JIT inlining policy.
    """

    __slots__ = (
        "name",
        "klass",
        "body",
        "bytecode_size",
        "invocations",
        "compiled",
        "instrumented",
        "alloc_sites",
        "call_sites",
        "osr_eligible",
    )

    def __init__(
        self,
        name: str,
        klass: str,
        body: Callable,
        bytecode_size: int = 50,
        osr_eligible: bool = False,
    ) -> None:
        self.name = name
        self.klass = klass
        self.body = body
        self.bytecode_size = bytecode_size
        self.invocations = 0
        #: JIT compiled (hot) — profiling code can only live in jitted code
        self.compiled = False
        #: profiling code actually installed (compiled + filter passed)
        self.instrumented = False
        self.alloc_sites: Dict[int, AllocSite] = {}
        self.call_sites: Dict[int, CallSite] = {}
        #: long-running loopy method: subject to on-stack replacement
        self.osr_eligible = osr_eligible

    @property
    def package(self) -> str:
        """Package part of the fully qualified class name."""
        head, _, _ = self.klass.rpartition(".")
        return head

    @property
    def qualified_name(self) -> str:
        return "%s.%s" % (self.klass, self.name)

    def alloc_site(self, bci: int) -> AllocSite:
        """Get-or-create the allocation site at ``bci``."""
        return alloc_site_of(self, bci)

    def call_site(self, bci: int) -> CallSite:
        """Get-or-create the call site at ``bci``."""
        return call_site_of(self, bci)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Method(%s%s)" % (
            self.qualified_name,
            " [jit]" if self.compiled else "",
        )


# -- shared site get-or-create fast helpers ---------------------------------
#
# The single source of truth for first-execution site creation.  Every
# execution backend (reference via Method.call_site/alloc_site, the
# inlined FastExecutionContext bodies, the table-dispatch interpreter's
# per-op site caches) resolves sites through these, so the creation
# semantics — and, critically, the site *insertion order*, which fixes
# the JIT's site-id and increment-RNG assignment order — cannot drift
# between backends.  Module-level functions keep the hot call one plain
# LOAD_GLOBAL away instead of a bound-method construction.

def alloc_site_of(method: "Method", bci: int) -> AllocSite:
    """Get-or-create ``method``'s allocation site at ``bci``."""
    sites = method.alloc_sites
    site = sites.get(bci)
    if site is None:
        site = AllocSite(method, bci)
        sites[bci] = site
    return site


def call_site_of(method: "Method", bci: int) -> CallSite:
    """Get-or-create ``method``'s call site at ``bci``."""
    sites = method.call_sites
    site = sites.get(bci)
    if site is None:
        site = CallSite(method, bci)
        sites[bci] = site
    return site

"""Table-dispatch interpreter — the compiled execution backend.

:class:`CompiledExecutionContext` executes whole call trees of
:class:`~repro.runtime.program.MethodProgram` bodies inside **one**
Python frame.  This is the simulator's analogue of the JVM tier ROLP
actually instruments: profiling code compiled straight into the method
body, with no per-bytecode dispatch overhead around it.

What the dispatch loop hoists relative to the fast backend:

* **frames** — simulated calls push/pop :class:`Frame` records on the
  thread as before (GC safepoints and allocation contexts read them),
  but no Python frame is created per simulated call; nested program
  callees become entries on an explicit dispatch stack;
* **site resolution** — the per-op ``CallSite``/``AllocSite`` is cached
  on the program after the first execution (the lazy fill preserves
  first-execution creation order, which fixes the JIT's site-id and
  increment-RNG assignment order);
* **clock charges** — ``mutator_overhead_factor`` is a class constant,
  so the per-call overhead and the Figure 6 profiling taxes are
  pre-truncated to integer ticks once per dispatch entry and added to
  the clock fields directly (``int(a) + int(a)`` per event, exactly as
  ``advance_mutator`` would compute them);
* **stack-state updates** — the add/sub is applied inline with the
  frame's ``contributed`` bookkeeping, no method call.

Bodies that are not programs (and cannot be lowered by
:func:`~repro.runtime.program.lower_callable`) fall back to
:meth:`FastExecutionContext.call` — the two tiers interleave freely in
one call stack, like mixed interpreter/compiled frames in HotSpot.

Every observable effect — clock ticks, RNG draws, counters, header
bits, stack-state transitions, exception unwinds, event streams — is
byte-identical to the reference backend; the differential fingerprint
kernels (``rolp-bench perf``) and tests/test_perf_equivalence.py pin
this.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.heap.header import MASK_16
from repro.heap.object_model import IMMORTAL
from repro.runtime.exceptions import SimException
from repro.runtime.interpreter import (
    DEFAULT_CALL_OVERHEAD_NS,
    FastExecutionContext,
)
from repro.runtime.method import Method, alloc_site_of, call_site_of
from repro.runtime.program import (
    MethodProgram,
    OP_ALLOC,
    OP_ALLOC_T,
    OP_BIAS_LOCK,
    OP_CALL,
    OP_LOOP,
    OP_REPEAT,
    OP_THROW,
    OP_WORK,
)
from repro.runtime.thread import Frame

#: internal linked-form opcodes (never appear in authored programs)
OP_END_REPEAT = 100
OP_RETURN = 101

_MISSING = object()


def _link(program: MethodProgram) -> Tuple[tuple, tuple, tuple, tuple]:
    """Jump-thread a program for flat dispatch.

    ``OP_REPEAT``'s counted block is closed with an explicit
    ``OP_END_REPEAT`` (back-edge to the loop header) and the whole
    program is terminated by ``OP_RETURN``, so the dispatch loop never
    needs a bounds check.  ``OP_ALLOC_T`` operands are expanded to
    ``(bci_mod, sizes, len(sizes), lives, len(lives))`` to keep the
    per-iteration modulo arithmetic free of ``len`` calls.
    """
    ops: List[int] = []
    a: List[Any] = []
    b: List[Any] = []
    c: List[int] = []

    def walk(pc: int, end: int) -> None:
        while pc < end:
            op = program.ops[pc]
            if op == OP_REPEAT:
                body_end = pc + 1 + program.b[pc]
                header = len(ops)
                ops.append(OP_REPEAT)
                a.append(program.a[pc])
                b.append(None)  # patched: linked pc after the block
                c.append(program.c[pc])
                walk(pc + 1, body_end)
                ops.append(OP_END_REPEAT)
                a.append(header)
                b.append(None)
                c.append(-1)
                b[header] = len(ops)
                pc = body_end
            elif op == OP_ALLOC_T:
                bci_mod, sizes, lives = program.a[pc]
                ops.append(OP_ALLOC_T)
                a.append(
                    (bci_mod, sizes, len(sizes), lives, len(lives) if lives else 0)
                )
                b.append(None)
                c.append(program.c[pc])
                pc += 1
            else:
                ops.append(op)
                a.append(program.a[pc])
                b.append(program.b[pc])
                c.append(program.c[pc])
                pc += 1

    walk(0, len(program.ops))
    ops.append(OP_RETURN)
    a.append(None)
    b.append(None)
    c.append(-1)
    return tuple(ops), tuple(a), tuple(b), tuple(c)


def _program_of(vm, method: Method) -> Optional[MethodProgram]:
    """The dispatchable program for ``method``, or None.

    ``MethodProgram`` bodies are used directly; Python callables go
    through :func:`~repro.runtime.program.lower_callable` once, with the
    result (including failures) memoized on the VM.  A program already
    owned by a *different* method cannot share its site cache and is
    rejected (the generic replay path handles it).
    """
    body = method.body
    if type(body) is MethodProgram:
        program = body
    else:
        cache = vm.method_programs
        program = cache.get(method, _MISSING)
        if program is _MISSING:
            from repro.runtime.program import lower_callable

            program = lower_callable(body, diagnostics=vm.lowering_diagnostics)
            cache[method] = program
            if program is None and vm._telemetry_on:
                events = vm.lowering_diagnostics.events
                reason = events[-1]["reason"] if events else "unknown"
                vm._m_lowering_failures.inc(1, reason=reason)
        if program is None:
            return None
    owner = program.owner
    if owner is None:
        program.owner = method
    elif owner is not method:
        return None
    if program.linked is None:
        program.linked = _link(program)
        program.sites = [None] * len(program.linked[0])
    return program


class CompiledExecutionContext(FastExecutionContext):
    """Flat-dispatch twin of :class:`FastExecutionContext`.

    ``work``/``alloc``/``loop``/``throw_exception``/``bias_lock`` keep
    the inherited fast implementations (they are only reached from
    Python-callable bodies); ``call`` routes program bodies into the
    dispatch loop and everything else to the inherited path.
    """

    __slots__ = ()

    def call(self, bci: int, method: Method, *args: Any, **kwargs: Any) -> Any:
        if kwargs:
            return FastExecutionContext.call(self, bci, method, *args, **kwargs)
        program = _program_of(self.vm, method)
        if program is None or (args and type(method.body) is not MethodProgram):
            return FastExecutionContext.call(self, bci, method, *args, **kwargs)
        return self._dispatch(bci, method, program, args)

    def _dispatch(
        self, bci: int, method: Method, program: MethodProgram, args: tuple
    ) -> None:
        vm = self.vm
        thread = self.thread
        frames = thread.frames
        clock = vm.clock
        jit = vm.jit
        profiler = vm.profiler

        # -- hoisted constants (all invariant for the VM's lifetime) --------
        # mutator_overhead_factor is a collector *class* attribute, so the
        # integer clock ticks for the fixed-size charges can be truncated
        # once; each charge still adds the identical int(ns * factor) that
        # SimClock.advance_mutator would.
        factor = vm.collector.mutator_overhead_factor
        call_tick = int(DEFAULT_CALL_OVERHEAD_NS * factor)
        mode = vm.flags.call_profiling_mode
        mode_slow = mode == "slow"
        mode_real = mode == "real"
        mode_fast = mode == "fast"
        slow_tax = 2 * profiler.call_slow_ns
        fast_tax = 2 * profiler.call_fast_ns
        slow_tick = int(slow_tax * factor)
        fast_tick = int(fast_tax * factor)
        # int additions are associative, so the profiling tick and the
        # fixed call tick can land on the clock as one combined add —
        # *provided* nothing observes the clock in between (see the
        # OP_CALL branch: a pending JIT compile can, via tracer
        # timestamps, so the cold path keeps the split adds)
        slow_call_tick = slow_tick + call_tick
        fast_call_tick = fast_tick + call_tick
        site_enabled = profiler.call_site_enabled
        compile_threshold = jit.compile_threshold
        fix_unwind = vm.flags.fix_exception_unwind
        telemetry_on = vm._telemetry_on
        m_tax = vm._m_profiling_tax
        vm_allocate = vm.allocate

        # -- the root call itself (caller is a Python frame, maybe None) ----
        increment = 0
        if frames:
            caller = frames[-1].method
            site = call_site_of(caller, bci)
            site.targets.add(method)
            site.invocations += 1
            if site.increment == 0:
                if caller.compiled and not site.inlined:
                    jit.register_late_call_site(site)
            if site.increment != 0 and not site.inlined:
                increment = vm.call_profiling_increment(site)
        else:
            site = None
        method.invocations += 1
        if not method.compiled and method.invocations >= compile_threshold:
            jit.compile(method, profiler)
        clock._now_ns += call_tick
        clock.total_mutator_ns += call_tick
        frame = Frame(method, site)
        if increment:
            thread.stack_state = (thread.stack_state + increment) & MASK_16
            frame.contributed = increment
        frames.append(frame)

        # -- dispatch state -------------------------------------------------
        stack: List[tuple] = []  # suspended caller frames
        ops, op_a, op_b, op_c = program.linked
        sites = program.sites
        cur_method = method
        regs: List[Any] = [0] * program.nregs
        if args:
            regs[: len(args)] = args
        loops: List[list] = []
        pc = 0
        exc: Optional[SimException] = None

        while True:
            op = ops[pc]

            if op == OP_CALL:
                entry = sites[pc]
                if entry is None:
                    # Create the call site *before* resolving the callee
                    # program: lowering/linking has no simulation effects,
                    # so site-creation order matches the generic backends.
                    # targets.add is idempotent per (pc, callee) — one add
                    # at entry creation (== first execution) leaves the
                    # set byte-identical to the per-call adds of the
                    # generic backends at every JIT observation point.
                    callee = op_b[pc]
                    site = call_site_of(cur_method, op_a[pc])
                    site.targets.add(callee)
                    callee_program = _program_of(vm, callee)
                    leaf = callee_program is not None and not callee_program.ops
                    # [site, program, leaf, callee, tag, cached increment];
                    # tag 0 = generic, 1/2 = steady-state slow-mode site
                    # (leaf / non-leaf) — see the upgrade below
                    entry = [site, callee_program, leaf, callee, 0, 0]
                    sites[pc] = entry
                tag = entry[4]
                if tag == 1:
                    # Steady state, leaf callee: the site is instrumented
                    # (increment fixed — nonzero increments are never
                    # reassigned), not inlined (inlining never flips on an
                    # instrumented site), mode is "slow" (unconditional
                    # slow-path charge, no dynamic enablement check) and
                    # the callee is compiled (no compile can fire).  The
                    # per-call effects reduce to four counters and the
                    # combined clock tick; the stack-state add/sub of the
                    # empty callee cancels (see the leaf note below).
                    entry[0].invocations += 1
                    vm.profiling_tax_ns += slow_tax
                    if telemetry_on:
                        m_tax.inc(slow_tax)
                    clock._now_ns += slow_call_tick
                    clock.total_mutator_ns += slow_call_tick
                    entry[3].invocations += 1
                    pc += 1
                    continue
                if tag == 2:
                    # Steady state, program callee: same fixed charges,
                    # then the frame push and dispatch-stack swap.
                    site = entry[0]
                    callee = entry[3]
                    site.invocations += 1
                    vm.profiling_tax_ns += slow_tax
                    if telemetry_on:
                        m_tax.inc(slow_tax)
                    clock._now_ns += slow_call_tick
                    clock.total_mutator_ns += slow_call_tick
                    callee.invocations += 1
                    inc = entry[5]
                    thread.stack_state = (thread.stack_state + inc) & MASK_16
                    frame = Frame(callee, site)
                    frame.contributed = inc
                    frames.append(frame)
                    stack.append(
                        (ops, op_a, op_b, op_c, sites, cur_method, regs, loops, pc + 1)
                    )
                    callee_program = entry[1]
                    ops, op_a, op_b, op_c = callee_program.linked
                    sites = callee_program.sites
                    cur_method = callee
                    regs = [0] * callee_program.nregs
                    loops = []
                    pc = 0
                    continue
                site = entry[0]
                callee_program = entry[1]
                leaf = entry[2]
                callee = entry[3]
                if callee_program is None:
                    try:
                        FastExecutionContext.call(self, op_a[pc], callee)
                    except SimException as raised:
                        exc = raised
                    else:
                        pc += 1
                        continue
                else:
                    site.invocations += 1
                    inc = site.increment
                    if inc == 0 and cur_method.compiled and not site.inlined:
                        jit.register_late_call_site(site)
                        inc = site.increment
                    # inlined vm.call_profiling_increment for an
                    # instrumented site
                    increment = 0
                    tick = call_tick
                    if inc != 0 and not site.inlined:
                        if mode_slow or (mode_real and site_enabled(site)):
                            increment = inc
                            vm.profiling_tax_ns += slow_tax
                            if telemetry_on:
                                m_tax.inc(slow_tax)
                            tick = slow_call_tick
                        elif mode_fast or mode_real:
                            vm.profiling_tax_ns += fast_tax
                            if telemetry_on:
                                m_tax.inc(fast_tax)
                            tick = fast_call_tick
                    callee.invocations += 1
                    if callee.compiled:
                        # steady state: no compile can fire, so nothing
                        # observes the clock between the profiling tick
                        # and the call tick — one combined add
                        clock._now_ns += tick
                        clock.total_mutator_ns += tick
                        if increment and mode_slow:
                            # every input to this site's per-call effects
                            # is now frozen (increment assigned, inlining
                            # settled, callee compiled, unconditional
                            # slow-path charge) — upgrade to the tagged
                            # fast path above
                            entry[4] = 1 if leaf else 2
                            entry[5] = increment
                    else:
                        # cold path: a tracer timestamp inside a JIT
                        # compile must see the profiling tick but not
                        # the call tick — keep the reference's split
                        prof_tick = tick - call_tick
                        clock._now_ns += prof_tick
                        clock.total_mutator_ns += prof_tick
                        if callee.invocations >= compile_threshold:
                            jit.compile(callee, profiler)
                        clock._now_ns += call_tick
                        clock.total_mutator_ns += call_tick
                    if leaf:
                        # Empty body: push + immediate pop is net-zero on
                        # every observable (the stack-state add/sub cancels
                        # under the 16-bit wrap, no op can observe the
                        # frame in between), so skip the frame round trip.
                        pc += 1
                        continue
                    frame = Frame(callee, site)
                    if increment:
                        thread.stack_state = (thread.stack_state + increment) & MASK_16
                        frame.contributed = increment
                    frames.append(frame)
                    stack.append((ops, op_a, op_b, op_c, sites, cur_method, regs, loops, pc + 1))
                    ops, op_a, op_b, op_c = callee_program.linked
                    sites = callee_program.sites
                    cur_method = callee
                    regs = [0] * callee_program.nregs
                    loops = []
                    pc = 0
                    continue

            elif op == OP_RETURN:
                popped = frames.pop()
                if popped.contributed:
                    thread.stack_state = (
                        thread.stack_state - popped.contributed
                    ) & MASK_16
                if not stack:
                    return None
                ops, op_a, op_b, op_c, sites, cur_method, regs, loops, pc = stack.pop()
                continue

            elif op == OP_ALLOC_T:
                # (bci_mod, sizes, nsizes, lives, nlives), index in regs[c]
                table = op_a[pc]
                j = regs[op_c[pc]]
                cache = sites[pc]
                if cache is None:
                    cache = [None] * table[0]
                    sites[pc] = cache
                abci = j % table[0]
                site = cache[abci]
                if site is None:
                    site = alloc_site_of(cur_method, abci)
                    cache[abci] = site
                site.alloc_count += 1
                if cur_method.compiled and site.site_id == 0:
                    jit.register_late_alloc_site(site, profiler)
                lives_t = table[3]
                death = (
                    IMMORTAL
                    if lives_t is None
                    else clock._now_ns + lives_t[j % table[4]]
                )
                vm_allocate(thread, site, table[1][j % table[2]], death, 0)
                pc += 1
                continue

            elif op == OP_END_REPEAT:
                rec = loops[-1]
                if rec[0] > 0:
                    rec[0] -= 1
                    rec[4] += 1
                    regs[rec[2]] = rec[3] + rec[4]
                    pc = rec[1]
                else:
                    loops.pop()
                    regs[rec[2]] = rec[3]
                    pc += 1
                continue

            elif op == OP_WORK:
                tick = int(op_a[pc] * factor)
                clock._now_ns += tick
                clock.total_mutator_ns += tick
                pc += 1
                continue

            elif op == OP_ALLOC:
                site = sites[pc]
                if site is None:
                    site = alloc_site_of(cur_method, op_a[pc])
                    sites[pc] = site
                site.alloc_count += 1
                if cur_method.compiled and site.site_id == 0:
                    jit.register_late_alloc_site(site, profiler)
                size, lives = op_b[pc]
                death = IMMORTAL if lives is None else clock._now_ns + lives
                obj = vm_allocate(thread, site, size, death, 0)
                if op_c[pc] >= 0:
                    regs[op_c[pc]] = obj
                pc += 1
                continue

            elif op == OP_REPEAT:
                count = regs[op_a[pc]]
                if count > 0:
                    index_reg = op_c[pc]
                    # [remaining, body_start, index_reg, base, iteration]
                    loops.append([count - 1, pc + 1, index_reg, regs[index_reg], 0])
                    pc += 1
                else:
                    pc = op_b[pc]
                continue

            elif op == OP_LOOP:
                tick = int(op_a[pc] * op_b[pc] * factor)
                clock._now_ns += tick
                clock.total_mutator_ns += tick
                if cur_method.osr_eligible and not cur_method.compiled:
                    if jit.maybe_osr(cur_method, profiler):
                        thread.stack_state = (thread.stack_state + 0x5A5A) & MASK_16
                pc += 1
                continue

            elif op == OP_THROW:
                vm.exceptions_thrown += 1
                exc = SimException(op_a[pc], op_b[pc])

            elif op == OP_BIAS_LOCK:
                vm.biased_locks.lock(thread, regs[op_c[pc]])
                pc += 1
                continue

            else:  # pragma: no cover - linker emits only the ops above
                raise ValueError("bad opcode %r at linked pc %d" % (op, pc))

            # Only the two exception producers reach here (OP_THROW and
            # the callable-fallback except clause); every other branch
            # continues straight to the next op.  Unwind: pop the frame
            # the exception is propagating out of, then either resume
            # the suspended caller or keep popping — each level exactly
            # mirrors the except clause in FastExecutionContext.call.
            while True:
                thread.pop_frame(repair=fix_unwind)
                exc.unwound += 1
                handled = exc.should_stop_at(exc.unwound)
                if not stack:
                    if handled:
                        return None
                    raise exc
                ops, op_a, op_b, op_c, sites, cur_method, regs, loops, pc = (
                    stack.pop()
                )
                if handled:
                    break
            exc = None

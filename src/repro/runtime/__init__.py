"""Simulated managed runtime (the JVM substrate).

Public surface: the VM facade and flags, the method/thread models, the
JIT compiler model, the simulated clock, and the profiler hook base
class.
"""

from repro.runtime.clock import NS_PER_MS, NS_PER_S, NS_PER_US, SimClock
from repro.runtime.exceptions import SimException
from repro.runtime.hooks import NullProfiler
from repro.runtime.interpreter import ExecutionContext
from repro.runtime.jit import JitCompiler
from repro.runtime.method import AllocSite, CallSite, Method
from repro.runtime.thread import Frame, SimThread
from repro.runtime.vm import CALL_PROFILING_MODES, JavaVM, VMFlags

__all__ = [
    "AllocSite",
    "CALL_PROFILING_MODES",
    "CallSite",
    "ExecutionContext",
    "Frame",
    "JavaVM",
    "JitCompiler",
    "Method",
    "NS_PER_MS",
    "NS_PER_S",
    "NS_PER_US",
    "NullProfiler",
    "SimClock",
    "SimException",
    "SimThread",
    "VMFlags",
]

"""Method interpreter / execution engine.

Workload bodies are plain Python callables, but every action that the
JVM would interpose on goes through the :class:`ExecutionContext`:

* ``ctx.call(bci, method, ...)`` — method invocation.  Applies the JIT
  invocation counter, the inlining decision, and — when the caller is
  jitted, the site instrumented, and profiling enabled — the add/sub
  update of the thread stack state (with the fast-branch/slow-path cost
  model that reproduces Figure 6's four profiling levels).
* ``ctx.alloc(bci, size, ...)`` — object allocation.  Resolves the
  allocation context (site id + stack state), charges the allocation
  profiling tax, and hands the object to the collector.
* ``ctx.work(ns)`` — pure mutator compute.
* ``ctx.throw_exception(...)`` — raises a :class:`SimException` whose
  unwind either rebalances the stack state (ROLP's rethrow hook) or
  corrupts it, depending on the VM flag.
* ``ctx.loop(iterations)`` — marks a long-running loop, giving the JIT
  a chance to perform on-stack replacement.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.heap.header import MASK_16
from repro.heap.object_model import IMMORTAL, SimObject
from repro.runtime.exceptions import SimException
from repro.runtime.method import CallSite, Method, alloc_site_of, call_site_of
from repro.runtime.thread import Frame, SimThread

#: default simulated cost of executing one method body's base work
DEFAULT_CALL_OVERHEAD_NS = 20.0


class ExecutionContext:
    """The per-thread view of the VM handed to method bodies."""

    __slots__ = ("vm", "thread")

    def __init__(self, vm: "repro.runtime.vm.JavaVM", thread: SimThread) -> None:  # noqa: F821
        self.vm = vm
        self.thread = thread

    # -- time ------------------------------------------------------------------

    @property
    def now_ns(self) -> int:
        return self.vm.clock.now_ns

    def work(self, ns: float) -> None:
        """Pure computation: advances the mutator clock."""
        self.vm.charge_mutator(ns)

    # -- invocation ---------------------------------------------------------------

    def call(self, bci: int, method: Method, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``method`` from the current method's call site ``bci``."""
        vm = self.vm
        thread = self.thread
        caller = thread.current_method

        site: Optional[CallSite] = None
        increment = 0
        if caller is not None:
            site = caller.call_site(bci)
            site.targets.add(method)
            site.invocations += 1
            if caller.compiled and site.increment == 0 and not site.inlined:
                vm.jit.register_late_call_site(site)
            increment = vm.call_profiling_increment(site)

        vm.jit.record_invocation(method, vm.profiler)
        vm.charge_mutator(DEFAULT_CALL_OVERHEAD_NS)

        thread.push_frame(method, site, increment)
        try:
            result = method.body(self, *args, **kwargs)
        except SimException as exc:
            self._unwind_frame(exc)
            exc.unwound += 1
            if exc.should_stop_at(exc.unwound):
                return None  # handled here; execution resumes in caller
            raise
        else:
            thread.pop_frame(repair=True)
            return result

    def _unwind_frame(self, exc: SimException) -> None:
        """Pop the top frame during exception propagation.

        With the VM flag ``fix_exception_unwind`` set (ROLP's hook on the
        JVM rethrow path), the pop rebalances the stack state; without
        it, the contribution is leaked — the corruption the paper's hook
        exists to prevent.
        """
        self.thread.pop_frame(repair=self.vm.flags.fix_exception_unwind)

    def throw_exception(self, message: str = "", handled_depth: int = 1) -> None:
        """Throw a simulated exception handled ``handled_depth`` frames up."""
        self.vm.exceptions_thrown += 1
        raise SimException(message, handled_depth)

    # -- allocation -----------------------------------------------------------------

    def alloc(
        self,
        bci: int,
        size: int,
        lives_ns: Optional[float] = None,
        gen_hint: int = 0,
    ) -> SimObject:
        """Allocate an object at the current method's ``new`` site ``bci``.

        ``lives_ns`` is the oracle lifetime (None = unknown for now; the
        workload will call :meth:`SimObject.kill_at` later).  ``gen_hint``
        is the NG2C hand-annotation (ignored unless the collector runs in
        annotation mode).
        """
        thread = self.thread
        method = thread.current_method
        if method is None:
            raise RuntimeError("allocation outside any method frame")
        site = method.alloc_site(bci)
        site.alloc_count += 1
        if method.compiled and not site.profiled:
            self.vm.jit.register_late_alloc_site(site, self.vm.profiler)

        death = IMMORTAL if lives_ns is None else self.now_ns + lives_ns
        return self.vm.allocate(thread, site, size, death, gen_hint)

    # -- misc runtime events ----------------------------------------------------------

    def bias_lock(self, obj: SimObject) -> None:
        """Bias-lock ``obj`` toward this thread (clobbers its context)."""
        self.vm.biased_locks.lock(self.thread, obj)

    def loop(self, iterations: int, ns_per_iteration: float = 10.0) -> None:
        """A long-running loop; may trigger on-stack replacement."""
        self.vm.charge_mutator(iterations * ns_per_iteration)
        method = self.thread.current_method
        if method is not None and self.vm.jit.maybe_osr(method, self.vm.profiler):
            # The interpreted frame was replaced by a compiled frame whose
            # entry was never profiled; model the transient corruption the
            # safepoint verifier (§7.2.3) exists to repair.
            self.thread.stack_state = (self.thread.stack_state + 0x5A5A) & 0xFFFF


class FastExecutionContext(ExecutionContext):
    """Hot-path twin of :class:`ExecutionContext`.

    Selected by :class:`repro.runtime.vm.JavaVM` when fast paths are
    enabled (see :mod:`repro.fastpath`).  The ``call``/``alloc``/``work``
    bodies inline the site get-or-create, frame push/pop, invocation
    counting and clock charges of the reference implementation; every
    observable effect (clock advances, RNG draws, counters, stack-state
    transitions, exception semantics) is event-for-event identical — the
    differential perf kernels and the equivalence suite pin this.
    """

    __slots__ = ()

    def work(self, ns: float) -> None:
        vm = self.vm
        vm.clock.advance_mutator(ns * vm.collector.mutator_overhead_factor)

    def call(self, bci: int, method: Method, *args: Any, **kwargs: Any) -> Any:
        vm = self.vm
        thread = self.thread
        frames = thread.frames

        site: Optional[CallSite] = None
        increment = 0
        if frames:
            caller = frames[-1].method
            site = call_site_of(caller, bci)
            site.targets.add(method)
            site.invocations += 1
            if site.increment == 0:
                if caller.compiled and not site.inlined:
                    vm.jit.register_late_call_site(site)
            # Uninstrumented sites return 0 from call_profiling_increment
            # without charging anything; skip the call entirely.
            if site.increment != 0 and not site.inlined:
                increment = vm.call_profiling_increment(site)

        jit = vm.jit
        method.invocations += 1
        if not method.compiled and method.invocations >= jit.compile_threshold:
            jit.compile(method, vm.profiler)
        vm.clock.advance_mutator(
            DEFAULT_CALL_OVERHEAD_NS * vm.collector.mutator_overhead_factor
        )

        frame = Frame(method, site)
        if increment:
            thread.stack_state = (thread.stack_state + increment) & MASK_16
            frame.contributed = increment
        frames.append(frame)
        try:
            result = method.body(self, *args, **kwargs)
        except SimException as exc:
            thread.pop_frame(repair=vm.flags.fix_exception_unwind)
            exc.unwound += 1
            if exc.should_stop_at(exc.unwound):
                return None  # handled here; execution resumes in caller
            raise
        else:
            popped = frames.pop()
            if popped.contributed:
                thread.stack_state = (thread.stack_state - popped.contributed) & MASK_16
            return result

    def alloc(
        self,
        bci: int,
        size: int,
        lives_ns: Optional[float] = None,
        gen_hint: int = 0,
    ) -> SimObject:
        thread = self.thread
        frames = thread.frames
        if not frames:
            raise RuntimeError("allocation outside any method frame")
        method = frames[-1].method
        site = alloc_site_of(method, bci)
        site.alloc_count += 1
        vm = self.vm
        if method.compiled and site.site_id == 0:
            vm.jit.register_late_alloc_site(site, vm.profiler)

        death = IMMORTAL if lives_ns is None else vm.clock.now_ns + lives_ns
        return vm.allocate(thread, site, size, death, gen_hint)

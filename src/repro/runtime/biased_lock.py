"""Biased locking model.

HotSpot's biased locking stores the owning thread's pointer in the upper
header bits — the same bits ROLP uses for the allocation context.  ROLP
accepts the resulting profiling loss (Section 3.2.2): a bias-locked
object's context is clobbered and the object is discarded for profiling.

The simulator exercises this path so the loss-of-information behaviour
(and the rare stale-context-matches-table accident) is testable.  The
manager also keeps an authoritative record of every live bias — object,
thread pointer, owning thread — which the heap verifier cross-checks
against header bits and the lock-discipline checker uses to replay
acquisition/revocation ordering.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.analysis import NULL_VERIFIER
from repro.heap.object_model import SimObject
from repro.runtime.thread import SimThread
from repro.telemetry import NULL_TELEMETRY


class BiasedLockManager:
    """Tracks bias-lock operations and their profiling side effects."""

    def __init__(self) -> None:
        self.locks_taken = 0
        self.revocations = 0
        self.contexts_clobbered = 0
        #: id(obj) -> (obj, thread pointer written to the header, owner
        #: thread id) for every currently biased object.  Keyed by id()
        #: because SimObject is unhashable-by-value and identity is the
        #: right equivalence for lock words.
        self._records: Dict[int, Tuple[SimObject, int, int]] = {}
        self._verifier = NULL_VERIFIER
        self.bind_telemetry(NULL_TELEMETRY)

    def bind_telemetry(self, telemetry) -> None:
        """Attach tracing + metrics (the VM calls this at construction)."""
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_locks = metrics.counter(
            "vm_bias_locks_total", "Biased locks taken"
        )
        self._m_revocations = metrics.counter(
            "vm_bias_revocations_total", "Biased-lock revocations"
        )
        self._m_clobbered = metrics.counter(
            "vm_bias_contexts_clobbered_total",
            "Allocation contexts overwritten by a bias lock",
        )

    def bind_verifier(self, verifier) -> None:
        """Attach the invariant verifier (the VM calls this after
        construction; the default null verifier checks nothing)."""
        self._verifier = verifier

    @staticmethod
    def thread_pointer(thread: SimThread) -> int:
        """The plausible thread-pointer value written to lock words:
        aligned, non-zero, derived from the thread id."""
        return (0x7F00_0000 | (thread.thread_id << 8)) & 0xFFFF_FFFF

    def lock(self, thread: SimThread, obj: SimObject) -> None:
        """Bias-lock ``obj`` toward ``thread``.

        The thread "pointer" written to the header is derived from the
        thread id; it overwrites the allocation context.
        """
        if self._verifier.enabled:
            # Pre-state check: ordering violations must fire before the
            # header mutation destroys the evidence.
            self._verifier.on_bias_lock(thread, obj)
        self._m_locks.inc()
        if obj.context:
            self.contexts_clobbered += 1
            self._m_clobbered.inc()
        pointer = self.thread_pointer(thread)
        obj.bias_lock(pointer)
        self._records[id(obj)] = (obj, pointer, thread.thread_id)
        thread.biased_objects += 1
        self.locks_taken += 1

    def revoke(self, obj: SimObject, thread: Optional[SimThread] = None) -> None:
        """Revoke the bias (e.g. on contention).

        ``thread`` is the revoking thread when one initiates it; the VM
        itself revokes (at a safepoint) when omitted.  The stale thread
        pointer remains in the context bits — from the profiler's view
        the context is corrupt and will (almost always) miss the OLD
        table and be discarded.
        """
        from repro.heap import header as hdr

        if self._verifier.enabled:
            self._verifier.on_bias_revoke(obj, thread)
        self._records.pop(id(obj), None)
        obj.header = hdr.revoke_bias(obj.header)
        self.revocations += 1
        self._m_revocations.inc()
        if self._tracer.enabled:
            self._tracer.instant("vm/bias-revocation", category="vm")

    # -- verifier views -------------------------------------------------------

    def bias_record(self, obj: SimObject) -> Optional[Tuple[int, int]]:
        """``(thread_pointer, thread_id)`` for a currently biased object,
        or None when the manager granted no bias."""
        record = self._records.get(id(obj))
        if record is None or record[0] is not obj:
            return None
        return record[1], record[2]

    def iter_bias_records(self) -> Iterator[Tuple[SimObject, int, int]]:
        """All live (object, thread_pointer, thread_id) bias records."""
        return iter(list(self._records.values()))

    @property
    def biased_count(self) -> int:
        return len(self._records)

"""Biased locking model.

HotSpot's biased locking stores the owning thread's pointer in the upper
header bits — the same bits ROLP uses for the allocation context.  ROLP
accepts the resulting profiling loss (Section 3.2.2): a bias-locked
object's context is clobbered and the object is discarded for profiling.

The simulator exercises this path so the loss-of-information behaviour
(and the rare stale-context-matches-table accident) is testable.
"""

from __future__ import annotations

from repro.heap.object_model import SimObject
from repro.runtime.thread import SimThread
from repro.telemetry import NULL_TELEMETRY


class BiasedLockManager:
    """Tracks bias-lock operations and their profiling side effects."""

    def __init__(self) -> None:
        self.locks_taken = 0
        self.revocations = 0
        self.contexts_clobbered = 0
        self.bind_telemetry(NULL_TELEMETRY)

    def bind_telemetry(self, telemetry) -> None:
        """Attach tracing + metrics (the VM calls this at construction)."""
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_locks = metrics.counter(
            "vm_bias_locks_total", "Biased locks taken"
        )
        self._m_revocations = metrics.counter(
            "vm_bias_revocations_total", "Biased-lock revocations"
        )
        self._m_clobbered = metrics.counter(
            "vm_bias_contexts_clobbered_total",
            "Allocation contexts overwritten by a bias lock",
        )

    def lock(self, thread: SimThread, obj: SimObject) -> None:
        """Bias-lock ``obj`` toward ``thread``.

        The thread "pointer" written to the header is derived from the
        thread id; it overwrites the allocation context.
        """
        self._m_locks.inc()
        if obj.context:
            self.contexts_clobbered += 1
            self._m_clobbered.inc()
        # A plausible thread-pointer value: aligned, non-zero.
        thread_pointer = (0x7F00_0000 | (thread.thread_id << 8)) & 0xFFFF_FFFF
        obj.bias_lock(thread_pointer)
        thread.biased_objects += 1
        self.locks_taken += 1

    def revoke(self, obj: SimObject) -> None:
        """Revoke the bias (e.g. on contention).

        The stale thread pointer remains in the context bits — from the
        profiler's view the context is corrupt and will (almost always)
        miss the OLD table and be discarded.
        """
        from repro.heap import header as hdr

        obj.header = hdr.revoke_bias(obj.header)
        self.revocations += 1
        self._m_revocations.inc()
        if self._tracer.enabled:
            self._tracer.instant("vm/bias-revocation", category="vm")

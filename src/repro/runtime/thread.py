"""Simulated application threads.

Each thread carries the 16-bit *thread stack state* register the paper
keeps in thread-local storage: before an enabled call site transfers
control, the site's unique increment is added to the register; after the
call returns, it is subtracted.  Two different call paths to the same
allocation site therefore (very likely) produce two different register
values, which is what disambiguates allocation contexts.

The thread also keeps an explicit frame stack mirroring the Python call
stack so that the VM can *recompute* the expected stack state at a GC
safepoint (the paper's defence against on-stack-replacement corrupting
the incrementally maintained value, Section 7.2.3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.heap.header import MASK_16
from repro.runtime.method import CallSite, Method


class Frame:
    """One activation record."""

    __slots__ = ("method", "via_site", "contributed")

    def __init__(self, method: Method, via_site: Optional[CallSite]) -> None:
        self.method = method
        #: the caller's call site that entered this frame (None for roots)
        self.via_site = via_site
        #: increment actually added to the stack state on entry (0 when
        #: the site was not enabled at entry time)
        self.contributed = 0


class SimThread:
    """A simulated mutator thread."""

    def __init__(self, thread_id: int, name: str = "") -> None:
        self.thread_id = thread_id
        self.name = name or ("worker-%d" % thread_id)
        #: the paper's thread-local 16-bit stack state register
        self.stack_state = 0
        self.frames: List[Frame] = []
        #: objects this thread has bias-locked (for lock bookkeeping)
        self.biased_objects = 0
        #: statistic: stack-state corruptions repaired at safepoints
        self.state_repairs = 0

    # -- stack-state maintenance -----------------------------------------------

    def push_frame(self, method: Method, via_site: Optional[CallSite], increment: int) -> Frame:
        """Enter a method; apply the call-site increment (16-bit wrap)."""
        frame = Frame(method, via_site)
        if increment:
            self.stack_state = (self.stack_state + increment) & MASK_16
            frame.contributed = increment
        self.frames.append(frame)
        return frame

    def pop_frame(self, repair: bool = True) -> Frame:
        """Leave the top method; undo its contribution.

        ``repair=False`` models the unhandled-exception unwind *without*
        ROLP's rethrow hook: the subtraction is skipped and the register
        is left corrupted (until the next safepoint verification).
        """
        if not self.frames:
            raise RuntimeError("thread %s: pop on empty stack" % self.name)
        frame = self.frames.pop()
        if repair and frame.contributed:
            self.stack_state = (self.stack_state - frame.contributed) & MASK_16
        return frame

    def expected_stack_state(self) -> int:
        """Recompute the register from the live frames (ground truth)."""
        total = 0
        for frame in self.frames:
            total = (total + frame.contributed) & MASK_16
        return total

    def verify_and_repair(self) -> bool:
        """Safepoint verification (paper §7.2.3).

        Walks the stack, recomputes the expected state, and repairs the
        register if OSR or an unhooked unwind corrupted it.  Returns
        True when a repair was needed.
        """
        expected = self.expected_stack_state()
        if expected != self.stack_state:
            self.stack_state = expected
            self.state_repairs += 1
            return True
        return False

    @property
    def current_method(self) -> Optional[Method]:
        return self.frames[-1].method if self.frames else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimThread(%s, state=0x%04x, depth=%d)" % (
            self.name,
            self.stack_state,
            len(self.frames),
        )

"""Deterministic simulated clock.

All time in the simulator is virtual.  The clock advances in two ways:

* mutator progress — executing application operations costs simulated
  nanoseconds (including the profiling-code tax ROLP adds), and
* GC pauses — the collector advances the clock by each stop-the-world
  pause it computes from the copy-cost model.

Keeping both on one clock means throughput, pause percentiles and warmup
timelines are all measured in the same (deterministic, reproducible)
time base — the simulated analogue of the paper's wall-clock runs.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class SimClock:
    """A monotonically increasing virtual clock with nanosecond ticks."""

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before time zero")
        self._now_ns = int(start_ns)
        #: cumulative time spent inside stop-the-world pauses
        self.total_pause_ns = 0
        #: cumulative time spent running application (mutator) code
        self.total_mutator_ns = 0

    @property
    def now_ns(self) -> int:
        return self._now_ns

    @property
    def now_ms(self) -> float:
        return self._now_ns / NS_PER_MS

    @property
    def now_s(self) -> float:
        return self._now_ns / NS_PER_S

    def advance_mutator(self, ns: float) -> None:
        """Advance the clock by mutator work."""
        self._advance(ns)
        self.total_mutator_ns += int(ns)

    def advance_pause(self, ns: float) -> None:
        """Advance the clock by a stop-the-world pause."""
        self._advance(ns)
        self.total_pause_ns += int(ns)

    def _advance(self, ns: float) -> None:
        if ns < 0:
            raise ValueError("time cannot move backwards (got %r ns)" % ns)
        self._now_ns += int(ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SimClock(now=%.3f ms, paused=%.3f ms)" % (
            self.now_ms,
            self.total_pause_ns / NS_PER_MS,
        )

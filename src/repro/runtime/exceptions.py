"""Simulated application exceptions and unwind semantics.

The paper (Section 7.2.2) notes that an unhandled exception skips the
profiling code installed *after* a call instruction, so the thread stack
state would be left with stale increments.  ROLP fixes this by hooking
the JVM's rethrow path and rebalancing the state as each frame is
popped.

In the simulator, :class:`SimException` is raised by workload bodies via
``ctx.throw_exception(...)``; the interpreter's frame management decides
— based on the VM flag ``fix_exception_unwind`` — whether the unwind
rebalances the stack state (ROLP's hook installed) or leaves it
corrupted (the naive implementation, used by tests and the ablation
bench to demonstrate why the hook matters).
"""

from __future__ import annotations


class SimException(Exception):
    """An application-level exception inside the simulated program.

    ``handled_depth`` frames above the throw point there is a handler;
    the unwind pops frames until it reaches that handler (or the root,
    terminating the operation).
    """

    def __init__(self, message: str = "", handled_depth: int = 1) -> None:
        super().__init__(message)
        if handled_depth < 0:
            raise ValueError("handled_depth must be >= 0")
        self.handled_depth = handled_depth
        #: frames already unwound while the exception propagates
        self.unwound = 0

    def should_stop_at(self, frames_popped: int) -> bool:
        return frames_popped >= self.handled_depth

"""Flat method programs — the compiled tier's code format.

ROLP's profiling only ever runs inside *compiled* code (Section 7.2.1:
instrumentation is installed at JIT time, interpreted frames are never
profiled), and the JVM's hot path is compiled code executing straight
through without per-bytecode dispatch.  The simulator's analogue: a
workload body can be expressed as a :class:`MethodProgram` — a flat
array of opcodes with operands in parallel tuples — instead of a Python
callable.  Every backend executes the *same* op stream:

* the reference and fast backends run :meth:`MethodProgram.__call__`,
  which replays the ops through the ordinary ``ctx.call``/``ctx.alloc``/
  ``ctx.work``/... entry points (one Python frame per simulated frame,
  exactly like a hand-written body);
* the compiled backend (:mod:`repro.runtime.dispatch`) executes whole
  call trees of programs in **one** Python frame with per-op site
  caches and inlined clock charges.

:func:`lower_callable` converts existing straight-line Python bodies
(a sequence of ``ctx.*`` statements with constant arguments, optionally
wrapped in one counted ``for`` loop) into programs, so workloads written
against the callable API can ride the compiled tier without rewrites;
anything it cannot prove equivalent stays a Python callable and the
dispatch loop falls back to the fast backend's semantics for it.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, List, Optional, Sequence, Tuple

# -- opcodes ----------------------------------------------------------------
#
# Operands live in the parallel tuples ``a``/``b``/``c``; unused slots
# hold None (or -1 for register slots).  Registers form a tiny file:
# positional call arguments land in r0..r(n-1).

OP_CALL = 0       # a=bci, b=callee Method                  -> ctx.call(bci, callee)
OP_ALLOC = 1      # a=bci, b=(size, lives_ns), c=dst reg    -> ctx.alloc(...)
OP_ALLOC_T = 2    # a=(bci_mod, sizes, lives), c=index reg  -> table-indexed alloc
OP_WORK = 3       # a=ns                                    -> ctx.work(ns)
OP_LOOP = 4       # a=iterations, b=ns_per_iteration        -> ctx.loop(...)
OP_THROW = 5      # a=message, b=handled_depth              -> ctx.throw_exception
OP_BIAS_LOCK = 6  # c=reg holding the object                -> ctx.bias_lock(obj)
OP_REPEAT = 7     # a=count reg, b=body op count, c=index reg (base value in reg)

OP_NAMES = {
    OP_CALL: "CALL",
    OP_ALLOC: "ALLOC",
    OP_ALLOC_T: "ALLOC_T",
    OP_WORK: "WORK",
    OP_LOOP: "LOOP",
    OP_THROW: "THROW",
    OP_BIAS_LOCK: "BIAS_LOCK",
    OP_REPEAT: "REPEAT",
}


class MethodProgram:
    """One method body as flat bytecode.

    Instances are callables with the body signature the interpreter
    expects (``body(ctx, *args)``), so ``Method(..., body=program)``
    works on every backend.  A program instance belongs to one
    :class:`~repro.runtime.method.Method`: the compiled backend attaches
    per-op site caches to it (see :mod:`repro.runtime.dispatch`), which
    are only sound while op index ↔ (method, bci) is a fixed mapping.
    """

    __slots__ = (
        "ops",
        "a",
        "b",
        "c",
        "nregs",
        "name",
        # dispatch-time state (owned by repro.runtime.dispatch)
        "sites",
        "owner",
        "linked",
    )

    def __init__(
        self,
        ops: Sequence[int],
        a: Sequence[Any],
        b: Sequence[Any],
        c: Sequence[int],
        nregs: int = 0,
        name: str = "<program>",
    ) -> None:
        if not (len(ops) == len(a) == len(b) == len(c)):
            raise ValueError("operand tuples must parallel the op array")
        self.ops = tuple(ops)
        self.a = tuple(a)
        self.b = tuple(b)
        self.c = tuple(c)
        self.nregs = int(nregs)
        self.name = name
        #: per-op resolved CallSite/AllocSite cache, lazily filled by the
        #: dispatch loop in first-execution order (which is what keeps
        #: the JIT's site-id / increment-RNG assignment order identical
        #: to the reference backend); indexed by *linked* pc
        self.sites: Optional[List[Any]] = None
        #: the Method whose sites the cache belongs to (bound on first
        #: dispatch; a program reused under a different Method falls
        #: back to the uncompiled path)
        self.owner = None
        #: linked (jump-threaded) form built on first dispatch
        self.linked = None

    # -- generic execution (reference / fast backends) ----------------------

    def __call__(self, ctx, *args: Any) -> Any:
        """Replay the ops through the ordinary ExecutionContext API."""
        regs: List[Any] = [0] * self.nregs
        regs[: len(args)] = args
        self._run_block(ctx, regs, 0, len(self.ops))
        return None

    def _run_block(self, ctx, regs: List[Any], pc: int, end: int) -> None:
        ops, a, b, c = self.ops, self.a, self.b, self.c
        while pc < end:
            op = ops[pc]
            if op == OP_CALL:
                ctx.call(a[pc], b[pc])
            elif op == OP_ALLOC:
                size, lives = b[pc]
                obj = ctx.alloc(a[pc], size, lives)
                if c[pc] >= 0:
                    regs[c[pc]] = obj
            elif op == OP_ALLOC_T:
                bci_mod, sizes, lives = a[pc]
                j = regs[c[pc]]
                ctx.alloc(
                    j % bci_mod,
                    sizes[j % len(sizes)],
                    lives[j % len(lives)] if lives is not None else None,
                )
            elif op == OP_WORK:
                ctx.work(a[pc])
            elif op == OP_LOOP:
                ctx.loop(a[pc], b[pc])
            elif op == OP_THROW:
                ctx.throw_exception(a[pc], b[pc])
            elif op == OP_BIAS_LOCK:
                ctx.bias_lock(regs[c[pc]])
            elif op == OP_REPEAT:
                count = regs[a[pc]]
                body_end = pc + 1 + b[pc]
                index_reg = c[pc]
                base = regs[index_reg]
                for iteration in range(count):
                    regs[index_reg] = base + iteration
                    self._run_block(ctx, regs, pc + 1, body_end)
                regs[index_reg] = base
                pc = body_end
                continue
            else:  # pragma: no cover - builder guards opcodes
                raise ValueError("unknown opcode %r at pc %d" % (op, pc))
            pc += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MethodProgram(%s, %d ops)" % (self.name, len(self.ops))


class ProgramBuilder:
    """Convenience builder for hand-authored programs."""

    def __init__(self, name: str = "<program>", nregs: int = 0) -> None:
        self.name = name
        self.nregs = nregs
        self._ops: List[int] = []
        self._a: List[Any] = []
        self._b: List[Any] = []
        self._c: List[int] = []
        self._open_repeats: List[int] = []

    def _emit(self, op: int, a: Any = None, b: Any = None, c: int = -1) -> "ProgramBuilder":
        self._ops.append(op)
        self._a.append(a)
        self._b.append(b)
        self._c.append(c)
        return self

    def call(self, bci: int, callee) -> "ProgramBuilder":
        return self._emit(OP_CALL, bci, callee)

    def alloc(
        self, bci: int, size: int, lives_ns: Optional[float] = None, dst: int = -1
    ) -> "ProgramBuilder":
        return self._emit(OP_ALLOC, bci, (size, lives_ns), dst)

    def alloc_table(
        self,
        bci_mod: int,
        sizes: Sequence[int],
        lives: Optional[Sequence[float]],
        index_reg: int,
    ) -> "ProgramBuilder":
        lives_t = tuple(lives) if lives is not None else None
        return self._emit(OP_ALLOC_T, (bci_mod, tuple(sizes), lives_t), None, index_reg)

    def work(self, ns: float) -> "ProgramBuilder":
        return self._emit(OP_WORK, ns)

    def loop(self, iterations: int, ns_per_iteration: float = 10.0) -> "ProgramBuilder":
        return self._emit(OP_LOOP, iterations, ns_per_iteration)

    def throw(self, message: str = "", handled_depth: int = 1) -> "ProgramBuilder":
        return self._emit(OP_THROW, message, handled_depth)

    def bias_lock(self, reg: int) -> "ProgramBuilder":
        return self._emit(OP_BIAS_LOCK, None, None, reg)

    def repeat(self, count_reg: int, index_reg: int) -> "ProgramBuilder":
        """Open a counted block: the next ops (until :meth:`end_repeat`)
        run ``regs[count_reg]`` times with ``regs[index_reg]`` stepping
        ``base, base+1, ...`` from its value at block entry."""
        self._open_repeats.append(len(self._ops))
        return self._emit(OP_REPEAT, count_reg, None, index_reg)

    def end_repeat(self) -> "ProgramBuilder":
        if not self._open_repeats:
            raise ValueError("end_repeat without repeat")
        start = self._open_repeats.pop()
        self._b[start] = len(self._ops) - start - 1
        return self

    def build(self) -> MethodProgram:
        if self._open_repeats:
            raise ValueError("unclosed repeat block")
        return MethodProgram(
            self._ops, self._a, self._b, self._c, nregs=self.nregs, name=self.name
        )


# -- lowering Python callables ----------------------------------------------

#: ctx methods the lowerer understands, with their opcode and the
#: (positional) argument count bounds
_LOWERABLE = {
    "call": OP_CALL,
    "alloc": OP_ALLOC,
    "work": OP_WORK,
    "loop": OP_LOOP,
    "throw_exception": OP_THROW,
}


class LoweringDiagnostics:
    """Side-channel for :func:`lower_callable` failure reasons.

    Lowering failure is not an error — the body just stays a Python
    callable — but static analysis (``repro.analysis.staticcheck``)
    needs to report *why* a body is opaque, and the VM counts failures
    through telemetry instead of dropping them on the floor.  Each event
    records the function, a stable reason slug and the source line of
    the offending AST node (absolute, when the source is available).
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[dict] = []

    def note(self, fn, reason: str, node=None) -> None:
        line = None
        node_line = getattr(node, "lineno", None)
        if node_line is not None:
            base = getattr(getattr(fn, "__code__", None), "co_firstlineno", 1)
            line = base + node_line - 1
        self.events.append(
            {
                "function": getattr(
                    fn, "__qualname__", getattr(fn, "__name__", repr(fn))
                ),
                "reason": reason,
                "line": line,
            }
        )

    def reasons(self) -> Dict[str, int]:
        """Histogram of failure reasons."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event["reason"]] = out.get(event["reason"], 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)


def _opaque(diagnostics, fn, reason, node=None):
    """Record one lowering failure and return the opaque marker."""
    if diagnostics is not None:
        diagnostics.note(fn, reason, node)
    return None


def lower_callable(
    fn,
    name: Optional[str] = None,
    diagnostics: Optional[LoweringDiagnostics] = None,
) -> Optional[MethodProgram]:
    """Lower a straight-line method body to a :class:`MethodProgram`.

    Accepted shape: ``def body(ctx):`` whose statements are each a bare
    ``ctx.call(bci, callee)`` / ``ctx.alloc(bci, size[, lives])`` /
    ``ctx.work(ns)`` / ``ctx.loop(n[, ns])`` / ``ctx.throw_exception(...)``
    expression with constant arguments (``callee`` may be a name that
    resolves to a Method through the function's closure or globals; the
    binding is captured at lowering time).  Docstrings and ``return
    None``/bare ``return`` as the final statement are tolerated.
    Anything else — extra parameters, loops, conditionals, computed
    arguments, keyword arguments — returns None and the body stays a
    Python callable.
    """
    if isinstance(fn, MethodProgram):
        return fn
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return _opaque(diagnostics, fn, "source-unavailable")
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        return _opaque(diagnostics, fn, "not-a-function-def")
    func = tree.body[0]
    args = func.args
    if (
        args.posonlyargs
        or args.kwonlyargs
        or args.vararg
        or args.kwarg
        or args.defaults
        or len(args.args) != 1
    ):
        return _opaque(diagnostics, fn, "unsupported-signature", func)
    ctx_name = args.args[0].arg

    builder = ProgramBuilder(name=name or getattr(fn, "__name__", "<lowered>"))
    statements = list(func.body)
    # tolerate a docstring and a trailing `return`/`return None`
    if (
        statements
        and isinstance(statements[0], ast.Expr)
        and isinstance(statements[0].value, ast.Constant)
        and isinstance(statements[0].value.value, str)
    ):
        statements = statements[1:]
    if statements and isinstance(statements[-1], ast.Return):
        value = statements[-1].value
        if value is not None and not (
            isinstance(value, ast.Constant) and value.value is None
        ):
            return _opaque(diagnostics, fn, "non-trivial-return", statements[-1])
        statements = statements[:-1]
    if not statements:
        return builder.build()

    for statement in statements:
        if not isinstance(statement, ast.Expr) or not isinstance(
            statement.value, ast.Call
        ):
            return _opaque(diagnostics, fn, "not-a-bare-call-statement", statement)
        call = statement.value
        target = call.func
        if (
            not isinstance(target, ast.Attribute)
            or not isinstance(target.value, ast.Name)
            or target.value.id != ctx_name
            or call.keywords
        ):
            return _opaque(diagnostics, fn, "not-a-ctx-method-call", statement)
        op = _LOWERABLE.get(target.attr)
        if op is None:
            return _opaque(diagnostics, fn, "unsupported-ctx-method", statement)
        values = _resolve_args(call.args, fn)
        if values is None:
            return _opaque(diagnostics, fn, "unresolvable-arguments", statement)
        if op == OP_CALL:
            if len(values) != 2 or not isinstance(values[0], int):
                return _opaque(diagnostics, fn, "bad-arity", statement)
            builder.call(values[0], values[1])
        elif op == OP_ALLOC:
            if len(values) == 2:
                builder.alloc(values[0], values[1])
            elif len(values) == 3:
                builder.alloc(values[0], values[1], values[2])
            else:
                return _opaque(diagnostics, fn, "bad-arity", statement)
        elif op == OP_WORK:
            if len(values) != 1:
                return _opaque(diagnostics, fn, "bad-arity", statement)
            builder.work(values[0])
        elif op == OP_LOOP:
            if len(values) == 1:
                builder.loop(values[0])
            elif len(values) == 2:
                builder.loop(values[0], values[1])
            else:
                return _opaque(diagnostics, fn, "bad-arity", statement)
        elif op == OP_THROW:
            if len(values) == 0:
                builder.throw()
            elif len(values) == 1:
                builder.throw(values[0])
            elif len(values) == 2:
                builder.throw(values[0], values[1])
            else:
                return _opaque(diagnostics, fn, "bad-arity", statement)
    return builder.build()


def _resolve_args(nodes, fn) -> Optional[Tuple[Any, ...]]:
    """Constants, or names resolvable through the closure/globals."""
    closure = {}
    if fn.__closure__:
        for cell_name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
            try:
                closure[cell_name] = cell.cell_contents
            except ValueError:  # pragma: no cover - unfilled cell
                pass
    values: List[Any] = []
    for node in nodes:
        if isinstance(node, ast.Constant):
            values.append(node.value)
        elif isinstance(node, ast.Name):
            if node.id in closure:
                values.append(closure[node.id])
            elif node.id in fn.__globals__:
                values.append(fn.__globals__[node.id])
            else:
                return None
        else:
            return None
    return tuple(values)

"""The simulated JVM facade.

Wires together the clock, heap, collector, JIT, threads and (optionally)
the ROLP profiler, and exposes the launch-time flags the paper's
artifact exposes (ROLP is "a simple JVM command line flag").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis import VERIFY_LEVELS, default_verify_level, make_verifier
from repro.fastpath import backend, fast_paths_enabled, static_check_enabled
from repro.heap.header import install_context
from repro.heap.object_model import IMMORTAL, SimObject
from repro.runtime.biased_lock import BiasedLockManager
from repro.runtime.clock import SimClock
from repro.runtime.dispatch import CompiledExecutionContext
from repro.runtime.exceptions import SimException
from repro.runtime.hooks import NullProfiler
from repro.runtime.interpreter import ExecutionContext, FastExecutionContext
from repro.runtime.jit import JitCompiler
from repro.runtime.method import AllocSite, CallSite, Method
from repro.runtime.program import LoweringDiagnostics
from repro.runtime.thread import SimThread
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Figure 6 profiling levels for call-site instrumentation.
CALL_PROFILING_MODES = ("none", "fast", "real", "slow")


@dataclass
class VMFlags:
    """Launch-time flags (the subset the paper's evaluation varies)."""

    #: JIT compile threshold (invocations)
    compile_threshold: int = 100
    #: inlining size bound
    inline_max_size: int = 35
    #: Figure 6 mode: "none" (no call profiling code), "fast" (branch
    #: only), "real" (branch + enabled sites update), "slow" (all sites
    #: update)
    call_profiling_mode: str = "real"
    #: ROLP's hook on the JVM rethrow path (Section 7.2.2)
    fix_exception_unwind: bool = True
    #: base mutator cost per allocation (object init, TLAB bump)
    alloc_base_ns: float = 30.0
    #: invariant verification: 0 off, 1 heap walks at GC boundaries,
    #: 2 adds the biased-lock discipline checker.  ``None`` means "use
    #: the process-wide default" (set by ``rolp-bench --verify``).
    verify_level: Optional[int] = None

    def __post_init__(self) -> None:
        if self.call_profiling_mode not in CALL_PROFILING_MODES:
            raise ValueError(
                "call_profiling_mode must be one of %s" % (CALL_PROFILING_MODES,)
            )
        if self.verify_level is None:
            self.verify_level = default_verify_level()
        if self.verify_level not in VERIFY_LEVELS:
            raise ValueError(
                "verify_level must be one of %s" % (VERIFY_LEVELS,)
            )


class JavaVM:
    """A simulated JVM instance.

    Parameters
    ----------
    collector:
        Any :class:`repro.gc.collector.Collector`; the VM attaches
        itself so the collector can run safepoint duties.
    profiler:
        A :class:`~repro.runtime.hooks.NullProfiler` (baseline) or a
        :class:`repro.core.profiler.RolpProfiler`.
    telemetry:
        A :class:`repro.telemetry.Telemetry` bundle; the default null
        bundle records nothing and costs nothing.
    """

    def __init__(
        self,
        collector: "repro.gc.collector.Collector",  # noqa: F821
        profiler: Optional[NullProfiler] = None,
        flags: Optional[VMFlags] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.flags = flags or VMFlags()
        self.collector = collector
        self.clock: SimClock = collector.clock
        self.profiler = profiler or NullProfiler()
        self.telemetry = telemetry or NULL_TELEMETRY
        self.telemetry.tracer.bind_clock(self.clock)
        self._telemetry_on = self.telemetry.enabled
        # The hot alloc stream only exists when a bounded consumer (the
        # flight recorder) asked for it; otherwise the hot paths carry a
        # None and skip event construction entirely.
        tracer = self.telemetry.tracer
        self._rec_alloc = tracer.hot_instant if tracer.wants_hot_events else None
        metrics = self.telemetry.metrics
        self._m_allocations = metrics.counter(
            "vm_allocations_total", "Objects allocated, by allocation site"
        )
        self._m_alloc_bytes = metrics.counter(
            "vm_allocated_bytes_total", "Bytes allocated"
        )
        self._m_profiling_tax = metrics.counter(
            "vm_profiling_tax_ns_total", "Mutator nanoseconds spent in profiling code"
        )
        self._m_lowering_failures = metrics.counter(
            "vm_lowering_failures_total",
            "Method bodies that failed lowering to a MethodProgram, by reason",
        )
        #: why each callable body stayed opaque to the compiled tier
        self.lowering_diagnostics = LoweringDiagnostics()
        self.jit = JitCompiler(
            compile_threshold=self.flags.compile_threshold,
            inline_max_size=self.flags.inline_max_size,
        )
        self.jit.bind_telemetry(self.telemetry)
        self.verifier = make_verifier(self.flags.verify_level)
        self.verifier.bind(self)
        self.biased_locks = BiasedLockManager()
        self.biased_locks.bind_telemetry(self.telemetry)
        self.biased_locks.bind_verifier(self.verifier)
        self.profiler.bind_telemetry(self.telemetry)
        self.threads: List[SimThread] = []
        self._next_thread_id = 1
        self.exceptions_thrown = 0
        self.allocations = 0
        self.bytes_allocated = 0
        #: mutator nanoseconds spent purely on profiling code
        self.profiling_tax_ns = 0.0
        #: construction-time snapshot of the execution backend
        self.backend = backend()
        #: boolean mirror kept for the pre-backend API and fast twins
        self.fast_paths = fast_paths_enabled()
        if self.backend == "compiled":
            self._ctx_class = CompiledExecutionContext
        elif self.fast_paths:
            self._ctx_class = FastExecutionContext
        else:
            self._ctx_class = ExecutionContext
        if self.fast_paths:
            # Instance attribute shadows the class method: callers keep
            # saying vm.allocate, dispatch picks the inlined body.
            self.allocate = self._allocate_fast  # type: ignore[method-assign]
        #: per-method lowering results for the compiled backend
        #: (Method -> MethodProgram or None; memoizes failures too).
        #: Lives on the VM because run() builds a fresh context per root
        #: call — a context-local cache would relower every operation.
        self.method_programs: Dict[Method, object] = {}
        #: construction-time snapshot of the ROLP_STATIC_CHECK gate; off
        #: (the default) the only cost is one attribute test per root
        #: invocation in run().
        self.static_check = static_check_enabled()
        self._static_checked: set = set()
        collector.attach_vm(self)

    # -- threads ------------------------------------------------------------------

    def spawn_thread(self, name: str = "") -> SimThread:
        thread = SimThread(self._next_thread_id, name)
        self._next_thread_id += 1
        self.threads.append(thread)
        return thread

    def context(self, thread: SimThread) -> ExecutionContext:
        return self._ctx_class(self, thread)

    def run(self, thread: SimThread, method: Method, *args, **kwargs):
        """Run a root invocation (an 'operation') on ``thread``.

        An exception that no frame handles terminates the operation
        (the thread's uncaught-exception boundary) and yields None.

        With the ``ROLP_STATIC_CHECK=1`` gate on, the method's program
        call tree is verified before its first execution; a verifier
        :class:`~repro.analysis.violations.InvariantViolation`
        propagates (it is not a simulated exception).
        """
        if self.static_check:
            self._static_check_root(method, len(args))
        try:
            return self.context(thread).call(0, method, *args, **kwargs)
        except SimException:
            return None

    def _static_check_root(self, method: Method, nargs: int) -> None:
        """Verify ``method``'s program call tree once (id-memoized).

        Read-only: program resolution goes through the same dispatch
        memo the compiled backend uses, so lowering order is identical
        whether the gate is on or off, and the verifier touches no
        clock, RNG, or heap state — checked runs are byte-identical.
        """
        key = id(method)
        if key in self._static_checked:
            return
        self._static_checked.add(key)
        from repro.analysis.staticcheck import check_method

        check_method(self, method, arity=nargs)

    # -- time / cost accounting -----------------------------------------------------

    def charge_mutator(self, ns: float) -> None:
        self.clock.advance_mutator(ns * self.collector.mutator_overhead_factor)

    def charge_profiling(self, ns: float) -> None:
        """Mutator cost attributable to profiling instructions."""
        if ns:
            self.profiling_tax_ns += ns
            self._m_profiling_tax.inc(ns)
            self.charge_mutator(ns)

    # -- call-site profiling (Figure 6's four levels) -----------------------------------

    def call_profiling_increment(self, site: CallSite) -> int:
        """Decide the stack-state increment for one dynamic call, and
        charge the corresponding profiling cost.

        Returns 0 when the stack state must not be updated for this call
        (profiling off / fast branch taken).
        """
        if not site.instrumented:
            return 0
        mode = self.flags.call_profiling_mode
        profiler = self.profiler
        if mode == "none":
            return 0
        if mode == "fast":
            self.charge_profiling(2 * profiler.call_fast_ns)
            return 0
        if mode == "slow":
            self.charge_profiling(2 * profiler.call_slow_ns)
            return site.increment
        # mode == "real": the conditional branch; enabled sites take the
        # slow add/sub path, others only pay the test+je.
        if profiler.call_site_enabled(site):
            self.charge_profiling(2 * profiler.call_slow_ns)
            return site.increment
        self.charge_profiling(2 * profiler.call_fast_ns)
        return 0

    # -- allocation --------------------------------------------------------------------

    def allocate(
        self,
        thread: SimThread,
        site: AllocSite,
        size: int,
        death_time_ns: float,
        gen_hint: int = 0,
    ) -> SimObject:
        """Allocate through the collector, resolving the ROLP context."""
        self.charge_mutator(self.flags.alloc_base_ns)
        context = 0
        sampled = True
        if site.profiled:
            context = self.profiler.allocation_context(thread, site)
            if context:
                sampled = self.profiler.sample_allocation(site)
                # Unsampled allocations still use the context for
                # pretenuring advice, but skip the header install and
                # table increment (and most of the profiling cost).
                self.charge_profiling(
                    self.profiler.alloc_profile_ns
                    if sampled
                    else self.profiler.alloc_profile_ns * 0.15
                )
        obj = self.collector.allocate(size, context, death_time_ns, gen_hint)
        if context:
            if sampled:
                self.profiler.on_allocation(context, obj)
            else:
                if self.verifier.enabled:
                    self.verifier.on_context_install(thread, obj, 0)
                obj.header = install_context(obj.header, 0)
        self.allocations += 1
        self.bytes_allocated += size
        if self._telemetry_on:
            self._m_allocations.inc(
                1, site="%s@%d" % (site.method.qualified_name, site.bci)
            )
            self._m_alloc_bytes.inc(size)
        if self._rec_alloc is not None:
            self._rec_alloc(
                "vm/alloc",
                category="alloc",
                tid=thread.thread_id,
                site=site.site_id,
                size=size,
                context=context,
            )
        return obj

    def _allocate_fast(
        self,
        thread: SimThread,
        site: AllocSite,
        size: int,
        death_time_ns: float,
        gen_hint: int = 0,
    ) -> SimObject:
        """== :meth:`allocate` with ``charge_mutator``/``charge_profiling``
        inlined and the overhead factor read once per call (nothing
        between the two charges can change it)."""
        clock_advance = self.clock.advance_mutator
        factor = self.collector.mutator_overhead_factor
        clock_advance(self.flags.alloc_base_ns * factor)
        context = 0
        sampled = True
        profiler = self.profiler
        if site.site_id != 0:
            context = profiler.allocation_context(thread, site)
            if context:
                sampled = profiler.sample_allocation(site)
                tax = (
                    profiler.alloc_profile_ns
                    if sampled
                    else profiler.alloc_profile_ns * 0.15
                )
                if tax:
                    self.profiling_tax_ns += tax
                    if self._telemetry_on:
                        self._m_profiling_tax.inc(tax)
                    clock_advance(tax * factor)
        obj = self.collector.allocate(size, context, death_time_ns, gen_hint)
        if context:
            if sampled:
                profiler.on_allocation(context, obj)
            else:
                if self.verifier.enabled:
                    self.verifier.on_context_install(thread, obj, 0)
                obj.header = install_context(obj.header, 0)
        self.allocations += 1
        self.bytes_allocated += size
        if self._telemetry_on:
            self._m_allocations.inc(
                1, site="%s@%d" % (site.method.qualified_name, site.bci)
            )
            self._m_alloc_bytes.inc(size)
        if self._rec_alloc is not None:
            self._rec_alloc(
                "vm/alloc",
                category="alloc",
                tid=thread.thread_id,
                site=site.site_id,
                size=size,
                context=context,
            )
        return obj

    # -- safepoints -----------------------------------------------------------------------

    def at_safepoint(self) -> None:
        """End-of-GC safepoint duties: verify/repair every thread's stack
        state against its real frame stack (Section 7.2.3)."""
        if self._telemetry_on and self.telemetry.tracer.enabled:
            self.telemetry.tracer.instant(
                "vm/safepoint",
                category="safepoint",
                gc_number=self.collector.gc_cycles,
                threads=len(self.threads),
            )
        for thread in self.threads:
            thread.verify_and_repair()
        if self.verifier.enabled:
            self.verifier.at_safepoint(self)

    # -- statistics -------------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        return {
            "allocations": self.allocations,
            "bytes_allocated": self.bytes_allocated,
            "compiled_methods": len(self.jit.compiled_methods),
            "profiled_alloc_sites": self.jit.profiled_alloc_site_count,
            "profiled_call_sites": self.jit.profiled_call_site_count,
            "gc_cycles": self.collector.gc_cycles,
            "total_pause_ms": self.clock.total_pause_ns / 1e6,
            "profiling_tax_ms": self.profiling_tax_ns / 1e6,
            "now_ms": self.clock.now_ms,
        }

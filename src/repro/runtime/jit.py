"""Just-in-time compilation model.

ROLP piggybacks on JIT compilation: profiling code is installed only
into *hot* (compiled) methods, so only a small fraction of allocation
sites and call sites ever pay a profiling cost.  This module models the
parts of HotSpot's JIT that matter for that decision:

* invocation-counting hot-method detection with a compile threshold;
* an inlining policy (small, monomorphic callees are inlined, and the
  paper deliberately does *not* profile inlined calls, Section 7.2.1);
* allocation-site identifier assignment (16-bit space) at compile time;
* call-site increment assignment (random non-zero 16-bit values — the
  weak additive hash construction the paper evaluates);
* on-stack replacement (OSR) of long-running loopy methods, which is a
  source of stack-state corruption repaired at safepoints.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.heap.header import MASK_16
from repro.runtime.hooks import NullProfiler
from repro.runtime.method import AllocSite, CallSite, Method
from repro.telemetry import NULL_TELEMETRY


class JitCompiler:
    """Invocation-counting compiler with an inlining policy.

    Parameters
    ----------
    compile_threshold:
        Invocations before a method is compiled (HotSpot's default is
        10 000; the simulator default is lower so short benchmark runs
        still reach steady state).
    inline_max_size:
        Callee bytecode-size bound for inlining.
    seed:
        Seed for the deterministic increment-id generator.
    """

    def __init__(
        self,
        compile_threshold: int = 100,
        inline_max_size: int = 35,
        seed: int = 0xC0FFEE,
    ) -> None:
        self.compile_threshold = compile_threshold
        self.inline_max_size = inline_max_size
        self._rng = random.Random(seed)
        self._next_site_id = 1  # 0 is reserved for "unprofiled"
        #: all methods that have been compiled, in compile order
        self.compiled_methods: List[Method] = []
        #: all instrumented (profilable) call sites across the code cache
        self.instrumented_call_sites: List[CallSite] = []
        #: all instrumented allocation sites
        self.instrumented_alloc_sites: List[AllocSite] = []
        #: total invocation events observed (for PMC/PAS percentages)
        self.total_call_sites_seen = 0
        self.total_alloc_sites_seen = 0
        self.osr_events = 0
        self.bind_telemetry(NULL_TELEMETRY)

    def bind_telemetry(self, telemetry) -> None:
        """Attach tracing + metrics (the VM calls this at construction)."""
        self._tracer = telemetry.tracer
        metrics = telemetry.metrics
        self._m_compiles = metrics.counter(
            "jit_compiled_methods_total", "Methods JIT compiled"
        )
        self._m_instrumented = metrics.counter(
            "jit_instrumented_methods_total",
            "Compiled methods that received profiling code",
        )
        self._m_osr = metrics.counter(
            "jit_osr_events_total", "On-stack replacements"
        )

    # -- hot-method detection ----------------------------------------------------

    def record_invocation(self, method: Method, profiler: NullProfiler) -> bool:
        """Count an invocation; compile when the threshold is crossed.

        Returns True when this invocation triggered compilation.
        """
        method.invocations += 1
        if not method.compiled and method.invocations >= self.compile_threshold:
            self.compile(method, profiler)
            return True
        return False

    # -- compilation ------------------------------------------------------------------

    def compile(self, method: Method, profiler: NullProfiler) -> None:
        """Compile ``method``; install profiling code if the profiler's
        package filters accept it."""
        if method.compiled:
            return
        method.compiled = True
        self.compiled_methods.append(method)
        if profiler.should_instrument(method):
            self._instrument(method)
            method.instrumented = True
            profiler.on_method_compiled(method)
        self._m_compiles.inc()
        if method.instrumented:
            self._m_instrumented.inc()
        if self._tracer.enabled:
            self._tracer.instant(
                "jit/compile",
                category="jit",
                method=method.qualified_name,
                instrumented=method.instrumented,
                alloc_sites=len(method.alloc_sites),
                call_sites=len(method.call_sites),
            )

    def _instrument(self, method: Method) -> None:
        """Install allocation-site ids and call-site increments."""
        for site in method.alloc_sites.values():
            self.total_alloc_sites_seen += 1
            site_id = self._allocate_site_id()
            if site_id:
                site.site_id = site_id
                self.instrumented_alloc_sites.append(site)
        for call_site in method.call_sites.values():
            self.total_call_sites_seen += 1
            if self.should_inline(call_site):
                call_site.inlined = True
                continue
            call_site.increment = self._fresh_increment()
            self.instrumented_call_sites.append(call_site)

    def _allocate_site_id(self) -> int:
        """Hand out the next 16-bit allocation-site id (0 when the id
        space is exhausted — further sites simply go unprofiled)."""
        if self._next_site_id > MASK_16:
            return 0
        site_id = self._next_site_id
        self._next_site_id += 1
        return site_id

    def _fresh_increment(self) -> int:
        """A random non-zero 16-bit call-site increment."""
        return self._rng.randint(1, MASK_16)

    # -- inlining policy -------------------------------------------------------------------

    def should_inline(self, call_site: CallSite) -> bool:
        """Small and monomorphic callees are inlined (and, per the paper,
        inlined calls are never profiled)."""
        if call_site.polymorphic:
            return False
        if not call_site.targets:
            return False
        (callee,) = call_site.targets
        return callee.bytecode_size <= self.inline_max_size

    # -- late registration ----------------------------------------------------------------------

    def register_late_alloc_site(self, site: AllocSite, profiler: NullProfiler) -> None:
        """An allocation site first executed *after* its method compiled.

        HotSpot would recompile through an uncommon trap; we model the
        common outcome — the site gets profiling on the recompile.
        """
        if site.site_id == 0 and site.method.instrumented:
            self.total_alloc_sites_seen += 1
            site_id = self._allocate_site_id()
            if site_id:
                site.site_id = site_id
                self.instrumented_alloc_sites.append(site)

    def register_late_call_site(self, site: CallSite) -> None:
        """A call site first executed after its method compiled."""
        if site.increment == 0 and not site.inlined and site.method.instrumented:
            self.total_call_sites_seen += 1
            if self.should_inline(site):
                site.inlined = True
                return
            site.increment = self._fresh_increment()
            self.instrumented_call_sites.append(site)

    # -- OSR -------------------------------------------------------------------------------------

    def maybe_osr(self, method: Method, profiler: NullProfiler) -> bool:
        """On-stack replacement of a long-running method.

        Returns True when the method transitioned interpreted→compiled
        mid-execution (the caller corrupts the thread stack state to
        model the switch; the safepoint verifier repairs it later).
        """
        if method.osr_eligible and not method.compiled:
            self.compile(method, profiler)
            self.osr_events += 1
            self._m_osr.inc()
            if self._tracer.enabled:
                self._tracer.instant(
                    "jit/osr", category="jit", method=method.qualified_name
                )
            return True
        return False

    # -- statistics --------------------------------------------------------------------------------

    @property
    def profiled_alloc_site_count(self) -> int:
        return len(self.instrumented_alloc_sites)

    @property
    def profiled_call_site_count(self) -> int:
        return len(self.instrumented_call_sites)

"""Measurement and reporting: pause percentiles/histograms, throughput,
memory footprint, and text-table rendering."""

from repro.metrics.gclog import (
    GcLogRecord,
    format_pause,
    kind_for_cause,
    parse_line,
    parse_log,
    render_log,
)
from repro.metrics.memory import MemoryReport, measure
from repro.metrics.pauses import (
    DEFAULT_INTERVALS_MS,
    DEFAULT_PERCENTILES,
    duration_histogram,
    percentile,
    percentile_profile,
    tail_reduction,
)
from repro.metrics.report import (
    render_histogram_series,
    render_percentile_series,
    render_table,
)
from repro.metrics.throughput import ThroughputMeter, normalized

__all__ = [
    "DEFAULT_INTERVALS_MS",
    "DEFAULT_PERCENTILES",
    "GcLogRecord",
    "MemoryReport",
    "format_pause",
    "kind_for_cause",
    "parse_line",
    "parse_log",
    "render_log",
    "ThroughputMeter",
    "duration_histogram",
    "measure",
    "normalized",
    "percentile",
    "percentile_profile",
    "render_histogram_series",
    "render_percentile_series",
    "render_table",
    "tail_reduction",
]

"""Plain-text report rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_percentile_series(
    series: Dict[str, Dict[float, float]],
    title: str = "",
) -> str:
    """Render Figure 8-style percentile curves, one row per collector.

    Collectors may report different percentile sets (an empty pause list
    yields no percentiles at all); the columns are the union, with "-"
    marking percentiles a collector did not report.
    """
    if not series:
        return title
    percentiles = sorted({p for profile in series.values() for p in profile})
    headers = ["collector"] + ["p%g" % p for p in percentiles]
    rows: List[List[object]] = []
    for name, profile in series.items():
        rows.append(
            [name]
            + ["%.2f" % profile[p] if p in profile else "-" for p in percentiles]
        )
    body = render_table(headers, rows)
    return ("%s\n%s" % (title, body)) if title else body


def render_histogram_series(
    series: Dict[str, List],
    title: str = "",
) -> str:
    """Render Figure 9-style pause-count-per-interval histograms.

    Interval labels may differ between collectors (custom bucket edges,
    or an empty histogram); the columns are the ordered union of every
    series' labels, with "-" marking intervals a collector lacks.
    """
    if not series:
        return title
    labels: List[str] = []
    for histogram in series.values():
        for label, _ in histogram:
            if label not in labels:
                labels.append(label)
    headers = ["collector"] + labels
    rows: List[List[object]] = []
    for name, histogram in series.items():
        counts = {label: count for label, count in histogram}
        rows.append([name] + [counts.get(label, "-") for label in labels])
    body = render_table(headers, rows)
    return ("%s\n%s" % (title, body)) if title else body

"""Plain-text report rendering for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_percentile_series(
    series: Dict[str, Dict[float, float]],
    title: str = "",
) -> str:
    """Render Figure 8-style percentile curves, one row per collector."""
    if not series:
        return title
    percentiles = sorted(next(iter(series.values())).keys())
    headers = ["collector"] + ["p%g" % p for p in percentiles]
    rows: List[List[object]] = []
    for name, profile in series.items():
        rows.append([name] + ["%.2f" % profile[p] for p in percentiles])
    body = render_table(headers, rows)
    return ("%s\n%s" % (title, body)) if title else body


def render_histogram_series(
    series: Dict[str, List],
    title: str = "",
) -> str:
    """Render Figure 9-style pause-count-per-interval histograms."""
    if not series:
        return title
    labels = [label for label, _ in next(iter(series.values()))]
    headers = ["collector"] + labels
    rows: List[List[object]] = []
    for name, histogram in series.items():
        rows.append([name] + [count for _, count in histogram])
    body = render_table(headers, rows)
    return ("%s\n%s" % (title, body)) if title else body

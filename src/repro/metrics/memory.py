"""Memory-footprint accounting.

Max memory usage normalized to G1 is the right-hand plot of Figure 10:
ROLP/NG2C must match G1 while ZGC's headroom + floating garbage costs
noticeably more.  The profiler's own footprint (the OLD table) is the
``OLD`` column of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gc.collector import Collector


@dataclass(frozen=True)
class MemoryReport:
    """Peak footprint of one run."""

    heap_max_bytes: int
    old_table_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.heap_max_bytes + self.old_table_bytes

    @property
    def total_mb(self) -> float:
        return self.total_bytes / (1 << 20)


def measure(collector: Collector, profiler: Optional[object] = None) -> MemoryReport:
    """Collect the peak heap footprint plus the profiler's table size."""
    old_table_bytes = 0
    if profiler is not None and hasattr(profiler, "old_table_memory_bytes"):
        old_table_bytes = profiler.old_table_memory_bytes()
    return MemoryReport(
        heap_max_bytes=collector.max_memory_bytes(),
        old_table_bytes=old_table_bytes,
    )

"""HotSpot-style GC log emission and parsing.

Renders a collector's recorded pauses in the shape of OpenJDK's unified
logging (``-Xlog:gc``) so runs can be eyeballed — or diffed — against
real JVM logs, and existing GC-log tooling habits transfer:

    [1.234s][info][gc] GC(42) Pause Young (mixed) 61M->35M(96M) 2.481ms

The parser reads the same format back into structured records, which
also makes the emitter's output a stable machine interface.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.gc.collector import Collector, PauseEvent


class GcLogParseError(ValueError):
    """A GC log failed strict parsing.

    Carries enough structure for callers (the trace-calibration path,
    tests) to report *which* line was rejected and why, instead of the
    lenient parser's silent skip.
    """

    def __init__(self, reason: str, line_number: int, line: str) -> None:
        super().__init__(
            "%s at line %d: %r" % (reason, line_number, line.strip())
        )
        #: "malformed" or "out-of-order"
        self.reason = reason
        #: 1-based line number in the input text
        self.line_number = line_number
        #: the offending line, verbatim
        self.line = line


#: pause kind -> the HotSpot-ish cause string
_CAUSE = {
    "young": "Pause Young (normal)",
    "mixed": "Pause Young (mixed)",
    "full": "Pause Full (allocation failure)",
    "cms-initial-mark": "Pause Initial Mark",
    "cms-remark": "Pause Remark",
    "cms-full": "Pause Full (CMS compaction)",
    "zgc-mark-start": "Pause Mark Start",
    "zgc-relocate-start": "Pause Relocate Start",
    "zgc-mark-end": "Pause Mark End",
}

#: cause string -> pause kind (inverse of :data:`_CAUSE`)
_KIND_BY_CAUSE = {cause: kind for kind, cause in _CAUSE.items()}

_FALLBACK_CAUSE = re.compile(r"^Pause \((?P<kind>.+)\)$")

_LINE = re.compile(
    r"\[(?P<ts>[0-9.]+)s\]\[info\]\[gc\] GC\((?P<num>\d+)\) "
    r"(?P<cause>.+?) "
    r"(?P<before>\d+)M->(?P<after>\d+)M\((?P<cap>\d+)M\) "
    r"(?P<ms>[0-9.]+)ms$"
)


@dataclass(frozen=True)
class GcLogRecord:
    """One parsed GC log line."""

    timestamp_s: float
    gc_number: int
    cause: str
    heap_before_mb: int
    heap_after_mb: int
    heap_capacity_mb: int
    duration_ms: float


def format_pause(
    pause: PauseEvent,
    heap_capacity_mb: int,
    heap_before_mb: int,
    heap_after_mb: int,
) -> str:
    """Render one pause as a unified-logging line."""
    cause = _CAUSE.get(pause.kind, "Pause (%s)" % pause.kind)
    return "[%0.3fs][info][gc] GC(%d) %s %dM->%dM(%dM) %0.3fms" % (
        pause.start_ns / 1e9,
        pause.gc_number,
        cause,
        heap_before_mb,
        heap_after_mb,
        heap_capacity_mb,
        pause.duration_ms,
    )


def kind_for_cause(cause: str) -> Optional[str]:
    """Recover the pause kind a cause string was formatted from.

    The inverse of :func:`format_pause`'s cause mapping, including the
    ``"Pause (<kind>)"`` fallback used for kinds outside ``_CAUSE``.
    Returns None for strings no pause kind formats to.
    """
    kind = _KIND_BY_CAUSE.get(cause)
    if kind is not None:
        return kind
    match = _FALLBACK_CAUSE.match(cause)
    return match.group("kind") if match else None


def render_log(collector: Collector) -> str:
    """Render a collector's full pause history.

    The per-pause before/after heap figures are approximated from the
    copy accounting (the simulator does not snapshot occupancy at every
    pause; the reclaimed delta is what log readers actually scan for).
    """
    capacity_mb = collector.heap.capacity_bytes >> 20
    current_mb = collector.heap.used_bytes() >> 20
    lines: List[str] = []
    for pause in collector.pauses:
        freed_mb = max(0, pause.bytes_copied >> 20)
        before = min(capacity_mb, current_mb + freed_mb + 1)
        lines.append(format_pause(pause, capacity_mb, before, current_mb))
    return "\n".join(lines)


def parse_line(line: str) -> Optional[GcLogRecord]:
    """Parse one unified-logging line (None when it does not match)."""
    match = _LINE.match(line.strip())
    if not match:
        return None
    return GcLogRecord(
        timestamp_s=float(match.group("ts")),
        gc_number=int(match.group("num")),
        cause=match.group("cause"),
        heap_before_mb=int(match.group("before")),
        heap_after_mb=int(match.group("after")),
        heap_capacity_mb=int(match.group("cap")),
        duration_ms=float(match.group("ms")),
    )


def parse_log(text: str, strict: bool = False) -> List[GcLogRecord]:
    """Parse a full log.

    Lenient mode (the default, unchanged behaviour) skips non-GC lines.
    ``strict=True`` — the mode trace calibration uses — raises
    :class:`GcLogParseError` instead of silently dropping data:

    * ``"malformed"`` for any non-blank line that is not a well-formed
      GC line, and
    * ``"out-of-order"`` when a GC line's timestamp runs backwards
      relative to the previous GC line (real unified logs are
      monotonic; a rewind means truncation or interleaved logs, and a
      demography calibrated from such a log would be silently wrong).
    """
    records: List[GcLogRecord] = []
    last_timestamp = float("-inf")
    for line_number, line in enumerate(text.splitlines(), start=1):
        record = parse_line(line)
        if record is None:
            if strict and line.strip():
                raise GcLogParseError("malformed", line_number, line)
            continue
        if strict and record.timestamp_s < last_timestamp:
            raise GcLogParseError("out-of-order", line_number, line)
        last_timestamp = record.timestamp_s
        records.append(record)
    return records


def pause_durations_ms(records: Sequence[GcLogRecord]) -> List[float]:
    return [r.duration_ms for r in records]

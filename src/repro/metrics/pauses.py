"""Pause-time statistics: percentiles and duration histograms.

These produce the data behind the paper's Figure 8 (pause-time
percentiles per collector) and Figure 9 (number of pauses per duration
interval).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: the percentiles plotted in Figure 8
DEFAULT_PERCENTILES = (50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 100.0)

#: Figure 9's duration buckets, in milliseconds (upper edges; the last
#: bucket is open-ended).  The paper's buckets span 10-1000 ms at
#: testbed scale; these are scaled to the simulator's pause magnitudes
#: so the histogram stays informative (same 2-4x geometric spacing).
DEFAULT_INTERVALS_MS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (inclusive), 0 for an empty input."""
    if not values:
        return 0.0
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    ordered = sorted(values)
    if pct == 0.0:
        return ordered[0]
    rank = max(1, int(-(-pct / 100.0 * len(ordered) // 1)))  # ceil
    return ordered[min(rank, len(ordered)) - 1]


def percentile_profile(
    pause_ms: Sequence[float],
    percentiles: Sequence[float] = DEFAULT_PERCENTILES,
) -> Dict[float, float]:
    """Pause duration at each requested percentile (Figure 8 series)."""
    return {pct: percentile(pause_ms, pct) for pct in percentiles}


def duration_histogram(
    pause_ms: Sequence[float],
    intervals_ms: Sequence[float] = DEFAULT_INTERVALS_MS,
) -> List[Tuple[str, int]]:
    """Pause counts per duration interval (Figure 9 series).

    Returns ``[(label, count), ...]`` from shortest to longest interval;
    the fewer counts in the rightmost buckets, the better.
    """
    edges = list(intervals_ms)
    if edges != sorted(edges):
        raise ValueError("interval edges must be ascending")
    counts = [0] * (len(edges) + 1)
    for value in pause_ms:
        placed = False
        for i, edge in enumerate(edges):
            if value <= edge:
                counts[i] += 1
                placed = True
                break
        if not placed:
            counts[-1] += 1
    labels = []
    previous = 0.0
    for edge in edges:
        labels.append("%g-%g" % (previous, edge))
        previous = edge
    labels.append(">%g" % edges[-1])
    return list(zip(labels, counts))


def tail_reduction(baseline_ms: Sequence[float], improved_ms: Sequence[float], pct: float = 99.9) -> float:
    """Fractional tail-latency reduction vs a baseline at ``pct``.

    The paper headlines: up to 51% (Lucene), 85% (GraphChi), 69%
    (Cassandra) long-tail reduction vs G1.
    """
    base = percentile(baseline_ms, pct)
    if base <= 0:
        return 0.0
    return 1.0 - percentile(improved_ms, pct) / base

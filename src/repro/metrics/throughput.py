"""Throughput accounting.

The paper reports throughput normalized to G1 (Figure 10, middle plot):
ROLP must stay within ~5-6% of G1 while ZGC's barrier tax is much
larger.  Throughput here is completed operations per simulated second,
which directly reflects the mutator-time inflation caused by profiling
code and barrier overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.runtime.clock import NS_PER_S, SimClock


@dataclass
class ThroughputMeter:
    """Counts completed operations against the simulated clock."""

    clock: SimClock
    operations: int = 0
    _marks: List[Tuple[int, int]] = field(default_factory=list)

    def record(self, count: int = 1) -> None:
        self.operations += count

    def mark(self) -> None:
        """Snapshot (time, ops) for windowed rates (warmup curves)."""
        self._marks.append((self.clock.now_ns, self.operations))

    def ops_per_second(self) -> float:
        elapsed_s = self.clock.now_ns / NS_PER_S
        if elapsed_s <= 0:
            return 0.0
        return self.operations / elapsed_s

    def windowed_rates(self) -> List[Tuple[float, float]]:
        """[(window end s, ops/s in window), ...] between marks."""
        rates: List[Tuple[float, float]] = []
        previous_ns, previous_ops = 0, 0
        for now_ns, ops in self._marks:
            window_s = (now_ns - previous_ns) / NS_PER_S
            if window_s > 0:
                rates.append((now_ns / NS_PER_S, (ops - previous_ops) / window_s))
            previous_ns, previous_ops = now_ns, ops
        return rates


def normalized(value: float, baseline: float) -> float:
    """Normalize a metric to a baseline (1.0 = identical to baseline)."""
    if baseline == 0:
        return 0.0
    return value / baseline

"""Global switch for the hot-path execution backends.

The performance pass (see docs/performance.md) keeps every optimised
hot path next to its original *reference* implementation: components
capture the switch at construction time and choose one or the other.
The differential equivalence suite (tests/test_perf_equivalence.py) and
the ``rolp-bench perf`` kernels run every backend against the reference
and assert byte-identical behaviour, so the fast paths can default to on
without moving any rendered figure or table.

Three backends exist:

* ``"reference"`` — the original, maximally readable implementations;
* ``"fast"`` — the PR 4 inlined twins (``FastExecutionContext``,
  batched survivor profiling, O(1) heap counters, ...);
* ``"compiled"`` — the fast paths plus the table-dispatch interpreter
  for :class:`~repro.runtime.program.MethodProgram` bodies and the
  array-of-structs heap hot state (:mod:`repro.heap.soa`).

Semantics:

* ``ROLP_BACKEND=reference|fast|compiled`` selects the backend for the
  whole process; when unset, ``ROLP_FAST_PATHS=0`` selects
  ``"reference"`` and anything else (or unset) selects ``"fast"``.
* :func:`set_backend` flips the process-wide default at runtime and
  returns the previous value; only components constructed *after* the
  flip observe it (VMs, profilers, collectors and OLD tables capture
  the switch in ``__init__``), which keeps a running simulation on one
  consistent implementation.
* :func:`set_fast_paths` is the pre-backend boolean API, kept so the
  PR 4 call sites and tests keep working: ``True`` maps to ``"fast"``,
  ``False`` to ``"reference"``.
"""

from __future__ import annotations

import os

#: the recognised execution backends, slowest first
BACKENDS = ("reference", "fast", "compiled")


def _initial_backend() -> str:
    name = os.environ.get("ROLP_BACKEND")
    if name:
        if name not in BACKENDS:
            raise ValueError(
                "ROLP_BACKEND=%r is not one of %s" % (name, ", ".join(BACKENDS))
            )
        return name
    return "reference" if os.environ.get("ROLP_FAST_PATHS", "1") == "0" else "fast"


#: process-wide default, captured by components at construction time
BACKEND: str = _initial_backend()

#: boolean mirror of ``BACKEND != "reference"`` kept for the PR 4 API
ENABLED: bool = BACKEND != "reference"


def backend() -> str:
    """The current process-wide execution backend."""
    return BACKEND


def set_backend(name: str) -> str:
    """Set the process-wide backend; returns the previous value.

    Tests and the perf kernels toggle this around VM construction to run
    the backends against each other.
    """
    if name not in BACKENDS:
        raise ValueError("unknown backend %r (expected one of %s)" % (name, BACKENDS))
    global BACKEND, ENABLED
    previous = BACKEND
    BACKEND = name
    ENABLED = name != "reference"
    return previous


def compiled_enabled() -> bool:
    """Whether the table-dispatch/SoA backend is selected."""
    return BACKEND == "compiled"


def fast_paths_enabled() -> bool:
    """Whether any optimised backend is selected (fast or compiled)."""
    return ENABLED


def set_fast_paths(enabled: bool) -> bool:
    """Boolean pre-backend API: ``True`` selects ``"fast"``, ``False``
    selects ``"reference"``.  Returns the previous boolean state.
    """
    previous = ENABLED
    set_backend("fast" if enabled else "reference")
    return previous


#: opt-in pre-execution static verification gate (``ROLP_STATIC_CHECK=1``):
#: VMs snapshot this at construction and verify each root method's
#: program call tree before its first execution.  The gate is read-only
#: (see repro.analysis.staticcheck), so enabled runs are byte-identical
#: to unchecked runs; disabled, the only cost is one attribute test per
#: root invocation (null-hook pattern).
STATIC_CHECK: bool = os.environ.get("ROLP_STATIC_CHECK", "") == "1"


def static_check_enabled() -> bool:
    """Whether the pre-execution static verification gate is on."""
    return STATIC_CHECK


def set_static_check(enabled: bool) -> bool:
    """Toggle the static-check gate; returns the previous value.  Like
    :func:`set_backend`, only VMs constructed after the flip observe it.
    """
    global STATIC_CHECK
    previous = STATIC_CHECK
    STATIC_CHECK = bool(enabled)
    return previous

"""Global switch for the hot-path fast implementations.

The performance pass (see docs/performance.md) keeps every optimised
hot path next to its original *reference* implementation: components
capture the switch at construction time and choose one or the other.
The differential equivalence suite (tests/test_perf_equivalence.py) and
the ``rolp-bench perf`` kernels run both and assert byte-identical
behaviour, so the fast paths can default to on without moving any
rendered figure or table.

Semantics:

* ``ROLP_FAST_PATHS=0`` in the environment disables the fast paths for
  the whole process (any other value, or unset, enables them).
* :func:`set_fast_paths` flips the process-wide default at runtime and
  returns the previous value; only components constructed *after* the
  flip observe it (VMs, profilers, collectors and OLD tables capture
  the flag in ``__init__``), which keeps a running simulation on one
  consistent implementation.
"""

from __future__ import annotations

import os

#: process-wide default, captured by components at construction time
ENABLED: bool = os.environ.get("ROLP_FAST_PATHS", "1") != "0"


def fast_paths_enabled() -> bool:
    """The current process-wide fast-path default."""
    return ENABLED


def set_fast_paths(enabled: bool) -> bool:
    """Set the process-wide default; returns the previous value.

    Tests toggle this around VM construction to run the reference and
    fast implementations against each other.
    """
    global ENABLED
    previous = ENABLED
    ENABLED = bool(enabled)
    return previous

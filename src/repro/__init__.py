"""ROLP reproduction: a runtime object lifetime profiler with a
pretenuring collector, on a simulated JVM substrate.

Reproduces "Runtime Object Lifetime Profiler for Latency Sensitive Big
Data Applications" (EuroSys 2019).  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the per-table/figure results.

Quickstart::

    from repro import build_vm

    vm, profiler = build_vm("rolp", heap_mb=256)
    # ... run a workload through vm (see examples/quickstart.py)
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import PackageFilter, RolpConfig, RolpProfiler
from repro.gc import CMSCollector, Collector, G1Collector, NG2CCollector, ZGCCollector
from repro.heap import BandwidthModel, RegionHeap
from repro.runtime import JavaVM, NullProfiler, VMFlags
from repro.telemetry import NULL_TELEMETRY, Telemetry, TelemetrySession

__version__ = "1.0.0"

#: the five systems compared in the paper's evaluation
COLLECTOR_NAMES = ("g1", "cms", "zgc", "ng2c", "rolp")


def build_vm(
    collector: str = "g1",
    heap_mb: int = 256,
    region_kb: int = 1024,
    young_regions: int = 0,
    bandwidth: Optional[BandwidthModel] = None,
    flags: Optional[VMFlags] = None,
    rolp_config: Optional[RolpConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[JavaVM, Optional[RolpProfiler]]:
    """Build a simulated JVM with one of the paper's five setups.

    ``collector`` is one of :data:`COLLECTOR_NAMES`:

    * ``"g1"`` — the default HotSpot collector (baseline);
    * ``"cms"`` — the throughput-oriented collector;
    * ``"zgc"`` — the fully concurrent collector;
    * ``"ng2c"`` — pretenuring via hand annotations (``gen_hint``);
    * ``"rolp"`` — NG2C driven by the ROLP profiler (no annotations).

    Returns ``(vm, profiler)`` — ``profiler`` is None except for
    ``"rolp"``.
    """
    if collector not in COLLECTOR_NAMES:
        raise ValueError(
            "unknown collector %r (expected one of %s)" % (collector, COLLECTOR_NAMES)
        )
    heap = RegionHeap(heap_mb * (1 << 20), region_kb * (1 << 10))
    bandwidth = bandwidth or BandwidthModel()
    profiler: Optional[RolpProfiler] = None
    if collector == "g1":
        gc: Collector = G1Collector(heap, bandwidth, young_regions=young_regions)
    elif collector == "cms":
        gc = CMSCollector(heap, bandwidth, young_regions=young_regions)
    elif collector == "zgc":
        gc = ZGCCollector(heap, bandwidth)
    elif collector == "ng2c":
        gc = NG2CCollector(
            heap, bandwidth, young_regions=young_regions, use_profiler_advice=False
        )
    else:  # rolp
        gc = NG2CCollector(
            heap, bandwidth, young_regions=young_regions, use_profiler_advice=True
        )
        profiler = RolpProfiler(rolp_config)
    vm = JavaVM(gc, profiler, flags, telemetry)
    return vm, profiler


__all__ = [
    "BandwidthModel",
    "COLLECTOR_NAMES",
    "CMSCollector",
    "Collector",
    "G1Collector",
    "JavaVM",
    "NG2CCollector",
    "NULL_TELEMETRY",
    "NullProfiler",
    "PackageFilter",
    "RegionHeap",
    "RolpConfig",
    "RolpProfiler",
    "Telemetry",
    "TelemetrySession",
    "VMFlags",
    "ZGCCollector",
    "build_vm",
    "__version__",
]

"""Unified telemetry: structured tracing + metrics for every layer.

One :class:`Telemetry` bundle (a tracer and a metrics registry) is
threaded through the VM, the JIT, the collectors, the ROLP profiler and
the conflict resolver.  The default is :data:`NULL_TELEMETRY` — a null
tracer and a no-op registry — so baseline runs record nothing, pay
nothing, and produce bit-identical numbers.

A :class:`TelemetrySession` spans *many* VM runs (one benchmark
invocation): every run gets its own tracer (its own process track in
the exported Chrome trace) while sharing one metrics registry and one
trace sink, so ``rolp-bench fig8 --trace-out trace.json`` shows the
four compared collectors side by side in Perfetto.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    PAUSE_HISTOGRAM_BUCKETS_MS,
)
from repro.telemetry.tracer import (
    NullTracer,
    TraceEvent,
    TraceSink,
    Tracer,
)


class Telemetry:
    """Tracer + metrics bundle wired through one VM run."""

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(
        self,
        tracer: Optional[NullTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else NullMetrics()
        #: cached so hot paths pay one attribute read, not two
        self.enabled = bool(self.tracer.enabled or self.metrics.enabled)

    @classmethod
    def for_run(cls, process_name: str = "run") -> "Telemetry":
        """A standalone enabled bundle (single-run convenience)."""
        return cls(TraceSink().tracer(process_name), MetricsRegistry())


#: the zero-cost default every component starts with
NULL_TELEMETRY = Telemetry()


class TelemetrySession:
    """Shared sink + registry across the runs of one bench invocation."""

    def __init__(self) -> None:
        self.sink = TraceSink()
        self.metrics = MetricsRegistry()

    def for_run(self, process_name: str = "") -> Telemetry:
        """Telemetry for one VM run: fresh tracer track, shared metrics."""
        return Telemetry(self.sink.tracer(process_name), self.metrics)

    def write_trace(self, path: str) -> None:
        self.sink.write_chrome(path)

    def write_trace_jsonl(self, path: str) -> None:
        self.sink.write_jsonl(path)

    def write_prometheus(self, path: str) -> None:
        self.metrics.write_prometheus(path)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullMetrics",
    "NullTracer",
    "PAUSE_HISTOGRAM_BUCKETS_MS",
    "Telemetry",
    "TelemetrySession",
    "TraceEvent",
    "TraceSink",
    "Tracer",
]

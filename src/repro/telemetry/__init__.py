"""Unified telemetry: structured tracing + metrics for every layer.

One :class:`Telemetry` bundle (a tracer and a metrics registry) is
threaded through the VM, the JIT, the collectors, the ROLP profiler and
the conflict resolver.  The default is :data:`NULL_TELEMETRY` — a null
tracer and a no-op registry — so baseline runs record nothing, pay
nothing, and produce bit-identical numbers.

A :class:`TelemetrySession` spans *many* VM runs (one benchmark
invocation): every run gets its own tracer (its own process track in
the exported Chrome trace) while sharing one metrics registry and one
trace sink, so ``rolp-bench fig8 --trace-out trace.json`` shows the
four compared collectors side by side in Perfetto.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.flightrec import (
    DEFAULT_CAPACITY as FLIGHT_RECORDER_DEFAULT_CAPACITY,
    FlightRecorder,
    RetentionPolicy,
    capacity_from_env,
    resolve_capacity,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    PAUSE_HISTOGRAM_BUCKETS_MS,
)
from repro.telemetry.tracer import (
    NullTracer,
    TeeTracer,
    TraceEvent,
    TraceSink,
    Tracer,
)


class Telemetry:
    """Tracer + metrics bundle wired through one VM run."""

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(
        self,
        tracer: Optional[NullTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else NullMetrics()
        #: cached so hot paths pay one attribute read, not two
        self.enabled = bool(self.tracer.enabled or self.metrics.enabled)

    @classmethod
    def for_run(cls, process_name: str = "run") -> "Telemetry":
        """A standalone enabled bundle (single-run convenience)."""
        return cls(TraceSink().tracer(process_name), MetricsRegistry())


#: the zero-cost default every component starts with
NULL_TELEMETRY = Telemetry()


class TelemetrySession:
    """Shared sink + registry across the runs of one bench invocation.

    ``flight_recorder`` (a :class:`FlightRecorder`) adds bounded
    always-on recording alongside — or, with ``record_trace=False``,
    instead of — the unbounded trace sink.  ``max_trace_events`` caps
    the sink; events past the cap are counted, not buffered.
    """

    def __init__(
        self,
        flight_recorder: Optional[FlightRecorder] = None,
        max_trace_events: Optional[int] = None,
        record_trace: bool = True,
    ) -> None:
        self.sink = TraceSink(max_events=max_trace_events)
        self.metrics = MetricsRegistry()
        self.flight_recorder = flight_recorder
        self.record_trace = record_trace

    def for_run(self, process_name: str = "", trace_id: str = "") -> Telemetry:
        """Telemetry for one VM run: fresh tracer track, shared metrics.

        ``trace_id`` stamps every event the run records, joining the
        trace/flight-recording back to the bench cell that produced it.
        """
        tracers = []
        if self.record_trace:
            tracers.append(self.sink.tracer(process_name, trace_id=trace_id))
        if self.flight_recorder is not None:
            tracers.append(self.flight_recorder.tracer(process_name, trace_id=trace_id))
        if not tracers:
            tracer: NullTracer = NullTracer()
        elif len(tracers) == 1:
            tracer = tracers[0]
        else:
            tracer = TeeTracer(tracers)
        return Telemetry(tracer, self.metrics)

    def scoped(
        self,
        flight_recorder: Optional[FlightRecorder] = None,
        max_trace_events: Optional[int] = None,
        record_trace: bool = False,
    ) -> "TelemetrySession":
        """A child session with its *own* sink and flight recorder but
        the parent's metrics registry.

        This is the fleet server's per-session telemetry scope: each
        server session records lifecycle events (and optional flight
        recordings) into its own bounded ring — dumpable and droppable
        independently — while every counter still lands in the one
        registry ``/metrics`` exports.
        """
        child = TelemetrySession(
            flight_recorder=flight_recorder,
            max_trace_events=max_trace_events,
            record_trace=record_trace,
        )
        child.metrics = self.metrics
        return child

    def telemetry_counters(self) -> dict:
        """Bookkeeping surfaced under ``--metrics-out``: sink size/drops
        and (when enabled) the flight recorder's bound-proving counters."""
        return {
            "trace_events": len(self.sink.events),
            "trace_events_dropped": self.sink.dropped_events,
            "flight_recorder": (
                self.flight_recorder.counters() if self.flight_recorder is not None else None
            ),
        }

    def write_trace(self, path: str) -> None:
        self.sink.write_chrome(path)

    def write_trace_jsonl(self, path: str) -> None:
        self.sink.write_jsonl(path)

    def write_prometheus(self, path: str) -> None:
        self.metrics.write_prometheus(path)


__all__ = [
    "Counter",
    "FLIGHT_RECORDER_DEFAULT_CAPACITY",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullMetrics",
    "NullTracer",
    "PAUSE_HISTOGRAM_BUCKETS_MS",
    "RetentionPolicy",
    "Telemetry",
    "TelemetrySession",
    "TeeTracer",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "capacity_from_env",
    "resolve_capacity",
]

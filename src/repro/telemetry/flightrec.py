"""Always-on flight recorder: a bounded ring of recent runtime events.

The PR 1 tracer buffers every event it sees, which is perfect for
short diagnostic runs and hopeless for always-on use — a fig6-scale
grid emits millions of alloc/call instants.  The flight recorder is the
JFR-style answer the ROLP/NG2C papers assume from HotSpot: recording is
*continuous* but memory is *fixed*, so the recorder can stay enabled in
production-shaped runs and be dumped on demand (``--flight-out``) or on
an invariant violation (the PR 3 verifier tripping).

Two retention classes, two rings:

* **critical** events (GC pauses, safepoints, JIT compiles, deopts,
  ROLP profiler maintenance, verifier findings) are always kept; when
  the critical ring fills, the *oldest* critical events fall off.
* **hot** events (per-allocation / per-call instants, delivered via the
  :meth:`~repro.telemetry.tracer.NullTracer.hot_instant` channel) are
  deterministically sampled 1-in-``sample_every`` before entering the
  smaller sampled ring.

Events are stored as compact tuples, not :class:`TraceEvent` objects —
materialisation happens only at dump time.  Everything is counted:
``events_seen``, ``events_sampled_out``, ``events_evicted`` and the
retained totals let tests (and the CI ``explain-smoke`` job) assert the
memory bound instead of trusting it.

Enable via ``--flight-recorder[=N]`` on ``rolp-bench`` or the
``ROLP_FLIGHT_RECORDER`` environment variable (``0``/unset = off,
``1`` = default capacity, any other integer = that many events).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .tracer import PHASE_INSTANT, PHASE_SPAN, NullTracer, TraceEvent, TraceSink

#: total event slots (critical + sampled rings) when none is specified
DEFAULT_CAPACITY = 65536

#: environment switch mirrored by the ``--flight-recorder`` CLI flag
ENV_VAR = "ROLP_FLIGHT_RECORDER"

#: rough per-slot cost of one encoded tuple event (python object
#: overhead dominates); used for the ``memory_bytes_estimate`` counter
EVENT_ESTIMATE_BYTES = 200


@dataclass(frozen=True)
class RetentionPolicy:
    """What the recorder keeps versus samples.

    ``keep_categories`` ride the critical ring un-sampled; everything
    arriving on the hot channel is decimated 1-in-``sample_every`` by a
    plain counter (no RNG — recording must never perturb simulation
    determinism).  ``critical_fraction`` splits the total capacity
    between the two rings.
    """

    keep_categories: frozenset = frozenset(
        {"gc", "safepoint", "jit", "deopt", "rolp", "verify", "lock"}
    )
    sample_every: int = 8
    critical_fraction: float = 0.75

    def split(self, capacity: int) -> Tuple[int, int]:
        """(critical slots, sampled slots) for a total ``capacity``."""
        critical = max(1, int(capacity * self.critical_fraction))
        critical = min(critical, capacity - 1) if capacity > 1 else capacity
        return critical, max(0, capacity - critical)


DEFAULT_POLICY = RetentionPolicy()

# compact tuple layout (index -> field)
_SEQ, _PHASE, _NAME, _TS, _DUR, _PID, _TID, _CAT, _TRACE, _SPAN, _ARGS = range(11)


class _Ring:
    """Fixed-capacity overwrite-oldest buffer of encoded events."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._slots: List[Optional[tuple]] = [None] * capacity
        self._head = 0  # next write position
        self.appended = 0
        self.evicted = 0

    def __len__(self) -> int:
        return min(self.appended, self.capacity)

    def append(self, item: tuple) -> None:
        if self.capacity == 0:
            self.evicted += 1
            return
        if self.appended >= self.capacity:
            self.evicted += 1
        self._slots[self._head] = item
        self._head = (self._head + 1) % self.capacity
        self.appended += 1

    def snapshot(self) -> List[tuple]:
        """Retained events, oldest first."""
        if self.appended < self.capacity:
            return [s for s in self._slots[: self.appended]]
        tail = self._slots[self._head :] + self._slots[: self._head]
        return [s for s in tail if s is not None]


class RecorderTracer(NullTracer):
    """Tracer facade writing compact tuples into a :class:`FlightRecorder`.

    One per VM run, like :meth:`TraceSink.tracer` — it owns a pid in the
    eventual dump and stamps every event with the run's ``trace_id``.
    """

    enabled = True
    wants_hot_events = True

    def __init__(self, recorder: "FlightRecorder", pid: int, clock=None, trace_id: str = "") -> None:
        self.recorder = recorder
        self.pid = pid
        self.trace_id = trace_id
        self._clock = clock

    def bind_clock(self, clock) -> None:
        if self._clock is None:
            self._clock = clock

    def _now(self, ts_ns: Optional[int]) -> int:
        if ts_ns is not None:
            return int(ts_ns)
        return self._clock.now_ns if self._clock is not None else 0

    def _encode(self, phase, name, ts_ns, dur_ns, tid, category, args) -> tuple:
        span_id = str(args.pop("span_id", ""))
        recorder = self.recorder
        seq = recorder._next_seq
        recorder._next_seq = seq + 1
        return (
            seq,
            phase,
            name,
            ts_ns,
            dur_ns,
            self.pid,
            tid,
            category,
            self.trace_id,
            span_id,
            tuple(sorted(args.items())),
        )

    def hot_instant(self, name, ts_ns=None, category="", tid=0, **args) -> None:
        self.recorder.record_hot(
            self._encode(PHASE_INSTANT, name, self._now(ts_ns), 0.0, tid, category, args)
        )

    def instant(self, name, ts_ns=None, category="", tid=0, **args) -> None:
        self.recorder.record(
            self._encode(PHASE_INSTANT, name, self._now(ts_ns), 0.0, tid, category, args)
        )

    def span(self, name, start_ns, duration_ns, category="", tid=0, **args) -> None:
        self.recorder.record(
            self._encode(PHASE_SPAN, name, int(start_ns), float(duration_ns), tid, category, args)
        )


class FlightRecorder:
    """Bounded always-on event recorder shared by the runs of one session."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        policy: RetentionPolicy = DEFAULT_POLICY,
    ) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive (got %r)" % capacity)
        self.capacity = capacity
        self.policy = policy
        critical_slots, sampled_slots = policy.split(capacity)
        self._critical = _Ring(critical_slots)
        self._sampled = _Ring(sampled_slots)
        self.process_names: Dict[int, str] = {}
        self._next_pid = 1
        self._next_seq = 0
        self.events_seen = 0
        self.events_sampled_out = 0
        self._hot_counter = 0

    # -- recording ----------------------------------------------------------

    def tracer(self, process_name: str = "", clock=None, trace_id: str = "") -> RecorderTracer:
        """A new per-run tracer recording into this recorder."""
        pid = self._next_pid
        self._next_pid += 1
        self.process_names[pid] = process_name or ("run-%d" % pid)
        return RecorderTracer(self, pid=pid, clock=clock, trace_id=trace_id)

    def record(self, encoded: tuple) -> None:
        """Route one encoded event by its category's retention class."""
        self.events_seen += 1
        if encoded[_CAT] in self.policy.keep_categories:
            self._critical.append(encoded)
        else:
            self._record_sampled(encoded)

    def record_hot(self, encoded: tuple) -> None:
        """The high-frequency alloc/call channel: always sampled."""
        self.events_seen += 1
        self._record_sampled(encoded)

    def _record_sampled(self, encoded: tuple) -> None:
        self._hot_counter += 1
        if self.policy.sample_every > 1 and self._hot_counter % self.policy.sample_every:
            self.events_sampled_out += 1
            return
        self._sampled.append(encoded)

    # -- accounting ---------------------------------------------------------

    def retained(self) -> int:
        return len(self._critical) + len(self._sampled)

    def counters(self) -> Dict[str, int]:
        """Bound-proving counters, exported under ``--metrics-out``."""
        retained = self.retained()
        return {
            "capacity": self.capacity,
            "retained": retained,
            "retained_critical": len(self._critical),
            "retained_sampled": len(self._sampled),
            "events_seen": self.events_seen,
            "events_sampled_out": self.events_sampled_out,
            "events_evicted": self._critical.evicted + self._sampled.evicted,
            "memory_bytes_estimate": retained * EVENT_ESTIMATE_BYTES,
        }

    # -- dumping ------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """Retained events materialised as :class:`TraceEvent`, time order."""
        encoded = self._critical.snapshot() + self._sampled.snapshot()
        encoded.sort(key=lambda e: (e[_TS], e[_SEQ]))
        return [
            TraceEvent(
                name=e[_NAME],
                phase=e[_PHASE],
                ts_ns=e[_TS],
                dur_ns=e[_DUR],
                pid=e[_PID],
                tid=e[_TID],
                category=e[_CAT],
                args=dict(e[_ARGS]),
                trace_id=e[_TRACE],
                span_id=e[_SPAN],
            )
            for e in encoded
        ]

    def to_sink(self) -> TraceSink:
        """The retained window as a TraceSink, reusing its exporters."""
        sink = TraceSink()
        sink.process_names.update(self.process_names)
        sink.events.extend(self.events())
        return sink

    def to_chrome(self) -> Dict[str, object]:
        return self.to_sink().to_chrome()

    def to_jsonl(self) -> str:
        return self.to_sink().to_jsonl()

    def write_chrome(self, path: str) -> None:
        self.to_sink().write_chrome(path)

    def write_jsonl(self, path: str) -> None:
        self.to_sink().write_jsonl(path)

    def dump(self, path: str) -> None:
        """Dump-on-demand / dump-on-violation entry point (JSONL plus a
        trailing counters line, so a dump is self-describing)."""
        sink = self.to_sink()
        with open(path, "w") as handle:
            text = sink.to_jsonl()
            if text:
                handle.write(text + "\n")
            handle.write(json.dumps({"flight_recorder": self.counters()}, sort_keys=True) + "\n")


def capacity_from_env(environ=None) -> Optional[int]:
    """Recorder capacity requested via ``ROLP_FLIGHT_RECORDER``.

    ``None`` means off; ``1`` (or any truthy non-integer like ``on``)
    selects :data:`DEFAULT_CAPACITY`; any larger integer is a capacity.
    """
    environ = os.environ if environ is None else environ
    raw = environ.get(ENV_VAR, "").strip()
    if raw in ("", "0", "off", "false"):
        return None
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_CAPACITY
    if value <= 0:
        return None
    if value == 1:
        return DEFAULT_CAPACITY
    return value


def resolve_capacity(cli_value: Optional[int], environ=None) -> Optional[int]:
    """Merge the CLI flag with the environment switch.

    ``cli_value`` is ``None`` when ``--flight-recorder`` was absent
    (environment decides), ``-1`` for the bare flag (default capacity)
    and a positive integer for ``--flight-recorder=N``.
    """
    if cli_value is None:
        return capacity_from_env(environ)
    if cli_value == -1 or cli_value == 1:
        return DEFAULT_CAPACITY
    if cli_value <= 0:
        return None
    return cli_value

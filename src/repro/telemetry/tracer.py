"""Structured event tracing on the simulated clock.

Every interesting runtime moment — a JIT compile, an OSR, each GC
pause, an OLD-table merge, a conflict-resolution step, a biased-lock
revocation — can be recorded as a :class:`TraceEvent` carrying the
simulated-nanosecond timestamp at which it happened.  Two export
formats:

* **JSONL** — one event object per line, trivially greppable/diffable;
* **Chrome ``trace_event``** — a ``{"traceEvents": [...]}`` document
  that opens directly in ``chrome://tracing`` or https://ui.perfetto.dev,
  with one *process* track per VM run so multi-run benchmark traces
  (e.g. the four collectors of Figure 8) sit side by side.

The default is a :class:`NullTracer`, whose methods are no-ops and
whose ``enabled`` flag lets hot paths skip building event arguments
entirely — baseline runs pay nothing and produce bit-identical numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: event phases (the Chrome trace_event vocabulary subset we emit)
PHASE_SPAN = "X"     # complete event: ts + dur
PHASE_INSTANT = "i"  # instant event: ts only


@dataclass
class TraceEvent:
    """One recorded event, timestamped on the simulated clock."""

    name: str
    phase: str
    ts_ns: int
    dur_ns: float = 0.0
    pid: int = 0
    tid: int = 0
    category: str = ""
    args: Dict[str, object] = field(default_factory=dict)
    #: fleet identity: the cell trace id this event belongs to ("" when
    #: the run is not part of a bench grid) and an optional per-event
    #: span id (e.g. ``gc-12/young``) joinable from pause reports
    trace_id: str = ""
    span_id: str = ""

    def to_chrome(self) -> Dict[str, object]:
        """This event as a Chrome ``trace_event`` dict (ts/dur in µs)."""
        args = dict(self.args)
        # Chrome's viewer surfaces args per slice; the ids ride there so
        # documents without them stay byte-for-byte what they were.
        if self.trace_id:
            args["trace_id"] = self.trace_id
        if self.span_id:
            args["span_id"] = self.span_id
        event: Dict[str, object] = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.ts_ns / 1e3,
            "pid": self.pid,
            "tid": self.tid,
            "cat": self.category or "repro",
            "args": args,
        }
        if self.phase == PHASE_SPAN:
            event["dur"] = self.dur_ns / 1e3
        elif self.phase == PHASE_INSTANT:
            event["s"] = "p"  # process-scoped instant marker
        return event

    def to_jsonl(self) -> Dict[str, object]:
        """This event as a flat dict for JSONL output (times in ns)."""
        return {
            "name": self.name,
            "phase": self.phase,
            "ts_ns": self.ts_ns,
            "dur_ns": self.dur_ns,
            "pid": self.pid,
            "tid": self.tid,
            "category": self.category,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "args": dict(self.args),
        }


class NullTracer:
    """Does nothing; costs nothing.  The default on every VM."""

    enabled = False
    #: whether this tracer wants the *hot* event stream (per-allocation
    #: and per-call instants).  Only bounded consumers — the flight
    #: recorder's sampling ring — opt in; the unbounded TraceSink never
    #: does, so ``--trace-out`` files stay proportional to GC activity.
    wants_hot_events = False

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock used for implicit timestamps."""

    def hot_instant(
        self,
        name: str,
        ts_ns: Optional[int] = None,
        category: str = "",
        tid: int = 0,
        **args,
    ) -> None:
        """High-frequency instant (alloc/call streams).  Dropped unless
        the tracer opted in via :attr:`wants_hot_events`."""

    def instant(
        self,
        name: str,
        ts_ns: Optional[int] = None,
        category: str = "",
        tid: int = 0,
        **args,
    ) -> None:
        """Record a point-in-time event."""

    def span(
        self,
        name: str,
        start_ns: int,
        duration_ns: float,
        category: str = "",
        tid: int = 0,
        **args,
    ) -> None:
        """Record an event with a duration (e.g. a GC pause)."""


class TraceSink:
    """Shared event buffer for one trace file.

    Each VM run records through its own :class:`Tracer` (its own
    process id in the exported trace); the sink owns the combined event
    list and the exporters.

    ``max_events`` (optional) bounds the buffer: once full, further
    events are counted in :attr:`dropped_events` instead of silently
    growing memory — the cap for long always-on invocations where the
    full trace is not the point (the flight recorder's ring is the
    retention-aware alternative).
    """

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.events: List[TraceEvent] = []
        self.process_names: Dict[int, str] = {}
        self.max_events = max_events
        #: events refused because the buffer reached ``max_events``
        self.dropped_events = 0
        self._next_pid = 1

    def tracer(self, process_name: str = "", clock=None, trace_id: str = "") -> "Tracer":
        """A new tracer writing into this sink under a fresh pid."""
        pid = self._next_pid
        self._next_pid += 1
        self.process_names[pid] = process_name or ("run-%d" % pid)
        return Tracer(self, pid=pid, clock=clock, trace_id=trace_id)

    def append(self, event: TraceEvent) -> None:
        """Buffer one event, honouring the ``max_events`` cap."""
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    # -- exporters ----------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """The full trace as a Chrome ``trace_event`` document."""
        metadata = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
            for pid, name in sorted(self.process_names.items())
        ]
        return {
            "traceEvents": metadata + [e.to_chrome() for e in self.events],
            "displayTimeUnit": "ms",
        }

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(e.to_jsonl(), sort_keys=True) for e in self.events)

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(), handle)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            text = self.to_jsonl()
            if text:
                handle.write(text + "\n")


class Tracer(NullTracer):
    """Records events into a :class:`TraceSink`.

    Timestamps come from the explicit ``ts_ns``/``start_ns`` argument
    when the caller knows the event time (pause records), otherwise from
    the bound simulated clock (instants fired mid-mutator).
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        pid: int = 1,
        clock=None,
        trace_id: str = "",
    ) -> None:
        if sink is None:
            sink = TraceSink()
            sink.process_names[pid] = "main"
            sink._next_pid = pid + 1
        self.sink = sink
        self.pid = pid
        self.trace_id = trace_id
        self._clock = clock

    @property
    def events(self) -> List[TraceEvent]:
        return self.sink.events

    def bind_clock(self, clock) -> None:
        """First clock wins: one tracer belongs to one VM run."""
        if self._clock is None:
            self._clock = clock

    def _now(self, ts_ns: Optional[int]) -> int:
        if ts_ns is not None:
            return int(ts_ns)
        return self._clock.now_ns if self._clock is not None else 0

    def instant(
        self,
        name: str,
        ts_ns: Optional[int] = None,
        category: str = "",
        tid: int = 0,
        **args,
    ) -> None:
        span_id = str(args.pop("span_id", ""))
        self.sink.append(
            TraceEvent(
                name=name,
                phase=PHASE_INSTANT,
                ts_ns=self._now(ts_ns),
                pid=self.pid,
                tid=tid,
                category=category,
                args=args,
                trace_id=self.trace_id,
                span_id=span_id,
            )
        )

    def span(
        self,
        name: str,
        start_ns: int,
        duration_ns: float,
        category: str = "",
        tid: int = 0,
        **args,
    ) -> None:
        span_id = str(args.pop("span_id", ""))
        self.sink.append(
            TraceEvent(
                name=name,
                phase=PHASE_SPAN,
                ts_ns=int(start_ns),
                dur_ns=float(duration_ns),
                pid=self.pid,
                tid=tid,
                category=category,
                args=args,
                trace_id=self.trace_id,
                span_id=span_id,
            )
        )


class TeeTracer(NullTracer):
    """Fans one event stream out to several tracers.

    Used when a run records into both the trace sink (``--trace-out``)
    and the flight recorder: components bind one tracer, and the tee
    forwards.  ``wants_hot_events`` is the OR of the children, so the
    hot alloc/call stream is built only when some child keeps it.
    """

    enabled = True

    def __init__(self, children) -> None:
        self.children = list(children)
        self.wants_hot_events = any(
            getattr(child, "wants_hot_events", False) for child in self.children
        )

    def bind_clock(self, clock) -> None:
        for child in self.children:
            child.bind_clock(clock)

    def hot_instant(self, name, ts_ns=None, category="", tid=0, **args) -> None:
        for child in self.children:
            if getattr(child, "wants_hot_events", False):
                child.hot_instant(name, ts_ns=ts_ns, category=category, tid=tid, **args)

    def instant(self, name, ts_ns=None, category="", tid=0, **args) -> None:
        for child in self.children:
            child.instant(name, ts_ns=ts_ns, category=category, tid=tid, **args)

    def span(self, name, start_ns, duration_ns, category="", tid=0, **args) -> None:
        for child in self.children:
            child.span(name, start_ns, duration_ns, category=category, tid=tid, **args)

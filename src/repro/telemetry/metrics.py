"""Metrics registry: counters, gauges and histograms with labels.

The registry is the numeric side of the telemetry layer: cheap
instruments the runtime increments as it goes (allocations by site,
bytes copied per collector, the pause-time histogram, instrumented
method counts, lost OLD-table increments), exported as either
Prometheus text exposition format or a plain JSON document.

Instrument handles are cached by the instrumented components at
telemetry-bind time, so the hot-path cost is one method call — and with
the :class:`NullMetrics` default that call is a no-op.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: default buckets for the GC pause-time histogram, mirroring Figure 9's
#: duration intervals (upper edges in ms; the last bucket is open)
PAUSE_HISTOGRAM_BUCKETS_MS = (1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)

_LabelKey = Tuple[Tuple[str, str], ...]


def _key(labels: Dict[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    return "{%s}" % ",".join('%s="%s"' % (k, v) for k, v in key)


class Counter:
    """Monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        key = _key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label combination."""
        return sum(self._values.values())

    def samples(self) -> Iterator[Tuple[_LabelKey, float]]:
        for key in sorted(self._values):
            yield key, self._values[key]

    def to_json(self) -> List[Dict[str, object]]:
        return [
            {"labels": dict(key), "value": value} for key, value in self.samples()
        ]

    def to_prometheus(self) -> List[str]:
        return [
            "%s%s %s" % (self.name, _render_labels(key), _format(value))
            for key, value in self.samples()
        ]


class Gauge(Counter):
    """A value that can go up and down (instantaneous state)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._values[_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: ``le`` edges)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = PAUSE_HISTOGRAM_BUCKETS_MS,
        help: str = "",
    ) -> None:
        edges = [float(b) for b in buckets]
        if not edges or edges != sorted(edges):
            raise ValueError("histogram buckets must be ascending and non-empty")
        self.name = name
        self.help = help
        self.buckets = tuple(edges)
        #: per-labelset: one count per bucket plus the overflow bucket
        self._counts: Dict[_LabelKey, List[int]] = {}
        self._sums: Dict[_LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        key = _key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = [0] * (len(self.buckets) + 1)
            self._counts[key] = counts
            self._sums[key] = 0.0
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
        self._sums[key] += value

    def counts(self, **labels) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        return list(self._counts.get(_key(labels), [0] * (len(self.buckets) + 1)))

    def total_counts(self) -> List[int]:
        """Per-bucket counts summed across every label combination."""
        totals = [0] * (len(self.buckets) + 1)
        for counts in self._counts.values():
            for i, count in enumerate(counts):
                totals[i] += count
        return totals

    def sum(self, **labels) -> float:
        return self._sums.get(_key(labels), 0.0)

    def count(self, **labels) -> int:
        return sum(self._counts.get(_key(labels), ()))

    def percentile(self, q: float, **labels) -> float:
        """Estimate the ``q``-th percentile (0–100) for one label set.

        Linear interpolation within the containing bucket, taking the
        previous bucket edge (or 0) as the lower bound.  Values that
        landed in the open overflow bucket are clamped to the last
        finite edge — the histogram cannot resolve beyond it.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100] (got %r)" % q)
        counts = self._counts.get(_key(labels))
        if counts is None:
            return 0.0
        total = sum(counts)
        if total == 0:
            return 0.0
        rank = q / 100.0 * total
        cumulative = 0
        lower = 0.0
        for edge, count in zip(self.buckets, counts):
            if cumulative + count >= rank and count > 0:
                fraction = (rank - cumulative) / count
                return lower + (edge - lower) * max(0.0, min(1.0, fraction))
            cumulative += count
            lower = edge
        return self.buckets[-1]

    def samples(self) -> Iterator[Tuple[_LabelKey, List[int], float]]:
        for key in sorted(self._counts):
            yield key, self._counts[key], self._sums[key]

    def to_json(self) -> List[Dict[str, object]]:
        return [
            {
                "labels": dict(key),
                "buckets": list(self.buckets),
                "counts": list(counts),
                "sum": total,
                "count": sum(counts),
            }
            for key, counts, total in self.samples()
        ]

    def to_prometheus(self) -> List[str]:
        lines: List[str] = []
        for key, counts, total in self.samples():
            cumulative = 0
            for edge, count in zip(self.buckets, counts):
                cumulative += count
                bucket_key = key + (("le", "%g" % edge),)
                lines.append(
                    "%s_bucket%s %d" % (self.name, _render_labels(bucket_key), cumulative)
                )
            cumulative += counts[-1]
            inf_key = key + (("le", "+Inf"),)
            lines.append(
                "%s_bucket%s %d" % (self.name, _render_labels(inf_key), cumulative)
            )
            lines.append("%s_sum%s %s" % (self.name, _render_labels(key), _format(total)))
            lines.append("%s_count%s %d" % (self.name, _render_labels(key), cumulative))
        return lines


def _format(value: float) -> str:
    if float(value).is_integer():
        return "%d" % int(value)
    return repr(float(value))


class MetricsRegistry:
    """Get-or-create home for every instrument in one telemetry session."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, kind: str, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise TypeError(
                "metric %r already registered as a %s" % (name, instrument.kind)
            )
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = PAUSE_HISTOGRAM_BUCKETS_MS,
        help: str = "",
    ) -> Histogram:
        return self._get(name, "histogram", lambda: Histogram(name, buckets, help))

    def instruments(self) -> List[object]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    # -- exporters ----------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            instrument.name: {
                "type": instrument.kind,
                "help": instrument.help,
                "samples": instrument.to_json(),
            }
            for instrument in self.instruments()
        }

    def to_prometheus(self) -> str:
        # Ordering contract: instruments sort by name and samples sort by
        # rendered label key, so the exposition text is byte-stable across
        # runs regardless of increment order — diffable in CI artifacts.
        lines: List[str] = []
        for instrument in self.instruments():
            if instrument.help:
                lines.append("# HELP %s %s" % (instrument.name, instrument.help))
            lines.append("# TYPE %s %s" % (instrument.name, instrument.kind))
            lines.extend(instrument.to_prometheus())
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_prometheus())


class _NullInstrument:
    """Accepts every instrument operation and records nothing."""

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(MetricsRegistry):
    """Registry whose instruments are shared no-ops (the default)."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=PAUSE_HISTOGRAM_BUCKETS_MS, help=""):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def to_json(self) -> Dict[str, object]:
        return {}

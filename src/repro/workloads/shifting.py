"""A phase-shifting workload: the paper's dynamic-workload scenario.

ROLP's third design goal is coping with *unknown/dynamic* workloads —
the case where offline profiles (POLM2) and hand annotations (NG2C) go
stale.  This workload makes the scenario first-class: one allocation
context whose lifetime profile changes at a configurable phase
boundary.

* **Phase 1 (cache-heavy)** — every object from the context joins a
  bounded cache: middle-lived, worth pretenuring.
* **Phase 2 (request-heavy)** — only ``residual_cache_fraction`` of the
  objects stay cached; the rest die within the request.  A pretenured
  context now produces mostly-dead regions dotted with live stragglers
  — exactly the fragmentation signature Section 6's decrement loop
  keys on.

Under ROLP the pauses step down in phase 1 (learning), degrade at the
shift, then recover as the estimate is walked back; under an offline
profile they degrade at the shift and never recover.
"""

from __future__ import annotations

from typing import List, Optional

from repro.heap.object_model import SimObject
from repro.runtime import JavaVM, Method
from repro.workloads.base import Workload


class PhaseShiftWorkload(Workload):
    """Cache-heavy phase 1, request-heavy phase 2.

    Parameters
    ----------
    shift_at_op:
        Operation index of the phase boundary.
    residual_cache_fraction:
        Fraction of phase-2 allocations that stay cached (the live
        stragglers that make the old regions fragment).
    """

    name = "phase-shift"
    profiled_packages = ("app.data",)
    heap_mb = 24
    young_regions = 2
    default_ops = 200_000

    def __init__(
        self,
        shift_at_op: int = 100_000,
        cache_limit_bytes: int = 8 << 20,
        residual_cache_fraction: float = 0.02,
        object_bytes: int = 2048,
        reverse: bool = False,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= residual_cache_fraction <= 1.0:
            raise ValueError("residual_cache_fraction must be in [0, 1]")
        self.shift_at_op = shift_at_op
        self.cache_limit_bytes = cache_limit_bytes
        self.residual_cache_fraction = residual_cache_fraction
        self.object_bytes = object_bytes
        #: reverse=True runs request-heavy first, cache-heavy second —
        #: the lifetime-*increase* direction (objects suddenly living
        #: longer), which strands a stale young-everything profile
        self.reverse = reverse

        self.cache: List[SimObject] = []
        self.cache_bytes = 0
        self.phase = 1
        self._counter = 0

    # -- method graph -------------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        self.vm = vm
        self.make_thread("shift-worker")

        def handle(ctx):
            self._counter += 1
            cache_phase = 1 if not self.reverse else 2
            cache_fraction = (
                1.0
                if self.phase == cache_phase
                else self.residual_cache_fraction
            )
            keep = (self._counter * 0.6180339887) % 1.0 < cache_fraction
            if keep:
                obj = ctx.alloc(1, self.object_bytes)
                self.cache.append(obj)
                self.cache_bytes += obj.size
                if self.cache_bytes >= self.cache_limit_bytes:
                    self._evict_all(ctx.now_ns)
            else:
                ctx.alloc(1, self.object_bytes, lives_ns=20_000)
            ctx.work(2_000)

        self.m_handle = Method(
            "handle", "app.data.Handler", handle, bytecode_size=150
        )
        self.annotated_sites = 1

    def _evict_all(self, now_ns: int) -> None:
        for obj in self.cache:
            obj.kill_at(now_ns)
        self.cache.clear()
        self.cache_bytes = 0

    # -- operations --------------------------------------------------------------------

    def run_op(self, op_index: int) -> None:
        assert self.vm is not None
        if op_index == self.shift_at_op:
            self.phase = 2
        self.vm.run(self.threads[0], self.m_handle)

    def site_id(self) -> int:
        """The shifting context's allocation-site id (0 before JIT)."""
        site = self.m_handle.alloc_sites.get(1)
        return site.site_id if site else 0

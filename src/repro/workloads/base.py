"""Workload base classes and the run harness.

A workload is a simulated application: it declares the methods it runs
(so the JIT and package filters behave realistically), drives operations
through the VM, and manages the ground-truth lifetimes of the objects it
allocates (killing memtable entries on flush, cache entries on eviction,
and so on).

:func:`run_workload` is the single entry point the examples, benchmarks
and integration tests share: build a VM for a collector configuration,
run a workload on it, and collect a :class:`RunResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import build_vm
from repro.core import PackageFilter, RolpConfig, RolpProfiler
from repro.gc.collector import PauseEvent
from repro.metrics.pauses import duration_histogram, percentile_profile
from repro.metrics.throughput import ThroughputMeter
from repro.runtime import JavaVM, Method, SimThread


class Workload:
    """Base class for simulated applications.

    Subclasses set :attr:`name`, :attr:`profiled_packages` (the Table 1
    package filters) and implement :meth:`build` and :meth:`run_op`.
    """

    #: workload identifier used in reports
    name = "base"
    #: packages handed to ROLP's package filter (paper Table 1)
    profiled_packages: Sequence[str] = ()
    #: default heap sizing
    heap_mb = 128
    #: default eden budget in regions (0 = collector default)
    young_regions = 0
    #: default operation count for a standard run
    default_ops = 100_000

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.vm: Optional[JavaVM] = None
        self.threads: List[SimThread] = []
        #: allocation sites carrying NG2C hand annotations (Table 1's
        #: "NG2C" column counts these code locations)
        self.annotated_sites = 0

    # -- to implement -----------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        """Create methods/threads/state.  Must set ``self.vm``."""
        raise NotImplementedError

    def run_op(self, op_index: int) -> None:
        """Execute one application operation."""
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------------

    def make_thread(self, name: str) -> SimThread:
        assert self.vm is not None, "build() must run first"
        thread = self.vm.spawn_thread(name)
        self.threads.append(thread)
        return thread

    def package_filter(self) -> PackageFilter:
        if not self.profiled_packages:
            return PackageFilter.accept_all()
        return PackageFilter(include=list(self.profiled_packages))

    def count_sites(self) -> Tuple[int, int]:
        """(total allocation sites, total call sites) discovered across
        the workload's methods — denominators for Table 1/2's PAS/PMC."""
        alloc_sites = 0
        call_sites = 0
        for method in self.all_methods():
            alloc_sites += len(method.alloc_sites)
            call_sites += len(method.call_sites)
        return alloc_sites, call_sites

    def all_methods(self) -> List[Method]:
        """Every method object the workload created (for statistics)."""
        return [m for m in vars(self).values() if isinstance(m, Method)]


@dataclass
class RunResult:
    """Everything measured during one workload run."""

    workload: str
    collector: str
    operations: int
    elapsed_ms: float
    throughput_ops_s: float
    pauses: List[PauseEvent]
    max_memory_bytes: int
    gc_cycles: int
    vm_summary: Dict[str, float]
    profiler_summary: Optional[Dict[str, float]] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def pause_ms(self) -> List[float]:
        return [p.duration_ms for p in self.pauses]

    def percentiles(self, percentiles: Optional[Sequence[float]] = None) -> Dict[float, float]:
        if percentiles is None:
            return percentile_profile(self.pause_ms)
        return percentile_profile(self.pause_ms, percentiles)

    def histogram(self) -> List[Tuple[str, int]]:
        return duration_histogram(self.pause_ms)

    def pause_timeline(self) -> List[Tuple[float, float]]:
        """[(pause start in s, duration in ms), ...] — Figure 10 left."""
        return [(p.start_ns / 1e9, p.duration_ms) for p in self.pauses]


def run_workload(
    workload: Workload,
    collector: str = "g1",
    operations: Optional[int] = None,
    heap_mb: Optional[int] = None,
    rolp_config: Optional[RolpConfig] = None,
    mark_every: int = 0,
    flags=None,
    telemetry=None,
) -> RunResult:
    """Build a VM, run ``workload`` on it, return the measurements.

    ``collector`` is one of the five systems compared in the paper.  For
    the ``"rolp"`` configuration the workload's package filter is
    applied automatically (as the paper does for the large workloads).
    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) enables event
    tracing and metrics for the run; the default records nothing.
    """
    operations = operations or workload.default_ops
    heap_mb = heap_mb or workload.heap_mb
    if collector == "rolp" and rolp_config is None:
        rolp_config = RolpConfig(package_filter=workload.package_filter())
    vm, profiler = build_vm(
        collector,
        heap_mb=heap_mb,
        young_regions=workload.young_regions,
        rolp_config=rolp_config,
        flags=flags,
        telemetry=telemetry,
    )
    workload.build(vm)
    meter = ThroughputMeter(vm.clock)
    for op_index in range(operations):
        workload.run_op(op_index)
        meter.record()
        if mark_every and (op_index + 1) % mark_every == 0:
            meter.mark()
    return RunResult(
        workload=workload.name,
        collector=collector,
        operations=operations,
        elapsed_ms=vm.clock.now_ms,
        throughput_ops_s=meter.ops_per_second(),
        pauses=list(vm.collector.pauses),
        max_memory_bytes=vm.collector.max_memory_bytes(),
        gc_cycles=vm.collector.gc_cycles,
        vm_summary=vm.summary(),
        profiler_summary=profiler.summary() if profiler is not None else None,
    )

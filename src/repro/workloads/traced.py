"""Trace-calibrated workloads: demographies fitted from real GC logs.

The six curated workloads encode demographies we designed; this module
derives one from *evidence* instead.  Feed it a unified-logging GC log
(``[1.234s][info][gc] GC(42) Pause Young (normal) 61M->35M(96M) ...``)
and :func:`calibrate` fits a small demographic model:

* **heap capacity** — straight from the log lines,
* **live floor** — the resident set that survives every collection
  (minimum post-GC occupancy), modelled as long-lived objects built
  once at startup,
* **reclaim fraction** — the mean fraction of occupied heap each pause
  reclaims, modelled as the probability an allocation dies young,
* **allocation per cycle** — mean heap growth between consecutive
  pauses, which sets the volume-based lifetime of the medium-lived
  (survive-a-few-GCs) population.

:class:`TracedWorkload` then replays that demography through the normal
workload machinery, so a real application's GC behaviour can be pushed
through ROLP's profiler, the runner, cache, telemetry and
flight-recorder layers unchanged.

Parsing is strict (:class:`repro.metrics.gclog.GcLogParseError`): a
malformed or time-reversed log would calibrate a silently wrong
demography, so it is rejected instead of skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.gclog import GcLogRecord, parse_log
from repro.runtime import JavaVM, Method
from repro.workloads.base import Workload

#: a canned, deterministic sample log (a steadily growing service with a
#: ~21 MB resident set inside a 96 MB heap, mixed collections under
#: pressure) so the traced path is runnable without shipping real logs
SAMPLE_GC_LOG = "\n".join(
    [
        "[0.512s][info][gc] GC(0) Pause Young (normal) 24M->9M(96M) 1.912ms",
        "[1.101s][info][gc] GC(1) Pause Young (normal) 33M->12M(96M) 2.104ms",
        "[1.688s][info][gc] GC(2) Pause Young (normal) 36M->15M(96M) 2.230ms",
        "[2.290s][info][gc] GC(3) Pause Young (normal) 39M->17M(96M) 2.388ms",
        "[2.871s][info][gc] GC(4) Pause Young (mixed) 41M->19M(96M) 3.012ms",
        "[3.464s][info][gc] GC(5) Pause Young (normal) 43M->21M(96M) 2.455ms",
        "[4.049s][info][gc] GC(6) Pause Young (normal) 45M->22M(96M) 2.507ms",
        "[4.633s][info][gc] GC(7) Pause Young (mixed) 46M->21M(96M) 3.224ms",
        "[5.219s][info][gc] GC(8) Pause Young (normal) 45M->22M(96M) 2.481ms",
        "[5.804s][info][gc] GC(9) Pause Young (normal) 46M->23M(96M) 2.529ms",
        "[6.391s][info][gc] GC(10) Pause Young (mixed) 47M->21M(96M) 3.187ms",
        "[6.977s][info][gc] GC(11) Pause Young (normal) 45M->22M(96M) 2.466ms",
    ]
)


@dataclass(frozen=True)
class TraceCalibration:
    """The demographic model fitted from a GC log."""

    #: heap capacity observed in the log (MB)
    heap_mb: int
    #: resident set that survives every collection (MB)
    live_floor_mb: int
    #: mean fraction of occupied heap reclaimed per pause [0, 1]
    reclaim_fraction: float
    #: mean heap growth between consecutive pauses (MB)
    alloc_mb_per_cycle: float
    #: fraction of pauses that were mixed/full (old-region pressure)
    mixed_fraction: float
    #: number of GC lines the model was fitted from
    pause_count: int

    def validate(self) -> None:
        if self.pause_count < 2:
            raise ValueError(
                "calibration needs at least 2 GC records, got %d" % self.pause_count
            )
        if not 0.0 <= self.reclaim_fraction <= 1.0:
            raise ValueError(
                "reclaim_fraction %r outside [0, 1]" % (self.reclaim_fraction,)
            )
        if self.heap_mb <= 0 or self.live_floor_mb < 0:
            raise ValueError("non-positive heap geometry")


def calibrate(records: Sequence[GcLogRecord]) -> TraceCalibration:
    """Fit a :class:`TraceCalibration` from parsed GC records."""
    if len(records) < 2:
        raise ValueError(
            "calibration needs at least 2 GC records, got %d" % len(records)
        )
    heap_mb = max(r.heap_capacity_mb for r in records)
    live_floor_mb = min(r.heap_after_mb for r in records)
    reclaims = [
        (r.heap_before_mb - r.heap_after_mb) / r.heap_before_mb
        for r in records
        if r.heap_before_mb > 0
    ]
    reclaim_fraction = min(
        1.0, max(0.0, sum(reclaims) / len(reclaims)) if reclaims else 0.0
    )
    growths = [
        max(0, later.heap_before_mb - earlier.heap_after_mb)
        for earlier, later in zip(records, records[1:])
    ]
    alloc_mb_per_cycle = sum(growths) / len(growths)
    mixed = sum(1 for r in records if "mixed" in r.cause or "Full" in r.cause)
    calibration = TraceCalibration(
        heap_mb=heap_mb,
        live_floor_mb=live_floor_mb,
        reclaim_fraction=reclaim_fraction,
        alloc_mb_per_cycle=alloc_mb_per_cycle,
        mixed_fraction=mixed / len(records),
        pause_count=len(records),
    )
    calibration.validate()
    return calibration


def calibrate_log(text: str) -> TraceCalibration:
    """Strict-parse a unified-logging GC log and fit a calibration.

    Raises :class:`repro.metrics.gclog.GcLogParseError` on malformed or
    out-of-order input — a bad log must not silently calibrate a wrong
    demography.
    """
    return calibrate(parse_log(text, strict=True))


class TracedWorkload(Workload):
    """Replays the demography a :class:`TraceCalibration` describes.

    The operation stream is deterministic per ``(calibration, seed)``:
    startup builds the long-lived resident set, then each operation
    allocates a fixed number of objects whose death mode (die-young vs
    survive-some-GCs) follows the calibrated reclaim fraction via a
    deterministic Bresenham-style accumulator — no RNG in the hot loop.
    """

    name = "traced"
    profiled_packages = ("traced",)

    #: object size used for the churn population (bytes)
    CHURN_SIZE = 768
    #: object size used for the resident set (bytes)
    RESIDENT_SIZE = 1024
    #: churn allocations per operation — sized so a bench-scale op
    #: budget spans multiple calibrated GC cycles (~12 KB/op against
    #: the sample log's 24 MB/cycle means a cycle every ~2000 ops)
    ALLOCS_PER_OP = 16

    def __init__(
        self,
        calibration: Optional[TraceCalibration] = None,
        seed: int = 42,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(seed)
        self.calibration = calibration or calibrate_log(SAMPLE_GC_LOG)
        self.calibration.validate()
        if name is not None:
            self.name = name
        self.heap_mb = max(16, self.calibration.heap_mb)
        self.default_ops = 30_000
        #: resident set is built lazily across early operations so
        #: startup itself exercises the promotion path
        self._resident_target = max(
            0, (self.calibration.live_floor_mb << 20) // self.RESIDENT_SIZE
        )
        # keep the resident set inside half the heap even on weird logs
        self._resident_target = min(
            self._resident_target,
            (self.heap_mb << 19) // self.RESIDENT_SIZE,
        )
        self._resident_built = 0
        #: survivors' volume-based lifetime: they live for about two
        #: calibrated GC cycles of allocation
        self._survivor_lifetime_bytes = max(
            64 << 10, int(2 * self.calibration.alloc_mb_per_cycle * (1 << 20))
        )
        #: die-young probability, as a Bresenham accumulator increment
        self._die_young_step = self.calibration.reclaim_fraction
        self._die_young_acc = 0.0
        self._pending: List = []

    # -- construction ------------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        self.vm = vm
        self.make_thread("traced-worker-0")
        self.make_thread("traced-worker-1")

        def resident_body(ctx, count):
            for _ in range(count):
                ctx.alloc(1, self.RESIDENT_SIZE)  # immortal resident set
            ctx.work(50)

        def churn_young_body(ctx, count):
            ctx.work(30)
            for _ in range(count):
                ctx.alloc(1, self.CHURN_SIZE, lives_ns=15_000)

        def churn_survivor_body(ctx, count):
            ctx.work(30)
            return [ctx.alloc(1, self.CHURN_SIZE) for _ in range(count)]

        self.m_resident = Method(
            "grow", "traced.app.ResidentSet", resident_body, bytecode_size=60
        )
        self.m_young = Method(
            "handle", "traced.app.Request", churn_young_body, bytecode_size=70
        )
        self.m_survivor = Method(
            "enqueue", "traced.app.Buffer", churn_survivor_body, bytecode_size=70
        )

        def op_body(ctx, op_index, resident_quota):
            if resident_quota:
                ctx.call(1, self.m_resident, resident_quota)
            die_young = 0
            for _ in range(self.ALLOCS_PER_OP):
                self._die_young_acc += self._die_young_step
                if self._die_young_acc >= 1.0:
                    self._die_young_acc -= 1.0
                    die_young += 1
            survive = self.ALLOCS_PER_OP - die_young
            if die_young:
                ctx.call(2, self.m_young, die_young)
            if survive:
                deadline = self.vm.bytes_allocated + self._survivor_lifetime_bytes
                for obj in ctx.call(3, self.m_survivor, survive):
                    self._pending.append((deadline, obj))
            ctx.work(80)

        self.m_op = Method(
            "serve", "traced.harness.Driver", op_body, bytecode_size=120
        )
        self.annotated_sites = 0

    # -- operations --------------------------------------------------------------

    def run_op(self, op_index: int) -> None:
        assert self.vm is not None
        thread = self.threads[op_index % len(self.threads)]
        # build the resident set across the first ~1000 operations
        resident_quota = 0
        if self._resident_built < self._resident_target:
            resident_quota = min(
                max(1, self._resident_target // 1000),
                self._resident_target - self._resident_built,
            )
            self._resident_built += resident_quota
        self.vm.run(thread, self.m_op, op_index, resident_quota)
        # expire survivors whose allocation-volume lifetime has passed
        pending = self._pending
        bytes_allocated = self.vm.bytes_allocated
        now_ns = self.vm.clock.now_ns
        index = 0
        while index < len(pending) and pending[index][0] <= bytes_allocated:
            pending[index][1].kill_at(now_ns)
            index += 1
        if index:
            del pending[:index]


def make_traced_sample(seed: int = 42) -> TracedWorkload:
    """Registry constructor: demography calibrated from the canned log."""
    return TracedWorkload(
        calibrate_log(SAMPLE_GC_LOG), seed=seed, name="traced-sample"
    )

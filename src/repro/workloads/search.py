"""Lucene-like text-search engine workload.

Models the GC-relevant anatomy of Apache Lucene indexing a document
stream (the paper indexes a Wikipedia dump at 25k ops/s, 80% writes):

* **indexing** — ``IndexWriter.addDocument`` tokenizes a document
  (short-lived analyzer/token objects) and appends postings into an
  in-RAM buffer (``store.RAMFile`` blocks: middle-lived, they die when
  the RAM buffer is flushed into a segment);
* **segment flush** — when the RAM buffer reaches its budget, a segment
  is written: the heap keeps the segment's reader structures (term
  index, norms) alive until the segment is merged away (long-lived);
* **tiered merges** — groups of segments are merged; input reader
  structures die, a bigger output segment's structures are born.  Old
  segments beyond a retention budget are closed (their heap footprint
  dies), which bounds the index's heap mass like a production reader
  pool does;
* **queries** — term queries allocate parser/scorer/top-k objects that
  die within the request.

The paper's package filter for Lucene is ``lucene.store`` and it reports
**zero** allocation-context conflicts (Table 1) — accordingly, the
middle/long-lived allocations here live in ``org.apache.lucene.store``
classes with no cross-lifetime factory sharing inside the filtered
packages.
"""

from __future__ import annotations

from typing import List, Optional

from repro.heap.object_model import SimObject
from repro.runtime import JavaVM, Method
from repro.workloads.base import Workload
from repro.workloads.ycsb import UniformGenerator

#: NG2C generation hints (hand annotations for the NG2C baseline)
GEN_RAM_BUFFER = 3
GEN_SEGMENT = 7


class Segment:
    """A flushed segment's in-heap reader structures."""

    __slots__ = ("objects", "bytes", "level")

    def __init__(self, level: int = 0) -> None:
        self.objects: List[SimObject] = []
        self.bytes = 0
        self.level = level

    def add(self, obj: SimObject) -> None:
        self.objects.append(obj)
        self.bytes += obj.size

    def close(self, now_ns: int) -> None:
        for obj in self.objects:
            obj.kill_at(now_ns)
        self.objects.clear()


class LuceneWorkload(Workload):
    """Wikipedia-style indexing with a query mix.

    Parameters
    ----------
    write_fraction:
        Fraction of operations that index a document (paper: 0.8).
    ram_buffer_bytes:
        In-RAM postings budget before a segment flush.
    merge_factor:
        Segments per merge (tiered merging).
    max_open_segments:
        Reader-pool retention; the oldest segments beyond it are closed.
    """

    name = "lucene"
    profiled_packages = ("org.apache.lucene.store",)
    heap_mb = 64
    young_regions = 2
    default_ops = 60_000

    def __init__(
        self,
        write_fraction: float = 0.80,
        dictionary_size: int = 40_000,
        ram_buffer_bytes: int = 6 << 20,
        merge_factor: int = 4,
        max_open_segments: int = 10,
        avg_doc_terms: int = 16,
        worker_threads: int = 4,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.write_fraction = write_fraction
        self.term_chooser = UniformGenerator(dictionary_size, seed=seed)
        self.ram_buffer_bytes = ram_buffer_bytes
        self.merge_factor = merge_factor
        self.max_open_segments = max_open_segments
        self.avg_doc_terms = avg_doc_terms
        self.worker_threads = worker_threads

        # runtime state
        self.ram_blocks: List[SimObject] = []
        self.ram_bytes = 0
        self.segments: List[Segment] = []
        self.docs_indexed = 0
        self.queries_run = 0
        self.flushes = 0
        self.merges = 0

    # -- method graph -------------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        self.vm = vm
        for i in range(self.worker_threads):
            self.make_thread("IndexThread-%d" % i)

        def ram_file_append(ctx, size):
            # postings block in the RAM buffer: dies at segment flush
            ctx.work(40)
            return ctx.alloc(1, size, gen_hint=GEN_RAM_BUFFER)

        self.m_ram_append = Method(
            "append",
            "org.apache.lucene.store.RAMFile",
            ram_file_append,
            bytecode_size=70,
        )

        def add_document(ctx, term_count):
            ctx.alloc(1, 200, lives_ns=20_000)  # Document
            ctx.alloc(2, 180, lives_ns=20_000)  # TokenStream
            for i in range(term_count):
                ctx.alloc(3, 48, lives_ns=12_000)  # Token / TermAttr
            # postings buffer block: ~1 KB of postings per document
            block = ctx.call(4, self.m_ram_append, 1024)
            ctx.work(30_000)
            return block

        self.m_add_document = Method(
            "addDocument",
            "org.apache.lucene.index.IndexWriter",
            add_document,
            bytecode_size=280,
        )

        def flush_segment(ctx, ram_bytes):
            # Reader structures: term index + norms, ~15% of segment
            # size, in 16 KB chunks (many small objects, like the real
            # FST/norms arrays).
            segment = Segment(level=0)
            structure_bytes = max(64 << 10, int(ram_bytes * 0.15))
            chunks = max(1, structure_bytes // (16 << 10))
            ctx.loop(chunks * 4)
            for i in range(chunks):
                segment.add(ctx.alloc(1, 16 << 10, gen_hint=GEN_SEGMENT))
            segment.add(ctx.alloc(2, 32 << 10, gen_hint=GEN_SEGMENT))  # term dict
            ctx.work(500_000)
            return segment

        self.m_flush = Method(
            "flush",
            "org.apache.lucene.store.SegmentWriter",
            flush_segment,
            bytecode_size=320,
            osr_eligible=True,
        )

        def merge_segments(ctx, inputs):
            ctx.loop(16)
            for i in range(6):
                ctx.alloc(1, 16 << 10, lives_ns=150_000)  # merge scratch
            output = Segment(level=max(s.level for s in inputs) + 1)
            output_bytes = int(sum(s.bytes for s in inputs) * 0.6)
            for i in range(max(1, output_bytes // (16 << 10))):
                output.add(ctx.alloc(2, 16 << 10, gen_hint=GEN_SEGMENT))
            ctx.work(1_500_000)
            return output

        self.m_merge = Method(
            "merge",
            "org.apache.lucene.store.SegmentMerger",
            merge_segments,
            bytecode_size=380,
            osr_eligible=True,
        )

        def run_query(ctx, term):
            ctx.alloc(1, 160, lives_ns=10_000)  # parsed query
            ctx.alloc(2, 220, lives_ns=15_000)  # scorer
            ctx.alloc(3, 512, lives_ns=15_000)  # top-k heap
            ctx.work(35_000)

        self.m_query = Method(
            "search",
            "org.apache.lucene.search.IndexSearcher",
            run_query,
            bytecode_size=240,
        )

        self.annotated_sites = 4

    # -- operations --------------------------------------------------------------------

    def run_op(self, op_index: int) -> None:
        assert self.vm is not None
        thread = self.threads[op_index % len(self.threads)]
        if self.rng.random() < self.write_fraction:
            terms = max(4, int(self.rng.gauss(self.avg_doc_terms, 4)))
            block = self.vm.run(thread, self.m_add_document, terms)
            if block is not None:
                self.ram_blocks.append(block)
                self.ram_bytes += block.size
            self.docs_indexed += 1
            if self.ram_bytes >= self.ram_buffer_bytes:
                self._flush(thread)
        else:
            self.vm.run(thread, self.m_query, self.term_chooser.next())
            self.queries_run += 1

    # -- lifecycle events ----------------------------------------------------------------

    def _flush(self, thread) -> None:
        now = self.vm.clock.now_ns
        for block in self.ram_blocks:
            block.kill_at(now)
        flushed = self.ram_bytes
        self.ram_blocks = []
        self.ram_bytes = 0
        segment = self.vm.run(thread, self.m_flush, flushed)
        if segment is not None:
            self.segments.append(segment)
        self.flushes += 1
        self._maybe_merge(thread)
        self._enforce_retention()

    def _maybe_merge(self, thread) -> None:
        for level in (0, 1):
            tier = [s for s in self.segments if s.level == level]
            if len(tier) < self.merge_factor:
                continue
            inputs = tier[: self.merge_factor]
            output = self.vm.run(thread, self.m_merge, inputs)
            now = self.vm.clock.now_ns
            for segment in inputs:
                segment.close(now)
                self.segments.remove(segment)
            if output is not None:
                self.segments.append(output)
            self.merges += 1

    def _enforce_retention(self) -> None:
        while len(self.segments) > self.max_open_segments:
            oldest = self.segments.pop(0)
            oldest.close(self.vm.clock.now_ns)

"""Seeded adversarial workload generator (the fuzzer's genome).

Every other workload in the reproduction is friendly-by-construction:
its demography was designed so ROLP's inference *should* handle it.
This module inverts that.  A :class:`DemographyGenome` is a compact,
fully scalar description of a hostile demography — lifetime classes,
context-collision pressure, lifetime oscillation, allocation
burstiness — and :class:`AdversarialWorkload` expands a genome into a
deterministic workload whose operation stream depends only on
``(genome, seed)``.  The fuzz loop (:mod:`repro.bench.fuzz`) mutates
genomes toward objectives (maximize context conflicts, inference
drift, tail pauses) and shrinks the ones that trip the oracle.

The hostile ingredients, and why each hurts inference:

* **collision sites** — shared factory methods reached through
  ``collision_fanout`` caller paths that demand *different* lifetime
  classes.  Each factory's single allocation site produces a
  multi-triangle age curve: exactly the allocation-context conflict of
  paper Section 5, at a density the paper's workloads never reach
  (Cassandra has 2 such sites; a genome can carry 64).
* **oscillation** — sites whose lifetime class flips every
  ``oscillation_period_ops`` operations.  When the period straddles the
  16-GC inference window, even a *split* context keeps producing
  multi-modal curves, so conflicts never resolve and estimates thrash.
* **burstiness** — every ``burst_every_ops`` operations a burst of
  ``burst_size`` extra allocations lands at once, distorting the
  steady-rate inflow correction inference applies to age column 0.

Genome operations (:func:`random_genome`, :meth:`DemographyGenome.mutate`,
:meth:`DemographyGenome.shrink_candidates`) are deterministic under a
caller-provided RNG, never leave the valid-spec domain
(:meth:`DemographyGenome.validate`), and shrinking strictly reduces
:meth:`DemographyGenome.complexity`, so shrink loops terminate.
"""

from __future__ import annotations

import json
import random
from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.heap.object_model import SimObject
from repro.runtime import JavaVM, Method
from repro.workloads.base import Workload

#: lifetime-class kinds a genome may use
CLASS_KINDS = ("young", "queued", "oscillating")

#: domain bounds — every genome field is clamped into these ranges, and
#: validate() enforces them (mutation and shrinking must stay inside)
BOUNDS: Dict[str, Tuple[int, int]] = {
    "size_bytes": (16, 4096),
    "lives_ns": (1_000, 5_000_000),
    "lifetime_bytes": (64 << 10, 24 << 20),
    "weight": (1, 8),
    "classes": (1, 8),
    "collision_sites": (0, 64),
    "collision_fanout": (2, 8),
    "oscillation_period_ops": (0, 32_768),
    "burst_every_ops": (0, 8_192),
    "burst_size": (0, 64),
    "threads": (1, 8),
    "heap_mb": (16, 96),
    # floor of 2: a single-region eden re-trips the collect trigger on
    # every allocation checkpoint (the current partially-filled region
    # already satisfies ``eden regions >= young_regions``), which is a
    # collector pathology, not a demography
    "young_regions": (2, 4),
}

#: minimum meaningful oscillation period (a period of a handful of ops
#: degenerates into uniform noise rather than phase behaviour)
MIN_OSCILLATION_PERIOD = 64
MIN_BURST_EVERY = 16


def _clamp(name: str, value: int) -> int:
    low, high = BOUNDS[name]
    return max(low, min(high, int(value)))


@dataclass(frozen=True)
class LifetimeClass:
    """One lifetime class objects of this demography may belong to."""

    #: object size in bytes
    size_bytes: int
    #: "young" (dies after lives_ns), "queued" (dies after
    #: lifetime_bytes of subsequent allocation) or "oscillating"
    #: (alternates between the two behaviours each oscillation phase)
    kind: str
    #: nanosecond lifetime for the young behaviour
    lives_ns: int
    #: allocation-volume lifetime for the queued behaviour
    lifetime_bytes: int
    #: relative allocation weight among the genome's classes
    weight: int

    def validate(self) -> None:
        if self.kind not in CLASS_KINDS:
            raise ValueError("unknown lifetime-class kind %r" % (self.kind,))
        for field_name in ("size_bytes", "lives_ns", "lifetime_bytes", "weight"):
            value = getattr(self, field_name)
            low, high = BOUNDS[field_name]
            if not isinstance(value, int) or not low <= value <= high:
                raise ValueError(
                    "lifetime-class %s=%r outside [%d, %d]"
                    % (field_name, value, low, high)
                )

    def as_dict(self) -> Dict[str, object]:
        return {
            "size_bytes": self.size_bytes,
            "kind": self.kind,
            "lives_ns": self.lives_ns,
            "lifetime_bytes": self.lifetime_bytes,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LifetimeClass":
        return cls(
            size_bytes=int(data["size_bytes"]),
            kind=str(data["kind"]),
            lives_ns=int(data["lives_ns"]),
            lifetime_bytes=int(data["lifetime_bytes"]),
            weight=int(data["weight"]),
        )


@dataclass(frozen=True)
class DemographyGenome:
    """The fuzzer's genome: a complete hostile-demography spec."""

    classes: Tuple[LifetimeClass, ...]
    #: shared factories reached through conflicting caller paths
    collision_sites: int
    #: caller paths per factory (cycling through the lifetime classes)
    collision_fanout: int
    #: 0 = static lifetimes; otherwise ops per oscillation half-phase
    oscillation_period_ops: int
    #: 0 = no bursts; otherwise ops between allocation bursts
    burst_every_ops: int
    #: extra allocations per burst
    burst_size: int
    threads: int
    heap_mb: int
    young_regions: int

    # -- validity ----------------------------------------------------------------

    def validate(self) -> None:
        """Raise ``ValueError`` unless the genome is inside the domain."""
        low, high = BOUNDS["classes"]
        if not low <= len(self.classes) <= high:
            raise ValueError(
                "genome must carry %d..%d lifetime classes, has %d"
                % (low, high, len(self.classes))
            )
        for cls in self.classes:
            cls.validate()
        for field_name in (
            "collision_sites",
            "collision_fanout",
            "oscillation_period_ops",
            "burst_every_ops",
            "burst_size",
            "threads",
            "heap_mb",
            "young_regions",
        ):
            value = getattr(self, field_name)
            low, high = BOUNDS[field_name]
            if not isinstance(value, int) or not low <= value <= high:
                raise ValueError(
                    "genome %s=%r outside [%d, %d]" % (field_name, value, low, high)
                )
        if self.oscillation_period_ops and (
            self.oscillation_period_ops < MIN_OSCILLATION_PERIOD
        ):
            raise ValueError(
                "oscillation_period_ops must be 0 or >= %d" % MIN_OSCILLATION_PERIOD
            )
        if self.burst_every_ops and self.burst_every_ops < MIN_BURST_EVERY:
            raise ValueError("burst_every_ops must be 0 or >= %d" % MIN_BURST_EVERY)
        if bool(self.burst_every_ops) != bool(self.burst_size):
            raise ValueError("burst_every_ops and burst_size must be both zero or both set")

    # -- serialization -----------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "classes": [cls.as_dict() for cls in self.classes],
            "collision_sites": self.collision_sites,
            "collision_fanout": self.collision_fanout,
            "oscillation_period_ops": self.oscillation_period_ops,
            "burst_every_ops": self.burst_every_ops,
            "burst_size": self.burst_size,
            "threads": self.threads,
            "heap_mb": self.heap_mb,
            "young_regions": self.young_regions,
        }

    def encode(self) -> str:
        """Canonical JSON form: the fuzz cell parameter and the corpus
        representation.  Canonical (sorted keys, fixed separators) so
        equal genomes encode to equal bytes — cell keys, cache entries
        and corpus digests all depend on that."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DemographyGenome":
        genome = cls(
            classes=tuple(
                LifetimeClass.from_dict(item) for item in data["classes"]  # type: ignore[union-attr]
            ),
            collision_sites=int(data["collision_sites"]),
            collision_fanout=int(data["collision_fanout"]),
            oscillation_period_ops=int(data["oscillation_period_ops"]),
            burst_every_ops=int(data["burst_every_ops"]),
            burst_size=int(data["burst_size"]),
            threads=int(data["threads"]),
            heap_mb=int(data["heap_mb"]),
            young_regions=int(data["young_regions"]),
        )
        genome.validate()
        return genome

    @classmethod
    def decode(cls, text: str) -> "DemographyGenome":
        return cls.from_dict(json.loads(text))

    # -- search operators --------------------------------------------------------

    def complexity(self) -> int:
        """Monotone size measure for shrinking: every shrink candidate
        strictly reduces it, so shrink loops terminate."""
        return (
            len(self.classes)
            + self.collision_sites
            + self.collision_fanout
            + (1 if self.oscillation_period_ops else 0)
            + self.burst_size
            + self.threads
            + self.heap_mb // 16
            + self.young_regions
        )

    def mutate(self, rng: random.Random) -> "DemographyGenome":
        """One seeded mutation; always returns a valid genome."""
        choices = [
            "tweak_class",
            "add_class",
            "drop_class",
            "collision_sites",
            "collision_fanout",
            "oscillation",
            "burst",
            "threads",
            "heap",
        ]
        mutated = self
        kind = rng.choice(choices)
        if kind == "tweak_class":
            index = rng.randrange(len(self.classes))
            mutated = replace(
                self,
                classes=self.classes[:index]
                + (_mutate_class(self.classes[index], rng),)
                + self.classes[index + 1:],
            )
        elif kind == "add_class" and len(self.classes) < BOUNDS["classes"][1]:
            mutated = replace(self, classes=self.classes + (_random_class(rng),))
        elif kind == "drop_class" and len(self.classes) > BOUNDS["classes"][0]:
            index = rng.randrange(len(self.classes))
            mutated = replace(
                self, classes=self.classes[:index] + self.classes[index + 1:]
            )
        elif kind == "collision_sites":
            mutated = replace(
                self,
                collision_sites=_clamp(
                    "collision_sites",
                    self.collision_sites + rng.choice((-8, -2, 2, 8, 16)),
                ),
            )
        elif kind == "collision_fanout":
            mutated = replace(
                self,
                collision_fanout=_clamp(
                    "collision_fanout", self.collision_fanout + rng.choice((-1, 1, 2))
                ),
            )
        elif kind == "oscillation":
            if self.oscillation_period_ops and rng.random() < 0.25:
                period = 0
            else:
                period = max(
                    MIN_OSCILLATION_PERIOD,
                    _clamp(
                        "oscillation_period_ops",
                        rng.choice((128, 256, 512, 1024, 2048, 4096)),
                    ),
                )
            mutated = replace(self, oscillation_period_ops=period)
        elif kind == "burst":
            if self.burst_every_ops and rng.random() < 0.25:
                mutated = replace(self, burst_every_ops=0, burst_size=0)
            else:
                mutated = replace(
                    self,
                    burst_every_ops=max(
                        MIN_BURST_EVERY,
                        _clamp("burst_every_ops", rng.choice((64, 128, 256, 512))),
                    ),
                    burst_size=max(1, _clamp("burst_size", rng.choice((4, 8, 16, 32)))),
                )
        elif kind == "threads":
            mutated = replace(
                self, threads=_clamp("threads", self.threads + rng.choice((-1, 1)))
            )
        elif kind == "heap":
            mutated = replace(
                self, heap_mb=_clamp("heap_mb", self.heap_mb + rng.choice((-16, 16)))
            )
        mutated.validate()
        return mutated

    def shrink_candidates(self) -> List["DemographyGenome"]:
        """Simpler genomes to try during minimization, in deterministic
        order.  Every candidate is valid and has strictly smaller
        :meth:`complexity` than ``self``."""
        candidates: List[DemographyGenome] = []

        def consider(candidate: "DemographyGenome") -> None:
            candidate.validate()
            assert candidate.complexity() < self.complexity()
            candidates.append(candidate)

        if self.collision_sites > 0:
            for target in (0, self.collision_sites // 2, self.collision_sites - 1):
                if 0 <= target < self.collision_sites:
                    consider(replace(self, collision_sites=target))
        if len(self.classes) > BOUNDS["classes"][0]:
            for index in range(len(self.classes)):
                consider(
                    replace(
                        self,
                        classes=self.classes[:index] + self.classes[index + 1:],
                    )
                )
        if self.collision_fanout > BOUNDS["collision_fanout"][0]:
            consider(replace(self, collision_fanout=self.collision_fanout - 1))
        if self.oscillation_period_ops:
            consider(replace(self, oscillation_period_ops=0))
        if self.burst_size:
            consider(replace(self, burst_every_ops=0, burst_size=0))
        if self.threads > BOUNDS["threads"][0]:
            consider(replace(self, threads=self.threads - 1))
        if self.heap_mb - 16 >= BOUNDS["heap_mb"][0]:
            consider(replace(self, heap_mb=self.heap_mb - 16))
        if self.young_regions > BOUNDS["young_regions"][0]:
            consider(replace(self, young_regions=self.young_regions - 1))
        # dedupe, preserving order (dropping equal-valued classes can
        # produce identical candidates)
        seen = set()
        unique: List[DemographyGenome] = []
        for candidate in candidates:
            key = candidate.encode()
            if key not in seen:
                seen.add(key)
                unique.append(candidate)
        return unique


def _random_class(rng: random.Random) -> LifetimeClass:
    return LifetimeClass(
        size_bytes=rng.choice((32, 64, 128, 256, 512, 1024, 2048)),
        kind=rng.choice(CLASS_KINDS),
        lives_ns=rng.choice((5_000, 20_000, 80_000, 400_000, 2_000_000)),
        lifetime_bytes=rng.choice((128 << 10, 512 << 10, 2 << 20, 8 << 20)),
        weight=rng.randint(*BOUNDS["weight"]),
    )


def _mutate_class(cls: LifetimeClass, rng: random.Random) -> LifetimeClass:
    field_name = rng.choice(
        ("size_bytes", "kind", "lives_ns", "lifetime_bytes", "weight")
    )
    if field_name == "kind":
        return replace(cls, kind=rng.choice(CLASS_KINDS))
    if field_name == "size_bytes":
        return replace(
            cls, size_bytes=rng.choice((32, 64, 128, 256, 512, 1024, 2048))
        )
    if field_name == "lives_ns":
        return replace(
            cls, lives_ns=rng.choice((5_000, 20_000, 80_000, 400_000, 2_000_000))
        )
    if field_name == "lifetime_bytes":
        return replace(
            cls, lifetime_bytes=rng.choice((128 << 10, 512 << 10, 2 << 20, 8 << 20))
        )
    return replace(cls, weight=rng.randint(*BOUNDS["weight"]))


def random_genome(rng: random.Random) -> DemographyGenome:
    """A fresh seeded genome; deterministic per RNG state."""
    classes = tuple(
        _random_class(rng) for _ in range(rng.randint(2, 4))
    )
    oscillation = rng.choice((0, 0, 256, 1024, 4096))
    burst_every = rng.choice((0, 0, 64, 256))
    genome = DemographyGenome(
        classes=classes,
        collision_sites=rng.choice((0, 2, 8, 16, 32)),
        collision_fanout=rng.choice((2, 3, 4)),
        oscillation_period_ops=oscillation,
        burst_every_ops=burst_every,
        burst_size=rng.choice((4, 8, 16)) if burst_every else 0,
        threads=rng.choice((1, 2, 4)),
        heap_mb=rng.choice((16, 32, 48)),
        young_regions=rng.choice((2, 3, 4)),
    )
    genome.validate()
    return genome


#: the registry's default genome: a demography engineered for maximum
#: context-collision pressure with inference-window-straddling
#: oscillation — the canonical hostile input the differential and
#: corpus tests replay
HOSTILE_DEFAULT = DemographyGenome(
    classes=(
        LifetimeClass(
            size_bytes=128, kind="young", lives_ns=20_000,
            lifetime_bytes=128 << 10, weight=4,
        ),
        LifetimeClass(
            size_bytes=256, kind="queued", lives_ns=20_000,
            lifetime_bytes=2 << 20, weight=2,
        ),
        LifetimeClass(
            size_bytes=192, kind="oscillating", lives_ns=10_000,
            lifetime_bytes=4 << 20, weight=2,
        ),
    ),
    collision_sites=32,
    collision_fanout=4,
    oscillation_period_ops=512,
    burst_every_ops=128,
    burst_size=16,
    threads=4,
    heap_mb=32,
    young_regions=2,
)


class _VolumeExpiry:
    """Kills queued objects a fixed allocation volume after birth, with
    a hard cap on the retained population so a hostile genome cannot
    out-allocate the heap."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: Deque[Tuple[int, SimObject]] = deque()

    def add(self, obj: SimObject, deadline_bytes: int) -> None:
        self._queue.append((deadline_bytes, obj))

    def expire(self, bytes_allocated: int, now_ns: int, max_retained: int) -> None:
        queue = self._queue
        while queue and (
            queue[0][0] <= bytes_allocated or len(queue) > max_retained
        ):
            _, obj = queue.popleft()
            obj.kill_at(now_ns)


class AdversarialWorkload(Workload):
    """A genome, expanded into a runnable workload.

    The operation stream is a pure function of ``(genome, seed)``:
    every choice comes from the seeded RNG or from ``op_index``
    arithmetic, so two instances with equal arguments replay identical
    allocation/call/lifetime sequences — the property the differential
    fingerprint oracle rests on.
    """

    name = "adversarial"
    profiled_packages = ("adversarial",)

    #: caller-path invocations per operation: enough traffic that every
    #: collision factory accumulates min_samples within one inference
    #: window even on large genomes
    CALLS_PER_OP = 8

    def __init__(
        self,
        genome: Optional[DemographyGenome] = None,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.genome = genome or HOSTILE_DEFAULT
        self.genome.validate()
        self.heap_mb = self.genome.heap_mb
        self.young_regions = self.genome.young_regions
        self.default_ops = 20_000

        self.factories: List[Method] = []
        self.callers: List[Method] = []
        self.direct_methods: List[Method] = []
        self.expiry = _VolumeExpiry()
        #: queued-object population cap: a quarter of the heap in
        #: objects of the genome's mean size
        mean_size = max(
            16,
            sum(c.size_bytes * c.weight for c in self.genome.classes)
            // max(1, sum(c.weight for c in self.genome.classes)),
        )
        self.max_retained = max(64, (self.genome.heap_mb << 20) // 4 // mean_size)
        #: weighted class schedule (deterministic round-robin over
        #: weights, no RNG in the hot loop)
        self._class_schedule: List[int] = []
        for index, cls in enumerate(self.genome.classes):
            self._class_schedule.extend([index] * cls.weight)

    # -- lifetime plumbing --------------------------------------------------------

    def _phase(self, op_index: int) -> int:
        period = self.genome.oscillation_period_ops
        if not period:
            return 0
        return (op_index // period) % 2

    def _lifetime_args(self, cls: LifetimeClass, op_index: int):
        """``(lives_ns, queue_lifetime_bytes)`` for one allocation —
        exactly one of the two is set."""
        kind = cls.kind
        if kind == "oscillating":
            kind = "young" if self._phase(op_index) == 0 else "queued"
        if kind == "young":
            return cls.lives_ns, None
        return None, cls.lifetime_bytes

    def _allocate(self, ctx, bci: int, cls: LifetimeClass, op_index: int) -> SimObject:
        lives_ns, queue_bytes = self._lifetime_args(cls, op_index)
        obj = ctx.alloc(bci, cls.size_bytes, lives_ns=lives_ns)
        if queue_bytes is not None:
            self.expiry.add(obj, self.vm.bytes_allocated + queue_bytes)
        return obj

    # -- construction ------------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        self.vm = vm
        genome = self.genome
        for i in range(genome.threads):
            self.make_thread("adversary-%d" % i)

        # Collision factories: one allocation site each, lifetime class
        # decided by the caller — the conflict machine.
        for i in range(genome.collision_sites):

            def factory_body(ctx, cls, op_index, _i=i):
                ctx.work(40)
                obj = self._allocate(ctx, 1, cls, op_index)
                self._allocate(ctx, 1, cls, op_index)
                return obj

            self.factories.append(
                Method(
                    "create%d" % i,
                    "adversarial.gen.Factory%d" % i,
                    factory_body,
                    bytecode_size=80,
                )
            )

        # Caller paths: collision_fanout distinct methods per factory,
        # each binding a different lifetime class (cycled).
        for i, factory in enumerate(self.factories):
            for path in range(genome.collision_fanout):
                cls = genome.classes[(i + path) % len(genome.classes)]

                def caller_body(ctx, op_index, _factory=factory, _cls=cls):
                    ctx.work(25)
                    return ctx.call(1, _factory, _cls, op_index)

                self.callers.append(
                    Method(
                        "path%d" % path,
                        "adversarial.gen.Caller%d_%d" % (i, path),
                        caller_body,
                        bytecode_size=70,
                    )
                )

        # Direct (non-conflicted) allocation methods, one per class —
        # the baseline demography the collision sites hide inside.
        for index, cls in enumerate(genome.classes):

            def direct_body(ctx, op_index, _cls=cls):
                self._allocate(ctx, 1, _cls, op_index)
                self._allocate(ctx, 1, _cls, op_index)
                self._allocate(ctx, 1, _cls, op_index)
                ctx.work(60)

            self.direct_methods.append(
                Method(
                    "churn%d" % index,
                    "adversarial.app.Direct%d" % index,
                    direct_body,
                    bytecode_size=90,
                )
            )

        # The driver: each op fans out over CALLS_PER_OP caller paths
        # (so every factory sees steady traffic from all of its
        # conflicting paths within one inference window) plus two direct
        # methods; bursts run extra direct allocations inline.
        def op_body(ctx, op_index, burst):
            callers = self.callers
            if callers:
                base = op_index * self.CALLS_PER_OP
                for k in range(self.CALLS_PER_OP):
                    ctx.call(1, callers[(base + k) % len(callers)], op_index)
            schedule = self._class_schedule
            directs = self.direct_methods
            ctx.call(2, directs[schedule[op_index % len(schedule)] % len(directs)], op_index)
            ctx.call(3, directs[schedule[(op_index + 1) % len(schedule)] % len(directs)], op_index)
            for b in range(burst):
                burst_direct = directs[
                    schedule[(op_index + b) % len(schedule)] % len(directs)
                ]
                ctx.call(4, burst_direct, op_index + b)
            ctx.work(90)

        self.m_op = Method(
            "serve", "adversarial.harness.Driver", op_body, bytecode_size=150
        )

        self.annotated_sites = 0

    # -- operations --------------------------------------------------------------

    def run_op(self, op_index: int) -> None:
        assert self.vm is not None
        genome = self.genome
        thread = self.threads[op_index % len(self.threads)]
        burst = 0
        if genome.burst_every_ops and op_index % genome.burst_every_ops == 0:
            burst = genome.burst_size
        self.vm.run(thread, self.m_op, op_index, burst)
        self.expiry.expire(
            self.vm.bytes_allocated, self.vm.clock.now_ns, self.max_retained
        )


def make_adversarial(seed: int = 42) -> AdversarialWorkload:
    """Registry constructor: the default hostile genome."""
    return AdversarialWorkload(HOSTILE_DEFAULT, seed=seed)

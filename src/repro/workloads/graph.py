"""GraphChi-like out-of-core graph computation workload.

Models the GC-relevant anatomy of GraphChi running Connected Components
and PageRank over a large graph (the paper uses a Twitter follower graph
with 42M vertices / 1.5B edges; the simulator synthesizes a scaled
power-law graph with the same shape of heap behaviour):

* **vertex values** — one long-lived array chunk per vertex block,
  alive for the whole computation;
* **interval processing** — GraphChi slides over the graph in shard
  intervals: each interval loads its edge data blocks (middle-lived:
  alive exactly for the interval, several GC cycles), runs the update
  function over the sub-graph (short-lived update/message objects), and
  drops the blocks when the interval ends;
* **factory conflict** — edge blocks and per-update scratch buffers are
  both obtained from ``DataBlockManager.allocateBlock`` through
  different call paths; the paper reports 3 conflicts for GraphChi;
* **algorithm phases** — Connected Components converges: later
  iterations schedule fewer vertices, so interval lifetimes shorten over
  the run (exercising ROLP's workload-change adaptation); PageRank runs
  fixed full-graph iterations.

Packages mirror GraphChi's (``graphchi.datablocks``, ``graphchi.engine``
— the paper's Table 1 filter set).
"""

from __future__ import annotations

from typing import List, Optional

from repro.heap.object_model import SimObject
from repro.runtime import JavaVM, Method
from repro.workloads.base import Workload

#: NG2C generation hints (hand annotations for the NG2C baseline)
GEN_VERTEX_DATA = 9
GEN_EDGE_BLOCK = 3


class GraphShard:
    """One shard's edge-block footprint while its interval is loaded."""

    __slots__ = ("blocks",)

    def __init__(self) -> None:
        self.blocks: List[SimObject] = []

    def unload(self, now_ns: int) -> None:
        for block in self.blocks:
            block.kill_at(now_ns)
        self.blocks.clear()


class GraphChiWorkload(Workload):
    """Vertex-centric computation over a synthetic power-law graph.

    One ``run_op`` processes one *sub-interval* (a slice of a shard's
    vertices): the granularity keeps the op loop uniform with the other
    workloads while intervals still span many operations (and GC
    cycles), which is what makes edge blocks middle-lived.

    Parameters
    ----------
    algorithm:
        ``"cc"`` (Connected Components, converging) or ``"pr"``
        (PageRank, fixed iterations).
    """

    name = "graphchi"
    profiled_packages = ("edu.cmu.graphchi.datablocks", "edu.cmu.graphchi.engine")
    heap_mb = 64
    young_regions = 2
    default_ops = 60_000

    def __init__(
        self,
        algorithm: str = "cc",
        vertices: int = 240_000,
        edges_per_vertex: float = 15.0,
        shards: int = 6,
        subintervals_per_shard: int = 48,
        worker_threads: int = 4,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        if algorithm not in ("cc", "pr"):
            raise ValueError("algorithm must be 'cc' or 'pr'")
        self.algorithm = algorithm
        self.name = "graphchi-%s" % algorithm
        self.vertices = vertices
        self.edges = int(vertices * edges_per_vertex)
        self.shards = shards
        self.subintervals_per_shard = subintervals_per_shard
        self.worker_threads = worker_threads

        # execution state
        self.vertex_blocks: List[SimObject] = []
        self.current_shard: Optional[GraphShard] = None
        self.shard_cursor = 0
        self.subinterval_cursor = 0
        self.iteration = 0
        self.intervals_processed = 0
        #: fraction of vertices still active (CC converges)
        self.active_fraction = 1.0

    # -- method graph -------------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        self.vm = vm
        for i in range(self.worker_threads):
            self.make_thread("ExecutorThread-%d" % i)

        def allocate_block(ctx, size, lives_ns, gen_hint):
            # The shared block factory: reached from the shard loader
            # (middle-lived edge blocks) and from the update function
            # (short-lived scratch) — the conflict the paper reports.
            ctx.work(40)
            return ctx.alloc(1, size, lives_ns=lives_ns, gen_hint=gen_hint)

        self.m_allocate_block = Method(
            "allocateBlock",
            "edu.cmu.graphchi.datablocks.DataBlockManager",
            allocate_block,
            bytecode_size=80,
        )

        def load_subinterval(ctx, block_count):
            blocks = []
            for i in range(block_count):
                block = ctx.call(
                    1, self.m_allocate_block, 32 << 10, None, GEN_EDGE_BLOCK
                )
                if block is not None:
                    blocks.append(block)
            ctx.work(250_000)
            return blocks

        self.m_load_subinterval = Method(
            "loadSubInterval",
            "edu.cmu.graphchi.engine.MemoryShard",
            load_subinterval,
            bytecode_size=260,
        )

        def update_vertices(ctx, vertex_count):
            for i in range(max(1, vertex_count // 24)):
                # per-update scratch through the same factory
                ctx.call(1, self.m_allocate_block, 2048, 40_000, 0)
                ctx.alloc(2, 96, lives_ns=15_000)  # ChiVertex view
                ctx.alloc(3, 64, lives_ns=10_000)  # message/update
            ctx.work(vertex_count * 140)

        self.m_update = Method(
            "update",
            "edu.cmu.graphchi.engine.VertexInterval",
            update_vertices,
            bytecode_size=300,
        )

        def init_vertex_data(ctx, chunk_count):
            ctx.loop(chunk_count * 2)
            chunks = []
            for i in range(chunk_count):
                chunks.append(ctx.alloc(1, 128 << 10, gen_hint=GEN_VERTEX_DATA))
            return chunks

        self.m_init_vertex_data = Method(
            "initVertexData",
            "edu.cmu.graphchi.datablocks.VertexDataBlockManager",
            init_vertex_data,
            bytecode_size=200,
            osr_eligible=True,
        )

        self.annotated_sites = 3

        # Allocate the vertex value arrays up front (value + degree +
        # in/out adjacency index per vertex, in 128 KB chunks) — alive
        # for the whole run.
        value_bytes = self.vertices * 24
        chunk_count = max(1, value_bytes // (128 << 10))
        thread = self.threads[0]
        chunks = vm.run(thread, self.m_init_vertex_data, chunk_count)
        self.vertex_blocks = chunks or []

    # -- operations --------------------------------------------------------------------

    def run_op(self, op_index: int) -> None:
        assert self.vm is not None
        thread = self.threads[op_index % len(self.threads)]

        if self.current_shard is None:
            self._start_interval(thread)

        vertices_per_sub = max(
            1,
            int(
                self.vertices
                / self.shards
                / self.subintervals_per_shard
                * self.active_fraction
            ),
        )
        self.vm.run(thread, self.m_update, vertices_per_sub)

        self.subinterval_cursor += 1
        if self.subinterval_cursor >= self.subintervals_per_shard:
            self._finish_interval()

    # -- interval lifecycle ----------------------------------------------------------------

    def _start_interval(self, thread) -> None:
        edges_per_shard = self.edges / self.shards * self.active_fraction
        block_count = max(1, int(edges_per_shard * 8 / (32 << 10)))
        blocks = self.vm.run(thread, self.m_load_subinterval, block_count)
        shard = GraphShard()
        shard.blocks = blocks or []
        self.current_shard = shard
        self.subinterval_cursor = 0

    def _finish_interval(self) -> None:
        assert self.current_shard is not None
        self.current_shard.unload(self.vm.clock.now_ns)
        self.current_shard = None
        self.intervals_processed += 1
        self.shard_cursor += 1
        if self.shard_cursor >= self.shards:
            self.shard_cursor = 0
            self._finish_iteration()

    def _finish_iteration(self) -> None:
        self.iteration += 1
        if self.algorithm == "cc":
            # Connected components converge: label propagation activates
            # geometrically fewer vertices each sweep (floor at 10%).
            self.active_fraction = max(0.1, 0.75 ** self.iteration)
        # PageRank keeps all vertices active every iteration.

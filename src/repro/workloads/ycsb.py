"""YCSB-style workload generation.

The paper drives Cassandra with YCSB at three read/write mixes
(write-intensive 75% writes, read-write 50%, read-intensive 25%).  This
module reimplements the relevant YCSB machinery: the zipfian request
distribution (with the standard zeta normalization and scrambling), a
uniform distribution, and an operation-mix chooser — all deterministic
under a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, Sequence

#: YCSB's default zipfian skew
ZIPFIAN_CONSTANT = 0.99
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK_64 = (1 << 64) - 1


def _fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer (YCSB's key scrambler)."""
    hashed = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        hashed ^= octet
        hashed = (hashed * _FNV_PRIME) & _MASK_64
    return hashed


class ZipfianGenerator:
    """Zipfian-distributed integers in ``[0, item_count)``.

    Port of YCSB's ``ZipfianGenerator`` (Gray et al.'s rejection-free
    algorithm) with a fixed item count.
    """

    def __init__(
        self,
        item_count: int,
        theta: float = ZIPFIAN_CONSTANT,
        seed: int = 7,
    ) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.theta = theta
        self._rng = random.Random(seed)
        self._zeta_n = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zeta_n
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * ((self._eta * u - self._eta + 1) ** self._alpha)
        )

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.next()


class ScrambledZipfianGenerator:
    """Zipfian popularity spread over the whole keyspace (YCSB default):
    hot items are hashed across the key range instead of clustering at
    the low keys."""

    def __init__(self, item_count: int, seed: int = 7) -> None:
        self.item_count = item_count
        self._zipf = ZipfianGenerator(item_count, seed=seed)

    def next(self) -> int:
        return _fnv1a_64(self._zipf.next()) % self.item_count


class UniformGenerator:
    """Uniform integers in ``[0, item_count)``."""

    def __init__(self, item_count: int, seed: int = 7) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self._rng = random.Random(seed)

    def next(self) -> int:
        return self._rng.randrange(self.item_count)


@dataclass(frozen=True)
class OperationMix:
    """Fractions of each YCSB operation type (must sum to 1)."""

    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ValueError("operation mix must sum to 1 (got %r)" % total)

    @property
    def write_fraction(self) -> float:
        return self.update + self.insert


#: the paper's three Cassandra mixes (Table 1)
MIX_WRITE_INTENSIVE = OperationMix(read=0.25, update=0.55, insert=0.20)
MIX_READ_WRITE = OperationMix(read=0.50, update=0.35, insert=0.15)
MIX_READ_INTENSIVE = OperationMix(read=0.75, update=0.17, insert=0.08)


class OperationChooser:
    """Draws operation types according to an :class:`OperationMix`."""

    OPS = ("read", "update", "insert", "scan")

    def __init__(self, mix: OperationMix, seed: int = 11) -> None:
        self.mix = mix
        self._rng = random.Random(seed)
        self._cumulative = []
        running = 0.0
        for op in self.OPS:
            running += getattr(mix, op)
            self._cumulative.append((running, op))

    def next(self) -> str:
        draw = self._rng.random()
        for threshold, op in self._cumulative:
            if draw <= threshold:
                return op
        return self._cumulative[-1][1]


@dataclass(frozen=True)
class RecordSpec:
    """YCSB record shape: N fields of M bytes (default 10 x 100 = 1 KB)."""

    field_count: int = 10
    field_bytes: int = 100

    @property
    def record_bytes(self) -> int:
        return self.field_count * self.field_bytes

"""Synthetic DaCapo benchmark generator.

Builds, from a :class:`~repro.workloads.dacapo.specs.DaCapoSpec`, a
method graph and operation loop whose profiling-relevant shape matches
the corresponding real benchmark (Table 2 of the paper):

* ``hot_methods`` service methods, each with a few call sites invoking
  helper methods — half the helpers are small enough to be inlined
  (and therefore never call-profiled, Section 7.2.1);
* ``alloc_sites`` allocation sites spread over the service methods,
  each with a fixed lifetime class (young / medium / long) so the
  volume fractions match the spec's ``lifetime_mix``;
* ``conflicts`` factory methods whose single allocation site is reached
  from two caller paths with different lifetimes — the ground truth for
  Table 2's conflict counts;
* an operation loop that sweeps a rotating window over the service
  methods so every site becomes hot (JIT-compiled) early in the run.

Medium/long-lived objects expire a fixed volume of subsequent
allocation after their birth (lifetime measured in bytes allocated, the
standard metric of the GC-demographics literature): every object of a
class lives the same allocation distance, so each site produces the
clean single-age death triangle real per-site demographics show.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.heap.object_model import SimObject
from repro.runtime import JavaVM, Method
from repro.workloads.base import Workload
from repro.workloads.dacapo.specs import DaCapoSpec, get_spec

#: lifetime classes
YOUNG, MEDIUM, LONG = 0, 1, 2

#: NG2C generation hints per class (hand-annotation baseline)
GEN_HINT = {YOUNG: 0, MEDIUM: 2, LONG: 8}


class _ExpiryQueue:
    """Kills each object a fixed allocation volume after its birth."""

    __slots__ = ("lifetime_bytes", "_queue")

    def __init__(self, lifetime_bytes: int) -> None:
        self.lifetime_bytes = lifetime_bytes
        self._queue: Deque[Tuple[int, SimObject]] = deque()

    def add(self, obj: SimObject, bytes_allocated: int) -> None:
        self._queue.append((bytes_allocated + self.lifetime_bytes, obj))

    def expire(self, bytes_allocated: int, now_ns: int) -> None:
        queue = self._queue
        while queue and queue[0][0] <= bytes_allocated:
            _, obj = queue.popleft()
            obj.kill_at(now_ns)


class DaCapoWorkload(Workload):
    """One synthetic DaCapo benchmark instance."""

    profiled_packages = ()  # the paper applies no filters to DaCapo
    young_regions = 2

    def __init__(self, spec: DaCapoSpec, seed: int = 42) -> None:
        super().__init__(seed)
        self.spec = spec
        self.name = "dacapo-%s" % spec.name
        self.heap_mb = spec.heap_mb
        self.default_ops = spec.default_ops

        heap_bytes = spec.heap_mb << 20
        # Lifetimes in allocation volume: medium ≈ a few young GCs,
        # long ≈ a third of the heap's allocation turnover.  The medium
        # lifetime is floored well above one eden fill (2 MB): a
        # "medium" class dying within a single GC interval would be
        # indistinguishable from young, with noisy curves to match.
        self.medium_queue = _ExpiryQueue(
            lifetime_bytes=max(heap_bytes // 12, 5 << 20)
        )
        self.long_queue = _ExpiryQueue(
            lifetime_bytes=max(heap_bytes // 3, 12 << 20)
        )

        self.services: List[Method] = []
        self.helpers: List[Method] = []
        self.factories: List[Method] = []
        self._window = 0
        self.exceptions_requested = 0

    # -- construction ------------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        self.vm = vm
        spec = self.spec
        for i in range(2):
            self.make_thread("dacapo-%s-%d" % (spec.name, i))

        package = "org.dacapo.%s" % spec.name

        # Helper (callee) methods: even indices small → inlined.
        helper_count = max(4, spec.hot_methods // 2)
        for i in range(helper_count):
            size = 20 if i % 2 == 0 else 60

            def helper_body(ctx, _i=i):
                ctx.work(120)

            self.helpers.append(
                Method(
                    "helper%d" % i,
                    "%s.util.Helpers" % package,
                    helper_body,
                    bytecode_size=size,
                )
            )

        # Conflict factories: one alloc site, lifetime chosen by caller.
        for i in range(spec.conflicts):
            def factory_body(ctx, lifetime_class, _i=i):
                ctx.work(80)
                return self._allocate(ctx, 1, lifetime_class)

            self.factories.append(
                Method(
                    "create%d" % i,
                    "%s.model.Factory%d" % (package, i),
                    factory_body,
                    bytecode_size=70,
                )
            )

        # Service methods: call sites + allocation sites.
        calls_per_service = max(1, spec.calls_per_op // spec.hot_methods)
        sites_per_service = max(1, spec.alloc_sites // spec.hot_methods)
        site_counter = 0
        for i in range(spec.hot_methods):
            site_classes: List[Tuple[int, int]] = []
            for s in range(sites_per_service):
                site_classes.append((s + 10, self._class_for_site(site_counter)))
                site_counter += 1
            helpers = [
                self.helpers[(i + j) % len(self.helpers)]
                for j in range(calls_per_service)
            ]
            factory: Optional[Method] = None
            factory_class = YOUNG
            if self.factories:
                factory = self.factories[i % len(self.factories)]
                # Alternate callers give the factory conflicting paths.
                # The parity must come from the caller's position in the
                # factory's caller list — not from the raw service index,
                # which is correlated with the factory index itself.
                factory_class = MEDIUM if (i // len(self.factories)) % 2 == 0 else YOUNG

            def service_body(
                ctx,
                allocate,
                _helpers=helpers,
                _sites=site_classes,
                _factory=factory,
                _factory_class=factory_class,
            ):
                for j, helper in enumerate(_helpers):
                    ctx.call(j + 1, helper)
                if allocate:
                    for bci, lifetime_class in _sites:
                        self._allocate(ctx, bci, lifetime_class)
                    if _factory is not None:
                        ctx.call(9, _factory, _factory_class)
                ctx.work(self.spec.work_ns_per_op / 16)

            self.services.append(
                Method(
                    "service%d" % i,
                    "%s.core.Service%d" % (package, i),
                    service_body,
                    bytecode_size=150,
                )
            )

        # The operation driver: rotates a window over the services.
        def op_body(ctx, start, breadth, allocating):
            for j in range(breadth):
                service = self.services[(start + j) % len(self.services)]
                ctx.call(j + 1, service, j < allocating)
            if self.exceptions_requested:
                self.exceptions_requested -= 1
                ctx.throw_exception("dacapo-induced", handled_depth=0)

        self.m_op = Method(
            "iterate", "%s.harness.Driver" % package, op_body, bytecode_size=200
        )

        self.annotated_sites = min(8, spec.alloc_sites)

    def _class_for_site(self, site_index: int) -> int:
        """Deterministic site → lifetime class matching the volume mix."""
        young, medium, _long = self.spec.lifetime_mix
        position = (site_index * 0.6180339887) % 1.0  # low-discrepancy
        if position < young:
            return YOUNG
        if position < young + medium:
            return MEDIUM
        return LONG

    def _allocate(self, ctx, bci: int, lifetime_class: int) -> SimObject:
        size = self.spec.obj_bytes
        if lifetime_class == YOUNG:
            return ctx.alloc(bci, size, lives_ns=25_000, gen_hint=0)
        obj = ctx.alloc(bci, size, gen_hint=GEN_HINT[lifetime_class])
        queue = self.medium_queue if lifetime_class == MEDIUM else self.long_queue
        queue.add(obj, self.vm.bytes_allocated)
        return obj

    # -- operations --------------------------------------------------------------------

    def run_op(self, op_index: int) -> None:
        assert self.vm is not None
        spec = self.spec
        thread = self.threads[op_index % len(self.threads)]
        breadth = min(len(self.services), 16)
        # How many of this op's services allocate, to hit allocs_per_op.
        sites_per_service = max(1, spec.alloc_sites // spec.hot_methods)
        allocating = max(1, min(breadth, spec.allocs_per_op // sites_per_service))
        if op_index % 97 == 0:
            self.exceptions_requested += 1
        self.vm.run(thread, self.m_op, self._window, breadth, allocating)
        self._window = (self._window + breadth) % len(self.services)
        now = self.vm.clock.now_ns
        self.medium_queue.expire(self.vm.bytes_allocated, now)
        self.long_queue.expire(self.vm.bytes_allocated, now)


def make_dacapo(name: str, seed: int = 42) -> DaCapoWorkload:
    """Convenience constructor by benchmark name."""
    return DaCapoWorkload(get_spec(name), seed=seed)

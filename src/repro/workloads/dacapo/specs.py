"""DaCapo 9.12-bach benchmark specifications.

Each spec calibrates a synthetic benchmark to the corresponding real
DaCapo benchmark's profile as reported in the paper's Table 2:

* ``heap_mb`` — Table 2's heap size, scaled 1:8 for simulator scale
  (the paper sized each heap to the minimum giving best throughput);
* ``hot_methods`` / ``alloc_sites`` — sized so the number of *profiled*
  method calls (PMC) and allocation sites (PAS) land near Table 2's
  counts scaled 1:10;
* ``conflicts`` — the number of factory sites reached through call
  paths with different lifetimes (pmd 6, tomcat 4, tradesoap 3, zero
  elsewhere — Table 2);
* the allocation/call/compute mix, which determines where each
  benchmark falls in Figure 6 (fop is call-heavy → method-call
  profiling dominates; sunflow is allocation-heavy → allocation
  profiling dominates; and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DaCapoSpec:
    """Shape parameters of one synthetic DaCapo benchmark."""

    name: str
    #: simulator heap (Table 2 heap scaled 1:8, floor 16 MB)
    heap_mb: int
    #: hot (JIT-compiled) methods in the call graph
    hot_methods: int
    #: allocation sites spread over the hot methods
    alloc_sites: int
    #: method calls executed per operation
    calls_per_op: int
    #: objects allocated per operation
    allocs_per_op: int
    #: base computation per operation (simulated ns)
    work_ns_per_op: float
    #: (young, medium, long) allocation fractions
    lifetime_mix: Tuple[float, float, float]
    #: mean object size in bytes
    obj_bytes: int
    #: factory sites reached via conflicting call paths (Table 2 CF)
    conflicts: int
    #: default operations for a measurement run
    default_ops: int = 6_000

    def __post_init__(self) -> None:
        young, medium, long_ = self.lifetime_mix
        if abs(young + medium + long_ - 1.0) > 1e-9:
            raise ValueError("lifetime mix must sum to 1")


#: Table 2, scaled for the simulator (order matches the paper's table).
DACAPO_SPECS = (
    DaCapoSpec(
        name="avrora", heap_mb=16, hot_methods=20, alloc_sites=18,
        calls_per_op=37, allocs_per_op=8, work_ns_per_op=5250,
        lifetime_mix=(0.92, 0.06, 0.02), obj_bytes=96, conflicts=0,
    ),
    DaCapoSpec(
        name="eclipse", heap_mb=64, hot_methods=60, alloc_sites=64,
        calls_per_op=138, allocs_per_op=36, work_ns_per_op=15000,
        lifetime_mix=(0.84, 0.12, 0.04), obj_bytes=160, conflicts=0,
    ),
    DaCapoSpec(
        name="fop", heap_mb=48, hot_methods=90, alloc_sites=110,
        calls_per_op=310, allocs_per_op=52, work_ns_per_op=11875,
        lifetime_mix=(0.88, 0.09, 0.03), obj_bytes=120, conflicts=0,
    ),
    DaCapoSpec(
        name="h2", heap_mb=64, hot_methods=55, alloc_sites=36,
        calls_per_op=142, allocs_per_op=44, work_ns_per_op=17500,
        lifetime_mix=(0.75, 0.17, 0.08), obj_bytes=220, conflicts=0,
    ),
    DaCapoSpec(
        name="jython", heap_mb=24, hot_methods=160, alloc_sites=88,
        calls_per_op=1180, allocs_per_op=64, work_ns_per_op=18750,
        lifetime_mix=(0.95, 0.04, 0.01), obj_bytes=72, conflicts=0,
    ),
    DaCapoSpec(
        name="luindex", heap_mb=32, hot_methods=24, alloc_sites=22,
        calls_per_op=46, allocs_per_op=26, work_ns_per_op=10000,
        lifetime_mix=(0.80, 0.16, 0.04), obj_bytes=256, conflicts=0,
    ),
    DaCapoSpec(
        name="lusearch", heap_mb=32, hot_methods=28, alloc_sites=30,
        calls_per_op=56, allocs_per_op=30, work_ns_per_op=8750,
        lifetime_mix=(0.93, 0.05, 0.02), obj_bytes=200, conflicts=0,
    ),
    DaCapoSpec(
        name="pmd", heap_mb=32, hot_methods=95, alloc_sites=42,
        calls_per_op=316, allocs_per_op=38, work_ns_per_op=12500,
        lifetime_mix=(0.86, 0.10, 0.04), obj_bytes=112, conflicts=6,
    ),
    DaCapoSpec(
        name="sunflow", heap_mb=16, hot_methods=18, alloc_sites=40,
        calls_per_op=35, allocs_per_op=75, work_ns_per_op=11250,
        lifetime_mix=(0.97, 0.02, 0.01), obj_bytes=64, conflicts=0,
    ),
    DaCapoSpec(
        name="tomcat", heap_mb=48, hot_methods=85, alloc_sites=52,
        calls_per_op=289, allocs_per_op=40, work_ns_per_op=13750,
        lifetime_mix=(0.87, 0.10, 0.03), obj_bytes=144, conflicts=4,
    ),
    DaCapoSpec(
        name="tradebeans", heap_mb=48, hot_methods=70, alloc_sites=32,
        calls_per_op=215, allocs_per_op=30, work_ns_per_op=16250,
        lifetime_mix=(0.82, 0.13, 0.05), obj_bytes=176, conflicts=0,
    ),
    DaCapoSpec(
        name="tradesoap", heap_mb=48, hot_methods=130, alloc_sites=36,
        calls_per_op=580, allocs_per_op=42, work_ns_per_op=20000,
        lifetime_mix=(0.85, 0.11, 0.04), obj_bytes=152, conflicts=3,
    ),
    DaCapoSpec(
        name="xalan", heap_mb=16, hot_methods=75, alloc_sites=48,
        calls_per_op=204, allocs_per_op=46, work_ns_per_op=10625,
        lifetime_mix=(0.90, 0.08, 0.02), obj_bytes=104, conflicts=0,
    ),
)

SPEC_BY_NAME = {spec.name: spec for spec in DACAPO_SPECS}


def get_spec(name: str) -> DaCapoSpec:
    try:
        return SPEC_BY_NAME[name]
    except KeyError:
        raise KeyError(
            "unknown DaCapo benchmark %r (have: %s)"
            % (name, ", ".join(sorted(SPEC_BY_NAME)))
        )

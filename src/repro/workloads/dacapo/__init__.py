"""Synthetic DaCapo 9.12-bach benchmark suite (13 benchmarks calibrated
to the paper's Table 2)."""

from repro.workloads.dacapo.specs import DACAPO_SPECS, DaCapoSpec, SPEC_BY_NAME, get_spec
from repro.workloads.dacapo.synthetic import DaCapoWorkload, make_dacapo

__all__ = [
    "DACAPO_SPECS",
    "DaCapoSpec",
    "DaCapoWorkload",
    "SPEC_BY_NAME",
    "get_spec",
    "make_dacapo",
]

"""Simulated Big Data platforms and benchmarks.

* :class:`CassandraWorkload` — YCSB-driven key-value store (WI/RW/RI);
* :class:`LuceneWorkload` — text indexing + search;
* :class:`GraphChiWorkload` — vertex-centric graph computation (CC/PR);
* :mod:`repro.workloads.dacapo` — the 13-benchmark synthetic DaCapo
  suite;
* :func:`run_workload` — the shared run harness.
"""

from repro.workloads.base import RunResult, Workload, run_workload
from repro.workloads.dacapo import DACAPO_SPECS, DaCapoWorkload, make_dacapo
from repro.workloads.graph import GraphChiWorkload
from repro.workloads.kvstore import CassandraWorkload
from repro.workloads.search import LuceneWorkload
from repro.workloads.shifting import PhaseShiftWorkload
from repro.workloads.ycsb import (
    MIX_READ_INTENSIVE,
    MIX_READ_WRITE,
    MIX_WRITE_INTENSIVE,
    OperationChooser,
    OperationMix,
    RecordSpec,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

__all__ = [
    "CassandraWorkload",
    "DACAPO_SPECS",
    "DaCapoWorkload",
    "GraphChiWorkload",
    "LuceneWorkload",
    "MIX_READ_INTENSIVE",
    "MIX_READ_WRITE",
    "MIX_WRITE_INTENSIVE",
    "OperationChooser",
    "OperationMix",
    "PhaseShiftWorkload",
    "RecordSpec",
    "RunResult",
    "ScrambledZipfianGenerator",
    "UniformGenerator",
    "Workload",
    "ZipfianGenerator",
    "make_dacapo",
    "run_workload",
]

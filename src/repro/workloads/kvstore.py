"""Cassandra-like key-value store workload.

Models the GC-relevant anatomy of Apache Cassandra driven by YCSB:

* **write path** — mutations append 1 KB cells to an in-memory
  *memtable*; the cells live until the memtable fills and is flushed
  (middle-lived: a handful of GC cycles);
* **flush** — turns the memtable into an *SSTable*: data blocks, bloom
  filter and index summary objects that live until a compaction merges
  them away (long-lived);
* **compaction** — every ``compaction_threshold`` SSTables are merged:
  the inputs die, short-lived merge buffers churn, and a deduplicated
  output SSTable is born;
* **read path** — zipfian point reads allocate short-lived request /
  response / iterator objects, and populate a bounded *row cache* whose
  entries live until LRU eviction;
* **factory conflict** — both the write path (middle-lived cells) and
  the read path (short-lived response buffers) obtain their buffers
  through the same ``BufferPool.allocate`` allocation site, reached via
  different call paths.  This is exactly the allocation-context conflict
  ROLP's thread-stack-state tracking exists to disambiguate (paper
  Sections 3-5; Table 1 reports 2 conflicts for Cassandra).

Class/package names mirror Cassandra's so the paper's package filters
(``cassandra.db``, ``cassandra.utils``, ``cassandra.memory``...) apply
unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.heap.object_model import SimObject
from repro.runtime import JavaVM, Method
from repro.workloads.base import Workload
from repro.workloads.ycsb import (
    MIX_READ_INTENSIVE,
    MIX_READ_WRITE,
    MIX_WRITE_INTENSIVE,
    OperationChooser,
    OperationMix,
    RecordSpec,
    ScrambledZipfianGenerator,
)

#: NG2C generation hints (the hand annotations of the NG2C baseline)
GEN_MEMTABLE_CELL = 2
GEN_SSTABLE_DATA = 4
GEN_SSTABLE_META = 4
GEN_ROW_CACHE = 6


class SSTable:
    """One on-disk table's in-heap footprint (blocks + metadata)."""

    __slots__ = ("objects", "bytes")

    def __init__(self) -> None:
        self.objects: List[SimObject] = []
        self.bytes = 0

    def add(self, obj: SimObject) -> None:
        self.objects.append(obj)
        self.bytes += obj.size

    def kill(self, now_ns: int) -> None:
        for obj in self.objects:
            obj.kill_at(now_ns)
        self.objects.clear()


class CassandraWorkload(Workload):
    """YCSB-driven Cassandra model.

    Parameters
    ----------
    mix:
        Operation mix; the paper's WI/RW/RI presets are exposed through
        :meth:`write_intensive`, :meth:`read_write`,
        :meth:`read_intensive`.
    """

    name = "cassandra"
    profiled_packages = (
        "org.apache.cassandra.db",
        "org.apache.cassandra.utils",
        "org.apache.cassandra.memory",
    )
    # The paper gives each platform a memory budget "high enough to
    # avoid memory pressure" (6 GB there; scaled here).  Compaction
    # peaks (4 live input SSTables + the output) set the requirement.
    heap_mb = 96
    young_regions = 2
    default_ops = 60_000

    def __init__(
        self,
        mix: OperationMix = MIX_WRITE_INTENSIVE,
        key_count: int = 50_000,
        memtable_flush_bytes: int = 8 << 20,
        compaction_threshold: int = 4,
        row_cache_entries: int = 2_000,
        record: Optional[RecordSpec] = None,
        worker_threads: int = 4,
        seed: int = 42,
    ) -> None:
        super().__init__(seed)
        self.mix = mix
        self.record = record or RecordSpec()
        self.key_chooser = ScrambledZipfianGenerator(key_count, seed=seed)
        self.op_chooser = OperationChooser(mix, seed=seed + 1)
        self.memtable_flush_bytes = memtable_flush_bytes
        self.compaction_threshold = compaction_threshold
        self.row_cache_entries = row_cache_entries
        self.worker_threads = worker_threads

        # runtime state
        self.memtable_cells: List[SimObject] = []
        self.memtable_bytes = 0
        self.sstables: List[SSTable] = []
        self.row_cache: "OrderedDict[int, SimObject]" = OrderedDict()
        self.flushes = 0
        self.compactions = 0

    # -- preset constructors (the paper's three workloads) ---------------------

    @classmethod
    def write_intensive(cls, **kwargs) -> "CassandraWorkload":
        """WI — 75% writes (Table 1)."""
        workload = cls(mix=MIX_WRITE_INTENSIVE, **kwargs)
        workload.name = "cassandra-wi"
        return workload

    @classmethod
    def read_write(cls, **kwargs) -> "CassandraWorkload":
        """RW — 50% writes (Table 1)."""
        workload = cls(mix=MIX_READ_WRITE, **kwargs)
        workload.name = "cassandra-rw"
        return workload

    @classmethod
    def read_intensive(cls, **kwargs) -> "CassandraWorkload":
        """RI — 25% writes (Table 1)."""
        workload = cls(mix=MIX_READ_INTENSIVE, **kwargs)
        workload.name = "cassandra-ri"
        return workload

    # -- method graph -------------------------------------------------------------

    def build(self, vm: JavaVM) -> None:
        self.vm = vm
        for i in range(self.worker_threads):
            self.make_thread("MutationStage-%d" % i)

        # The shared buffer factory: the conflict site.  Large enough
        # that the JIT will not inline it, so the call sites from the
        # write and read paths stay distinct (and trackable).
        def buffer_allocate(ctx, size, lives_ns, gen_hint):
            ctx.work(60)
            return ctx.alloc(1, size, lives_ns=lives_ns, gen_hint=gen_hint)

        self.m_buffer_allocate = Method(
            "allocate",
            "org.apache.cassandra.utils.memory.BufferPool",
            buffer_allocate,
            bytecode_size=90,
        )

        # Second factory (slab allocator) shared by the cache fill path
        # and the commit-log path: the paper reports 2 conflicts.
        def slab_allocate(ctx, size, lives_ns, gen_hint):
            ctx.work(50)
            return ctx.alloc(1, size, lives_ns=lives_ns, gen_hint=gen_hint)

        self.m_slab_allocate = Method(
            "allocate",
            "org.apache.cassandra.utils.memory.SlabAllocator",
            slab_allocate,
            bytecode_size=80,
        )

        def memtable_put(ctx, key):
            # request envelope: dies as soon as the op completes
            ctx.alloc(1, 160, lives_ns=20_000)
            # the cell: lives until flush (unknown at allocation time)
            cell = ctx.call(
                2,
                self.m_buffer_allocate,
                self.record.record_bytes,
                None,
                GEN_MEMTABLE_CELL,
            )
            # commit-log entry via the slab allocator: dies young
            ctx.call(3, self.m_slab_allocate, 128, 30_000, 0)
            ctx.work(45_000)
            return cell

        self.m_memtable_put = Method(
            "put", "org.apache.cassandra.db.Memtable", memtable_put, bytecode_size=220
        )

        def read_execute(ctx, key):
            ctx.alloc(1, 144, lives_ns=15_000)  # ReadCommand
            # response buffer through the SAME factory as cells
            response = ctx.call(
                2, self.m_buffer_allocate, self.record.record_bytes, 25_000, 0
            )
            ctx.alloc(3, 96, lives_ns=15_000)  # iterator
            ctx.work(55_000)
            return response

        self.m_read_execute = Method(
            "execute",
            "org.apache.cassandra.db.ReadCommand",
            read_execute,
            bytecode_size=260,
        )

        def cache_put(ctx, key):
            # cache entry via the slab allocator: lives until eviction
            entry = ctx.call(
                1,
                self.m_slab_allocate,
                self.record.record_bytes,
                None,
                GEN_ROW_CACHE,
            )
            ctx.work(8_000)
            return entry

        self.m_cache_put = Method(
            "put", "org.apache.cassandra.db.RowCacheService", cache_put, bytecode_size=120
        )

        def flush_run(ctx, memtable_bytes):
            # SSTable data blocks: 64 KB chunks, long-lived.  The write
            # loop is hot even though flush() is invoked rarely — the
            # JIT OSR-compiles it mid-execution.
            table = SSTable()
            block_count = max(1, memtable_bytes // (64 << 10))
            ctx.loop(block_count)
            for i in range(block_count):
                block = ctx.alloc(1, 64 << 10, gen_hint=GEN_SSTABLE_DATA)
                table.add(block)
            table.add(ctx.alloc(2, 32 << 10, gen_hint=GEN_SSTABLE_META))  # bloom
            table.add(ctx.alloc(3, 16 << 10, gen_hint=GEN_SSTABLE_META))  # index
            ctx.work(400_000)
            return table

        self.m_flush = Method(
            "flush",
            "org.apache.cassandra.db.Memtable",
            flush_run,
            bytecode_size=300,
            osr_eligible=True,
        )

        def compaction_run(ctx, inputs):
            # merge iterators + scratch buffers: die with the compaction
            ctx.loop(sum(t.bytes for t in inputs) // (64 << 10))
            for i in range(8):
                ctx.alloc(1, 32 << 10, lives_ns=200_000)
            output = SSTable()
            output_bytes = max(t.bytes for t in inputs)
            for i in range(max(1, output_bytes // (64 << 10))):
                output.add(ctx.alloc(2, 64 << 10, gen_hint=GEN_SSTABLE_DATA))
            ctx.work(1_200_000)
            return output

        self.m_compaction = Method(
            "run",
            "org.apache.cassandra.db.compaction.CompactionTask",
            compaction_run,
            bytecode_size=400,
            osr_eligible=True,
        )

        # unprofiled transport dispatcher (outside the package filter)
        def message_process(ctx, op, key):
            ctx.alloc(1, 80, lives_ns=10_000)  # frame
            if op == "read":
                return ctx.call(2, self.m_read_execute, key)
            return ctx.call(3, self.m_memtable_put, key)

        self.m_process = Method(
            "process",
            "org.apache.cassandra.transport.Message",
            message_process,
            bytecode_size=180,
        )

        #: hand annotations for the NG2C baseline (gen_hint != 0 sites)
        self.annotated_sites = 5

    # -- operations --------------------------------------------------------------------

    def run_op(self, op_index: int) -> None:
        assert self.vm is not None
        thread = self.threads[op_index % len(self.threads)]
        op = self.op_chooser.next()
        key = self.key_chooser.next()

        if op == "read":
            self.vm.run(thread, self.m_process, "read", key)
            self._maybe_cache_fill(thread, key)
        else:  # update / insert / scan all write through the memtable
            cell = self.vm.run(thread, self.m_process, "write", key)
            if cell is not None:
                self.memtable_cells.append(cell)
                self.memtable_bytes += cell.size
            if self.memtable_bytes >= self.memtable_flush_bytes:
                self._flush(thread)

    # -- lifecycle events ----------------------------------------------------------------

    def _maybe_cache_fill(self, thread, key: int) -> None:
        if key in self.row_cache:
            self.row_cache.move_to_end(key)
            return
        entry = self.vm.run(thread, self.m_cache_put, key)
        if entry is None:
            return
        self.row_cache[key] = entry
        if len(self.row_cache) > self.row_cache_entries:
            _, evicted = self.row_cache.popitem(last=False)
            evicted.kill_at(self.vm.clock.now_ns)

    def _flush(self, thread) -> None:
        now = self.vm.clock.now_ns
        for cell in self.memtable_cells:
            cell.kill_at(now)
        flushed_bytes = self.memtable_bytes
        self.memtable_cells = []
        self.memtable_bytes = 0
        table = self.vm.run(thread, self.m_flush, flushed_bytes)
        if table is not None:
            self.sstables.append(table)
        self.flushes += 1
        if len(self.sstables) >= self.compaction_threshold:
            self._compact(thread)

    def _compact(self, thread) -> None:
        inputs = self.sstables[: self.compaction_threshold]
        self.sstables = self.sstables[self.compaction_threshold:]
        output = self.vm.run(thread, self.m_compaction, inputs)
        now = self.vm.clock.now_ns
        for table in inputs:
            table.kill(now)
        if output is not None:
            self.sstables.append(output)
        self.compactions += 1

"""Verifier suite wiring: levels, null hooks, and the ambient default.

Mirrors the telemetry layer's null-object pattern: a VM built without
verification gets :data:`NULL_VERIFIER`, whose ``enabled`` flag lets hot
paths skip the hook with a single attribute read, so the default
configuration pays nothing and produces byte-identical results.

Levels (``VMFlags.verify_level`` / ``rolp-bench --verify``):

* ``VERIFY_OFF`` (0) — null hooks, no checking.
* ``VERIFY_HEAP`` (1) — :class:`HeapVerifier` walks the heap before and
  after every GC cycle (HotSpot's ``VerifyBeforeGC``/``VerifyAfterGC``).
* ``VERIFY_FULL`` (2) — additionally replays biased-lock events through
  the :class:`LockDisciplineChecker` and validates profiling writes to
  the header context bits.

The *ambient* default level exists for the bench runner: worker
processes and nested VM constructions (workloads, DaCapo runs, ablation
replays) pick it up without threading a flag through every call site —
and, crucially, without changing cell keys or derived seeds, which keeps
verified results comparable with the unverified goldens.
"""

from __future__ import annotations

from repro.analysis.heap_verifier import HeapVerifier
from repro.analysis.lock_checker import LockDisciplineChecker

VERIFY_OFF = 0
VERIFY_HEAP = 1
VERIFY_FULL = 2
VERIFY_LEVELS = (VERIFY_OFF, VERIFY_HEAP, VERIFY_FULL)


class NullVerifier:
    """Zero-cost stand-in when verification is off.

    Every hook is a no-op; ``enabled`` is False so hot paths can guard
    with one attribute read, exactly like :data:`NULL_TELEMETRY`.
    """

    enabled = False
    level = VERIFY_OFF
    checks_run = 0

    def bind(self, vm) -> None:
        pass

    def bind_telemetry(self, telemetry) -> None:
        pass

    def at_gc_start(self, collector) -> None:
        pass

    def at_gc_end(self, collector) -> None:
        pass

    def at_safepoint(self, vm) -> None:
        pass

    def on_bias_lock(self, thread, obj) -> None:
        pass

    def on_bias_revoke(self, obj, thread=None) -> None:
        pass

    def on_context_install(self, thread, obj, context) -> None:
        pass

    def verify_heap(self, collector, phase: str = "manual") -> int:
        return 0


#: Shared no-op verifier (stateless, safe to share between VMs).
NULL_VERIFIER = NullVerifier()


class VerifierSuite:
    """The enabled verifier: heap walker plus optional lock checker."""

    enabled = True

    def __init__(self, level: int = VERIFY_HEAP) -> None:
        if level not in VERIFY_LEVELS or level == VERIFY_OFF:
            raise ValueError(
                "verify level must be one of %s (got %r)"
                % (VERIFY_LEVELS[1:], level)
            )
        self.level = level
        self.heap = HeapVerifier()
        self.locks = LockDisciplineChecker() if level >= VERIFY_FULL else None

    @property
    def checks_run(self) -> int:
        checks = self.heap.checks_run
        if self.locks is not None:
            checks += self.locks.events
        return checks

    @property
    def violations(self) -> int:
        found = self.heap.violations
        if self.locks is not None:
            found += self.locks.violations
        return found

    # -- wiring ----------------------------------------------------------------

    def bind(self, vm) -> None:
        self.bind_telemetry(vm.telemetry)

    def bind_telemetry(self, telemetry) -> None:
        self.heap.bind_telemetry(telemetry)
        if self.locks is not None:
            self.locks.bind_telemetry(telemetry)

    # -- GC/safepoint hooks ------------------------------------------------------

    def verify_heap(self, collector, phase: str = "manual") -> int:
        biased = collector.vm.biased_locks if collector.vm is not None else None
        return self.heap.verify(
            collector.heap, collector=collector, biased=biased, phase=phase
        )

    def at_gc_start(self, collector) -> None:
        self.verify_heap(collector, phase="before-gc")

    def at_gc_end(self, collector) -> None:
        self.verify_heap(collector, phase="after-gc")

    def at_safepoint(self, vm) -> None:
        if self.locks is not None:
            self.locks.at_safepoint(vm.threads)

    # -- lock-event hooks ---------------------------------------------------------

    def on_bias_lock(self, thread, obj) -> None:
        if self.locks is not None:
            self.locks.on_bias_lock(thread, obj)

    def on_bias_revoke(self, obj, thread=None) -> None:
        if self.locks is not None:
            self.locks.on_bias_revoke(obj, thread)

    def on_context_install(self, thread, obj, context) -> None:
        if self.locks is not None:
            self.locks.on_context_install(thread, obj, context)


def make_verifier(level: int):
    """Build the verifier for a VM: the null hook at level 0."""
    if not level:
        return NULL_VERIFIER
    return VerifierSuite(level)


_default_level = VERIFY_OFF


def default_verify_level() -> int:
    """Process-wide verify level applied when ``VMFlags.verify_level``
    is left unset (``None``)."""
    return _default_level


def set_default_verify_level(level: int) -> int:
    """Set the ambient verify level; returns the previous one so
    callers (the bench CLI, tests) can restore it."""
    global _default_level
    if level not in VERIFY_LEVELS:
        raise ValueError(
            "verify level must be one of %s (got %r)" % (VERIFY_LEVELS, level)
        )
    previous = _default_level
    _default_level = level
    return previous

"""Happens-before checker for biased-lock discipline.

HotSpot's biased locking only stays correct because revocation happens
at a safepoint: the revoking thread cannot race a re-bias by another
thread, and profiling code must never write the upper header bits of an
object that is currently bias-locked (the paper's Section 3.2.2 hazard
— ROLP deliberately *loses* the context instead of corrupting the lock
word).

This checker replays the simulator's lock events against a vector-clock
happens-before order.  Each simulated thread is one clock actor; the VM
itself (revocations with no initiating thread, safepoints) acts as a
pseudo-actor.  Safepoints join every clock, which is exactly the
ordering guarantee HotSpot's safepoint protocol provides.  Violations:

``lock/double-bias``
    biasing an object that is already bias-locked (the fast path must
    revoke first).
``lock/revoke-unbiased``
    revoking an object that holds no bias — an out-of-order revocation.
``lock/unordered-rebias``
    re-biasing by a thread that is not ordered after the previous
    revocation (no intervening safepoint): a lock-word data race.
``lock/header-mismatch``
    the manager's record and the header's biased bit disagree at an
    event boundary.
``lock/context-overwrite``
    profiling code installing an allocation context over a live biased
    lock word.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.violations import InvariantViolation
from repro.heap import header as hdr
from repro.telemetry import NULL_TELEMETRY

#: Pseudo thread id for VM-initiated events (safepoints, unsolicited
#: revocations).  Real threads start at id 1.
VM_ACTOR = 0

VectorClock = Dict[int, int]


def _happens_before(earlier: VectorClock, later: VectorClock) -> bool:
    """True when ``earlier`` ≤ ``later`` componentwise."""
    return all(later.get(actor, 0) >= tick for actor, tick in earlier.items())


class LockDisciplineChecker:
    """Vector-clock validator for biased-lock event ordering."""

    def __init__(self) -> None:
        self.events = 0
        self.safepoints = 0
        self.violations = 0
        self._clocks: Dict[int, VectorClock] = {VM_ACTOR: {}}
        #: id(obj) -> (obj, owner thread id) while bias-locked
        self._biased: Dict[int, Tuple[object, int]] = {}
        #: id(obj) -> (obj, revoker actor, clock snapshot at revocation)
        self._revoked: Dict[int, Tuple[object, int, VectorClock]] = {}
        self.bind_telemetry(NULL_TELEMETRY)

    def bind_telemetry(self, telemetry) -> None:
        self._m_events = telemetry.metrics.counter(
            "verify_lock_events_total", "Lock events replayed by the discipline checker"
        )
        self._m_violations = telemetry.metrics.counter(
            "verify_violations_total", "Invariant violations detected, by rule"
        )

    # -- clock plumbing -------------------------------------------------------

    def _tick(self, actor: int) -> VectorClock:
        clock = self._clocks.setdefault(actor, {})
        clock[actor] = clock.get(actor, 0) + 1
        self.events += 1
        self._m_events.inc()
        return clock

    def _fail(self, rule: str, message: str, **details: object) -> None:
        self.violations += 1
        self._m_violations.inc(1, rule=rule)
        raise InvariantViolation(rule, message, **details)

    @staticmethod
    def _actor(thread) -> int:
        return VM_ACTOR if thread is None else thread.thread_id

    # -- events ---------------------------------------------------------------

    def on_bias_lock(self, thread, obj) -> None:
        """A thread is about to bias-lock ``obj`` (pre-state check)."""
        actor = self._actor(thread)
        clock = self._tick(actor)
        key = id(obj)
        held = self._biased.get(key)
        if held is not None and held[0] is obj:
            self._fail(
                "lock/double-bias",
                "bias acquired on an object that is already bias-locked",
                thread=actor,
                owner=held[1],
                context=hdr.extract_context(obj.header),
            )
        if hdr.is_biased_locked(obj.header):
            # Bit set with no record: someone wrote the header directly.
            self._fail(
                "lock/header-mismatch",
                "header carries a biased bit the lock manager never granted",
                thread=actor,
                context=hdr.extract_context(obj.header),
            )
        revoked = self._revoked.pop(key, None)
        if revoked is not None and revoked[0] is obj:
            _, revoker, snapshot = revoked
            if not _happens_before(snapshot, clock):
                self._fail(
                    "lock/unordered-rebias",
                    "re-bias is not ordered after the previous revocation "
                    "(no safepoint between revoke and re-acquire)",
                    thread=actor,
                    revoker=revoker,
                    context=hdr.extract_context(obj.header),
                )
        self._biased[key] = (obj, actor)

    def on_bias_revoke(self, obj, thread=None) -> None:
        """Bias on ``obj`` is about to be revoked (pre-state check)."""
        actor = self._actor(thread)
        clock = self._tick(actor)
        key = id(obj)
        held = self._biased.pop(key, None)
        if held is None or held[0] is not obj:
            self._fail(
                "lock/revoke-unbiased",
                "revocation of an object that holds no bias (out-of-order revoke)",
                thread=actor,
                context=hdr.extract_context(obj.header),
            )
        if not hdr.is_biased_locked(obj.header):
            self._fail(
                "lock/header-mismatch",
                "lock manager holds a bias the header's biased bit does not show",
                thread=actor,
                owner=held[1],
                context=hdr.extract_context(obj.header),
            )
        self._revoked[key] = (obj, actor, dict(clock))

    def on_context_install(self, thread, obj, context: int) -> None:
        """Profiling code is about to write the upper header bits."""
        actor = self._actor(thread)
        self._tick(actor)
        key = id(obj)
        held = self._biased.get(key)
        if (held is not None and held[0] is obj) or hdr.is_biased_locked(obj.header):
            self._fail(
                "lock/context-overwrite",
                "allocation-context write would corrupt a live biased lock word",
                thread=actor,
                owner=held[1] if held else None,
                new_context=context,
                context=hdr.extract_context(obj.header),
            )

    def at_safepoint(self, threads=()) -> None:
        """Join every actor's clock (the safepoint global ordering)."""
        self.safepoints += 1
        for thread in threads:
            self._clocks.setdefault(self._actor(thread), {})
        joined: VectorClock = {}
        for clock in self._clocks.values():
            for actor, tick in clock.items():
                if tick > joined.get(actor, 0):
                    joined[actor] = tick
        joined[VM_ACTOR] = joined.get(VM_ACTOR, 0) + 1
        for actor in self._clocks:
            self._clocks[actor] = dict(joined)

    # -- introspection --------------------------------------------------------

    def biased_count(self) -> int:
        return len(self._biased)

    def owner_of(self, obj) -> Optional[int]:
        held = self._biased.get(id(obj))
        return held[1] if held is not None and held[0] is obj else None

"""The fuzzer's combined oracle: sanitizers + differential fingerprints.

The adversarial search loop (:mod:`repro.bench.fuzz`) runs every
candidate genome once per execution backend with level-2 invariant
verification live, and hands the per-backend outcomes to
:func:`judge`.  A candidate is *interesting* — worth shrinking and
banking into the regression corpus — when any of three oracles fire:

* ``invariant/<rule>`` — a sanitizer raised
  :class:`repro.analysis.InvariantViolation` (rule id preserved),
* ``differential/fingerprint-divergence`` — the reference/fast/compiled
  backends disagree at the byte level on the run fingerprint,
* ``inference/accuracy-cliff`` — inference ran but its survivor
  estimates thrash beyond :data:`ACCURACY_CLIFF_DRIFT` mean age steps
  per pass (the profiler's advice is then noise, violating the paper's
  convergence claim).

This module is pure judgment — no simulation, no I/O — so it is
trivially picklable across the runner's worker pool and reusable from
tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

#: mean |Δ estimated age| per inference pass beyond which the estimates
#: are considered thrashing (a full age-step per pass on average means
#: advice never converges)
ACCURACY_CLIFF_DRIFT = 1.0


@dataclass(frozen=True)
class OracleFinding:
    """One oracle firing for one candidate genome."""

    #: stable id: "invariant/<rule>", "differential/fingerprint-divergence"
    #: or "inference/accuracy-cliff"
    rule_id: str
    #: human-readable evidence
    detail: str

    def as_dict(self) -> Dict[str, str]:
        return {"rule_id": self.rule_id, "detail": self.detail}


def judge(
    results_by_backend: Dict[str, dict],
    accuracy_cliff_drift: float = ACCURACY_CLIFF_DRIFT,
) -> List[OracleFinding]:
    """Judge one candidate's per-backend evaluation results.

    ``results_by_backend`` maps backend name to the dict
    :func:`repro.bench.fuzz.evaluate_genome` returns::

        {"violation": {"rule": ..., "message": ...} | None,
         "fingerprint": <JSON-stable dict>,
         "metrics": {"prediction_error": float, ...}}

    Findings come back deterministically ordered: invariant findings
    first (by backend name), then divergence, then the accuracy cliff.
    """
    findings: List[OracleFinding] = []

    for backend in sorted(results_by_backend):
        violation = results_by_backend[backend].get("violation")
        if violation:
            findings.append(
                OracleFinding(
                    rule_id="invariant/%s" % violation["rule"],
                    detail="[%s] %s" % (backend, violation["message"]),
                )
            )

    divergence = fingerprint_divergence(results_by_backend)
    if divergence is not None:
        findings.append(divergence)

    # Judge accuracy on the reference backend (all backends agree
    # whenever the divergence oracle is quiet).
    reference = results_by_backend.get("reference")
    if reference is not None and not reference.get("violation"):
        drift = reference.get("metrics", {}).get("prediction_error", 0.0)
        passes = reference.get("metrics", {}).get("inference_passes", 0)
        if passes >= 2 and drift > accuracy_cliff_drift:
            findings.append(
                OracleFinding(
                    rule_id="inference/accuracy-cliff",
                    detail=(
                        "mean estimate drift %.3f age-steps/pass over %d passes"
                        " (cliff at %.2f)" % (drift, passes, accuracy_cliff_drift)
                    ),
                )
            )
    return findings


def fingerprint_divergence(
    results_by_backend: Dict[str, dict],
) -> Optional[OracleFinding]:
    """The cross-backend byte-equality check, as a single finding.

    Backends that raised a violation carry no comparable fingerprint
    and are excluded (the invariant finding already covers them).
    """
    fingerprints = {
        backend: result.get("fingerprint")
        for backend, result in results_by_backend.items()
        if not result.get("violation")
    }
    if len(fingerprints) < 2:
        return None
    import json

    encoded = {
        backend: json.dumps(fingerprint, sort_keys=True)
        for backend, fingerprint in fingerprints.items()
    }
    reference = min(encoded)  # lexicographically first backend name
    diverged = sorted(
        backend
        for backend, blob in encoded.items()
        if blob != encoded[reference]
    )
    if not diverged:
        return None
    return OracleFinding(
        rule_id="differential/fingerprint-divergence",
        detail="backends %s disagree with %s" % (", ".join(diverged), reference),
    )

"""HotSpot ``-XX:+VerifyBeforeGC/AfterGC``-style heap walker.

Independently re-derives every aggregate the :class:`RegionHeap` keeps
incrementally (free counts, committed bytes, per-region ``used``) and
checks each object header against the invariants the paper relies on:
age tracks survival count, the allocation context round-trips through
:mod:`repro.heap.header`, biased-lock bits agree with the
:class:`BiasedLockManager`'s records, and objects sit in regions whose
space/generation matches what the collector's placement policy allows.

The walk is O(regions + objects) and runs only at GC pause boundaries
and safepoints when verification is enabled, mirroring HotSpot's
approach of paying the full-heap walk only under a debug flag.
"""

from __future__ import annotations

from repro.analysis.violations import InvariantViolation
from repro.heap import header as hdr
from repro.heap.heap import RegionHeap
from repro.heap.region import Region, Space
from repro.telemetry import NULL_TELEMETRY

#: Dynamic generations NG2C may place objects in (OLD is gen 15, young 0).
_DYNAMIC_GENS = range(1, hdr.NUM_AGES - 1)


class HeapVerifier:
    """Walks a :class:`RegionHeap` and raises on the first inconsistency.

    The verifier never mutates the heap; it may therefore run between
    any two simulation steps without perturbing results.  Collector
    capability flags (``ages_on_copy``, ``in_place_old_sweep``,
    ``supports_dynamic_gens``) select which placement/aging rules apply,
    so one walker serves G1, CMS, ZGC and NG2C alike.
    """

    def __init__(self) -> None:
        self.checks_run = 0
        self.violations = 0
        self._phase = "manual"
        self._in_place_waste = False
        self.bind_telemetry(NULL_TELEMETRY)

    def bind_telemetry(self, telemetry) -> None:
        metrics = telemetry.metrics
        self._m_checks = metrics.counter(
            "verify_checks_total", "Invariant checks executed by the heap verifier"
        )
        self._m_violations = metrics.counter(
            "verify_violations_total", "Invariant violations detected, by rule"
        )

    # -- entry point ---------------------------------------------------------

    def verify(
        self,
        heap: RegionHeap,
        collector=None,
        biased=None,
        phase: str = "manual",
    ) -> int:
        """Walk ``heap`` and return the number of checks performed.

        Raises :class:`InvariantViolation` on the first broken invariant.
        ``biased`` is the VM's :class:`BiasedLockManager` (header bias
        bits are cross-checked against its records when provided).
        """
        self._phase = phase
        self._in_place_waste = bool(getattr(collector, "in_place_old_sweep", False))
        before = self.checks_run
        try:
            self._verify_region_table(heap)
            self._verify_alloc_cache(heap)
            self._verify_space_counts(heap)
            self._verify_humongous(heap)
            self._verify_objects(heap, collector, biased)
            if biased is not None:
                self._verify_bias_records(biased)
        finally:
            done = self.checks_run - before
            self._m_checks.inc(done)
        return done

    # -- failure plumbing ----------------------------------------------------

    def _check(self, ok: bool, rule: str, message: str, **details: object) -> None:
        self.checks_run += 1
        if not ok:
            self.violations += 1
            self._m_violations.inc(1, rule=rule)
            raise InvariantViolation(rule, message, phase=self._phase, **details)

    # -- region table --------------------------------------------------------

    def _verify_region_table(self, heap: RegionHeap) -> None:
        free_spaces = 0
        for position, region in enumerate(heap.regions):
            self._check(
                region.index == position,
                "heap/region-index",
                "region table position does not match region.index",
                region=region.index,
                position=position,
            )
            if region.space is Space.FREE:
                free_spaces += 1
                self._check(
                    region.used == 0 and not region.objects and region.gen == 0,
                    "heap/free-list",
                    "free region still carries contents",
                    region=region.index,
                    used=region.used,
                    objects=len(region.objects),
                )
            else:
                object_bytes = sum(o.size for o in region.objects)
                slack_ok = self._used_matches(region, object_bytes, heap)
                self._check(
                    0 <= region.used <= region.capacity and slack_ok,
                    "heap/region-used",
                    "region used-byte accounting disagrees with its object list",
                    region=region.index,
                    space=region.space.value,
                    used=region.used,
                    object_bytes=object_bytes,
                    capacity=region.capacity,
                )
        free_list = heap.free_list()
        self._check(
            len(free_list) == free_spaces,
            "heap/free-list",
            "free-list length disagrees with FREE-space region count",
            free_list=len(free_list),
            free_regions=free_spaces,
        )
        self._check(
            all(r.space is Space.FREE for r in free_list),
            "heap/free-list",
            "free list holds a non-free region",
        )
        expected_committed = (len(heap.regions) - free_spaces) * heap.region_bytes
        self._check(
            heap.committed_bytes == expected_committed,
            "heap/committed",
            "committed-byte counter disagrees with the region walk",
            committed_bytes=heap.committed_bytes,
            expected=expected_committed,
        )
        # ``in_place_old_sweep`` can leave waste, so the aggregate is a
        # lower bound there; everywhere else this catches drift between
        # the incremental counters and reality.
        self._check(
            heap.used_bytes() <= heap.committed_bytes,
            "heap/committed",
            "used bytes exceed committed bytes",
            used_bytes=heap.used_bytes(),
            committed_bytes=heap.committed_bytes,
        )

    def _used_matches(self, region: Region, object_bytes: int, heap: RegionHeap) -> bool:
        """Exact equality, except spaces where a sweep legitimately
        leaves dead bytes behind (CMS's non-moving old sweep)."""
        if self._in_place_waste and region.space in (Space.OLD, Space.HUMONGOUS):
            return object_bytes <= region.used
        return object_bytes == region.used

    # -- allocation-region cache ---------------------------------------------

    def _verify_alloc_cache(self, heap: RegionHeap) -> None:
        for (space, gen), region in heap.alloc_region_map().items():
            self._check(
                region.space is space and region.gen == gen,
                "heap/alloc-cache",
                "cached allocation region retargeted without cache update",
                region=region.index,
                cached_space=space.value,
                cached_gen=gen,
                actual_space=region.space.value,
                actual_gen=region.gen,
            )

    # -- per-space region counters ---------------------------------------------

    def _verify_space_counts(self, heap: RegionHeap) -> None:
        """The incrementally maintained per-space counts (the collectors'
        O(1) triggering checks read these) must agree with a region walk.

        Ordered after the region-table and alloc-cache rules so that a
        fault with a more specific cause (e.g. a region retargeted behind
        the cache's back) is reported under its own rule first.
        """
        walked = {space: 0 for space in Space}
        for region in heap.regions:
            walked[region.space] += 1
        for space in Space:
            self._check(
                heap.region_count(space) == walked[space],
                "heap/space-counts",
                "incremental per-space region count disagrees with the walk",
                space=space.value,
                counted=heap.region_count(space),
                walked=walked[space],
            )

    # -- humongous contiguity --------------------------------------------------

    def _verify_humongous(self, heap: RegionHeap) -> None:
        humongous = heap.regions_in(Space.HUMONGOUS)
        claimed_capacity = 0
        for region in humongous:
            claimed_capacity += region.capacity
            self._check(
                len(region.objects) <= 1,
                "heap/humongous",
                "humongous region shared by multiple objects",
                region=region.index,
                objects=len(region.objects),
            )
            self._check(
                region.capacity % heap.region_bytes == 0,
                "heap/humongous",
                "humongous capacity not a whole number of regions",
                region=region.index,
                capacity=region.capacity,
            )
        # Stretched head capacities must exactly account for the
        # zero-capacity continuation regions claimed alongside them.
        self._check(
            claimed_capacity == len(humongous) * heap.region_bytes,
            "heap/humongous",
            "humongous capacities do not cover the claimed region count",
            capacity_sum=claimed_capacity,
            regions=len(humongous),
            region_bytes=heap.region_bytes,
        )

    # -- objects ----------------------------------------------------------------

    def _verify_objects(self, heap: RegionHeap, collector, biased) -> None:
        ages_on_copy = bool(getattr(collector, "ages_on_copy", False))
        dynamic_ok = bool(getattr(collector, "supports_dynamic_gens", False))
        threshold = getattr(collector, "tenuring_threshold", None)
        seen = set()
        for region in heap.regions:
            if region.space is Space.FREE:
                continue
            self._verify_region_placement(region, collector, dynamic_ok)
            for obj in region.objects:
                self._check(
                    id(obj) not in seen,
                    "heap/duplicate-object",
                    "object reachable from two regions",
                    region=region.index,
                    size=obj.size,
                )
                seen.add(id(obj))
                self._check(
                    obj.region is region,
                    "heap/backpointer",
                    "object's region back-pointer disagrees with the walk",
                    region=region.index,
                    backpointer=getattr(obj.region, "index", None),
                )
                self._verify_header(obj, region, collector, ages_on_copy, biased)
                self._verify_placement(obj, region, ages_on_copy, threshold)

    def _verify_region_placement(self, region: Region, collector, dynamic_ok: bool) -> None:
        if region.space is Space.DYNAMIC:
            self._check(
                region.gen in _DYNAMIC_GENS,
                "placement/dynamic-gen",
                "dynamic region generation outside NG2C's 1..14 range",
                region=region.index,
                gen=region.gen,
            )
            self._check(
                collector is None or dynamic_ok,
                "placement/dynamic-unsupported",
                "dynamic-generation region under a collector without "
                "dynamic-generation support",
                region=region.index,
                collector=getattr(collector, "name", None),
            )
        else:
            self._check(
                region.gen == 0,
                "placement/space-gen",
                "non-dynamic region carries a generation number",
                region=region.index,
                space=region.space.value,
                gen=region.gen,
            )

    def _verify_header(
        self, obj, region: Region, collector, ages_on_copy: bool, biased
    ) -> None:
        header = obj.header
        self._check(
            isinstance(header, int) and 0 <= header <= hdr.MASK_64,
            "header/bits",
            "header is not a 64-bit word",
            region=region.index,
            header=header,
        )
        # Round-trip: rewriting each field with its own value must be the
        # identity, i.e. no field leaks into a neighbour's bits.
        roundtrip = hdr.install_context(header, hdr.extract_context(header))
        roundtrip = hdr.set_age(roundtrip, hdr.get_age(roundtrip))
        roundtrip = hdr.set_identity_hash(roundtrip, hdr.get_identity_hash(roundtrip))
        self._check(
            roundtrip == header,
            "header/roundtrip",
            "header fields do not round-trip through repro.heap.header",
            region=region.index,
            header=header,
            roundtrip=roundtrip,
        )
        context = hdr.extract_context(header)
        self._check(
            hdr.pack_context(hdr.context_site(context), hdr.context_stack_state(context))
            == context,
            "header/roundtrip",
            "allocation context does not round-trip through pack_context",
            region=region.index,
            context=context,
        )
        if collector is not None:
            age, copies = obj.age, obj.copies
            if ages_on_copy:
                ok = age == min(copies, hdr.MAX_AGE)
            else:
                ok = age <= copies
            self._check(
                ok,
                "header/age",
                "object age disagrees with its GC survival count",
                region=region.index,
                age=age,
                copies=copies,
            )
        if biased is not None and hdr.is_biased_locked(header):
            record = biased.bias_record(obj)
            self._check(
                record is not None,
                "header/bias-agreement",
                "biased-lock bit set but the lock manager has no record",
                region=region.index,
                context=context,
            )
            thread_pointer, thread_id = record
            self._check(
                context == thread_pointer,
                "header/bias-agreement",
                "biased header's thread pointer disagrees with the lock record",
                region=region.index,
                context=context,
                thread_pointer=thread_pointer,
                thread=thread_id,
            )

    def _verify_placement(self, obj, region: Region, ages_on_copy: bool, threshold) -> None:
        if region.space is Space.EDEN:
            self._check(
                obj.age == 0,
                "placement/eden-age",
                "aged object sitting in eden",
                region=region.index,
                age=obj.age,
                context=obj.context,
            )
        elif region.space is Space.SURVIVOR and ages_on_copy:
            self._check(
                1 <= obj.age and (threshold is None or obj.age < threshold),
                "placement/survivor-age",
                "survivor-space object outside the 1..tenuring-threshold window",
                region=region.index,
                age=obj.age,
                tenuring_threshold=threshold,
            )

    # -- bias-record reverse direction ------------------------------------------

    def _verify_bias_records(self, biased) -> None:
        for obj, thread_pointer, thread_id in biased.iter_bias_records():
            self._check(
                hdr.is_biased_locked(obj.header),
                "header/bias-agreement",
                "lock manager records a bias the header does not carry",
                thread=thread_id,
                thread_pointer=thread_pointer,
                context=hdr.extract_context(obj.header),
            )

"""Structured invariant-violation errors raised by the sanitizer suite.

Every checker in :mod:`repro.analysis` reports corruption through one
exception type so callers (the bench CLI, tests, CI) can catch it at a
single point and always get the same shape: a rule identifier plus the
identifiers of the offending entities — region index, allocation
context, thread id — so a violation deep inside a bench grid pinpoints
its culprit without a debugger.
"""

from __future__ import annotations

from typing import Dict


class InvariantViolation(Exception):
    """A runtime invariant check found corrupted simulator state.

    Parameters
    ----------
    rule:
        Stable rule identifier, e.g. ``"heap/region-used"`` or
        ``"lock/double-bias"``.
    message:
        Human-readable description of what broke.
    details:
        Identifying key/value pairs (``region=3``, ``thread=2``,
        ``context=0x12340001``, ...) naming the corrupted entities.
    """

    def __init__(self, rule: str, message: str, **details: object) -> None:
        self.rule = rule
        self.message = message
        self.details: Dict[str, object] = dict(details)
        super().__init__(self.format())

    def format(self) -> str:
        if not self.details:
            return "[%s] %s" % (self.rule, self.message)
        ids = ", ".join(
            "%s=%s" % (key, _render(value))
            for key, value in sorted(self.details.items())
        )
        return "[%s] %s (%s)" % (self.rule, self.message, ids)

    def as_dict(self) -> Dict[str, object]:
        """Machine-readable form (for JSON artifacts and tests)."""
        return {
            "rule": self.rule,
            "message": self.message,
            "details": dict(self.details),
        }

    def __reduce__(self):
        # Keyword-only details break default exception pickling; worker
        # processes must be able to ship violations back to the parent.
        return (_rebuild, (self.rule, self.message, self.details))


def _rebuild(rule: str, message: str, details: Dict[str, object]) -> InvariantViolation:
    return InvariantViolation(rule, message, **details)


def _render(value: object) -> str:
    """Hex-render header/context values, repr everything else."""
    if isinstance(value, int) and not isinstance(value, bool) and value > 0xFFFF:
        return "0x%x" % value
    return repr(value)

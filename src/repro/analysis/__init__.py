"""Invariant sanitizer suite for the ROLP simulator.

Three cooperating passes (see ``docs/verification.md``):

* :class:`HeapVerifier` — full-heap walker checking region accounting,
  header consistency and generational placement at GC boundaries.
* :class:`LockDisciplineChecker` — vector-clock happens-before checker
  for biased-lock acquisition/revocation ordering and illegal header
  overwrites.
* :mod:`repro.analysis.lint` — the ``rolp-lint`` determinism lint over
  the source tree (imported explicitly; not re-exported here to keep
  the runtime import path lean).

Verification defaults off via :data:`NULL_VERIFIER`; enable it with
``VMFlags(verify_level=...)`` or ``rolp-bench --verify``.
"""

from repro.analysis.fuzz_oracle import OracleFinding, judge as judge_fuzz_results
from repro.analysis.heap_verifier import HeapVerifier
from repro.analysis.lock_checker import LockDisciplineChecker
from repro.analysis.suite import (
    NULL_VERIFIER,
    VERIFY_FULL,
    VERIFY_HEAP,
    VERIFY_LEVELS,
    VERIFY_OFF,
    NullVerifier,
    VerifierSuite,
    default_verify_level,
    make_verifier,
    set_default_verify_level,
)
from repro.analysis.violations import InvariantViolation

__all__ = [
    "HeapVerifier",
    "InvariantViolation",
    "LockDisciplineChecker",
    "OracleFinding",
    "judge_fuzz_results",
    "NULL_VERIFIER",
    "NullVerifier",
    "VERIFY_FULL",
    "VERIFY_HEAP",
    "VERIFY_LEVELS",
    "VERIFY_OFF",
    "VerifierSuite",
    "default_verify_level",
    "make_verifier",
    "set_default_verify_level",
]

"""Ahead-of-time context-conflict analyzer.

ROLP encodes an allocation context as ``(site_id << 16) | stack_state``
(:mod:`repro.core.context`): the 16-bit thread stack state is the sum of
the RNG-assigned call-site increments along the dynamic call path.  Two
facts make collisions statically predictable:

* the increments are opaque at analysis time, but the *number of
  distinct stack states* observable at a method is bounded by the number
  of distinct static call paths that reach it — the reachable context-ID
  space per site is ``min(path_count, 2**16)``;
* a site only corrupts lifetime inference when a single context ID
  observes a **multi-modal** lifetime distribution, which requires the
  allocation's lifetime to vary at all.

So the analyzer builds the static call graph over ``Method`` bodies
(``MethodProgram`` ops, ``lower_callable`` fallbacks, and an AST walk
for everything the lowerer rejects), counts acyclic call paths per
method (bounded at the 16-bit context width), classifies each
allocation site's lifetime source, and emits one predicted **collision
class** per site:

``structural``
    reached via >= 2 distinct call paths whose callers bind *different*
    constant arguments into a caller-determined lifetime — the paper's
    context-conflict machine (two paths, one profiling ID, two lifetime
    populations).
``value-dependent``
    the lifetime varies for reasons the caller path does not explain
    (opaque helper allocations, oscillating phase logic, externally
    managed queue expiry) — conflicts are possible at any context.
``clean``
    a single constant lifetime: every context observes one mode, the
    profiler cannot see a conflict here.

The superset guarantee the cross-validation test pins: every
runtime-observed conflict site classifies as ``structural`` or
``value-dependent`` (never ``clean``) — the prediction over-approximates
and admits false positives, never false negatives.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.runtime.method import Method
from repro.runtime.program import (
    OP_ALLOC,
    OP_ALLOC_T,
    OP_CALL,
    LoweringDiagnostics,
    MethodProgram,
    lower_callable,
)

#: path counts saturate at the 16-bit context width: beyond it the
#: encoding space itself is exhausted, finer counting is meaningless
PATH_CAP = 1 << 16

#: ``analyze_genome`` flags a demography as conflict-heavy at this many
#: predicted conflict sites — calibrated so the banked 10.7x-baseline
#: corpus genome (4 collision factories) sits exactly at the bar
CONFLICT_HEAVY_MIN = 4

_UNKNOWN = object()


class _AnyOf:
    """A call target resolved to a pool of Methods (subscript over a
    method list, loop variable over a method sequence, ...)."""

    __slots__ = ("methods",)

    def __init__(self, methods: Sequence[Method]) -> None:
        self.methods = tuple(methods)


class ShapeCall:
    """One static call site."""

    __slots__ = ("bci", "targets", "binding", "guarded")

    def __init__(
        self,
        bci: Optional[int],
        targets: Optional[Tuple[Method, ...]],
        binding: Tuple[Any, ...] = (),
        guarded: bool = False,
    ) -> None:
        self.bci = bci          # None = non-constant bci expression
        self.targets = targets  # None = unresolvable target
        #: resolved constant extra arguments (the lifetime-class style
        #: bindings that make two paths *semantically* distinct)
        self.binding = binding
        self.guarded = guarded


class ShapeAlloc:
    """One static allocation site."""

    __slots__ = ("bci", "lifetime", "caller_dependent")

    def __init__(
        self, bci: Optional[int], lifetime: str, caller_dependent: bool = False
    ) -> None:
        self.bci = bci            # None = non-constant bci (wildcard)
        self.lifetime = lifetime  # "const" | "varying" | "opaque" | "external"
        self.caller_dependent = caller_dependent


class MethodShape:
    """The analyzable skeleton of one method body."""

    __slots__ = ("method", "calls", "allocs", "opaque", "unknown_calls", "source")

    def __init__(self, method: Method) -> None:
        self.method = method
        self.calls: List[ShapeCall] = []
        self.allocs: List[ShapeAlloc] = []
        self.opaque = False          # body unreadable: wildcard alloc assumed
        self.unknown_calls = 0       # call targets the resolver gave up on
        self.source = "ast"          # "program" | "lowered" | "ast" | "opaque"


# ------------------------------------------------------------ method discovery

def collect_methods(workload) -> List[Method]:
    """Every Method a workload holds — direct attributes plus methods
    inside list/tuple/dict attributes (the generated-pool idiom of the
    adversarial and dacapo workloads)."""
    seen: Set[int] = set()
    out: List[Method] = []

    def add(method: Method) -> None:
        if id(method) not in seen:
            seen.add(id(method))
            out.append(method)

    for value in vars(workload).values():
        if isinstance(value, Method):
            add(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Method):
                    add(item)
        elif isinstance(value, dict):
            for item in value.values():
                if isinstance(item, Method):
                    add(item)
    return out


# ------------------------------------------------------------ shape extraction

def method_shape(
    method: Method, diagnostics: Optional[LoweringDiagnostics] = None
) -> MethodShape:
    body = method.body
    if isinstance(body, MethodProgram):
        return _shape_from_program(method, body, "program")
    program = lower_callable(body, diagnostics=diagnostics)
    if program is not None:
        return _shape_from_program(method, program, "lowered")
    return _shape_from_ast(method)


def _shape_from_program(
    method: Method, program: MethodProgram, source: str
) -> MethodShape:
    shape = MethodShape(method)
    shape.source = source
    for pc, op in enumerate(program.ops):
        a, b = program.a[pc], program.b[pc]
        if op == OP_CALL and isinstance(b, Method):
            shape.calls.append(ShapeCall(a, (b,)))
        elif op == OP_ALLOC:
            lives = b[1] if isinstance(b, tuple) and len(b) == 2 else None
            shape.allocs.append(
                ShapeAlloc(a, "const" if lives is not None else "external")
            )
        elif op == OP_ALLOC_T:
            bci_mod, _sizes, lives = a
            varying = lives is not None and len(set(lives)) > 1
            for bci in range(bci_mod):
                shape.allocs.append(
                    ShapeAlloc(bci, "varying" if varying else "const")
                )
    return shape


def _binding_key(value: Any) -> Any:
    """A deterministic identity for a resolved constant call argument."""
    if isinstance(value, Method):
        return ("method", value.qualified_name)
    try:
        hash(value)
    except TypeError:
        return ("id", type(value).__name__, id(value))
    return ("const", value)


class _BodyResolver:
    """Resolves AST expressions against a body's bindings: defaulted
    parameters, closure cells, globals, simple local assignments, and
    ``for``-loop targets over method sequences."""

    def __init__(self, fn, func: ast.FunctionDef) -> None:
        self.fn = fn
        params = [arg.arg for arg in func.args.args]
        defaults = list(func.args.defaults)
        self.bound: Dict[str, Any] = {}
        if defaults:
            values = list(getattr(fn, "__defaults__", None) or ())
            for name, value in zip(params[-len(defaults):], values):
                self.bound[name] = value
        self.closure: Dict[str, Any] = {}
        if getattr(fn, "__closure__", None):
            for cell_name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
                try:
                    self.closure[cell_name] = cell.cell_contents
                except ValueError:  # pragma: no cover - unfilled cell
                    pass
        self.locals: Dict[str, ast.AST] = {}
        self.loop_vars: Dict[str, ast.AST] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self.locals[target.id] = node.value
            elif isinstance(node, ast.For):
                self._record_loop(node)

    def _record_loop(self, node: ast.For) -> None:
        iterable: Optional[ast.AST] = node.iter
        target = node.target
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id == "enumerate"
            and iterable.args
        ):
            iterable = iterable.args[0]
            if isinstance(target, ast.Tuple) and len(target.elts) == 2:
                target = target.elts[1]
        if isinstance(target, ast.Name) and iterable is not None:
            self.loop_vars[target.id] = iterable

    def resolve(self, node: ast.AST, depth: int = 0) -> Any:
        if depth > 8:
            return _UNKNOWN
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.bound:
                return self.bound[name]
            if name in self.closure:
                return self.closure[name]
            if name in self.locals:
                return self.resolve(self.locals[name], depth + 1)
            if name in self.loop_vars:
                pool = self.resolve(self.loop_vars[name], depth + 1)
                return self._as_pool(pool)
            if name in self.fn.__globals__:
                return self.fn.__globals__[name]
            return _UNKNOWN
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value, depth + 1)
            if base is _UNKNOWN or isinstance(base, _AnyOf):
                return _UNKNOWN
            try:
                return getattr(base, node.attr)
            except AttributeError:
                return _UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self.resolve(node.value, depth + 1)
            return self._as_pool(base)
        return _UNKNOWN

    @staticmethod
    def _as_pool(value: Any) -> Any:
        if isinstance(value, _AnyOf):
            return value
        if isinstance(value, (list, tuple)) and value and all(
            isinstance(item, Method) for item in value
        ):
            return _AnyOf(value)
        return _UNKNOWN


def _shape_from_ast(method: Method) -> MethodShape:
    shape = MethodShape(method)
    fn = method.body
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        shape.opaque = True
        shape.source = "opaque"
        # unreadable body: assume it may allocate anywhere with an
        # unknown lifetime (wildcard keeps the superset guarantee)
        shape.allocs.append(ShapeAlloc(None, "opaque"))
        return shape
    func = next(
        (node for node in tree.body if isinstance(node, ast.FunctionDef)), None
    )
    if func is None or not func.args.args:
        shape.opaque = True
        shape.source = "opaque"
        shape.allocs.append(ShapeAlloc(None, "opaque"))
        return shape

    params = [arg.arg for arg in func.args.args]
    ctx_name = params[0]
    ndefaults = len(func.args.defaults)
    #: parameters the *caller* supplies (non-defaulted, beyond ctx);
    #: defaulted params are per-method constant bindings
    caller_params = set(params[1:len(params) - ndefaults if ndefaults else None])
    resolver = _BodyResolver(fn, func)

    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == ctx_name
        ):
            _shape_ctx_call(shape, node, target.attr, caller_params, resolver)
        elif any(
            isinstance(arg, ast.Name) and arg.id == ctx_name for arg in node.args
        ):
            _shape_helper_call(shape, node, ctx_name, caller_params)
    return shape


def _const_int(node: Optional[ast.AST]) -> Optional[int]:
    if (
        node is not None
        and isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


def _shape_ctx_call(
    shape: MethodShape,
    node: ast.Call,
    attr: str,
    caller_params: Set[str],
    resolver: _BodyResolver,
) -> None:
    if attr == "call":
        if len(node.args) < 2:
            return
        bci = _const_int(node.args[0])
        resolved = resolver.resolve(node.args[1])
        targets: Optional[Tuple[Method, ...]]
        if isinstance(resolved, Method):
            targets = (resolved,)
        elif isinstance(resolved, _AnyOf):
            targets = resolved.methods
        elif resolved is None:
            return  # guarded `if x is not None` pattern with a None binding
        else:
            targets = None
            shape.unknown_calls += 1
        binding: List[Any] = []
        for arg in node.args[2:]:
            value = resolver.resolve(arg)
            if value is _UNKNOWN or isinstance(value, _AnyOf):
                binding.append(("dyn",))
            elif isinstance(arg, ast.Name) and arg.id in caller_params:
                binding.append(("dyn",))
            else:
                binding.append(_binding_key(value))
        shape.calls.append(ShapeCall(bci, targets, tuple(binding)))
    elif attr == "alloc":
        bci = _const_int(node.args[0]) if node.args else None
        lives_node: Optional[ast.AST] = None
        for keyword in node.keywords:
            if keyword.arg == "lives_ns":
                lives_node = keyword.value
        if lives_node is None and len(node.args) >= 3:
            lives_node = node.args[2]
        if lives_node is None or (
            isinstance(lives_node, ast.Constant) and lives_node.value is None
        ):
            # lifetime managed outside the allocation (kill_at queues)
            lifetime, caller_dep = "external", False
        elif isinstance(lives_node, ast.Constant):
            lifetime, caller_dep = "const", False
        elif isinstance(lives_node, ast.Name) and lives_node.id in caller_params:
            lifetime, caller_dep = "varying", True
        else:
            resolved = resolver.resolve(lives_node)
            if resolved is not _UNKNOWN and isinstance(resolved, (int, float)):
                lifetime, caller_dep = "const", False
            else:
                lifetime, caller_dep = "varying", False
        shape.allocs.append(ShapeAlloc(bci, lifetime, caller_dep))


def _shape_helper_call(
    shape: MethodShape, node: ast.Call, ctx_name: str, caller_params: Set[str]
) -> None:
    """``self._allocate(ctx, bci, cls, ...)``-style opaque helpers: the
    helper allocates in the *current* frame (no simulated call), with a
    lifetime the analyzer cannot see — conservatively varying."""
    bci = None
    caller_dep = False
    for arg in node.args:
        if isinstance(arg, ast.Name) and arg.id == ctx_name:
            continue
        if bci is None:
            bci = _const_int(arg)
        if isinstance(arg, ast.Name) and arg.id in caller_params:
            caller_dep = True
    shape.allocs.append(ShapeAlloc(bci, "opaque", caller_dep))


# ------------------------------------------------------------- path counting

def _call_multiplicity(call: ShapeCall) -> int:
    # a non-constant bci expression stands for several distinct runtime
    # call sites; two is enough to make the path count conservative
    return 1 if call.bci is not None else 2


def path_counts(
    shapes: Dict[int, MethodShape],
) -> Tuple[Dict[int, int], Dict[int, Set[Tuple[Any, ...]]], bool]:
    """``(paths, bindings, bounded)`` per method id.

    ``paths`` counts distinct acyclic call paths from graph roots
    (methods nothing calls), saturating at :data:`PATH_CAP`.
    ``bindings`` collects the distinct constant-argument signatures of
    the direct incoming calls — what distinguishes semantically
    different paths to a conflict factory from repeated calls that bind
    nothing.
    """
    incoming: Dict[int, List[Tuple[int, ShapeCall]]] = {}
    bindings: Dict[int, Set[Tuple[Any, ...]]] = {}
    for key, shape in shapes.items():
        for call in shape.calls:
            targets = call.targets if call.targets is not None else ()
            for target in targets:
                target_key = id(target)
                if target_key not in shapes:
                    continue
                incoming.setdefault(target_key, []).append((key, call))
                bindings.setdefault(target_key, set()).add(call.binding)

    counts: Dict[int, int] = {}
    bounded = False
    ON_STACK = -1

    def count(key: int) -> int:
        nonlocal bounded
        cached = counts.get(key)
        if cached == ON_STACK:
            bounded = True  # recursion: cut the back edge, mark bounded
            return 0
        if cached is not None:
            return cached
        counts[key] = ON_STACK
        edges = incoming.get(key)
        if not edges:
            total = 1  # a root: one path (its own invocation)
        else:
            total = 0
            for caller_key, call in edges:
                total += count(caller_key) * _call_multiplicity(call)
                if total >= PATH_CAP:
                    total = PATH_CAP
                    bounded = True
                    break
        counts[key] = total
        return total

    for key in shapes:
        count(key)
    return counts, bindings, bounded


# -------------------------------------------------------------- site reports

def classify_site(
    alloc: ShapeAlloc, paths: int, distinct_bindings: int
) -> str:
    if alloc.lifetime == "const":
        return "clean"
    if alloc.caller_dependent and paths >= 2 and distinct_bindings >= 2:
        return "structural"
    return "value-dependent"


class WorkloadAnalysis:
    """The full static picture of one built workload."""

    def __init__(self, workload) -> None:
        self.workload = workload
        self.diagnostics = LoweringDiagnostics()
        self.methods = collect_methods(workload)
        self.shapes: Dict[int, MethodShape] = {
            id(method): method_shape(method, self.diagnostics)
            for method in self.methods
        }
        self.paths, self.bindings, self.bounded = path_counts(self.shapes)
        self.sites: List[Dict[str, Any]] = []
        for method in self.methods:
            shape = self.shapes[id(method)]
            paths = self.paths.get(id(method), 1)
            distinct = len(self.bindings.get(id(method), set()))
            seen: Set[Tuple[Optional[int], str]] = set()
            for alloc in shape.allocs:
                collision = classify_site(alloc, paths, distinct)
                dedup_key = (alloc.bci, collision)
                if dedup_key in seen:
                    continue
                seen.add(dedup_key)
                self.sites.append(
                    {
                        "method": method.qualified_name,
                        "bci": alloc.bci,
                        "lifetime": alloc.lifetime,
                        "caller_dependent": alloc.caller_dependent,
                        "paths": paths,
                        "context_space": min(paths, PATH_CAP),
                        "collision_class": collision,
                    }
                )
        self.opaque_methods = [
            shape.method.qualified_name
            for shape in self.shapes.values()
            if shape.opaque
        ]
        self.unknown_calls = sum(
            shape.unknown_calls for shape in self.shapes.values()
        )

    # -- summaries ----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        out = {"structural": 0, "value-dependent": 0, "clean": 0}
        for site in self.sites:
            out[site["collision_class"]] += 1
        return out

    def predicted_conflict_sites(self) -> List[Dict[str, Any]]:
        return [
            site for site in self.sites if site["collision_class"] != "clean"
        ]

    def predicted_conflict_index(self) -> Dict[str, Set[Optional[int]]]:
        """method qualified name -> predicted-conflictable bcis (None =
        wildcard, matches any bci in that method)."""
        index: Dict[str, Set[Optional[int]]] = {}
        for site in self.predicted_conflict_sites():
            index.setdefault(site["method"], set()).add(site["bci"])
        return index

    def context_space_total(self) -> int:
        return sum(site["context_space"] for site in self.sites)


def analyze_workload(workload) -> WorkloadAnalysis:
    """Analyze a **built** workload (``workload.build(vm)`` already ran,
    so the method graph exists); nothing is executed."""
    return WorkloadAnalysis(workload)


# ----------------------------------------------------- runtime cross-validation

def observed_conflict_site_ids(profiler) -> Set[int]:
    """Union of every conflicted site id the runtime profiler observed
    across all inference passes."""
    observed: Set[int] = set()
    for passed in getattr(profiler, "_conflict_history", []):
        observed |= set(passed)
    resolver = getattr(profiler, "resolver", None)
    if resolver is not None:
        for attr in ("resolved_sites", "given_up_sites"):
            observed |= set(getattr(resolver, attr, ()) or ())
        observed |= set(getattr(resolver, "active", {}) or {})
    observed.discard(0)  # 0 = unprofiled, never a real site
    return observed


def observed_conflicts(profiler, methods: Iterable[Method]) -> List[Dict[str, Any]]:
    """Observed conflict site ids mapped back to ``(method, bci)``."""
    index: Dict[int, Tuple[str, int]] = {}
    for method in methods:
        for bci, site in method.alloc_sites.items():
            if site.site_id:
                index[site.site_id] = (method.qualified_name, bci)
    out = []
    for site_id in sorted(observed_conflict_site_ids(profiler)):
        method_name, bci = index.get(site_id, ("<unknown>", -1))
        out.append({"site_id": site_id, "method": method_name, "bci": bci})
    return out


def validate_against_runtime(
    analysis: WorkloadAnalysis, profiler
) -> Dict[str, Any]:
    """Cross-validate the static prediction against the runtime
    profiler's conflicts stream: every observed conflict must land on a
    predicted (non-``clean``) site.  Returns the observed set and any
    false negatives (which the tests pin to empty)."""
    predicted = analysis.predicted_conflict_index()
    observed = observed_conflicts(profiler, analysis.methods)
    false_negatives = []
    for entry in observed:
        bcis = predicted.get(entry["method"])
        if bcis is None or (entry["bci"] not in bcis and None not in bcis):
            false_negatives.append(entry)
    return {
        "observed": observed,
        "false_negatives": false_negatives,
        "predicted_conflict_sites": sum(len(b) for b in predicted.values()),
    }


# ------------------------------------------------------------- genome analysis

def analyze_genome(genome, seed: int = 42) -> Dict[str, Any]:
    """Statically analyze an adversarial demography genome **without
    running it**: expand the genome into its method graph (building a
    workload constructs methods, it executes nothing) and combine the
    graph's structural-conflict sites with the genome's declared
    lifetime oscillation (a static input too).
    """
    from repro import build_vm
    from repro.core.profiler import RolpConfig
    from repro.workloads.adversarial import AdversarialWorkload

    workload = AdversarialWorkload(genome, seed=seed)
    vm, _profiler = build_vm(
        "rolp",
        heap_mb=workload.heap_mb,
        young_regions=workload.young_regions,
        rolp_config=RolpConfig(package_filter=workload.package_filter()),
    )
    workload.build(vm)
    analysis = analyze_workload(workload)
    structural = [
        site
        for site in analysis.sites
        if site["collision_class"] == "structural"
    ]
    oscillating = 0
    if genome.oscillation_period_ops:
        oscillating = sum(
            1 for cls in genome.classes if cls.kind == "oscillating"
        )
    pressure = len(structural) + oscillating
    counts = analysis.counts()
    return {
        "genome": genome.as_dict(),
        "methods": len(analysis.methods),
        "sites": len(analysis.sites),
        "structural_sites": len(structural),
        "oscillating_sites": oscillating,
        "value_dependent_sites": counts["value-dependent"],
        "conflict_pressure": pressure,
        "conflict_heavy": pressure >= CONFLICT_HEAVY_MIN,
    }


def static_conflict_pressure(genome, seed: int = 42) -> int:
    """Predicted count of conflict-capable allocation sites for a
    genome — the fuzz harness consults this before paying for a
    simulation: zero pressure means no structural collision paths and
    no active lifetime oscillation, so the candidate cannot clear a
    conflict-rate threshold far above baseline."""
    return int(analyze_genome(genome, seed=seed)["conflict_pressure"])

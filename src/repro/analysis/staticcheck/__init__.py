"""Static program verifier + ahead-of-time context-conflict analyzer.

Two cooperating passes over the compiled tier's IR (see
``docs/static-analysis.md``):

* :mod:`repro.analysis.staticcheck.verifier` — an abstract interpreter
  over :class:`~repro.runtime.program.MethodProgram` op arrays proving
  structural invariants before execution (stable
  ``InvariantViolation`` rule ids, ``program/*``);
* :mod:`repro.analysis.staticcheck.contexts` — a static call-graph
  analysis that symbolically executes the 32-bit context encoding and
  predicts collision classes per allocation site, cross-validated
  against the runtime profiler's observed conflicts stream.

Entry points: ``rolp-bench staticcheck`` (CLI, exit 3 on verifier
violation), the ``ROLP_STATIC_CHECK=1`` pre-execution gate
(:func:`check_method`, invoked from ``vm.run``), and the fuzz harness's
static conflict predictor (:func:`static_conflict_pressure`).
"""

from repro.analysis.staticcheck.contexts import (
    CONFLICT_HEAVY_MIN,
    PATH_CAP,
    WorkloadAnalysis,
    analyze_genome,
    analyze_workload,
    collect_methods,
    method_shape,
    observed_conflict_site_ids,
    observed_conflicts,
    static_conflict_pressure,
    validate_against_runtime,
)
from repro.analysis.staticcheck.report import (
    SCHEMA,
    build_workload,
    check_method,
    check_shipped_programs,
    check_workload,
    render_report,
    report_violation_rules,
    run_staticcheck,
)
from repro.analysis.staticcheck.verifier import (
    PROBE_FACTORS,
    PROBE_TAXES,
    VERIFIER_RULES,
    collect_violations,
    program_callees,
    symbolic_tick_sum,
    verify_call_tree,
    verify_program,
)

__all__ = [
    "CONFLICT_HEAVY_MIN",
    "PATH_CAP",
    "PROBE_FACTORS",
    "PROBE_TAXES",
    "SCHEMA",
    "VERIFIER_RULES",
    "WorkloadAnalysis",
    "analyze_genome",
    "analyze_workload",
    "build_workload",
    "check_method",
    "check_shipped_programs",
    "check_workload",
    "collect_methods",
    "collect_violations",
    "method_shape",
    "observed_conflict_site_ids",
    "observed_conflicts",
    "program_callees",
    "render_report",
    "report_violation_rules",
    "run_staticcheck",
    "static_conflict_pressure",
    "symbolic_tick_sum",
    "validate_against_runtime",
    "verify_call_tree",
    "verify_program",
]

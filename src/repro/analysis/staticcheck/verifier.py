"""Static program verifier: an abstract interpreter over MethodProgram ops.

The compiled tier (PR 7) made every lowerable workload body a flat
:class:`~repro.runtime.program.MethodProgram` — an analyzable IR.  This
module proves, *before a single op executes*, the structural invariants
the dispatch loop otherwise only discovers by crashing mid-simulation:

============================================ ==================================
rule id                                      what it proves
============================================ ==================================
``program/operand-shape``                    operand tuples parallel the op
                                             array, opcodes are known, operand
                                             types/domains are valid, register
                                             indices are in ``[0, nregs)``
``program/repeat-nesting``                   every ``REPEAT`` body is a
                                             well-nested, in-bounds block
``program/register-use-before-def``          ``BIAS_LOCK`` only reads registers
                                             holding an object on every path
                                             (an ``ALLOC`` dst, or an argument
                                             register when ``arity`` says the
                                             caller passes one)
``program/unreachable-op``                   no op follows ``THROW`` inside the
                                             same block (a throw always unwinds
                                             at least the throwing frame)
``program/throw-depth``                      ``handled_depth`` is a
                                             non-negative int (the
                                             ``SimException`` constructor
                                             contract), and — when the program
                                             is verified as a known call-tree
                                             root — no throw is statically
                                             guaranteed to escape the root
``program/stack-wrap``                       no unconditional call cycle among
                                             program bodies: branch-free op
                                             streams execute every non-REPEAT
                                             op, so such a cycle is guaranteed
                                             infinite recursion and unbounded
                                             16-bit stack-state accumulation
                                             (wraparound conflicts)
``program/clock-accounting``                 tick operands are finite and
                                             non-negative (``SimClock``
                                             refuses to move backwards), and
                                             the symbolic per-op tick sum of
                                             the generic backends equals what
                                             ``dispatch.py``'s combined-add
                                             fast path charges, over a probe
                                             grid of overhead factors and
                                             profiling taxes
============================================ ==================================

Every rule raises :class:`repro.analysis.violations.InvariantViolation`
with a stable rule id, exactly like the runtime sanitizer suite (PR 3).
The verifier is read-only: it never touches the clock, the RNG, or any
VM state, which is what lets the ``ROLP_STATIC_CHECK=1`` gate promise
byte-identical runs.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.violations import InvariantViolation
from repro.runtime.interpreter import DEFAULT_CALL_OVERHEAD_NS
from repro.runtime.method import Method
from repro.runtime.program import (
    OP_ALLOC,
    OP_ALLOC_T,
    OP_BIAS_LOCK,
    OP_CALL,
    OP_LOOP,
    OP_NAMES,
    OP_REPEAT,
    OP_THROW,
    OP_WORK,
    MethodProgram,
)

#: stable rule ids -> one-line description (docs/static-analysis.md table)
VERIFIER_RULES = {
    "program/operand-shape": "operand arrays parallel, opcodes known, operand domains valid",
    "program/repeat-nesting": "REPEAT bodies well nested and in bounds",
    "program/register-use-before-def": "BIAS_LOCK reads only object-defined registers",
    "program/unreachable-op": "no op after THROW in the same block",
    "program/throw-depth": "handled_depth valid; no guaranteed escape past a known root",
    "program/stack-wrap": "no unconditional call cycle (unbounded 16-bit stack-state wrap)",
    "program/clock-accounting": "tick operands in domain; generic and dispatch tick sums agree",
}

#: mutator overhead factors probed by the symbolic tick check — covers
#: every shipped collector (1.0 for the stop-the-world family, 1.22 for
#: ZGC) plus off-grid values that expose truncation-order mistakes
PROBE_FACTORS = (1.0, 1.22, 0.5, 1.07)
#: profiling taxes probed (2 * call_{slow,fast}_ns for shipped configs,
#: plus zero and an off-grid value)
PROBE_TAXES = (12.0, 3.0, 0.0, 7.7)

#: path-explosion guard for call-tree walks
MAX_TREE_DEPTH = 64


def _violation(rule: str, message: str, **details: Any) -> InvariantViolation:
    return InvariantViolation(rule, message, **details)


# -------------------------------------------------------------- tick semantics
#
# Two independent renderings of the clock charges.  ``_generic_ticks``
# transcribes what ExecutionContext/FastExecutionContext charge through
# SimClock.advance_mutator (each charge truncated on its own);
# ``_dispatch_ticks`` transcribes the hoisted constants of
# CompiledExecutionContext._dispatch (the combined add
# ``slow_tick + call_tick`` is a sum of two separately truncated ints).
# If a future edit changes one side's truncation structure without the
# other, the probe grid below catches the divergence statically.

def _generic_op_tick(op: int, a: Any, b: Any, factor: float, tax: float) -> int:
    if op == OP_WORK:
        return int(a * factor)
    if op == OP_LOOP:
        return int(a * b * factor)
    if op == OP_CALL:
        # charge_profiling(tax) then charge_mutator(DEFAULT_CALL_OVERHEAD_NS)
        return int(tax * factor) + int(DEFAULT_CALL_OVERHEAD_NS * factor)
    return 0


def _dispatch_op_tick(op: int, a: Any, b: Any, factor: float, tax: float) -> int:
    if op == OP_WORK:
        return int(a * factor)
    if op == OP_LOOP:
        return int(a * b * factor)
    if op == OP_CALL:
        # hoisted: profiling_tick + call_tick, each truncated once, then
        # landed on the clock as one combined add
        profiling_tick = int(tax * factor)
        call_tick = int(DEFAULT_CALL_OVERHEAD_NS * factor)
        return profiling_tick + call_tick
    return 0


def symbolic_tick_sum(
    program: MethodProgram, factor: float, tax: float
) -> Tuple[int, int]:
    """``(generic_total, dispatch_total)`` for one visit of every op.

    Per-op charges are loop-invariant, so single-visit equality implies
    equality for any REPEAT iteration counts.
    """
    generic = 0
    dispatch = 0
    for pc, op in enumerate(program.ops):
        a, b = program.a[pc], program.b[pc]
        generic += _generic_op_tick(op, a, b, factor, tax)
        dispatch += _dispatch_op_tick(op, a, b, factor, tax)
    return generic, dispatch


# ------------------------------------------------------------------- verifier

def _is_real(value: Any) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


class _ProgramChecker:
    """One verification pass over one program."""

    def __init__(self, program: MethodProgram, name: str, arity: int) -> None:
        self.program = program
        self.name = name
        self.ops = program.ops
        self.a = program.a
        self.b = program.b
        self.c = program.c
        self.nregs = program.nregs
        # argument registers may hold objects passed by a root caller;
        # nested program callees never receive args (dispatch zero-fills
        # their register file), so the default arity is 0
        self.arity = max(0, min(arity, self.nregs))

    def fail(self, rule: str, message: str, pc: Optional[int] = None, **details: Any):
        details.setdefault("program", self.name)
        if pc is not None:
            details.setdefault("pc", pc)
            op = self.ops[pc] if 0 <= pc < len(self.ops) else None
            details.setdefault("op", OP_NAMES.get(op, repr(op)))
        raise _violation(rule, message, **details)

    def check(self) -> None:
        n = len(self.ops)
        if not (len(self.a) == len(self.b) == len(self.c) == n):
            self.fail(
                "program/operand-shape",
                "operand tuples do not parallel the op array",
                lengths=[n, len(self.a), len(self.b), len(self.c)],
            )
        if self.nregs < 0:
            self.fail("program/operand-shape", "negative register count")
        defined = set(range(self.arity))
        self._check_block(0, n, defined)
        self._check_ticks()

    # -- structural walk ----------------------------------------------------

    def _reg(self, value: Any, pc: int, slot: str, allow_unset: bool = False) -> int:
        if allow_unset and value == -1:
            return -1
        if not isinstance(value, int) or not (0 <= value < self.nregs):
            self.fail(
                "program/operand-shape",
                "%s register %r out of range [0, %d)" % (slot, value, self.nregs),
                pc=pc,
            )
        return value

    def _check_block(self, pc: int, end: int, defined: Set[int]) -> None:
        """Walk one block, mirroring ``MethodProgram._run_block``.

        ``defined`` is the set of registers known to hold an object on
        entry; mutated in place for straight-line defs, copied for
        REPEAT bodies (which may run zero times).
        """
        thrown_at: Optional[int] = None
        while pc < end:
            if thrown_at is not None:
                self.fail(
                    "program/unreachable-op",
                    "op is unreachable: THROW at pc %d always unwinds this frame"
                    % thrown_at,
                    pc=pc,
                    thrown_at=thrown_at,
                )
            op = self.ops[pc]
            a, b, c = self.a[pc], self.b[pc], self.c[pc]
            if op == OP_CALL:
                if not isinstance(a, int) or a < 0:
                    self.fail("program/operand-shape", "CALL bci must be int >= 0", pc=pc)
                if not isinstance(b, Method):
                    self.fail(
                        "program/operand-shape",
                        "CALL target must be a Method, got %r" % type(b).__name__,
                        pc=pc,
                    )
            elif op == OP_ALLOC:
                self._check_alloc(pc, a, b, c, defined)
            elif op == OP_ALLOC_T:
                self._check_alloc_table(pc, a, c)
            elif op == OP_WORK:
                if not _is_real(a) or a < 0:
                    self.fail(
                        "program/clock-accounting",
                        "WORK tick %r is not a finite non-negative duration "
                        "(SimClock refuses to move backwards)" % (a,),
                        pc=pc,
                    )
            elif op == OP_LOOP:
                if not isinstance(a, int) or a < 0:
                    self.fail(
                        "program/operand-shape", "LOOP iterations must be int >= 0", pc=pc
                    )
                if not _is_real(b) or b < 0:
                    self.fail(
                        "program/clock-accounting",
                        "LOOP per-iteration tick %r is not a finite non-negative "
                        "duration" % (b,),
                        pc=pc,
                    )
            elif op == OP_THROW:
                if not isinstance(a, str):
                    self.fail(
                        "program/operand-shape", "THROW message must be a str", pc=pc
                    )
                if not isinstance(b, int) or b < 0:
                    self.fail(
                        "program/throw-depth",
                        "THROW handled_depth %r violates the SimException "
                        "contract (int >= 0)" % (b,),
                        pc=pc,
                    )
                thrown_at = pc
            elif op == OP_BIAS_LOCK:
                reg = self._reg(c, pc, "BIAS_LOCK")
                if reg not in defined:
                    self.fail(
                        "program/register-use-before-def",
                        "BIAS_LOCK reads r%d before any ALLOC defines it "
                        "(registers default to 0, not an object)" % reg,
                        pc=pc,
                        register=reg,
                    )
            elif op == OP_REPEAT:
                self._reg(a, pc, "REPEAT count")
                self._reg(c, pc, "REPEAT index")
                if not isinstance(b, int) or b < 0:
                    self.fail(
                        "program/repeat-nesting",
                        "REPEAT body length %r is not an int >= 0 "
                        "(unclosed repeat block?)" % (b,),
                        pc=pc,
                    )
                body_end = pc + 1 + b
                if body_end > end:
                    self.fail(
                        "program/repeat-nesting",
                        "REPEAT body [%d, %d) overflows its enclosing block "
                        "(ends at %d)" % (pc + 1, body_end, end),
                        pc=pc,
                    )
                # the body may run zero times: defs made inside it are
                # not available after the block
                self._check_block(pc + 1, body_end, set(defined))
                pc = body_end
                continue
            else:
                self.fail("program/operand-shape", "unknown opcode %r" % (op,), pc=pc)
            pc += 1

    def _check_alloc(self, pc: int, a: Any, b: Any, c: Any, defined: Set[int]) -> None:
        if not isinstance(a, int) or a < 0:
            self.fail("program/operand-shape", "ALLOC bci must be int >= 0", pc=pc)
        if not isinstance(b, tuple) or len(b) != 2:
            self.fail(
                "program/operand-shape", "ALLOC operand must be (size, lives_ns)", pc=pc
            )
        size, lives = b
        if not isinstance(size, int) or size <= 0:
            self.fail("program/operand-shape", "ALLOC size must be int > 0", pc=pc)
        if lives is not None and (not _is_real(lives) or lives <= 0):
            self.fail(
                "program/operand-shape",
                "ALLOC lives_ns must be None or a finite positive duration",
                pc=pc,
            )
        dst = self._reg(c, pc, "ALLOC dst", allow_unset=True)
        if dst >= 0:
            defined.add(dst)

    def _check_alloc_table(self, pc: int, a: Any, c: Any) -> None:
        if not isinstance(a, tuple) or len(a) != 3:
            self.fail(
                "program/operand-shape",
                "ALLOC_T operand must be (bci_mod, sizes, lives)",
                pc=pc,
            )
        bci_mod, sizes, lives = a
        if not isinstance(bci_mod, int) or bci_mod <= 0:
            self.fail("program/operand-shape", "ALLOC_T bci_mod must be int > 0", pc=pc)
        if not isinstance(sizes, tuple) or not sizes or not all(
            isinstance(size, int) and size > 0 for size in sizes
        ):
            self.fail(
                "program/operand-shape",
                "ALLOC_T sizes must be a non-empty tuple of int > 0",
                pc=pc,
            )
        if lives is not None and (
            not isinstance(lives, tuple)
            or not lives
            or not all(_is_real(entry) and entry > 0 for entry in lives)
        ):
            self.fail(
                "program/operand-shape",
                "ALLOC_T lives must be None or a non-empty tuple of finite "
                "positive durations",
                pc=pc,
            )
        self._reg(c, pc, "ALLOC_T index")

    # -- symbolic clock accounting ------------------------------------------

    def _check_ticks(self) -> None:
        for factor in PROBE_FACTORS:
            for tax in PROBE_TAXES:
                generic, dispatch = symbolic_tick_sum(self.program, factor, tax)
                if generic != dispatch:
                    self.fail(
                        "program/clock-accounting",
                        "static tick sum diverges between the generic backends "
                        "(%d) and the dispatch fast path (%d) at factor=%s "
                        "tax=%s" % (generic, dispatch, factor, tax),
                        factor=factor,
                        tax=tax,
                    )


def verify_program(
    program: MethodProgram,
    name: Optional[str] = None,
    arity: int = 0,
) -> Dict[str, Any]:
    """Verify one program; raises :class:`InvariantViolation` on the
    first rule violated, returns a small summary dict when clean.

    ``arity`` is the number of argument registers a root caller seeds
    (``vm.run(thread, method, *args)``); nested program callees always
    start from an all-zero register file, so their arity is 0.
    """
    checker = _ProgramChecker(program, name or program.name, arity)
    checker.check()
    return {"name": checker.name, "ops": len(program.ops), "nregs": program.nregs}


# ------------------------------------------------------------------ call tree

def program_callees(program: MethodProgram) -> List[Tuple[int, Method, bool]]:
    """``(pc, callee, guarded)`` for every CALL op; ``guarded`` marks
    calls inside a REPEAT body (data-dependent iteration count — the
    call is not unconditionally executed)."""
    out: List[Tuple[int, Method, bool]] = []
    guard_ends: List[int] = []
    for pc, op in enumerate(program.ops):
        while guard_ends and pc >= guard_ends[-1]:
            guard_ends.pop()
        if op == OP_REPEAT and isinstance(program.b[pc], int):
            guard_ends.append(pc + 1 + program.b[pc])
        elif op == OP_CALL and isinstance(program.b[pc], Method):
            out.append((pc, program.b[pc], bool(guard_ends)))
    return out


def _program_of_method(method: Method) -> Optional[MethodProgram]:
    body = method.body
    return body if isinstance(body, MethodProgram) else None


def verify_call_tree(
    program: MethodProgram,
    name: Optional[str] = None,
    arity: int = 0,
    assume_root: bool = False,
) -> Dict[str, Any]:
    """Verify ``program`` and every program-typed callee reachable from
    it.

    Checks, beyond the per-program rules:

    * ``program/stack-wrap`` — an *unconditional* call cycle among the
      reachable programs.  Op streams are branch-free, so every
      non-REPEAT call executes on every visit: such a cycle is
      guaranteed infinite recursion, and each recursion level adds its
      call-site increment to the 16-bit thread stack state without
      bound — wraparound context collisions by construction.
    * ``program/throw-depth`` (root mode only) — with ``assume_root``
      the caller asserts nothing sits above ``program`` on the
      simulated stack (``vm.run`` roots), so a THROW whose
      ``handled_depth`` exceeds the deepest static path to its frame is
      statically guaranteed to escape the root.

    Callees whose bodies are Python callables are opaque leaves here;
    the context analyzer (``contexts.py``) covers them separately.
    """
    root_name = name or program.name
    verified: Dict[int, str] = {}

    # -- reachability + per-program verification ----------------------------
    depth_of: Dict[int, int] = {id(program): 1}
    order: List[MethodProgram] = [program]
    names: Dict[int, str] = {id(program): root_name}
    queue: List[Tuple[MethodProgram, int]] = [(program, 1)]
    edges: Dict[int, List[Tuple[int, bool]]] = {}
    by_id: Dict[int, MethodProgram] = {id(program): program}
    while queue:
        current, depth = queue.pop(0)
        key = id(current)
        if key not in verified:
            verify_program(
                current,
                name=names.get(key, current.name),
                arity=arity if current is program else 0,
            )
            verified[key] = names.get(key, current.name)
        edges.setdefault(key, [])
        for _pc, callee, guarded in program_callees(current):
            callee_program = _program_of_method(callee)
            if callee_program is None:
                continue
            callee_key = id(callee_program)
            edges[key].append((callee_key, guarded))
            if callee_key not in by_id:
                by_id[callee_key] = callee_program
                names[callee_key] = callee.qualified_name
                order.append(callee_program)
            next_depth = min(depth + 1, MAX_TREE_DEPTH)
            if next_depth > depth_of.get(callee_key, 0):
                depth_of[callee_key] = next_depth
                if next_depth < MAX_TREE_DEPTH:
                    queue.append((callee_program, next_depth))

    # -- unconditional call cycles ------------------------------------------
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[int, int] = {key: WHITE for key in by_id}
    stack_path: List[int] = []

    def visit(key: int) -> None:
        color[key] = GREY
        stack_path.append(key)
        for callee_key, guarded in edges.get(key, []):
            if guarded:
                continue  # REPEAT-guarded: iteration count is data-dependent
            if color.get(callee_key, WHITE) == GREY:
                cycle = stack_path[stack_path.index(callee_key):] + [callee_key]
                raise _violation(
                    "program/stack-wrap",
                    "unconditional call cycle %s: guaranteed infinite recursion "
                    "and unbounded 16-bit stack-state accumulation"
                    % " -> ".join(names.get(k, "<program>") for k in cycle),
                    cycle=[names.get(k, "<program>") for k in cycle],
                )
            if color.get(callee_key, WHITE) == WHITE:
                visit(callee_key)
        stack_path.pop()
        color[key] = BLACK

    visit(id(program))

    # -- root-escape throw depths -------------------------------------------
    if assume_root:
        for prog in order:
            max_depth = depth_of[id(prog)]
            for pc, op in enumerate(prog.ops):
                if op != OP_THROW:
                    continue
                handled = prog.b[pc]
                if isinstance(handled, int) and handled > max_depth:
                    raise _violation(
                        "program/throw-depth",
                        "THROW at pc %d of %s has handled_depth %d but only "
                        "%d frame(s) separate it from the analyzed root — the "
                        "exception always escapes"
                        % (pc, names[id(prog)], handled, max_depth),
                        program=names[id(prog)],
                        pc=pc,
                        handled_depth=handled,
                        max_static_depth=max_depth,
                    )

    return {
        "root": root_name,
        "programs": len(by_id),
        "names": [names[id(prog)] for prog in order],
    }


def collect_violations(
    programs: Iterable[Tuple[MethodProgram, str]],
) -> List[InvariantViolation]:
    """Report mode: verify each program, collecting (at most one per
    program) instead of raising."""
    violations: List[InvariantViolation] = []
    for program, name in programs:
        try:
            verify_program(program, name=name)
        except InvariantViolation as violation:
            violations.append(violation)
    return violations

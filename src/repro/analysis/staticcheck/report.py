"""``rolp-bench staticcheck``: run both passes, emit the report.

Report schema: ``rolp-bench/staticcheck/v1`` —

.. code-block:: none

    {
      "schema": "rolp-bench/staticcheck/v1",
      "workloads": [
        {"name", "methods", "programs_checked", "verifier_findings": [...],
         "lowering": {"opaque_bodies", "reasons": {reason: count}},
         "collision_classes": {"structural", "value-dependent", "clean"},
         "predicted_conflict_sites", "context_space_total",
         "paths_bounded", "unknown_call_targets", "sites": [...]}
      ],
      "corpus": [
        {"file", "rule_id", "check", "conflict_pressure",
         "structural_sites", "oscillating_sites", "conflict_heavy",
         "verifier_findings"}
      ],
      "totals": {"workloads", "methods", "programs_checked",
                 "verifier_findings", "predicted_conflict_sites",
                 "conflict_heavy_genomes"}
    }

``rolp-bench staticcheck`` exits 0 when every shipped program verifies
clean, 3 (the invariant-violation exit code) when any verifier rule
fires.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.staticcheck.contexts import (
    WorkloadAnalysis,
    analyze_genome,
    analyze_workload,
)
from repro.analysis.staticcheck.verifier import (
    verify_call_tree,
    verify_program,
)
from repro.analysis.violations import InvariantViolation
from repro.runtime.program import LoweringDiagnostics, MethodProgram, lower_callable

SCHEMA = "rolp-bench/staticcheck/v1"

#: cap on per-workload site listings in the report (totals stay exact)
MAX_REPORT_SITES = 200


def build_workload(name: str, seed: Optional[int] = None):
    """Construct and *build* (not run) one registered workload: the
    method graph exists after ``workload.build(vm)``, no op executes."""
    from repro import build_vm
    from repro.bench.workload_registry import make_big_workload
    from repro.core.profiler import RolpConfig

    workload = make_big_workload(name, seed=seed)
    vm, _profiler = build_vm(
        "rolp",
        heap_mb=workload.heap_mb,
        young_regions=workload.young_regions,
        rolp_config=RolpConfig(package_filter=workload.package_filter()),
    )
    workload.build(vm)
    return workload, vm


def workload_programs(
    workload, diagnostics: Optional[LoweringDiagnostics] = None
) -> List[Tuple[MethodProgram, str]]:
    """Every method body expressible as a program, with its name."""
    from repro.analysis.staticcheck.contexts import collect_methods

    programs: List[Tuple[MethodProgram, str]] = []
    for method in collect_methods(workload):
        body = method.body
        program = (
            body
            if isinstance(body, MethodProgram)
            else lower_callable(body, diagnostics=diagnostics)
        )
        if program is not None:
            programs.append((program, method.qualified_name))
    return programs


def _verify_workload_programs(
    programs: List[Tuple[MethodProgram, str]],
) -> List[Dict[str, Any]]:
    """Verify each program standalone, then its call tree (cycle
    detection); one finding per program, as dicts."""
    findings: List[Dict[str, Any]] = []
    for program, name in programs:
        try:
            verify_program(program, name=name)
            verify_call_tree(program, name=name)
        except InvariantViolation as violation:
            entry = violation.as_dict()
            entry["program"] = name
            findings.append(entry)
    return findings


def check_workload(name: str, seed: Optional[int] = None) -> Dict[str, Any]:
    """Both passes over one registered workload."""
    workload, _vm = build_workload(name, seed=seed)
    analysis: WorkloadAnalysis = analyze_workload(workload)
    program_diag = LoweringDiagnostics()
    programs = workload_programs(workload, program_diag)
    findings = _verify_workload_programs(programs)

    reasons = program_diag.reasons()

    counts = analysis.counts()
    predicted = analysis.predicted_conflict_sites()
    return {
        "name": name,
        "methods": len(analysis.methods),
        "programs_checked": len(programs),
        "verifier_findings": findings,
        "lowering": {
            "opaque_bodies": len(analysis.methods) - len(programs),
            "reasons": reasons,
        },
        "collision_classes": counts,
        "predicted_conflict_sites": len(predicted),
        "context_space_total": analysis.context_space_total(),
        "paths_bounded": analysis.bounded,
        "unknown_call_targets": analysis.unknown_calls,
        "sites": analysis.sites[:MAX_REPORT_SITES],
    }


def check_corpus(corpus_dir: str) -> List[Dict[str, Any]]:
    """Analyze every banked fuzz-corpus genome without simulating it."""
    from repro.bench.fuzz import load_corpus
    from repro.workloads.adversarial import DemographyGenome

    out: List[Dict[str, Any]] = []
    for entry in load_corpus(corpus_dir):
        genome = DemographyGenome.from_dict(entry["genome"])
        summary = analyze_genome(genome)
        out.append(
            {
                "file": entry["_file"],
                "rule_id": entry.get("rule_id"),
                "check": entry.get("check"),
                "conflict_pressure": summary["conflict_pressure"],
                "structural_sites": summary["structural_sites"],
                "oscillating_sites": summary["oscillating_sites"],
                "conflict_heavy": summary["conflict_heavy"],
                "verifier_findings": [],
            }
        )
    return out


def check_shipped_programs(seed: int = 0) -> Dict[str, Any]:
    """Verify the perf kernels' :class:`MethodProgram` call trees — the
    repo's shipped hand-authored op arrays."""
    from repro.bench.perf import kernel_programs

    findings: List[Dict[str, Any]] = []
    roots: List[str] = []
    checked = 0
    for method, arity in kernel_programs(seed):
        name = method.qualified_name
        roots.append(name)
        try:
            verify_program(method.body, name=name, arity=arity)
            tree = verify_call_tree(
                method.body, name=name, arity=arity, assume_root=True
            )
            checked += tree["programs"]
        except InvariantViolation as violation:
            checked += 1
            entry = violation.as_dict()
            entry["program"] = name
            findings.append(entry)
    return {
        "roots": roots,
        "programs_checked": checked,
        "verifier_findings": findings,
    }


def run_staticcheck(
    workloads: Optional[List[str]] = None,
    corpus_dir: Optional[str] = None,
    seed: Optional[int] = None,
) -> Dict[str, Any]:
    """The full ``rolp-bench staticcheck`` payload."""
    from repro.bench.fuzz import DEFAULT_CORPUS_DIR
    from repro.bench.workload_registry import all_workload_names

    names = list(workloads) if workloads else all_workload_names()
    workload_entries = [check_workload(name, seed=seed) for name in names]
    program_entry = check_shipped_programs()
    corpus_entries = check_corpus(
        corpus_dir if corpus_dir is not None else DEFAULT_CORPUS_DIR
    )

    totals = {
        "workloads": len(workload_entries),
        "methods": sum(entry["methods"] for entry in workload_entries),
        "programs_checked": sum(
            entry["programs_checked"] for entry in workload_entries
        )
        + program_entry["programs_checked"],
        "verifier_findings": sum(
            len(entry["verifier_findings"]) for entry in workload_entries
        )
        + len(program_entry["verifier_findings"])
        + sum(len(entry["verifier_findings"]) for entry in corpus_entries),
        "predicted_conflict_sites": sum(
            entry["predicted_conflict_sites"] for entry in workload_entries
        ),
        "conflict_heavy_genomes": sum(
            1 for entry in corpus_entries if entry["conflict_heavy"]
        ),
    }
    return {
        "schema": SCHEMA,
        "workloads": workload_entries,
        "programs": program_entry,
        "corpus": corpus_entries,
        "totals": totals,
    }


def report_violation_rules(report: Dict[str, Any]) -> List[str]:
    """Sorted distinct verifier rule ids in a staticcheck report (the
    CLI exits 3 when this is non-empty)."""
    rules = set()
    for section in ("workloads", "corpus"):
        for entry in report.get(section, []):
            for finding in entry.get("verifier_findings", []):
                rules.add(str(finding.get("rule")))
    for finding in report.get("programs", {}).get("verifier_findings", []):
        rules.add(str(finding.get("rule")))
    return sorted(rules)


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable staticcheck summary."""
    totals = report["totals"]
    lines = [
        "%d workload(s), %d method(s), %d program(s) verified, "
        "%d verifier finding(s)"
        % (
            totals["workloads"],
            totals["methods"],
            totals["programs_checked"],
            totals["verifier_findings"],
        )
    ]
    for entry in report["workloads"]:
        counts = entry["collision_classes"]
        lines.append(
            "  %-14s methods=%-4d programs=%-3d conflict-sites=%-4d "
            "(structural=%d value-dependent=%d clean=%d)%s"
            % (
                entry["name"],
                entry["methods"],
                entry["programs_checked"],
                entry["predicted_conflict_sites"],
                counts["structural"],
                counts["value-dependent"],
                counts["clean"],
                " [BOUNDED]" if entry["paths_bounded"] else "",
            )
        )
        for finding in entry["verifier_findings"]:
            lines.append(
                "    VIOLATION %s: %s" % (finding["rule"], finding["message"])
            )
        if entry["lowering"]["opaque_bodies"]:
            lines.append(
                "    %d opaque bod%s (%s)"
                % (
                    entry["lowering"]["opaque_bodies"],
                    "y" if entry["lowering"]["opaque_bodies"] == 1 else "ies",
                    ", ".join(
                        "%s x%d" % (reason, count)
                        for reason, count in sorted(
                            entry["lowering"]["reasons"].items()
                        )
                    )
                    or "no reasons recorded",
                )
            )
    programs = report.get("programs")
    if programs:
        lines.append(
            "shipped programs: %d verified from %d root(s) (%s), %d finding(s)"
            % (
                programs["programs_checked"],
                len(programs["roots"]),
                ", ".join(programs["roots"]),
                len(programs["verifier_findings"]),
            )
        )
        for finding in programs["verifier_findings"]:
            lines.append(
                "    VIOLATION %s: %s" % (finding["rule"], finding["message"])
            )
    if report["corpus"]:
        lines.append(
            "corpus: %d genome(s), %d conflict-heavy"
            % (len(report["corpus"]), totals["conflict_heavy_genomes"])
        )
        for entry in report["corpus"]:
            lines.append(
                "  %-48s pressure=%-3d %s"
                % (
                    entry["file"],
                    entry["conflict_pressure"],
                    "CONFLICT-HEAVY" if entry["conflict_heavy"] else "benign",
                )
            )
    return "\n".join(lines)


# --------------------------------------------------------- pre-execution gate

def check_method(vm, method, arity: int = 0) -> None:
    """``ROLP_STATIC_CHECK=1`` gate body: verify the program call tree
    rooted at ``method`` before the VM executes it.

    Read-only by construction — ``MethodProgram`` bodies are verified
    as-is (before the dispatch loop links them, so a malformed program
    trips a rule id instead of crashing the linker); callable bodies
    resolve through the dispatch memo (the same lowering the compiled
    backend performs, so enabling the gate changes no lowering order).
    The verifier touches no clock, RNG, or VM state.  Raises
    :class:`InvariantViolation` (CLI exit 3) on the first violation.
    """
    body = method.body
    if type(body) is MethodProgram:
        program = body
    else:
        from repro.runtime.dispatch import _program_of

        program = _program_of(vm, method)
    if program is None:
        return
    verify_program(program, name=method.qualified_name, arity=arity)
    verify_call_tree(
        program, name=method.qualified_name, arity=arity, assume_root=True
    )

"""Per-pause root-cause attribution: *why* was p99.9 slow?

The pause-percentile tables (Figures 8/9) say how long pauses were;
this module says where the time went.  During a traced run every
copying collection attaches a ``contributions`` list to its ``gc/``
span event: bytes copied per (allocation context, age class), read from
the pre-aging object headers at the pause's copy choke points.  The
analyzer decomposes each pause's duration pro-rata over those bytes,
ranks the (context, age) pairs that dominate the *tail* (the top
p99/p99.9 pauses), and contrasts their tail share against their share
across all pauses — a context that is ordinary at p50 but dominant at
p99.9 is exactly the long-lived-allocation-site signal ROLP exists to
find (and pretenure away).

``rolp-bench explain`` drives this end to end: a grid of ``explain_run``
cells (each a workload x collector run recorded through its own bounded
:class:`~repro.telemetry.flightrec.FlightRecorder`, so results are
identical under ``--jobs N``), a machine-readable ``pause_report.json``
and an ASCII report.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.heap.header import context_site
from repro.metrics.report import render_table
from repro.telemetry import Histogram, Telemetry
from repro.telemetry.flightrec import DEFAULT_CAPACITY, FlightRecorder

#: report schema identity (bump on breaking layout changes)
REPORT_SCHEMA = "rolp-bench/pause-report/v1"

#: contributors listed per run in the report
TOP_CONTRIBUTORS = 10

#: default warmup discard, matching the Figure 8/9 pause study
DEFAULT_DISCARD_FRACTION = 0.50


# ------------------------------------------------------------------ the cell

def _register_cell() -> None:
    """Register the ``explain_run`` cell kind.

    Deferred into a function called at import so this module can be
    imported by :mod:`repro.bench.cli` (whose import is what
    ``_ensure_kinds`` guarantees on pool workers) without a circular
    import at module-load time.
    """
    from repro.bench.runner import cell_kind, shared_seed_scope
    from repro.bench.workload_registry import run_big_workload

    @cell_kind(
        "explain_run",
        track=lambda p: "explain/%s/%s" % (p["workload"], p["collector"]),
        # the collector is the treatment: every collector replays the
        # identical operation stream, like the Figure 8/9 pause cells
        seed_scope=shared_seed_scope("explain_run", "collector"),
    )
    def _explain_cell(
        seed,
        telemetry,
        workload,
        collector,
        operations,
        discard_fraction,
        capacity,
    ):
        """One recorded (workload, collector) run.

        The cell builds its *own* flight recorder rather than using the
        session telemetry: pool workers run with ``telemetry=None``, so
        anything the report needs must come back in the cell result for
        ``--jobs N`` to stay byte-identical to serial.
        """
        recorder = FlightRecorder(capacity=capacity)
        tracer = recorder.tracer("%s/%s" % (workload, collector))
        metrics = telemetry.metrics if telemetry is not None else None
        result, _ = run_big_workload(
            workload,
            collector,
            operations=operations,
            seed=seed,
            telemetry=Telemetry(tracer, metrics),
        )
        cutoff_ns = result.elapsed_ms * 1e6 * discard_fraction
        pauses = []
        for event in recorder.events():
            if event.category != "gc" or event.phase != "X":
                continue
            if event.ts_ns < cutoff_ns:
                continue
            pauses.append(
                {
                    "span_id": event.span_id,
                    "kind": event.name.split("/", 1)[-1],
                    "start_ns": event.ts_ns,
                    "duration_ms": event.dur_ns / 1e6,
                    "bytes_copied": event.args.get("bytes_copied", 0),
                    "contributions": [
                        list(row) for row in event.args.get("contributions", [])
                    ],
                }
            )
        return {
            "workload": workload,
            "collector": collector,
            "operations": operations,
            "discard_fraction": discard_fraction,
            "pauses": pauses,
            "recorder": recorder.counters(),
        }


_register_cell()


# ------------------------------------------------------------- report building

def _tail_count(n: int, percentile: float) -> int:
    """How many of ``n`` pauses form the top-``percentile`` tail."""
    return max(1, int(math.ceil(n * (100.0 - percentile) / 100.0)))


def _attribute(pauses: Sequence[dict]) -> Tuple[Dict[Tuple[int, int], float], float, float]:
    """Decompose the given pauses' durations over their contributions.

    Returns ``(attributed_ms by (context, age), attributed total ms,
    duration total ms)``.  A pause's time splits pro-rata by bytes; a
    pause that copied nothing (e.g. a CMS initial-mark) stays
    unattributed and only widens the denominator.
    """
    shares: Dict[Tuple[int, int], float] = {}
    attributed = 0.0
    total = 0.0
    for pause in pauses:
        duration = pause["duration_ms"]
        total += duration
        rows = pause["contributions"]
        bytes_sum = sum(row[2] for row in rows)
        if bytes_sum <= 0:
            continue
        for context, age, size in rows:
            key = (context, age)
            share = duration * size / bytes_sum
            shares[key] = shares.get(key, 0.0) + share
            attributed += share
    return shares, attributed, total


def summarize_run(row: dict, trace_id: str = "") -> dict:
    """The per-run section of the report, from one ``explain_run`` result."""
    pauses = row["pauses"]
    histogram = Histogram("pause_ms")
    for pause in pauses:
        histogram.observe(pause["duration_ms"])
    # deterministic tail ranking: duration desc, then start asc
    ranked = sorted(pauses, key=lambda p: (-p["duration_ms"], p["start_ns"]))
    tail = ranked[: _tail_count(len(ranked), 99.9)] if ranked else []
    tail_shares, tail_attributed, tail_total = _attribute(tail)
    all_shares, _all_attributed, all_total = _attribute(pauses)
    contributors = []
    for (context, age), attributed_ms in sorted(
        tail_shares.items(), key=lambda kv: (-kv[1], kv[0])
    )[:TOP_CONTRIBUTORS]:
        tail_share = attributed_ms / tail_total if tail_total else 0.0
        overall_share = (
            all_shares.get((context, age), 0.0) / all_total if all_total else 0.0
        )
        contributors.append(
            {
                "context": "0x%08x" % context if context >= 0 else "(other)",
                "site_id": context_site(context) if context >= 0 else None,
                "age_class": age if age >= 0 else None,
                "attributed_ms": round(attributed_ms, 6),
                "tail_share": round(tail_share, 6),
                "overall_share": round(overall_share, 6),
                # the p99.9-vs-p50 differential: how much more of the
                # tail this pair owns compared to its everyday share
                "differential": round(tail_share - overall_share, 6),
                "trace_id": trace_id,
            }
        )
    return {
        "workload": row["workload"],
        "collector": row["collector"],
        "trace_id": trace_id,
        "operations": row["operations"],
        "pauses": len(pauses),
        "p50_ms": round(histogram.percentile(50.0), 6),
        "p99_ms": round(histogram.percentile(99.0), 6),
        "p999_ms": round(histogram.percentile(99.9), 6),
        "tail": {
            "count": len(tail),
            "total_ms": round(tail_total, 6),
            "attributed_ms": round(tail_attributed, 6),
            "attributed_fraction": round(
                tail_attributed / tail_total if tail_total else 0.0, 6
            ),
        },
        "contributors": contributors,
        "recorder": row["recorder"],
    }


def build_report(rows: Sequence[dict], trace_ids: Sequence[str], scale: float) -> dict:
    """The full machine-readable report for a grid of explain runs."""
    runs = [
        summarize_run(row, trace_id) for row, trace_id in zip(rows, trace_ids)
    ]
    runs.sort(key=lambda r: (r["workload"], r["collector"]))
    return {
        "schema": REPORT_SCHEMA,
        "scale": scale,
        "runs": runs,
    }


def render_report(report: dict) -> str:
    """ASCII rendering of :func:`build_report`'s output."""
    parts: List[str] = []
    for run in report["runs"]:
        tail = run["tail"]
        parts.append(
            "%s / %s  (trace %s): %d pauses, p50 %.3f ms, p99 %.3f ms, "
            "p99.9 %.3f ms; tail %.1f%% attributed"
            % (
                run["workload"],
                run["collector"],
                run["trace_id"] or "-",
                run["pauses"],
                run["p50_ms"],
                run["p99_ms"],
                run["p999_ms"],
                100.0 * tail["attributed_fraction"],
            )
        )
        rows = [
            [
                c["context"],
                "-" if c["site_id"] is None else c["site_id"],
                "-" if c["age_class"] is None else c["age_class"],
                "%.3f" % c["attributed_ms"],
                "%.1f%%" % (100.0 * c["tail_share"]),
                "%+.1f%%" % (100.0 * c["differential"]),
            ]
            for c in run["contributors"]
        ]
        if rows:
            parts.append(
                render_table(
                    ["context", "site", "age", "tail ms", "tail share", "vs overall"],
                    rows,
                )
            )
        else:
            parts.append("  (no attributable copying pauses in the tail)")
        parts.append("")
    return "\n".join(parts)


# ------------------------------------------------------------------ the driver

def explain_cells(
    workload_names: Optional[Sequence[str]] = None,
    collectors: Optional[Sequence[str]] = None,
    discard_fraction: float = DEFAULT_DISCARD_FRACTION,
    capacity: Optional[int] = None,
):
    """The (workload x collector) grid of ``explain_run`` cells."""
    from repro.bench.figures import PAUSE_FIGURE_COLLECTORS
    from repro.bench.runner import make_cell
    from repro.bench.workload_registry import BIG_WORKLOADS, big_workload_ops

    capacity = capacity or DEFAULT_CAPACITY
    names = list(workload_names or sorted(BIG_WORKLOADS))
    chosen = list(collectors or PAUSE_FIGURE_COLLECTORS)
    cells = [
        make_cell(
            "explain_run",
            workload=name,
            collector=collector,
            operations=big_workload_ops(name),
            discard_fraction=discard_fraction,
            capacity=capacity,
        )
        for name in names
        for collector in chosen
    ]
    return cells


def explain(
    workload_names: Optional[Sequence[str]] = None,
    collectors: Optional[Sequence[str]] = None,
    discard_fraction: float = DEFAULT_DISCARD_FRACTION,
    capacity: Optional[int] = None,
    runner=None,
    session=None,
) -> dict:
    """Run the explain grid and build the report."""
    from repro.bench.config import bench_scale

    cells = explain_cells(workload_names, collectors, discard_fraction, capacity)
    if runner is None:
        from repro.bench.runner import Runner

        runner = Runner(session=session)
    rows = runner.run(cells)
    trace_ids = [runner.trace_ids[cell.key] for cell in cells]
    return build_report(rows, trace_ids, bench_scale())

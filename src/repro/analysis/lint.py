"""Determinism lint for the simulator core (``rolp-lint``).

The bench runner's replayability rests on conventions no tool enforced
until now: simulation code must draw randomness only from seeded
``random.Random`` instances, must read time only through the virtual
:mod:`repro.runtime.clock`, and must not let set iteration order leak
into ordered output.  One stray ``time.time()`` silently breaks
byte-identical replay; this lint makes the conventions machine-checked.

Pure stdlib ``ast`` — no third-party dependency.  Rules:

``unseeded-random``
    module-level ``random.*`` API, ``random.Random()`` constructed
    without a seed, or ``random.SystemRandom`` anywhere.
``wall-clock``
    ``time.time``/``monotonic``/``perf_counter``-family and
    ``datetime.now``-family calls in *sim-core* modules (everything
    except the bench/telemetry/analysis harness); ``runtime/clock.py``
    is the one sanctioned shim.
``mutable-default``
    mutable default argument values (``def f(x=[])`` and friends).
``unordered-iteration``
    iterating directly over a set expression in sim-core modules, where
    iteration order would feed ordered output.
``builtin-shadowing``
    module-level names that shadow builtins, including Java-flavoured
    exception names (``OutOfMemoryError``) whose builtin analogue
    (``MemoryError``) makes ``except`` sites ambiguous.
``backend-hygiene``
    sim-core imports of the fast/compiled backend twins
    (``repro.runtime.dispatch``, ``repro.heap.soa``,
    ``FastExecutionContext``) outside the sanctioned entry points; the
    three-way switch in :mod:`repro.fastpath` is how backends are
    selected, and direct twin imports silently pin one backend.

Waive a finding on its line with ``# rolp-lint: allow[rule]`` (or
``allow[*]``).  Exit status: 0 clean, 1 findings, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import ast
import builtins
import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Packages whose modules are simulation core (deterministic-replay
#: critical).  Everything else under ``repro`` is harness code, where
#: wall-clock reads and set iteration are legitimate.
SIM_CORE_PACKAGES = frozenset(
    {"heap", "runtime", "gc", "core", "workloads", "metrics"}
)

#: The one module allowed to touch wall-clock APIs (it defines the
#: virtual clock the rest of the simulator must use).
CLOCK_MODULE = ("runtime", "clock.py")

WALL_CLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
    }
)
WALL_CLOCK_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})

#: Java exception names whose Python builtin analogue makes shadowing
#: especially confusing at ``except`` sites.
JVM_EXCEPTION_ANALOGUES: Dict[str, str] = {
    "OutOfMemoryError": "MemoryError",
    "StackOverflowError": "RecursionError",
    "NullPointerException": "AttributeError",
    "ClassCastException": "TypeError",
    "ArrayIndexOutOfBoundsException": "IndexError",
}

BUILTIN_NAMES = frozenset(
    name for name in dir(builtins) if not name.startswith("_")
)

#: Modules that ARE optimised backend twins: importing them couples the
#: importer to one backend behind the three-way switch's back.
BACKEND_TWIN_MODULES = frozenset({"repro.runtime.dispatch", "repro.heap.soa"})

#: Twin symbols living inside otherwise-generic modules.
BACKEND_TWIN_SYMBOLS: Dict[str, frozenset] = {
    "repro.runtime.interpreter": frozenset({"FastExecutionContext"}),
}

#: ``repro``-relative paths sanctioned to name the twins directly: the
#: switch itself, the VM's construction-time backend selection, and the
#: twin modules.  Everything else in sim-core goes through the switch.
BACKEND_SANCTIONED = frozenset(
    {
        ("fastpath.py",),
        ("runtime", "vm.py"),
        ("runtime", "dispatch.py"),
        ("runtime", "interpreter.py"),
        ("heap", "soa.py"),
    }
)

RULES: Dict[str, str] = {
    "unseeded-random": "randomness must come from seeded random.Random instances",
    "wall-clock": "sim-core code must read time through repro.runtime.clock",
    "mutable-default": "mutable default argument values are shared between calls",
    "unordered-iteration": "set iteration order must not feed ordered output",
    "builtin-shadowing": "module-level name shadows a Python builtin",
    "backend-hygiene": "backend twins are selected via repro.fastpath, not imported directly",
    "parse-error": "file could not be parsed",
}


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return "%s:%d:%d: %s %s" % (self.path, self.line, self.col, self.rule, self.message)


def _classify(path: str) -> Tuple[bool, bool]:
    """Return ``(sim_core, clock_exempt)`` for a file path.

    Files outside a recognised ``repro`` package (e.g. test fixtures)
    get the strictest treatment.
    """
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" in parts:
        rel = parts[parts.index("repro") + 1 :]
        if tuple(rel) == CLOCK_MODULE:
            return True, True
        if rel and rel[0] in SIM_CORE_PACKAGES:
            return True, False
        if len(rel) == 1:  # repro/__init__.py and friends
            return True, False
        return False, False
    return True, False


def _backend_sanctioned(path: str) -> bool:
    """Whether ``path`` may import the backend twins directly."""
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" in parts:
        rel = tuple(parts[parts.index("repro") + 1 :])
        return rel in BACKEND_SANCTIONED
    return False


class _FileLinter(ast.NodeVisitor):
    """Single-file rule engine; findings accumulate in ``findings``."""

    def __init__(
        self,
        path: str,
        source: str,
        sim_core: bool,
        clock_exempt: bool,
        backend_scope: bool = False,
    ) -> None:
        self.path = path
        self.sim_core = sim_core
        self.clock_exempt = clock_exempt
        self.backend_scope = backend_scope
        self.findings: List[Finding] = []
        self._lines = source.splitlines()
        #: local names bound to the random / time / datetime modules
        self._random_mods: Set[str] = set()
        self._time_mods: Set[str] = set()
        self._datetime_mods: Set[str] = set()
        #: local names bound to the datetime/date classes
        self._datetime_classes: Set[str] = set()
        #: local names bound directly to wall-clock functions
        self._clock_funcs: Set[str] = set()

    # -- reporting ------------------------------------------------------------

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self._waived(line, rule):
            return
        self.findings.append(
            Finding(self.path, line, getattr(node, "col_offset", 0) + 1, rule, message)
        )

    def _waived(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self._lines):
            return False
        text = self._lines[line - 1]
        if "rolp-lint:" not in text:
            return False
        waiver = text.split("rolp-lint:", 1)[1]
        return "allow[%s]" % rule in waiver or "allow[*]" in waiver

    # -- imports --------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_mods.add(bound)
            elif alias.name == "time":
                self._time_mods.add(bound)
            elif alias.name == "datetime":
                self._datetime_mods.add(bound)
            elif self.backend_scope and alias.name in BACKEND_TWIN_MODULES:
                self._report(
                    node,
                    "backend-hygiene",
                    "%s is a backend twin; select backends through "
                    "repro.fastpath's switch instead of importing it directly"
                    % alias.name,
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.backend_scope:
            if node.module in BACKEND_TWIN_MODULES:
                self._report(
                    node,
                    "backend-hygiene",
                    "%s is a backend twin; select backends through "
                    "repro.fastpath's switch instead of importing from it"
                    % node.module,
                )
            elif node.module in BACKEND_TWIN_SYMBOLS:
                twins = BACKEND_TWIN_SYMBOLS[node.module]
                for alias in node.names:
                    if alias.name in twins:
                        self._report(
                            node,
                            "backend-hygiene",
                            "%s is a backend twin; the VM picks the execution "
                            "context from repro.fastpath's switch" % alias.name,
                        )
        if node.module == "random":
            for alias in node.names:
                if alias.name == "SystemRandom":
                    self._report(
                        node,
                        "unseeded-random",
                        "SystemRandom is never reproducible; use a seeded random.Random",
                    )
                elif alias.name != "Random":
                    self._report(
                        node,
                        "unseeded-random",
                        "from random import %s binds the shared global RNG; "
                        "use a seeded random.Random instance" % alias.name,
                    )
        elif node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_TIME_FUNCS:
                    self._clock_funcs.add(alias.asname or alias.name)
                    if self.sim_core and not self.clock_exempt:
                        self._report(
                            node,
                            "wall-clock",
                            "time.%s imported into sim-core code; read time "
                            "through repro.runtime.clock" % alias.name,
                        )
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_classes.add(alias.asname or alias.name)

    # -- calls ----------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_random_call(node)
        if self.sim_core and not self.clock_exempt:
            self._check_wall_clock_call(node)
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._random_mods
        ):
            return
        if func.attr == "SystemRandom":
            self._report(
                node,
                "unseeded-random",
                "random.SystemRandom() is never reproducible",
            )
        elif func.attr == "Random":
            if not node.args and not node.keywords:
                self._report(
                    node,
                    "unseeded-random",
                    "random.Random() constructed without a seed",
                )
        elif func.attr != "seed":
            self._report(
                node,
                "unseeded-random",
                "random.%s() uses the shared module-level RNG; "
                "use a seeded random.Random instance" % func.attr,
            )

    def _check_wall_clock_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._clock_funcs:
            self._report(
                node,
                "wall-clock",
                "%s() reads the wall clock; use the simulated clock" % func.id,
            )
            return
        if not isinstance(func, ast.Attribute):
            return
        target = func.value
        # time.time(), time.monotonic(), ...
        if (
            isinstance(target, ast.Name)
            and target.id in self._time_mods
            and func.attr in WALL_CLOCK_TIME_FUNCS
        ):
            self._report(
                node,
                "wall-clock",
                "time.%s() reads the wall clock; use the simulated clock" % func.attr,
            )
        # datetime.now(), date.today(), ...
        elif (
            isinstance(target, ast.Name)
            and target.id in self._datetime_classes
            and func.attr in WALL_CLOCK_DATETIME_METHODS
        ):
            self._report(
                node,
                "wall-clock",
                "%s.%s() reads the wall clock; use the simulated clock"
                % (target.id, func.attr),
            )
        # datetime.datetime.now(), datetime.date.today(), ...
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id in self._datetime_mods
            and target.attr in ("datetime", "date")
            and func.attr in WALL_CLOCK_DATETIME_METHODS
        ):
            self._report(
                node,
                "wall-clock",
                "datetime.%s.%s() reads the wall clock; use the simulated clock"
                % (target.attr, func.attr),
            )

    # -- mutable defaults -------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable_literal(default):
                self._report(
                    default,
                    "mutable-default",
                    "mutable default argument is shared between calls; "
                    "default to None and build inside the function",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray", "defaultdict")
        )

    # -- unordered iteration ------------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self.sim_core:
            self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comp(node)
        self.generic_visit(node)

    def _check_comp(self, node) -> None:
        if self.sim_core:
            for generator in node.generators:
                self._check_set_iteration(generator.iter)

    def _check_set_iteration(self, iterable: ast.AST) -> None:
        target = iterable
        # enumerate(set(...)) / sorted is fine — sorted() restores order.
        if (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Name)
            and target.func.id in ("enumerate", "reversed", "list", "tuple", "iter")
            and target.args
        ):
            target = target.args[0]
        if self._is_set_expression(target):
            self._report(
                iterable,
                "unordered-iteration",
                "iteration over a set feeds ordered output; sort it or use a "
                "list/dict (insertion-ordered) instead",
            )

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    # -- module-level shadowing (driven from lint_source, not generic_visit) -------

    def check_module_bindings(self, module: ast.Module) -> None:
        for stmt in module.body:
            for name, node in _bound_names(stmt):
                if name in BUILTIN_NAMES:
                    self._report(
                        node,
                        "builtin-shadowing",
                        "module-level name %r shadows the %r builtin" % (name, name),
                    )
                elif name in JVM_EXCEPTION_ANALOGUES:
                    self._report(
                        node,
                        "builtin-shadowing",
                        "module-level name %r shadows the semantics of the %r "
                        "builtin at import sites; prefix it (e.g. Sim%s)"
                        % (name, JVM_EXCEPTION_ANALOGUES[name], name),
                    )


def _bound_names(stmt: ast.stmt) -> Iterable[Tuple[str, ast.AST]]:
    """Names a module-level statement binds (assignments, defs, classes)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield stmt.name, stmt
    elif isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                yield target.id, target
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        yield stmt.target.id, stmt.target
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name != "*":
                yield (alias.asname or alias.name.split(".")[0]), stmt


# -- public API ------------------------------------------------------------------


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source string (rule scope derived from ``path``)."""
    sim_core, clock_exempt = _classify(path)
    try:
        module = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(path, exc.lineno or 1, (exc.offset or 0) + 1, "parse-error", str(exc.msg))
        ]
    backend_scope = sim_core and not _backend_sanctioned(path)
    linter = _FileLinter(path, source, sim_core, clock_exempt, backend_scope)
    linter.visit(module)
    linter.check_module_bindings(module)
    return linter.findings


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    """Lint files and directory trees; findings sorted by location."""
    findings: List[Finding] = []
    files = 0
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        findings.extend(lint_file(os.path.join(root, name)))
                        files += 1
        else:
            findings.extend(lint_file(path))
            files += 1
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    lint_paths.files_checked = files  # type: ignore[attr-defined]
    return findings


def default_target() -> str:
    """The installed ``repro`` package tree (what CI lints)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rolp-lint",
        description="Determinism lint for the ROLP simulator core.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules", action="store_true", help="list the rules and exit"
    )
    args = parser.parse_args(argv)
    if args.rules:
        for rule in sorted(RULES):
            print("%-22s %s" % (rule, RULES[rule]))
        return 0
    targets = list(args.paths) or [default_target()]
    for target in targets:
        if not os.path.exists(target):
            print("rolp-lint: no such path: %s" % target, file=sys.stderr)
            return 2
    findings = lint_paths(targets)
    for finding in findings:
        print(finding.format())
    files = getattr(lint_paths, "files_checked", 0)
    if findings:
        if any(f.rule == "parse-error" for f in findings):
            return 2
        print(
            "rolp-lint: %d finding(s) in %d file(s)" % (len(findings), files),
            file=sys.stderr,
        )
        return 1
    print("rolp-lint: clean (%d files)" % files, file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())

"""NG2C-like pretenuring collector.

NG2C (Bruno et al., ISMM 2017) extends G1 with *dynamic generations*:
the old space is subdivided into up to 14 extra allocation spaces, and
new objects can be allocated directly into the generation matching their
estimated lifetime, skipping the survivor-copy treadmill entirely.

Two advice sources, matching the paper's evaluation:

* **annotation mode** (plain NG2C): the workload's hand-placed
  ``gen_hint`` values (the programmer-knowledge baseline);
* **profiler mode** (ROLP): the attached profiler's
  :meth:`allocation_advice` per allocation context — no hints needed.

Objects whose lifetimes were estimated correctly die inside their
dynamic generation; the region becomes fully garbage and is reclaimed
wholesale with zero copying.  Mis-tenured regions are evacuated during
the mixed phase like G1 old regions, and the resulting fragmentation
statistics feed ROLP's lifetime-decrement loop (paper Section 6).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.heap.fragmentation import dead_bytes_by_context, guilty_contexts
from repro.heap.header import NUM_AGES
from repro.heap.region import Region, Space
from repro.gc.g1 import G1Collector

#: generation number meaning "the old generation" in NG2C's scheme
OLD_GEN = NUM_AGES - 1  # 15


class NG2CCollector(G1Collector):
    """G1 + 16 allocation spaces (young, 14 dynamic gens, old)."""

    name = "ng2c"
    #: regions may carry NG2C's dynamic generations 1..14
    supports_dynamic_gens = True

    def __init__(
        self,
        heap,
        bandwidth=None,
        clock=None,
        young_regions: int = 0,
        tenuring_threshold: int = 6,
        ihop: float = 0.45,
        mixed_garbage_threshold: float = 0.15,
        max_mixed_regions: int = 0,
        use_profiler_advice: bool = False,
        fragmentation_threshold: float = 0.25,
    ) -> None:
        super().__init__(
            heap,
            bandwidth,
            clock,
            young_regions,
            tenuring_threshold,
            ihop,
            mixed_garbage_threshold,
            max_mixed_regions,
        )
        #: ROLP mode (True) vs hand-annotation mode (False)
        self.use_profiler_advice = use_profiler_advice
        self.fragmentation_threshold = fragmentation_threshold
        self.pretenured_objects = 0
        self.regions_reclaimed_wholesale = 0

    # -- placement ---------------------------------------------------------------

    def _placement(self, obj, context, gen_hint) -> Tuple[Space, int]:
        gen = self._advice(context, gen_hint)
        if gen <= 0:
            return Space.EDEN, 0
        self.pretenured_objects += 1
        if gen >= OLD_GEN:
            return Space.OLD, 0
        return Space.DYNAMIC, gen

    def _advice(self, context: int, gen_hint: int) -> int:
        if self.use_profiler_advice:
            if context == 0:
                return 0
            return self.profiler.allocation_advice(context)
        return gen_hint

    # -- collection --------------------------------------------------------------------

    def _old_phase(self, now_ns: int, tracking: bool) -> Tuple[int, int]:
        """Mixed phase: reclaim dead dynamic-gen regions wholesale, then
        evacuate the worst old/dynamic regions like G1."""
        bytes_copied = 0
        profiled = 0

        # Wholesale reclamation: fully dead dynamic regions cost nothing.
        # Record whose bytes were reclaimed for free: the fragmentation
        # report uses this to distinguish systematically mis-tenured
        # contexts (whose garbage must be copied around) from contexts
        # whose objects die together (whose garbage costs nothing).
        wholesale_dead: dict = {}
        for region in self.heap.regions_in(Space.DYNAMIC):
            if region.live_bytes(now_ns) == 0:
                # Covers both fully-dead regions and the empty tail
                # regions left behind when advice moves a context to a
                # different generation.
                for context, dead in dead_bytes_by_context([region], now_ns).items():
                    wholesale_dead[context] = wholesale_dead.get(context, 0) + dead
                self.heap.release_region(region)
                self.regions_reclaimed_wholesale += 1

        if not self._old_pressure(now_ns):
            return 0, 0

        # G1-style old collection set.
        copied, prof = super()._old_phase(now_ns, tracking)
        bytes_copied += copied
        profiled += prof

        # Fragmented dynamic regions: evacuate survivors within their
        # generation and report the guilty contexts to the profiler.
        # Near-empty but fully-live regions (stragglers left behind by
        # advice changes) also qualify: they have zero garbage fraction
        # yet each pins a whole region — consolidating them is cheap.
        frag_regions = [
            r
            for r in self.heap.regions_in(Space.DYNAMIC)
            if r.used > 0
            and (
                r.fragmentation(now_ns) >= self.fragmentation_threshold
                or (
                    r.occupancy() < 0.05
                    # ...but never the region still receiving bump
                    # allocations: evacuating it would just thrash.
                    and r is not self.heap.current_alloc_region(Space.DYNAMIC, r.gen)
                )
            )
        ]
        if frag_regions or wholesale_dead:
            blame = guilty_contexts(
                frag_regions, now_ns, self.fragmentation_threshold
            )
            if blame or wholesale_dead:
                self.profiler.on_fragmentation_report(
                    {
                        context: (
                            blame.get(context, 0),
                            wholesale_dead.get(context, 0),
                        )
                        for context in set(blame) | set(wholesale_dead)
                    }
                )
            budget = self._mixed_budget()
            for region in frag_regions[:budget]:
                copied, prof = self._evacuate_regions(
                    [region],
                    now_ns,
                    tracking,
                    dest=Space.DYNAMIC,
                    dest_gen=region.gen,
                    breakdown_key="dynamic",
                )
                bytes_copied += copied
                profiled += prof
        return bytes_copied, profiled

    def collect_full(self, reason: str) -> None:
        """Fallback compaction covers old + all dynamic generations."""
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        tracking = self.profiler.survivor_tracking_enabled()
        bytes_copied = 0
        regions_scanned = 0
        for region in list(self.heap.regions_in(Space.DYNAMIC)):
            if region.used == 0:
                continue
            regions_scanned += 1
            if region.live_bytes(now) == 0:
                self.heap.release_region(region)
                self.regions_reclaimed_wholesale += 1
                continue
            copied, _ = self._evacuate_regions(
                [region], now, tracking, dest=Space.DYNAMIC, dest_gen=region.gen
            )
            bytes_copied += copied
        old_regions = [r for r in self.heap.regions_in(Space.OLD) if r.used > 0]
        regions_scanned += len(old_regions)
        copied, profiled = self._evacuate_regions(
            old_regions, now, tracking, dest=Space.OLD
        )
        bytes_copied += copied
        pause_ns = self.bandwidth.pause_ns(
            bytes_copied, regions_scanned=regions_scanned, survivors_profiled=profiled
        )
        self._record_pause("full", pause_ns, bytes_copied=bytes_copied)
        self._end_of_cycle(pause_ns)

"""Shared generational (young-generation copying) machinery.

G1, CMS and NG2C all use a copying young generation: eden fills up, a
stop-the-world young collection evacuates live objects into survivor
regions (or promotes them to the old generation once they reach the
tenuring threshold), and the eden regions are reclaimed wholesale.

The pause time of a young collection is the safepoint + root-scan fixed
cost plus the evacuation copy cost (bytes copied over effective memory
bandwidth) plus — when ROLP's survivor tracking is on — the per-survivor
profiling cost of reading the header context and updating the Object
Lifetime Distribution table.
"""

from __future__ import annotations

from itertools import compress
from typing import Iterable, List, Tuple

from repro.heap.header import AGE_MASK, AGE_SHIFT
from repro.heap.object_model import SimObject
from repro.heap.region import Region, Space
from repro.gc.collector import Collector

try:  # pragma: no cover - numpy is part of the baked toolchain
    import numpy as _np
except ImportError:  # pragma: no cover - degraded environments
    _np = None

#: one age-field increment (the add grow_older performs while unsaturated)
_AGE_ONE = 1 << AGE_SHIFT


class GenerationalCollector(Collector):
    """Copying young generation + subclass-defined old-space policy.

    Parameters
    ----------
    young_regions:
        Eden region budget; a young GC triggers when eden reaches it.
    tenuring_threshold:
        Survivor age at which an object is promoted to the old space.
    """

    name = "generational"
    #: copying collectors age survivors on every copy, so the verifier
    #: may require age == min(copies, MAX_AGE)
    ages_on_copy = True
    #: the young copy loop has a vectorized SoA sweep (compiled backend)
    supports_soa = True

    def __init__(
        self,
        heap,
        bandwidth=None,
        clock=None,
        young_regions: int = 0,
        tenuring_threshold: int = 6,
    ) -> None:
        super().__init__(heap, bandwidth, clock)
        if young_regions <= 0:
            young_regions = max(4, len(heap.regions) // 4)
        self.young_regions = young_regions
        self.tenuring_threshold = tenuring_threshold
        self.young_collections = 0
        #: bytes copied, by source ("young", "old", "dynamic") — for
        #: diagnosing where pause time comes from
        self.copy_breakdown: dict = {"young": 0, "old": 0, "dynamic": 0}

    # -- triggering -----------------------------------------------------------

    def _eden_full(self) -> bool:
        if self._fast_paths:
            # O(1) incrementally maintained count, == the region walk
            return self.heap.region_count(Space.EDEN) >= self.young_regions
        return len(self.heap.regions_in(Space.EDEN)) >= self.young_regions

    def _maybe_collect(self) -> None:
        if self._eden_full():
            self.collect_young()

    # -- young collection --------------------------------------------------------

    def collect_young(self) -> None:
        """Stop-the-world evacuation of eden + survivor regions."""
        if self._columns is not None:
            self._collect_young_soa()
            return
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        sources: List[Region] = self.heap.regions_in(Space.EDEN) + self.heap.regions_in(
            Space.SURVIVOR
        )
        survivors = [o for r in sources for o in r.objects if o.is_live(now)]

        # To-space safety needs no explicit retire: the sources are
        # released before any copy, and releasing a region that is the
        # current bump target drops it from the allocation cache.  The
        # old generation's bump region (never a young-GC source) keeps
        # filling across cycles instead of leaking a partial region per
        # collection.

        tracking = self.profiler.survivor_tracking_enabled()
        bytes_copied = 0
        profiled = 0
        gc_threads = self.bandwidth.gc_threads
        # Attribution reads the pre-aging headers, so it must precede
        # both copy-loop variants (which age at different points).
        self._attribute_copies(survivors)
        # Release sources first so their regions are available as
        # to-space (the simulator's analogue of G1's evacuation reserve).
        for region in sources:
            self.heap.release_region(region)
        if self._fast_paths:
            # Batched survivor profiling reads the same pre-aging headers
            # as the interleaved per-object hook (profiling obj i never
            # depends on obj j's aging), then a tight copy loop inlines
            # grow_older and defers the breakdown update to one add.
            if tracking:
                self.profiler.on_gc_survivors(survivors, gc_threads)
                profiled = len(survivors)
            threshold = self.tenuring_threshold
            heap_allocate = self.heap.allocate
            promote = self._promote
            for obj in survivors:
                header = obj.header
                if (header & AGE_MASK) != AGE_MASK:
                    obj.header = header = header + _AGE_ONE
                obj.copies += 1
                bytes_copied += obj.size
                if (header & AGE_MASK) >> AGE_SHIFT >= threshold:
                    promote(obj)
                else:
                    heap_allocate(obj, Space.SURVIVOR)
            self.copy_breakdown["young"] += bytes_copied
        else:
            for index, obj in enumerate(survivors):
                if tracking:
                    self.profiler.on_gc_survivor(index % gc_threads, obj)
                    profiled += 1
                obj.grow_older()
                obj.copies += 1
                bytes_copied += obj.size
                self.copy_breakdown["young"] += obj.size
                if obj.age >= self.tenuring_threshold:
                    self._promote(obj)
                else:
                    self.heap.allocate(obj, Space.SURVIVOR)

        extra_copied, extra_profiled = self._old_phase(now, tracking)
        bytes_copied += extra_copied
        profiled += extra_profiled

        pause_ns = self.bandwidth.pause_ns(
            bytes_copied, regions_scanned=len(sources), survivors_profiled=profiled
        )
        self.young_collections += 1
        self._record_pause(
            self._young_pause_kind(),
            pause_ns,
            bytes_copied=bytes_copied,
            survivors=len(survivors),
        )
        self._end_of_cycle(pause_ns)

    def _collect_young_soa(self) -> None:
        """== :meth:`collect_young`'s fast path with the copy loop as
        column sweeps (compiled backend; objects are ColumnObject views
        over :class:`repro.heap.soa.ObjectColumns`).

        The numpy views are re-derived per collection because column
        appends (allocation) may reallocate the underlying buffers; no
        allocation happens while a collection is in progress, so the
        views stay valid for the duration of the sweep.  Aging uses
        unsigned 64-bit adds (identical wrap semantics to the guarded
        Python add — the guard itself keeps the add unsaturated), and
        every scalar leaving numpy is converted back to a Python int
        before it touches counters or region accounting.
        """
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        heap = self.heap
        columns = self._columns
        sources: List[Region] = heap.regions_in(Space.EDEN) + heap.regions_in(
            Space.SURVIVOR
        )
        objs = [o for r in sources for o in r.objects]
        tracking = self.profiler.survivor_tracking_enabled()
        gc_threads = self.bandwidth.gc_threads

        death_col = _np.frombuffer(columns.death, dtype=_np.float64)
        headers_col = _np.frombuffer(columns.headers, dtype=_np.uint64)
        sizes_col = _np.frombuffer(columns.sizes, dtype=_np.int64)
        copies_col = _np.frombuffer(columns.copies, dtype=_np.int64)

        if objs:
            slots = _np.fromiter(
                (o.slot for o in objs), dtype=_np.int64, count=len(objs)
            )
            live = death_col[slots] > now
            survivors = list(compress(objs, live))
            surv_slots = slots[live]
        else:
            survivors = []
            surv_slots = None

        # Attribution reads the pre-aging headers (tracer-gated).
        self._attribute_copies(survivors)
        for region in sources:
            heap.release_region(region)

        bytes_copied = 0
        profiled = 0
        if survivors:
            headers = headers_col[surv_slots]  # pre-aging copy
            if tracking:
                hook = getattr(self.profiler, "on_gc_survivors_soa", None)
                if hook is not None:
                    hook(headers, gc_threads)
                else:
                    self.profiler.on_gc_survivors(survivors, gc_threads)
                profiled = len(survivors)
            # age (saturating), bump copy counts, sum copied bytes
            age_mask = _np.uint64(AGE_MASK)
            unsaturated = (headers & age_mask) != age_mask
            headers[unsaturated] += _np.uint64(_AGE_ONE)
            headers_col[surv_slots] = headers
            copies_col[surv_slots] += 1
            sizes = sizes_col[surv_slots]
            bytes_copied = int(sizes.sum())
            promote = ((headers & age_mask) >> _np.uint64(AGE_SHIFT)).astype(
                _np.int64
            ) >= self.tenuring_threshold
            if bool((sizes > heap._humongous_bytes).any()) or (
                type(self)._promote is not GenerationalCollector._promote
            ):
                # Humongous survivors need dedicated regions, and a
                # subclass with its own promotion policy must see every
                # object: keep the per-object path for the whole set.
                heap_allocate = heap.allocate
                promote_one = self._promote
                for flag, obj in zip(promote.tolist(), survivors):
                    if flag:
                        promote_one(obj)
                    else:
                        heap_allocate(obj, Space.SURVIVOR)
            else:
                self.objects_promoted += int(promote.sum())
                # Run-length groups over the promote mask preserve the
                # exact region-claim interleaving of the per-object loop.
                changes = _np.flatnonzero(promote[1:] != promote[:-1]) + 1
                starts = [0] + changes.tolist() + [len(survivors)]
                for g in range(len(starts) - 1):
                    begin, end = starts[g], starts[g + 1]
                    self._place_run(
                        survivors[begin:end],
                        sizes[begin:end],
                        Space.OLD if promote[begin] else Space.SURVIVOR,
                    )
            self.copy_breakdown["young"] += bytes_copied

        extra_copied, extra_profiled = self._old_phase(now, tracking)
        bytes_copied += extra_copied
        profiled += extra_profiled

        pause_ns = self.bandwidth.pause_ns(
            bytes_copied, regions_scanned=len(sources), survivors_profiled=profiled
        )
        self.young_collections += 1
        self._record_pause(
            self._young_pause_kind(),
            pause_ns,
            bytes_copied=bytes_copied,
            survivors=len(survivors),
        )
        self._end_of_cycle(pause_ns)

    def _place_run(self, objs: List[SimObject], sizes, space: Space) -> None:
        """Bump-place a run of same-destination survivors.

        Byte-for-byte equivalent to calling ``heap.allocate(obj, space)``
        per object (no humongous objects in the run): the current bump
        region is consulted first, fresh regions are claimed exactly when
        the next object does not fit, and each claimed region fills with
        the maximal prefix of the remaining run.
        """
        heap = self.heap
        key = (space, 0)
        region = heap._alloc_region.get(key)
        cum = sizes.cumsum()
        total = len(objs)
        i = 0
        base = 0
        while i < total:
            next_size = int(sizes[i])
            if region is None or region.used + next_size > region.capacity:
                region = heap.claim_region(space, 0)
                heap._alloc_region[key] = region
            # maximal prefix i..j-1 with cumulative size <= free room
            j = int(_np.searchsorted(cum, base + (region.capacity - region.used), side="right"))
            chunk = objs[i:j]
            region.objects.extend(chunk)
            for obj in chunk:
                obj.region = region
            chunk_bytes = int(cum[j - 1]) - base
            region.used += chunk_bytes
            base = int(cum[j - 1])
            i = j

    def _young_pause_kind(self) -> str:
        return "young"

    def _promote(self, obj: SimObject) -> None:
        """Move a tenured object to the old space."""
        self.heap.allocate(obj, Space.OLD)
        self.objects_promoted += 1

    def _old_phase(self, now_ns: int, tracking: bool) -> Tuple[int, int]:
        """Subclass hook run inside the young pause (e.g. G1's mixed
        collection).  Returns (extra bytes copied, extra survivors
        profiled)."""
        return 0, 0

    # -- shared old-region evacuation helper ----------------------------------------

    def _evacuate_regions(
        self,
        regions: Iterable[Region],
        now_ns: int,
        tracking: bool,
        dest: Space = Space.OLD,
        dest_gen: int = 0,
        breakdown_key: str = "old",
    ) -> Tuple[int, int]:
        """Evacuate the live objects of ``regions`` into fresh ``dest``
        regions and reclaim the sources.  Returns (bytes copied,
        survivors profiled)."""
        regions = list(regions)
        if not regions:
            return 0, 0
        bytes_copied = 0
        profiled = 0
        gc_threads = self.bandwidth.gc_threads
        live: List[SimObject] = []
        for region in regions:
            live.extend(o for o in region.objects if o.is_live(now_ns))
            self.heap.release_region(region)
        self._attribute_copies(live)
        if self._fast_paths:
            # Same batched-profiling + inlined-aging shape as the young
            # copy loop in collect_young; see the equivalence note there.
            if tracking:
                self.profiler.on_gc_survivors(live, gc_threads)
                profiled = len(live)
            heap_allocate = self.heap.allocate
            for obj in live:
                header = obj.header
                if (header & AGE_MASK) != AGE_MASK:
                    obj.header = header + _AGE_ONE
                obj.copies += 1
                bytes_copied += obj.size
                heap_allocate(obj, dest, dest_gen)
            self.copy_breakdown[breakdown_key] += bytes_copied
            return bytes_copied, profiled
        for index, obj in enumerate(live):
            if tracking:
                self.profiler.on_gc_survivor(index % gc_threads, obj)
                profiled += 1
            obj.grow_older()
            obj.copies += 1
            bytes_copied += obj.size
            self.copy_breakdown[breakdown_key] += obj.size
            self.heap.allocate(obj, dest, dest_gen)
        return bytes_copied, profiled

"""Shared generational (young-generation copying) machinery.

G1, CMS and NG2C all use a copying young generation: eden fills up, a
stop-the-world young collection evacuates live objects into survivor
regions (or promotes them to the old generation once they reach the
tenuring threshold), and the eden regions are reclaimed wholesale.

The pause time of a young collection is the safepoint + root-scan fixed
cost plus the evacuation copy cost (bytes copied over effective memory
bandwidth) plus — when ROLP's survivor tracking is on — the per-survivor
profiling cost of reading the header context and updating the Object
Lifetime Distribution table.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.heap.header import AGE_MASK, AGE_SHIFT
from repro.heap.object_model import SimObject
from repro.heap.region import Region, Space
from repro.gc.collector import Collector

#: one age-field increment (the add grow_older performs while unsaturated)
_AGE_ONE = 1 << AGE_SHIFT


class GenerationalCollector(Collector):
    """Copying young generation + subclass-defined old-space policy.

    Parameters
    ----------
    young_regions:
        Eden region budget; a young GC triggers when eden reaches it.
    tenuring_threshold:
        Survivor age at which an object is promoted to the old space.
    """

    name = "generational"
    #: copying collectors age survivors on every copy, so the verifier
    #: may require age == min(copies, MAX_AGE)
    ages_on_copy = True

    def __init__(
        self,
        heap,
        bandwidth=None,
        clock=None,
        young_regions: int = 0,
        tenuring_threshold: int = 6,
    ) -> None:
        super().__init__(heap, bandwidth, clock)
        if young_regions <= 0:
            young_regions = max(4, len(heap.regions) // 4)
        self.young_regions = young_regions
        self.tenuring_threshold = tenuring_threshold
        self.young_collections = 0
        #: bytes copied, by source ("young", "old", "dynamic") — for
        #: diagnosing where pause time comes from
        self.copy_breakdown: dict = {"young": 0, "old": 0, "dynamic": 0}

    # -- triggering -----------------------------------------------------------

    def _eden_full(self) -> bool:
        if self._fast_paths:
            # O(1) incrementally maintained count, == the region walk
            return self.heap.region_count(Space.EDEN) >= self.young_regions
        return len(self.heap.regions_in(Space.EDEN)) >= self.young_regions

    def _maybe_collect(self) -> None:
        if self._eden_full():
            self.collect_young()

    # -- young collection --------------------------------------------------------

    def collect_young(self) -> None:
        """Stop-the-world evacuation of eden + survivor regions."""
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        sources: List[Region] = self.heap.regions_in(Space.EDEN) + self.heap.regions_in(
            Space.SURVIVOR
        )
        survivors = [o for r in sources for o in r.objects if o.is_live(now)]

        # To-space safety needs no explicit retire: the sources are
        # released before any copy, and releasing a region that is the
        # current bump target drops it from the allocation cache.  The
        # old generation's bump region (never a young-GC source) keeps
        # filling across cycles instead of leaking a partial region per
        # collection.

        tracking = self.profiler.survivor_tracking_enabled()
        bytes_copied = 0
        profiled = 0
        gc_threads = self.bandwidth.gc_threads
        # Attribution reads the pre-aging headers, so it must precede
        # both copy-loop variants (which age at different points).
        self._attribute_copies(survivors)
        # Release sources first so their regions are available as
        # to-space (the simulator's analogue of G1's evacuation reserve).
        for region in sources:
            self.heap.release_region(region)
        if self._fast_paths:
            # Batched survivor profiling reads the same pre-aging headers
            # as the interleaved per-object hook (profiling obj i never
            # depends on obj j's aging), then a tight copy loop inlines
            # grow_older and defers the breakdown update to one add.
            if tracking:
                self.profiler.on_gc_survivors(survivors, gc_threads)
                profiled = len(survivors)
            threshold = self.tenuring_threshold
            heap_allocate = self.heap.allocate
            promote = self._promote
            for obj in survivors:
                header = obj.header
                if (header & AGE_MASK) != AGE_MASK:
                    obj.header = header = header + _AGE_ONE
                obj.copies += 1
                bytes_copied += obj.size
                if (header & AGE_MASK) >> AGE_SHIFT >= threshold:
                    promote(obj)
                else:
                    heap_allocate(obj, Space.SURVIVOR)
            self.copy_breakdown["young"] += bytes_copied
        else:
            for index, obj in enumerate(survivors):
                if tracking:
                    self.profiler.on_gc_survivor(index % gc_threads, obj)
                    profiled += 1
                obj.grow_older()
                obj.copies += 1
                bytes_copied += obj.size
                self.copy_breakdown["young"] += obj.size
                if obj.age >= self.tenuring_threshold:
                    self._promote(obj)
                else:
                    self.heap.allocate(obj, Space.SURVIVOR)

        extra_copied, extra_profiled = self._old_phase(now, tracking)
        bytes_copied += extra_copied
        profiled += extra_profiled

        pause_ns = self.bandwidth.pause_ns(
            bytes_copied, regions_scanned=len(sources), survivors_profiled=profiled
        )
        self.young_collections += 1
        self._record_pause(
            self._young_pause_kind(),
            pause_ns,
            bytes_copied=bytes_copied,
            survivors=len(survivors),
        )
        self._end_of_cycle(pause_ns)

    def _young_pause_kind(self) -> str:
        return "young"

    def _promote(self, obj: SimObject) -> None:
        """Move a tenured object to the old space."""
        self.heap.allocate(obj, Space.OLD)
        self.objects_promoted += 1

    def _old_phase(self, now_ns: int, tracking: bool) -> Tuple[int, int]:
        """Subclass hook run inside the young pause (e.g. G1's mixed
        collection).  Returns (extra bytes copied, extra survivors
        profiled)."""
        return 0, 0

    # -- shared old-region evacuation helper ----------------------------------------

    def _evacuate_regions(
        self,
        regions: Iterable[Region],
        now_ns: int,
        tracking: bool,
        dest: Space = Space.OLD,
        dest_gen: int = 0,
        breakdown_key: str = "old",
    ) -> Tuple[int, int]:
        """Evacuate the live objects of ``regions`` into fresh ``dest``
        regions and reclaim the sources.  Returns (bytes copied,
        survivors profiled)."""
        regions = list(regions)
        if not regions:
            return 0, 0
        bytes_copied = 0
        profiled = 0
        gc_threads = self.bandwidth.gc_threads
        live: List[SimObject] = []
        for region in regions:
            live.extend(o for o in region.objects if o.is_live(now_ns))
            self.heap.release_region(region)
        self._attribute_copies(live)
        if self._fast_paths:
            # Same batched-profiling + inlined-aging shape as the young
            # copy loop in collect_young; see the equivalence note there.
            if tracking:
                self.profiler.on_gc_survivors(live, gc_threads)
                profiled = len(live)
            heap_allocate = self.heap.allocate
            for obj in live:
                header = obj.header
                if (header & AGE_MASK) != AGE_MASK:
                    obj.header = header + _AGE_ONE
                obj.copies += 1
                bytes_copied += obj.size
                heap_allocate(obj, dest, dest_gen)
            self.copy_breakdown[breakdown_key] += bytes_copied
            return bytes_copied, profiled
        for index, obj in enumerate(live):
            if tracking:
                self.profiler.on_gc_survivor(index % gc_threads, obj)
                profiled += 1
            obj.grow_older()
            obj.copies += 1
            bytes_copied += obj.size
            self.copy_breakdown[breakdown_key] += obj.size
            self.heap.allocate(obj, dest, dest_gen)
        return bytes_copied, profiled

"""ZGC-like fully concurrent collector.

The paper's Section 2.2 positions ZGC (and C4/Shenandoah) at the other
end of the Throughput-Memory-Latency trade-off: all marking, relocation
and compaction run concurrently with the mutator, so pauses are tiny
(sub-10 ms — the paper omits ZGC from the pause figures for this
reason), but the heavy use of read/write barriers taxes application
throughput, and concurrent relocation needs heap headroom plus floating
garbage, raising memory usage.

The model: allocation goes to single-space "zpages" (eden regions); a
concurrent cycle starts at an occupancy trigger (paced by allocation
volume so cycles do not run back to back) and contributes three short
fixed pauses (mark start, relocate start, mark end).  Fully dead pages
are freed at the cycle; partially dead pages are relocated *one cycle
later* (floating garbage → memory overhead), and relocation copy work
happens concurrently — it costs no pause time but is the reason for the
barrier tax, modelled as a constant multiplier on all mutator work.
"""

from __future__ import annotations

from typing import List

from repro.heap.region import Region, Space
from repro.gc.collector import Collector


class ZGCCollector(Collector):
    """Concurrent collector: tiny pauses, throughput + memory overhead."""

    name = "zgc"
    #: read/write barrier tax on every unit of mutator work
    mutator_overhead_factor = 1.22
    #: relocation headroom ZGC must keep committed on top of the peak
    #: live+float footprint (colored-pointer multi-mapping + to-space
    #: reserve); counted into the reported max memory usage
    headroom_fraction = 0.45

    def __init__(
        self,
        heap,
        bandwidth=None,
        clock=None,
        occupancy_trigger: float = 0.55,
        pause_ns: float = 900_000.0,
        min_cycle_alloc_fraction: float = 0.08,
    ) -> None:
        super().__init__(heap, bandwidth, clock)
        self.occupancy_trigger = occupancy_trigger
        #: each of the three per-cycle pauses (~0.9 ms)
        self.cycle_pause_ns = pause_ns
        #: fraction of the heap that must be allocated between cycle
        #: starts (pacing: real ZGC doesn't run back-to-back cycles)
        self.min_cycle_alloc_bytes = int(
            heap.capacity_bytes * min_cycle_alloc_fraction
        )
        self.concurrent_cycles = 0
        #: partially-garbage regions found last cycle, relocated next
        #: cycle (floating garbage → memory overhead)
        self._relocation_set: List[Region] = []
        self.concurrent_bytes_copied = 0
        self._bytes_at_last_cycle = 0

    # -- allocation placement ------------------------------------------------------

    def _placement(self, obj, context, gen_hint):
        return Space.EDEN, 0

    def _maybe_collect(self) -> None:
        if self.heap.occupancy() < self.occupancy_trigger:
            return
        if (
            self.bytes_allocated - self._bytes_at_last_cycle
            < self.min_cycle_alloc_bytes
        ):
            return
        self._concurrent_cycle()

    # -- concurrent cycle --------------------------------------------------------------

    def _concurrent_cycle(self) -> None:
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        self.concurrent_cycles += 1
        self._bytes_at_last_cycle = self.bytes_allocated

        # Three short stop-the-world pauses per cycle.
        self._record_pause("zgc-mark-start", self.cycle_pause_ns, count_cycle=False)
        self._record_pause("zgc-relocate-start", self.cycle_pause_ns, count_cycle=False)

        # Relocate the previous cycle's relocation set (concurrently —
        # no pause cost; requires free headroom like the real thing).
        self._relocate(self._relocation_set, now)
        self._relocation_set = []

        # Classify this cycle's pages: fully dead pages are freed right
        # away; partially dead pages wait one cycle (floating garbage).
        for region in list(self.heap.regions_in(Space.EDEN)):
            if region.used == 0:
                continue
            live = region.live_bytes(now)
            if live == 0:
                self.heap.release_region(region)
            elif live < region.used:
                self._relocation_set.append(region)

        self._record_pause("zgc-mark-end", self.cycle_pause_ns, count_cycle=False)
        self.gc_cycles += 1
        self._end_of_cycle(self.cycle_pause_ns)

    def _relocate(self, regions: List[Region], now_ns: int) -> None:
        """Concurrently evacuate live objects out of mostly-dead pages.

        Skips pages when no headroom is left — real ZGC would stall
        allocation instead; the page simply stays for a later cycle.
        """
        if not regions:
            return
        for region in regions:
            if region.space is Space.FREE:
                continue
            if self.heap.free_regions < 2:
                continue
            live = [o for o in region.objects if o.is_live(now_ns)]
            self.heap.release_region(region)
            for obj in live:
                obj.copies += 1
                self.concurrent_bytes_copied += obj.size
                self.heap.allocate(obj, Space.EDEN)

    def collect_full(self, reason: str) -> None:
        """Allocation stall: run back-to-back cycles to drain the float
        (the mutator waits; the pauses stay small)."""
        self._bytes_at_last_cycle = -self.min_cycle_alloc_bytes
        self._concurrent_cycle()
        self._bytes_at_last_cycle = -self.min_cycle_alloc_bytes
        self._concurrent_cycle()

    def max_memory_bytes(self) -> int:
        """Peak footprint including the relocation headroom reserve."""
        peak = self.heap.max_committed_bytes
        with_headroom = int(peak * (1.0 + self.headroom_fraction))
        return min(with_headroom, self.heap.capacity_bytes + peak // 4)

"""Collector statistics helpers shared by reports and benchmarks."""

from __future__ import annotations

from typing import Dict, List

from repro.gc.collector import Collector, PauseEvent


def pause_summary(collector: Collector) -> Dict[str, float]:
    """Quick numeric summary of a collector's pause behaviour."""
    durations = collector.pause_durations_ms()
    if not durations:
        return {
            "count": 0,
            "total_ms": 0.0,
            "mean_ms": 0.0,
            "max_ms": 0.0,
        }
    return {
        "count": len(durations),
        "total_ms": sum(durations),
        "mean_ms": sum(durations) / len(durations),
        "max_ms": max(durations),
    }


def pauses_by_kind(collector: Collector) -> Dict[str, List[PauseEvent]]:
    """Group recorded pauses by pause kind."""
    groups: Dict[str, List[PauseEvent]] = {}
    for pause in collector.pauses:
        groups.setdefault(pause.kind, []).append(pause)
    return groups


def copy_ratio(collector: Collector) -> float:
    """Bytes copied by the GC per byte allocated by the application.

    The paper's central claim is that pretenuring reduces this ratio;
    it is the mechanism behind every pause-time improvement.
    """
    vm = collector.vm
    if vm is None or vm.bytes_allocated == 0:
        return 0.0
    return collector.bytes_copied_total / vm.bytes_allocated

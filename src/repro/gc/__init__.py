"""Garbage collector models: G1, CMS, ZGC, and the NG2C pretenuring
collector that consumes ROLP advice."""

from repro.gc.cms import CMSCollector
from repro.gc.collector import Collector, PauseEvent
from repro.gc.g1 import G1Collector
from repro.gc.generational import GenerationalCollector
from repro.gc.ng2c import NG2CCollector, OLD_GEN
from repro.gc.stats import copy_ratio, pause_summary, pauses_by_kind
from repro.gc.zgc import ZGCCollector

__all__ = [
    "CMSCollector",
    "Collector",
    "G1Collector",
    "GenerationalCollector",
    "NG2CCollector",
    "OLD_GEN",
    "PauseEvent",
    "ZGCCollector",
    "copy_ratio",
    "pause_summary",
    "pauses_by_kind",
]

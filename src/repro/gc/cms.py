"""CMS-like collector (throughput-oriented baseline).

Concurrent Mark Sweep: the young generation is copying/stop-the-world
(like ParNew); the old generation is swept concurrently and is
*non-moving*.  The concurrent cycle contributes two short pauses
(initial mark, remark).  Because the sweep frees dead objects in place,
free space in the old generation fragments over time; when the wasted
(non-reusable) fraction crosses a limit — or an allocation fails — CMS
falls back to a single-threaded stop-the-world full compaction of the
whole old generation.  Those rare, huge pauses are CMS's signature
tail-latency failure mode, visible in the paper's Figures 8 and 9.
"""

from __future__ import annotations

from typing import Tuple

from repro.heap.region import Space
from repro.gc.generational import GenerationalCollector


class CMSCollector(GenerationalCollector):
    """Copying young gen + concurrent, non-moving old gen."""

    name = "cms"
    #: the concurrent sweep frees objects without moving the rest, so a
    #: region's used bytes legitimately exceed its live object bytes
    in_place_old_sweep = True

    def __init__(
        self,
        heap,
        bandwidth=None,
        clock=None,
        young_regions: int = 0,
        tenuring_threshold: int = 6,
        concurrent_trigger: float = 0.65,
        waste_limit: float = 0.30,
    ) -> None:
        super().__init__(heap, bandwidth, clock, young_regions, tenuring_threshold)
        #: occupancy fraction that starts a concurrent old cycle
        self.concurrent_trigger = concurrent_trigger
        #: wasted-fraction of old space that forces a full compaction
        self.waste_limit = waste_limit
        #: dead-in-place bytes in the old generation (not reusable)
        self.wasted_bytes = 0
        self.concurrent_cycles = 0
        self.full_compactions = 0

    # -- concurrent old cycle --------------------------------------------------

    def _maybe_collect(self) -> None:
        super()._maybe_collect()
        if self.heap.occupancy() >= self.concurrent_trigger:
            self._concurrent_cycle()
        if self._old_waste_fraction() >= self.waste_limit:
            self.collect_full("fragmentation")

    def _concurrent_cycle(self) -> None:
        """Concurrent mark + sweep with two short auxiliary pauses."""
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        self.concurrent_cycles += 1

        # Initial mark: roots only.
        initial_ns = self.bandwidth.safepoint_ns + self.bandwidth.root_scan_ns
        self._record_pause("cms-initial-mark", initial_ns, count_cycle=False)

        old_regions = [r for r in self.heap.regions_in(Space.OLD) if r.used > 0]
        live_objects = sum(
            1 for r in old_regions for o in r.objects if o.is_live(now)
        )

        # Remark: proportional to the live object population (card/dirty
        # rescanning), but far cheaper than copying.
        remark_ns = (
            self.bandwidth.safepoint_ns
            + self.bandwidth.root_scan_ns
            + live_objects * 12.0
        )
        self._record_pause("cms-remark", remark_ns, count_cycle=False)

        # Concurrent sweep: free dead objects in place.  Fully dead
        # regions return to the free list; partially dead regions keep
        # their footprint and the dead bytes become waste.
        for region in old_regions:
            garbage = region.garbage_bytes(now)
            if garbage == 0:
                continue
            if garbage == region.used:
                self.heap.release_region(region)
            else:
                survivors = [o for o in region.objects if o.is_live(now)]
                freed = region.used - sum(o.size for o in survivors)
                region.objects = survivors
                # Non-moving: 'used' stays (the space is fragmented); we
                # track it as waste that only a full compaction recovers.
                self.wasted_bytes += freed
        # The sweep ends no cycle (auxiliary pauses only), so run the
        # after-GC walk explicitly — it is the only point that sees the
        # freshly swept in-place waste.
        if self.verifier.enabled:
            self.verifier.at_gc_end(self)

    def _old_waste_fraction(self) -> float:
        old_bytes = sum(r.used for r in self.heap.regions_in(Space.OLD))
        if old_bytes == 0:
            return 0.0
        return min(1.0, self.wasted_bytes / old_bytes)

    # -- full compaction ----------------------------------------------------------

    def collect_full(self, reason: str) -> None:
        """Stop-the-world compaction of the entire old generation.

        Single-threaded in classic CMS — the copy cost does not get the
        parallel speedup, which is what makes these pauses so long.
        """
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        old_regions = [r for r in self.heap.regions_in(Space.OLD) if r.used > 0]
        if not old_regions:
            return
        self.full_compactions += 1
        tracking = self.profiler.survivor_tracking_enabled()
        bytes_copied, profiled = self._evacuate_regions(
            old_regions, now, tracking, dest=Space.OLD
        )
        # Serial copy: undo the parallel speedup the model applies.
        serial_penalty = self.bandwidth.parallel_speedup()
        pause_ns = (
            self.bandwidth.pause_ns(
                bytes_copied,
                regions_scanned=len(old_regions),
                survivors_profiled=profiled,
            )
            + self.bandwidth.copy_ns(bytes_copied) * (serial_penalty - 1.0)
        )
        self.wasted_bytes = 0
        self._record_pause("cms-full", pause_ns, bytes_copied=bytes_copied)
        self._end_of_cycle(pause_ns)

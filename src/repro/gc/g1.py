"""G1-like collector (the paper's baseline).

Young collections plus *mixed* collections: once heap occupancy crosses
the initiating threshold (IHOP), subsequent pauses also evacuate a slice
of the old regions with the most garbage.  Because G1 allocates every
object in eden regardless of lifetime, mid/long-lived Big Data objects
are copied repeatedly (survivor hops, promotion, then old-region
compaction), which is exactly the memory-bandwidth-bound copying that
produces the long tail pauses the paper measures.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.heap.region import Region, Space
from repro.gc.generational import GenerationalCollector


class G1Collector(GenerationalCollector):
    """Region-based generational collector with mixed collections."""

    name = "g1"

    def __init__(
        self,
        heap,
        bandwidth=None,
        clock=None,
        young_regions: int = 0,
        tenuring_threshold: int = 6,
        ihop: float = 0.45,
        mixed_garbage_threshold: float = 0.15,
        max_mixed_regions: int = 0,
    ) -> None:
        super().__init__(heap, bandwidth, clock, young_regions, tenuring_threshold)
        #: occupancy fraction that starts mixed collections
        self.ihop = ihop
        #: minimum garbage fraction for an old region to be a candidate
        self.mixed_garbage_threshold = mixed_garbage_threshold
        #: cap on old regions evacuated per mixed pause
        self.max_mixed_regions = max_mixed_regions or max(
            2, len(heap.regions) // 16
        )
        self.mixed_collections = 0
        self._bytes_at_forced_cycle = 0

    def _maybe_collect(self) -> None:
        super()._maybe_collect()
        # Eden pressure is not the only trigger: when allocation flows
        # straight into old/dynamic spaces (heavy pretenuring), the
        # cycle machinery — old reclamation, and with ROLP the
        # inference/adaptation clock — must still be driven.  Pace it by
        # allocation volume once occupancy crosses the IHOP, like G1's
        # concurrent-cycle scheduling.
        pace_bytes = self.young_regions * self.heap.region_bytes
        # One occupancy read serves both comparisons: nothing between
        # them can change the committed-region count.
        occupancy = self.heap.occupancy()
        if (
            occupancy >= self.ihop
            and self.bytes_allocated - self._bytes_at_forced_cycle >= pace_bytes
        ):
            self._bytes_at_forced_cycle = self.bytes_allocated
            self.collect_young()
        else:
            # keep the pacing anchor moving while below the threshold so
            # an IHOP crossing does not immediately fire on stale volume
            if occupancy < self.ihop:
                self._bytes_at_forced_cycle = self.bytes_allocated

    # -- mixed collections, run inside the young pause --------------------------

    #: old-space garbage fraction that forces mixed collections even
    #: below the IHOP (G1's reclaimable-percent policy): garbage must
    #: not pile up silently until an allocation spike causes a full GC
    waste_trigger = 0.40

    def _old_pressure(self, now_ns: int) -> bool:
        if self.heap.occupancy() >= self.ihop:
            return True
        old_regions = self.heap.regions_in(Space.OLD)
        used = sum(r.used for r in old_regions)
        if used == 0:
            return False
        garbage = sum(r.garbage_bytes(now_ns) for r in old_regions)
        return garbage / used >= self.waste_trigger

    def _old_phase(self, now_ns: int, tracking: bool) -> Tuple[int, int]:
        if not self._old_pressure(now_ns):
            return 0, 0
        candidates = self._collection_set(now_ns)
        if not candidates:
            return 0, 0
        self.mixed_collections += 1
        return self._evacuate_regions(candidates, now_ns, tracking, dest=Space.OLD)

    def _mixed_budget(self) -> int:
        """Collection-set size cap, expanded under heap pressure.

        Like G1's adaptive policies: when occupancy runs well past the
        IHOP the collector reclaims more aggressively per pause rather
        than drifting into an allocation failure (full GC).
        """
        occupancy = self.heap.occupancy()
        if occupancy >= 0.85:
            return self.max_mixed_regions * 4
        if occupancy >= 0.70:
            return self.max_mixed_regions * 2
        return self.max_mixed_regions

    def _collection_set(self, now_ns: int) -> List[Region]:
        """Old regions with the most garbage, capped per cycle."""
        candidates = [
            (r.garbage_bytes(now_ns), r)
            for r in self.heap.regions_in(Space.OLD)
            if r.used > 0 and r.fragmentation(now_ns) >= self.mixed_garbage_threshold
        ]
        candidates.sort(key=lambda pair: pair[0], reverse=True)
        return [r for _, r in candidates[: self._mixed_budget()]]

    def _young_pause_kind(self) -> str:
        return "mixed" if self.heap.occupancy() >= self.ihop else "young"

    # -- full collection ----------------------------------------------------------------

    def collect_full(self, reason: str) -> None:
        """Evacuation failure fallback: compact the entire old space."""
        if self.verifier.enabled:
            self.verifier.at_gc_start(self)
        now = self.clock.now_ns
        old_regions = [r for r in self.heap.regions_in(Space.OLD) if r.used > 0]
        tracking = self.profiler.survivor_tracking_enabled()
        bytes_copied, profiled = self._evacuate_regions(
            old_regions, now, tracking, dest=Space.OLD
        )
        pause_ns = self.bandwidth.pause_ns(
            bytes_copied, regions_scanned=len(old_regions), survivors_profiled=profiled
        )
        self._record_pause("full", pause_ns, bytes_copied=bytes_copied)
        self._end_of_cycle(pause_ns)

"""Collector base classes and pause accounting.

Every collector owns the heap, the clock and the bandwidth cost model,
and records each stop-the-world pause as a :class:`PauseEvent`.  The
metrics package turns those records into the percentile curves and
histograms of Figures 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.analysis import NULL_VERIFIER
from repro.fastpath import backend, fast_paths_enabled
from repro.heap.bandwidth import BandwidthModel
from repro.heap.header import AGE_MASK, AGE_SHIFT, CONTEXT_SHIFT, MASK_32
from repro.heap.heap import RegionHeap, SimOutOfMemoryError
from repro.heap.object_model import IMMORTAL, SimObject
from repro.heap.region import Space
from repro.heap.soa import HAVE_NUMPY, ObjectColumns  # rolp-lint: allow[backend-hygiene]
from repro.runtime.clock import SimClock
from repro.runtime.hooks import NullProfiler
from repro.telemetry import NULL_TELEMETRY, PAUSE_HISTOGRAM_BUCKETS_MS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.vm import JavaVM


@dataclass(frozen=True)
class PauseEvent:
    """One stop-the-world pause."""

    gc_number: int
    start_ns: int
    duration_ns: float
    kind: str
    bytes_copied: int = 0
    survivors: int = 0

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6


class Collector:
    """Base collector: allocation front-end + pause bookkeeping.

    Subclasses implement :meth:`_placement` (where a new object goes)
    and :meth:`_maybe_collect` (triggering policy), plus their actual
    collection algorithms.
    """

    name = "base"
    #: multiplier on mutator work (read/write-barrier tax; >1 for ZGC)
    mutator_overhead_factor = 1.0
    #: capability flags the heap verifier keys its rules on
    #: (see repro.analysis.heap_verifier)
    ages_on_copy = False
    in_place_old_sweep = False
    supports_dynamic_gens = False
    #: whether this collector's copy loops have a vectorized SoA variant
    #: (the compiled backend mirrors object hot state into columns only
    #: when the collector can actually sweep them)
    supports_soa = False

    def __init__(
        self,
        heap: RegionHeap,
        bandwidth: Optional[BandwidthModel] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.heap = heap
        self.bandwidth = bandwidth or BandwidthModel()
        self.clock = clock or SimClock()
        self.pauses: List[PauseEvent] = []
        self.gc_cycles = 0
        self.vm: Optional["JavaVM"] = None
        self.bytes_copied_total = 0
        self.objects_promoted = 0
        #: total bytes allocated through this collector
        self.bytes_allocated = 0
        self.verifier = NULL_VERIFIER
        #: construction-time snapshot of the process fast-path switch
        self._fast_paths = fast_paths_enabled()
        #: construction-time snapshot of the execution backend
        self._backend = backend()
        # Compiled backend: objects live in array-of-structs columns with
        # SimObject-compatible views, so the copy loops can vectorize.
        if self._backend == "compiled" and self.supports_soa and HAVE_NUMPY:
            self._columns: Optional[ObjectColumns] = ObjectColumns()
            self._make_obj = self._columns.allocate
        else:
            self._columns = None
            self._make_obj = SimObject
        #: (context, age) -> bytes copied since the last recorded pause;
        #: filled only while tracing, read by the pause-attribution report
        self._pause_contribs: dict = {}
        self.bind_telemetry(NULL_TELEMETRY)

    # -- wiring ---------------------------------------------------------------

    def attach_vm(self, vm: "JavaVM") -> None:
        self.vm = vm
        self.verifier = vm.verifier
        self.bind_telemetry(vm.telemetry)

    def bind_telemetry(self, telemetry) -> None:
        """Attach tracing + metrics (re-wired when a VM attaches)."""
        self.telemetry = telemetry
        metrics = telemetry.metrics
        # Buckets mirror Figure 9's duration intervals.
        self._m_pause_ms = metrics.histogram(
            "gc_pause_ms",
            PAUSE_HISTOGRAM_BUCKETS_MS,
            "Stop-the-world pause durations (ms)",
        )
        self._m_pauses = metrics.counter(
            "gc_pauses_total", "Stop-the-world pauses, by collector and kind"
        )
        self._m_bytes_copied = metrics.counter(
            "gc_bytes_copied_total", "Bytes copied during collection"
        )
        self._m_cycles = metrics.counter(
            "gc_cycles_total", "Full GC cycles (the profiler's unit of time)"
        )

    @property
    def profiler(self) -> NullProfiler:
        return self.vm.profiler if self.vm is not None else _NULL_PROFILER

    # -- allocation -------------------------------------------------------------

    def allocate(
        self,
        size: int,
        context: int = 0,
        death_time_ns: float = IMMORTAL,
        gen_hint: int = 0,
    ) -> SimObject:
        """Allocate a new object, collecting first if policy demands."""
        self._maybe_collect()
        self.bytes_allocated += size
        obj = self._make_obj(size, self.clock.now_ns, death_time_ns, context)
        space, gen = self._placement(obj, context, gen_hint)
        try:
            self.heap.allocate(obj, space, gen)
        except SimOutOfMemoryError:
            self.collect_full("allocation-failure")
            self.heap.allocate(obj, space, gen)  # raises again if truly full
        return obj

    # -- policy hooks ------------------------------------------------------------

    def _placement(self, obj: SimObject, context: int, gen_hint: int):
        """Return ``(space, gen)`` for a new object."""
        return Space.EDEN, 0

    def _maybe_collect(self) -> None:
        """Trigger collections per the collector's policy."""

    def collect_full(self, reason: str) -> None:
        """Last-resort full collection (default: no-op base)."""

    # -- pause bookkeeping ------------------------------------------------------------

    #: contributions attached per pause span event are capped; the rest
    #: is folded into a remainder bucket so attribution still sums to
    #: the pause's copied bytes
    PAUSE_CONTRIB_TOP_K = 48

    def _attribute_copies(self, objs) -> None:
        """Aggregate (allocation context, age class) -> bytes for the
        objects about to be copied in this pause.

        Must run *before* the copy loop mutates headers, so the fast and
        reference paths (which age in different places) attribute the
        same pre-aging state.  Guarded on the tracer so baseline runs
        never touch it.
        """
        if not self.telemetry.tracer.enabled:
            return
        contribs = self._pause_contribs
        for obj in objs:
            header = obj.header
            key = (
                (header >> CONTEXT_SHIFT) & MASK_32,
                (header & AGE_MASK) >> AGE_SHIFT,
            )
            contribs[key] = contribs.get(key, 0) + obj.size

    def _take_contributions(self):
        """Drain the per-pause aggregate into span-event args: the top-K
        (context, age, bytes) rows by bytes plus a fold-in remainder."""
        contribs = self._pause_contribs
        if not contribs:
            return []
        ranked = sorted(contribs.items(), key=lambda kv: (-kv[1], kv[0]))
        self._pause_contribs = {}
        rows = [[context, age, size] for (context, age), size in ranked[: self.PAUSE_CONTRIB_TOP_K]]
        remainder = sum(size for _, size in ranked[self.PAUSE_CONTRIB_TOP_K :])
        if remainder:
            rows.append([-1, -1, remainder])
        return rows

    def _record_pause(
        self,
        kind: str,
        duration_ns: float,
        bytes_copied: int = 0,
        survivors: int = 0,
        count_cycle: bool = True,
    ) -> PauseEvent:
        """Advance the clock by a pause and record it.

        ``count_cycle`` distinguishes full GC *cycles* (the profiler's
        unit of time) from auxiliary pauses (e.g. CMS initial-mark).
        """
        start = self.clock.now_ns
        self.clock.advance_pause(duration_ns)
        if count_cycle:
            self.gc_cycles += 1
        event = PauseEvent(
            gc_number=self.gc_cycles,
            start_ns=start,
            duration_ns=duration_ns,
            kind=kind,
            bytes_copied=bytes_copied,
            survivors=survivors,
        )
        self.pauses.append(event)
        self.bytes_copied_total += bytes_copied
        if self.telemetry.enabled:
            self.telemetry.tracer.span(
                "gc/%s" % kind,
                start,
                duration_ns,
                category="gc",
                collector=self.name,
                gc_number=event.gc_number,
                bytes_copied=bytes_copied,
                survivors=survivors,
                span_id="gc-%d/%s" % (event.gc_number, kind),
                contributions=self._take_contributions(),
            )
            self._m_pauses.inc(1, collector=self.name, kind=kind)
            self._m_pause_ms.observe(event.duration_ms, collector=self.name)
            self._m_bytes_copied.inc(bytes_copied, collector=self.name)
            if count_cycle:
                self._m_cycles.inc(1, collector=self.name)
        return event

    def _end_of_cycle(self, pause_ns: float) -> None:
        """Common end-of-GC duties: profiler merge + safepoint checks."""
        self.profiler.on_gc_end(self.gc_cycles, self.clock.now_ns, pause_ns)
        if self.vm is not None:
            self.vm.at_safepoint()
        if self.verifier.enabled:
            self.verifier.at_gc_end(self)

    # -- statistics --------------------------------------------------------------------

    def pause_durations_ms(self) -> List[float]:
        return [p.duration_ms for p in self.pauses]

    def max_memory_bytes(self) -> int:
        return self.heap.max_committed_bytes


class _NullProfilerSingleton(NullProfiler):
    pass


_NULL_PROFILER = _NullProfilerSingleton()

"""The fleet server's versioned wire contract: ``rolp-bench/server/v1``.

Every request and response body the server accepts or emits is written
down here as a JSON schema (a small, stable subset of JSON Schema —
``type`` / ``required`` / ``properties`` / ``additionalProperties`` /
``items`` / ``enum`` / ``minimum`` / ``pattern``), together with the
validator that enforces it.  The server validates requests against the
request schemas (a mismatch is a 400 with a reason slug, never a
traceback), and the protocol-conformance suite
(tests/test_server_protocol.py) validates every response — including
every error envelope — against the response schemas, so the wire format
cannot drift without a test catching it and a schema-version bump
making it explicit.

Error envelope::

    {"schema": "rolp-bench/server/v1",
     "error": {"status": 429, "reason": "queue-full",
               "detail": "admission queue at capacity (8)"}}

``reason`` is always one of :data:`REASONS` — machine-matchable slugs,
stable across releases of the same schema version.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

#: bump when any request/response shape changes incompatibly
SCHEMA = "rolp-bench/server/v1"

#: every error reason slug the server can emit, with its HTTP status.
#: The conformance suite asserts this table is stable.
REASONS: Dict[str, int] = {
    "malformed-body": 400,        # body is not a JSON object
    "invalid-field": 400,         # body failed schema validation
    "unknown-kind": 400,          # job names an unregistered cell kind
    "invalid-params": 400,        # params don't bind to the kind's signature
    "unknown-workload": 400,      # session/job names an unknown workload
    "unknown-collector": 400,     # session/job names an unknown collector
    "unknown-session": 404,       # no such (or already closed) session
    "unknown-endpoint": 404,      # no route matches the path
    "method-not-allowed": 405,    # route exists, verb does not
    "recording-disabled": 409,    # session created without a recorder
    "queue-full": 429,            # admission queue at capacity (backpressure)
    "timeout": 504,               # per-request deadline expired
    "internal-error": 500,        # cell execution failed
    "server-stopping": 503,       # accepted but abandoned during shutdown
}


class SchemaError(ValueError):
    """An instance failed schema validation; ``path`` locates the
    offending value (``$.params.operations``)."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__("%s: %s" % (path, message))


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(instance, schema: dict, path: str = "$") -> None:
    """Validate ``instance`` against ``schema``; raise
    :class:`SchemaError` at the first mismatch."""
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, (list, tuple)) else (expected,)
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            raise SchemaError(
                path,
                "expected %s, got %s" % ("|".join(types), type(instance).__name__),
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise SchemaError(path, "%r not in %r" % (instance, schema["enum"]))
    if "const" in schema and instance != schema["const"]:
        raise SchemaError(path, "%r != %r" % (instance, schema["const"]))
    if isinstance(instance, str) and "pattern" in schema:
        if not re.search(schema["pattern"], instance):
            raise SchemaError(
                path, "%r does not match /%s/" % (instance, schema["pattern"])
            )
    if isinstance(instance, (int, float)) and not isinstance(instance, bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise SchemaError(path, "%r < minimum %r" % (instance, schema["minimum"]))
        if "maximum" in schema and instance > schema["maximum"]:
            raise SchemaError(path, "%r > maximum %r" % (instance, schema["maximum"]))
    if isinstance(instance, dict):
        properties = schema.get("properties", {})
        for name in schema.get("required", ()):
            if name not in instance:
                raise SchemaError(path, "missing required property %r" % name)
        additional = schema.get("additionalProperties", True)
        for name, value in instance.items():
            if name in properties:
                validate(value, properties[name], "%s.%s" % (path, name))
            elif additional is False:
                raise SchemaError(path, "unexpected property %r" % name)
            elif isinstance(additional, dict):
                validate(value, additional, "%s.%s" % (path, name))
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            validate(item, schema["items"], "%s[%d]" % (path, index))


# ------------------------------------------------------------- request schemas

#: 16-hex fleet trace id (see repro.bench.runner.derive_trace_id)
_TRACE_ID = {"type": "string", "pattern": "^[0-9a-f]{16}$"}

SESSION_CREATE_REQUEST = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "workload": {"type": "string"},
        "collector": {"type": "string"},
        "operations": {"type": "integer", "minimum": 1},
        "ops_per_step": {"type": "integer", "minimum": 1},
        "idle_timeout_s": {"type": "number", "minimum": 0},
        "flight_recorder": {"type": "integer", "minimum": 1},
    },
}

JOB_REQUEST = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "kind": {"type": "string"},
        "params": {"type": "object"},
    },
}

STEP_REQUEST = {
    "type": "object",
    "additionalProperties": False,
    "properties": {
        "ops": {"type": "integer", "minimum": 1},
    },
}

REQUEST_SCHEMAS: Dict[str, dict] = {
    "session_create": SESSION_CREATE_REQUEST,
    "job": JOB_REQUEST,
    "step": STEP_REQUEST,
}


# ------------------------------------------------------------ response schemas

_SCHEMA_FIELD = {"type": "string", "const": SCHEMA}

ERROR_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "error"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "error": {
            "type": "object",
            "additionalProperties": False,
            "required": ["status", "reason", "detail"],
            "properties": {
                "status": {"type": "integer", "minimum": 400, "maximum": 599},
                "reason": {"type": "string", "enum": sorted(REASONS)},
                "detail": {"type": "string"},
            },
        },
    },
}

SESSION_OBJECT = {
    "type": "object",
    "additionalProperties": False,
    "required": [
        "id", "seq", "state", "workload", "collector", "operations",
        "ops_per_step", "steps", "jobs", "trace_id", "created_s",
        "idle_s", "recorder",
    ],
    "properties": {
        "id": {"type": "string", "pattern": "^s-[0-9]{6}$"},
        "seq": {"type": "integer", "minimum": 1},
        "state": {"type": "string", "enum": ["active"]},
        "workload": {"type": "string"},
        "collector": {"type": "string"},
        "operations": {"type": "integer", "minimum": 1},
        "ops_per_step": {"type": "integer", "minimum": 1},
        "steps": {"type": "integer", "minimum": 0},
        "jobs": {"type": "integer", "minimum": 0},
        "trace_id": _TRACE_ID,
        "created_s": {"type": "number"},
        "idle_s": {"type": "number", "minimum": 0},
        "recorder": {
            "type": ["object", "null"],
            "additionalProperties": {"type": "integer"},
        },
    },
}

SESSION_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "session"],
    "properties": {"schema": _SCHEMA_FIELD, "session": SESSION_OBJECT},
}

SESSION_LIST_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "count", "sessions"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "count": {"type": "integer", "minimum": 0},
        "sessions": {"type": "array", "items": SESSION_OBJECT},
    },
}

SESSION_CLOSED_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "closed"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "closed": {
            "type": "object",
            "additionalProperties": False,
            "required": ["id", "steps", "jobs", "trace_id"],
            "properties": {
                "id": {"type": "string"},
                "steps": {"type": "integer", "minimum": 0},
                "jobs": {"type": "integer", "minimum": 0},
                "trace_id": _TRACE_ID,
            },
        },
    },
}

#: the byte-identity surface: everything under ``job`` is a pure
#: function of (cell key, base seed) — no timing, no arrival order
JOB_OBJECT = {
    "type": "object",
    "additionalProperties": False,
    "required": ["cell_key", "kind", "seed", "trace_id", "fingerprint", "result"],
    "properties": {
        "cell_key": {"type": "string"},
        "kind": {"type": "string"},
        "seed": {"type": "integer"},
        "trace_id": _TRACE_ID,
        "fingerprint": {"type": "string", "pattern": "^[0-9a-f]{64}$"},
        "result": {"type": "object"},
    },
}

JOB_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "job"],
    "properties": {"schema": _SCHEMA_FIELD, "job": JOB_OBJECT},
}

STEP_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "step", "job"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "step": {"type": "integer", "minimum": 0},
        "job": JOB_OBJECT,
    },
}

HEALTH_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "status", "accepting", "sessions_active", "queue_depth"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "status": {"type": "string", "enum": ["ok"]},
        "accepting": {"type": "boolean"},
        "sessions_active": {"type": "integer", "minimum": 0},
        "queue_depth": {"type": "integer", "minimum": 0},
    },
}

METRICS_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "sessions", "queue", "batcher", "metrics"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "sessions": {
            "type": "object",
            "additionalProperties": False,
            "required": ["active", "created", "closed", "reaped", "jobs", "steps"],
            "properties": {
                "active": {"type": "integer", "minimum": 0},
                "created": {"type": "integer", "minimum": 0},
                "closed": {"type": "integer", "minimum": 0},
                "reaped": {"type": "integer", "minimum": 0},
                "jobs": {"type": "integer", "minimum": 0},
                "steps": {"type": "integer", "minimum": 0},
            },
        },
        "queue": {
            "type": "object",
            "additionalProperties": False,
            "required": ["depth", "capacity", "accepted", "rejected"],
            "properties": {
                "depth": {"type": "integer", "minimum": 0},
                "capacity": {"type": "integer", "minimum": 1},
                "accepted": {"type": "integer", "minimum": 0},
                "rejected": {"type": "integer", "minimum": 0},
            },
        },
        "batcher": {
            "type": "object",
            "additionalProperties": False,
            "required": [
                "accepted",
                "rejected",
                "batches",
                "completed",
                "failed",
                "abandoned",
                "max_batch",
            ],
            "properties": {
                "accepted": {"type": "integer", "minimum": 0},
                "rejected": {"type": "integer", "minimum": 0},
                "batches": {"type": "integer", "minimum": 0},
                "completed": {"type": "integer", "minimum": 0},
                "failed": {"type": "integer", "minimum": 0},
                "abandoned": {"type": "integer", "minimum": 0},
                "max_batch": {"type": "integer", "minimum": 1},
            },
        },
        "metrics": {"type": "object"},
    },
}

RECORDING_RESPONSE = {
    "type": "object",
    "additionalProperties": False,
    "required": ["schema", "session_id", "trace_id", "counters", "events"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "session_id": {"type": "string"},
        "trace_id": _TRACE_ID,
        "counters": {"type": "object", "additionalProperties": {"type": "integer"}},
        "events": {"type": "array", "items": {"type": "object"}},
    },
}

SCHEMA_RESPONSE = {
    "type": "object",
    "required": ["schema", "reasons", "requests", "responses"],
    "properties": {
        "schema": _SCHEMA_FIELD,
        "reasons": {"type": "object", "additionalProperties": {"type": "integer"}},
        "requests": {"type": "object"},
        "responses": {"type": "object"},
    },
}

RESPONSE_SCHEMAS: Dict[str, dict] = {
    "error": ERROR_RESPONSE,
    "health": HEALTH_RESPONSE,
    "job": JOB_RESPONSE,
    "metrics": METRICS_RESPONSE,
    "recording": RECORDING_RESPONSE,
    "schema": SCHEMA_RESPONSE,
    "session": SESSION_RESPONSE,
    "session_closed": SESSION_CLOSED_RESPONSE,
    "session_list": SESSION_LIST_RESPONSE,
    "step": STEP_RESPONSE,
}


# ---------------------------------------------------------------- envelopes

def envelope(key: str, payload) -> Dict[str, object]:
    """A success envelope: ``{"schema": ..., key: payload}``."""
    return {"schema": SCHEMA, key: payload}


def error_envelope(reason: str, detail: str) -> Tuple[int, Dict[str, object]]:
    """``(status, body)`` for an error ``reason`` slug."""
    status = REASONS[reason]
    return status, {
        "schema": SCHEMA,
        "error": {"status": status, "reason": reason, "detail": detail},
    }


def schema_document() -> Dict[str, object]:
    """The self-describing ``GET /v1/schema`` payload."""
    return {
        "schema": SCHEMA,
        "reasons": dict(REASONS),
        "requests": {name: REQUEST_SCHEMAS[name] for name in sorted(REQUEST_SCHEMAS)},
        "responses": {
            name: RESPONSE_SCHEMAS[name] for name in sorted(RESPONSE_SCHEMAS)
        },
    }


def classify_response(body: dict) -> Optional[str]:
    """Which response schema a body should validate against (by its
    envelope key), or ``None`` if it carries no recognised envelope."""
    if not isinstance(body, dict):
        return None
    if "error" in body:
        return "error"
    if "sessions" in body and "count" in body:
        return "session_list"
    if "session" in body:
        return "session"
    if "closed" in body:
        return "session_closed"
    if "step" in body and "job" in body:
        return "step"
    if "job" in body:
        return "job"
    if "status" in body and "accepting" in body:
        return "health"
    if "batcher" in body:
        return "metrics"
    if "events" in body:
        return "recording"
    if "responses" in body:
        return "schema"
    return None


def check_response(body: dict) -> str:
    """Validate a response body against the schema its shape names;
    returns the schema name.  The conformance suite calls this on every
    response the server produces."""
    name = classify_response(body)
    if name is None:
        raise SchemaError("$", "response matches no known envelope: %r" % sorted(body))
    validate(body, RESPONSE_SCHEMAS[name])
    return name


def reason_slugs() -> List[str]:
    return sorted(REASONS)


def iter_schemas() -> Iterable[Tuple[str, dict]]:
    for name in sorted(REQUEST_SCHEMAS):
        yield "request:" + name, REQUEST_SCHEMAS[name]
    for name in sorted(RESPONSE_SCHEMAS):
        yield "response:" + name, RESPONSE_SCHEMAS[name]

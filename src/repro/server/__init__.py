"""Simulation-as-a-service fleet server.

One long-running process (``rolp-bench serve``) turns the experiment
grid into an addressable resource: clients create *sessions* over
HTTP/JSON, submit simulation/profiling jobs against them, and stream
telemetry back.  The pieces:

* :mod:`repro.server.protocol` — the versioned wire contract
  (``rolp-bench/server/v1``): JSON schemas for every request and
  response (including the error envelope), plus the in-tree validator
  the conformance suite asserts against;
* :mod:`repro.server.sessions` — the session registry:
  create/run/step/query/close lifecycle, idle-timeout reaping,
  monotonic counters and per-session trace ids
  (:func:`repro.bench.runner.derive_trace_id`) with optional
  per-session flight recorders;
* :mod:`repro.server.jobs` — job → :class:`~repro.bench.runner.Cell`
  materialization and the canonical result payload (the byte-identity
  contract with CLI runs lives here);
* :mod:`repro.server.batcher` — the bounded admission queue and the
  coalescing batch executor (backpressure = 429 + ``Retry-After``);
* :mod:`repro.server.app` — the transport-free async application
  (routing, validation, error envelopes, ``/metrics`` + ``/healthz``);
* :mod:`repro.server.http` — the asyncio-streams HTTP/1.1 front end;
* :mod:`repro.server.testing` — the in-process async test client, the
  raw-TCP client, and the deterministic (seeded, wall-clock-free)
  load generator;
* :mod:`repro.server.loadgen` — the CLI load/soak driver used by the
  ``server-smoke`` CI job.

Determinism contract: a job's ``result`` and ``fingerprint`` depend
only on the cell key and the base seed — never on arrival order,
batching, concurrency, caching or transport — so server results are
byte-identical to the same cells run serially through
:class:`repro.bench.runner.Runner` (the PR 4/7 equivalence contract,
extended to the fleet).
"""

from repro.server.app import ServerApp
from repro.server.batcher import AdmissionQueueFull, JobBatcher
from repro.server.http import HttpFrontend, serve_main
from repro.server.protocol import SCHEMA, SchemaError, validate
from repro.server.sessions import SessionManager

__all__ = [
    "AdmissionQueueFull",
    "HttpFrontend",
    "JobBatcher",
    "SCHEMA",
    "SchemaError",
    "ServerApp",
    "SessionManager",
    "serve_main",
    "validate",
]

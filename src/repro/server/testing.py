"""Test infrastructure for the fleet server.

Three pieces, shared by the test suite and the ``server-smoke`` CI job:

* :class:`TestClient` — drives a :class:`ServerApp` fully in-process
  (no sockets, no ports, no real HTTP), which is what makes the
  protocol and soak suites deterministic and parallel-safe;
* :class:`HttpClient` — a minimal asyncio raw-TCP HTTP/1.1 client for
  exercising the real wire (:mod:`repro.server.http`) and for the CLI
  load generator;
* :class:`LoadPlan` / :func:`run_load` — the deterministic load
  generator: a seeded arrival *plan* (which client creates which
  session and submits which jobs, fixed by ``random.Random(seed)``
  before anything runs) executed by concurrent asyncio clients.
  Wall-clock never enters any assertion: correctness is judged by
  diffing each response's canonical job payload against the serial
  :class:`~repro.bench.runner.Runner` expectation, and latencies are
  only *reported*, never asserted here.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.bench.runner import Cell, make_cell
from repro.server import jobs as jobs_mod
from repro.server.app import Request, Response, ServerApp


class ClientResponse:
    """Uniform response wrapper for both clients."""

    def __init__(self, status: int, raw: bytes, headers: Dict[str, str]) -> None:
        self.status = status
        self.raw = raw
        self.headers = headers

    def json(self) -> dict:
        return json.loads(self.raw.decode())

    @property
    def canonical(self) -> bytes:
        """The body re-serialized canonically (sorted keys, compact) —
        the form every byte-identity assertion compares."""
        return jobs_mod.canonical_json(self.json()).encode()


class TestClient:
    """In-process client: ``await client.post('/v1/sessions', {...})``."""

    __test__ = False  # not a pytest collection target despite the name

    def __init__(self, app: ServerApp) -> None:
        self.app = app

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        query: Optional[Dict[str, str]] = None,
        raw_body: Optional[bytes] = None,
    ) -> ClientResponse:
        payload = raw_body
        if payload is None:
            payload = b"" if body is None else json.dumps(body).encode()
        response: Response = await self.app.handle(
            Request(
                method=method,
                path=path,
                body=payload,
                query=dict(query or {}),
            )
        )
        return ClientResponse(response.status, response.encoded(), dict(response.headers))

    async def get(self, path: str, query: Optional[Dict[str, str]] = None) -> ClientResponse:
        return await self.request("GET", path, query=query)

    async def post(self, path: str, body: Optional[object] = None, **kwargs) -> ClientResponse:
        return await self.request("POST", path, body=body, **kwargs)

    async def delete(self, path: str) -> ClientResponse:
        return await self.request("DELETE", path)


class HttpClient:
    """Raw-TCP HTTP/1.1 client (one connection per request; the server
    supports keep-alive but the load generator favours independence)."""

    def __init__(self, base_url: str) -> None:
        split = urlsplit(base_url)
        assert split.hostname is not None and split.port is not None, base_url
        self.host = split.hostname
        self.port = split.port

    async def request(
        self, method: str, path: str, body: Optional[object] = None
    ) -> ClientResponse:
        payload = b"" if body is None else json.dumps(body).encode()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            head = (
                "%s %s HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\n"
                "Content-Length: %d\r\nConnection: close\r\n\r\n"
                % (method, path, self.host, len(payload))
            )
            writer.write(head.encode() + payload)
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            raw = await reader.readexactly(length) if length else b""
            return ClientResponse(status, raw, headers)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def get(self, path: str) -> ClientResponse:
        return await self.request("GET", path)

    async def post(self, path: str, body: Optional[object] = None) -> ClientResponse:
        return await self.request("POST", path, body)

    async def delete(self, path: str) -> ClientResponse:
        return await self.request("DELETE", path)


# ------------------------------------------------------------- load generator

@dataclass(frozen=True)
class PlannedJob:
    """One planned submission: a whole-run job or a session step."""

    action: str  # "run" | "step"
    ops: int


@dataclass(frozen=True)
class PlannedClient:
    """One client's whole script, fixed before anything runs."""

    index: int
    workload: str
    collector: str
    operations: int
    jobs: Tuple[PlannedJob, ...]


@dataclass
class LoadPlan:
    """A seeded arrival plan: ``clients`` scripts drawn from
    ``random.Random(seed)`` — the same seed always yields the same
    plan, so the serial expectation can be computed without running
    any server at all."""

    seed: int
    clients: List[PlannedClient]

    @classmethod
    def generate(
        cls,
        seed: int,
        clients: int,
        jobs_per_client: int = 1,
        workloads: Sequence[str] = ("lucene", "graphchi-cc"),
        collectors: Sequence[str] = ("g1", "rolp"),
        operations: int = 2_000,
        step_fraction: float = 0.5,
    ) -> "LoadPlan":
        rng = random.Random(seed)
        planned = []
        for index in range(clients):
            job_list = tuple(
                PlannedJob(
                    action="step" if rng.random() < step_fraction else "run",
                    ops=operations,
                )
                for _ in range(jobs_per_client)
            )
            planned.append(
                PlannedClient(
                    index=index,
                    workload=rng.choice(list(workloads)),
                    collector=rng.choice(list(collectors)),
                    operations=operations,
                    jobs=job_list,
                )
            )
        return cls(seed=seed, clients=planned)

    def expected_cells(self) -> List[Cell]:
        """Every cell the plan will cause, in a deterministic order —
        step indices are assigned exactly as the server will assign
        them (per-session, 0-based), because each planned client gets
        its own session."""
        cells: List[Cell] = []
        for client in self.clients:
            step = 0
            for job in client.jobs:
                if job.action == "step":
                    cells.append(
                        make_cell(
                            "session_step",
                            workload=client.workload,
                            collector=client.collector,
                            operations=job.ops,
                            step=step,
                        )
                    )
                    step += 1
                else:
                    cells.append(
                        make_cell(
                            "trace_run",
                            workload=client.workload,
                            collector=client.collector,
                            operations=job.ops,
                        )
                    )
        return cells


@dataclass
class LoadReport:
    """What one load run observed.  ``payloads`` are the canonical job
    payload bytes in plan order — the byte-identity surface."""

    clients: int = 0
    jobs_completed: int = 0
    rejected_429: int = 0
    retries: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    payloads: List[bytes] = field(default_factory=list)
    fingerprints: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    def p99_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    def as_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "jobs_completed": self.jobs_completed,
            "rejected_429": self.rejected_429,
            "retries": self.retries,
            "p99_ms": round(self.p99_ms(), 3),
            "fingerprints": list(self.fingerprints),
            "errors": list(self.errors),
        }


async def _drive_client(
    client,
    planned: PlannedClient,
    report: LoadReport,
    slots: List[Optional[bytes]],
    base: int,
    clock,
    max_retries: int = 2_000,
) -> None:
    """One scripted client: create session → run jobs (retrying 429s —
    backpressure means *later*, not *never*) → close session."""
    created = await client.post(
        "/v1/sessions",
        {
            "workload": planned.workload,
            "collector": planned.collector,
            "operations": planned.operations,
        },
    )
    if created.status != 201:
        report.errors.append(
            "client %d: create -> %d" % (planned.index, created.status)
        )
        return
    sid = created.json()["session"]["id"]
    for offset, job in enumerate(planned.jobs):
        path = "/v1/sessions/%s/%s" % (sid, job.action)
        body = {"ops": job.ops} if job.action == "step" else {}
        for attempt in range(max_retries):
            started = clock()
            response = await client.post(path, body)
            if response.status == 429:
                report.rejected_429 += 1
                report.retries += 1
                # back off so the batcher's executor thread actually gets
                # wall time to drain the queue (a bare yield would spin
                # the retry budget away before one batch completes);
                # capped exponential keeps overload tests fast
                await asyncio.sleep(min(0.1, 0.002 * (1 << min(attempt, 6))))
                continue
            break
        if response.status != 200:
            report.errors.append(
                "client %d job %d: %s -> %d (%r)"
                % (planned.index, offset, job.action, response.status,
                   response.raw[:200])
            )
            return
        report.latencies_ms.append((clock() - started) * 1e3)
        document = response.json()
        payload = document["job"]
        slots[base + offset] = jobs_mod.canonical_json(payload).encode()
        report.jobs_completed += 1
    await client.delete("/v1/sessions/%s" % sid)


async def run_load(
    make_client,
    plan: LoadPlan,
    clock=None,
) -> LoadReport:
    """Execute ``plan`` with one concurrent task per planned client.

    ``make_client`` returns a client (TestClient or HttpClient) per
    planned client.  The report's ``payloads`` land in *plan* order no
    matter how the tasks interleave, so comparisons against
    :func:`repro.server.jobs.expected_payloads` are stable.
    """
    if clock is None:
        import time

        clock = time.monotonic
    total_jobs = sum(len(c.jobs) for c in plan.clients)
    slots: List[Optional[bytes]] = [None] * total_jobs
    report = LoadReport(clients=len(plan.clients))
    offsets: List[int] = []
    base = 0
    for client in plan.clients:
        offsets.append(base)
        base += len(client.jobs)
    await asyncio.gather(
        *(
            _drive_client(
                make_client(planned), planned, report, slots, offsets[i], clock
            )
            for i, planned in enumerate(plan.clients)
        )
    )
    report.payloads = [payload for payload in slots if payload is not None]
    report.fingerprints = [
        json.loads(payload.decode())["fingerprint"] for payload in report.payloads
    ]
    return report


def expected_payload_bytes(plan: LoadPlan, base_seed: int) -> List[bytes]:
    """The serial-Runner expectation for every planned job, in plan
    order, as canonical bytes — what a conforming server must return."""
    cells = plan.expected_cells()
    return [
        jobs_mod.canonical_json(payload).encode()
        for payload in jobs_mod.expected_payloads(cells, base_seed)
    ]
